//! Integration tests for the post-reproduction extensions: the dynamic
//! Euler histogram, the faceted service, and histogram/dataset
//! persistence — exercised together across crates.

use spatial_histograms::browse::{Browser, DynamicGeoBrowsingService, FacetedService};
use spatial_histograms::core::{
    DynamicEulerHistogram, EulerApprox, EulerHistogram, EulerSource, Level2Estimator, SEulerApprox,
};
use spatial_histograms::datagen::{paper_dataset, sz_skew, SzSkewConfig};
use spatial_histograms::prelude::*;

#[test]
fn dynamic_histogram_tracks_a_churning_dataset() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let d = sz_skew(&SzSkewConfig {
        count: 2_000,
        ..SzSkewConfig::default()
    });
    let objects = d.snap(&grid);
    let mut dynamic = DynamicEulerHistogram::new(grid);
    let q = GridRect::new(10, 5, 20, 12, &grid).unwrap();

    // Insert in waves, removing every third object of the previous wave;
    // after each step the dynamic answers must equal a fresh static build
    // over the surviving set.
    let mut alive: Vec<SnappedRect> = Vec::new();
    for wave in objects.chunks(500) {
        for o in wave {
            dynamic.insert(o);
            alive.push(*o);
        }
        let victims: Vec<SnappedRect> = alive.iter().step_by(3).copied().collect();
        for v in &victims {
            dynamic.remove(v);
        }
        let victim_set: Vec<usize> = (0..alive.len()).step_by(3).collect();
        let mut keep = Vec::new();
        for (i, o) in alive.iter().enumerate() {
            if !victim_set.contains(&i) {
                keep.push(*o);
            }
        }
        alive = keep;
        let frozen = EulerHistogram::build(grid, &alive).freeze();
        assert_eq!(dynamic.intersect_count(&q), frozen.intersect_count(&q));
        assert_eq!(dynamic.outside_sum(&q), frozen.outside_sum(&q));
        assert_eq!(dynamic.object_count() as usize, alive.len());
    }
}

#[test]
fn generic_estimators_accept_the_dynamic_backend() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let d = paper_dataset("adl", 1000).unwrap();
    let objects = d.snap(&grid);
    let dynamic = DynamicEulerHistogram::build(grid, &objects);
    let frozen = EulerHistogram::build(grid, &objects).freeze();

    let s_dyn = SEulerApprox::new(dynamic.clone());
    let s_stat = SEulerApprox::new(frozen.clone());
    let e_dyn = EulerApprox::new(dynamic);
    let e_stat = EulerApprox::new(frozen);
    for qs in QuerySet::paper_sets(&grid).iter().take(3) {
        for q in qs.iter() {
            assert_eq!(s_dyn.estimate(&q), s_stat.estimate(&q), "S {q}");
            assert_eq!(e_dyn.estimate(&q), e_stat.estimate(&q), "E {q}");
        }
    }
}

#[test]
fn dynamic_service_matches_static_service_after_churn() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let d = paper_dataset("sp_skew", 2000).unwrap();
    let stat = GeoBrowsingService::new(grid);
    let dynamic = DynamicGeoBrowsingService::new(grid);
    for (i, r) in d.rects().iter().enumerate() {
        stat.insert(r);
        dynamic.insert(r);
        if i % 5 == 0 {
            stat.remove(r);
            dynamic.remove(r);
        }
    }
    let tiling = Tiling::new(grid.full(), 9, 6).unwrap();
    let a = stat.browse(&tiling, &BrowseRequest::default());
    let b = Browser::browse(&dynamic, &tiling);
    for ((c, r), _t) in tiling.iter() {
        assert_eq!(a.get(c, r), b.get(c, r), "tile ({c},{r})");
    }
}

#[test]
fn faceted_browse_is_additive_at_scale() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let d = paper_dataset("adl", 500).unwrap();
    let faceted: FacetedService<u8> = FacetedService::new(grid);
    let all = GeoBrowsingService::new(grid);
    for (i, r) in d.rects().iter().enumerate() {
        faceted.insert((i % 4) as u8, r);
        all.insert(r);
    }
    let tiling = Tiling::new(grid.full(), 6, 6).unwrap();
    let combined = faceted.browse(&tiling, &[0, 1, 2, 3]);
    let direct = all.browse(&tiling, &BrowseRequest::default());
    for ((c, r), _t) in tiling.iter() {
        assert_eq!(combined.get(c, r), direct.get(c, r), "tile ({c},{r})");
    }
    // A strict subset browses fewer objects.
    let subset = faceted.browse(&tiling, &[0]);
    let sub_total: i64 = subset.counts()[0].total();
    assert!(sub_total < direct.counts()[0].total());
    assert_eq!(sub_total as u64, faceted.facet_len(&0));
}

#[test]
fn persisted_histogram_serves_identical_browses() {
    let grid = Grid::paper_default();
    let d = paper_dataset("sz_skew", 500).unwrap();
    let objects = d.snap(&grid);
    let hist = EulerHistogram::build(grid, &objects);
    let bytes = hist.to_bytes();

    // "Tomorrow": restore without the dataset.
    let restored = EulerHistogram::from_bytes(bytes).unwrap();
    let est_a = SEulerApprox::new(hist.freeze());
    let est_b = SEulerApprox::new(restored.freeze());
    for qs in QuerySet::paper_sets(&grid).iter().take(2) {
        for q in qs.iter() {
            assert_eq!(est_a.estimate(&q), est_b.estimate(&q), "{q}");
        }
    }
}

#[test]
fn csv_round_trip_preserves_browse_results() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let d = paper_dataset("ca_road", 2000).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("euler-int-csv-{}.csv", std::process::id()));
    d.save_csv(&path).unwrap();
    let loaded =
        spatial_histograms::datagen::Dataset::load_csv(&path, "roads", *d.space()).unwrap();
    std::fs::remove_file(&path).ok();

    let a = GeoBrowsingService::with_objects(grid, d.rects());
    let b = GeoBrowsingService::with_objects(grid, loaded.rects());
    let tiling = Tiling::new(grid.full(), 12, 6).unwrap();
    let ra = a.browse(&tiling, &BrowseRequest::default());
    let rb = b.browse(&tiling, &BrowseRequest::default());
    for ((c, r), _t) in tiling.iter() {
        assert_eq!(ra.get(c, r), rb.get(c, r));
    }
}
