//! The paper's qualitative claims, pinned as executable tests at reduced
//! scale: each test names the section/figure whose behaviour it locks in.

use spatial_histograms::core::storage;
use spatial_histograms::core::{EulerHistogram, Level2Estimator};
use spatial_histograms::datagen::exact::ground_truth;
use spatial_histograms::datagen::{paper_dataset, sp_skew, sz_skew, SpSkewConfig, SzSkewConfig};
use spatial_histograms::metrics::ErrorAccumulator;
use spatial_histograms::prelude::*;

fn are_of<E: Level2Estimator>(
    est: &E,
    objects: &[SnappedRect],
    grid: &Grid,
    tile: usize,
    pick: impl Fn(&RelationCounts) -> i64,
) -> f64 {
    let qs = QuerySet::q_n(grid, tile).unwrap();
    let gt = ground_truth(objects, qs.tiling());
    let mut acc = ErrorAccumulator::default();
    for (q, exact) in gt.iter_with(qs.tiling()) {
        acc.push(pick(exact) as f64, pick(&est.estimate(&q).clamped()) as f64);
    }
    acc.are()
}

/// §6.2 / Figure 14(a): squares cannot cross square queries, so the
/// sz_skew overlap estimate is *exact* for every query set.
#[test]
fn sz_skew_overlap_error_is_exactly_zero() {
    let grid = Grid::paper_default();
    let d = sz_skew(&SzSkewConfig {
        count: 20_000,
        ..SzSkewConfig::default()
    });
    let objects = d.snap(&grid);
    let est = SEulerApprox::new(EulerHistogram::build(grid, &objects).freeze());
    for tile in [20, 10, 4, 2] {
        let are = are_of(&est, &objects, &grid, tile, |c| c.overlaps);
        assert_eq!(are, 0.0, "Q{tile}");
    }
}

/// §6.2 / Figure 14(a): sp_skew objects are 3.6×1.8, so crossovers are
/// impossible for tiles of 4×4 and larger — the overlap estimate is exact
/// there and degrades only at Q3/Q2.
#[test]
fn sp_skew_crossover_threshold_at_4x4() {
    let grid = Grid::paper_default();
    let d = sp_skew(&SpSkewConfig {
        count: 20_000,
        ..SpSkewConfig::default()
    });
    let objects = d.snap(&grid);
    let est = SEulerApprox::new(EulerHistogram::build(grid, &objects).freeze());
    for tile in [20, 10, 5, 4] {
        assert_eq!(are_of(&est, &objects, &grid, tile, |c| c.overlaps), 0.0);
    }
    let q3 = are_of(&est, &objects, &grid, 3, |c| c.overlaps);
    assert!(q3 > 0.0, "crossovers must appear at 3x3 tiles");
    // And N_cs stays exact at every size for this small-object dataset.
    for tile in [20, 10, 4, 2] {
        assert_eq!(are_of(&est, &objects, &grid, tile, |c| c.contains), 0.0);
    }
}

/// §5.3 / Figure 10: the loophole effect — an object containing the query
/// contributes 0 to the outside sum (its exterior intersection is an
/// annulus with Euler characteristic 2 − k = 0).
#[test]
fn loophole_effect_is_real() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let snapper = Snapper::new(grid);
    let big = snapper.snap(&Rect::new(20.0, 20.0, 340.0, 160.0).unwrap());
    let hist = EulerHistogram::build(grid, &[big]).freeze();
    let q = GridRect::unchecked(10, 5, 20, 10);
    assert_eq!(hist.intersect_count(&q), 1);
    assert_eq!(
        hist.outside_sum(&q),
        0,
        "containing object invisible outside"
    );
    // S-EulerApprox consequently misattributes it to N_cs (§6.2)...
    let s = SEulerApprox::new(hist.clone());
    assert_eq!(s.estimate(&q).contains, 1);
    assert_eq!(s.estimate(&q).contained, 0);
    // ...while EulerApprox recovers it through Region A (with the known
    // O1 double-count for an isolated containing object).
    let e = EulerApprox::new(hist);
    assert!(e.estimate(&q).contained >= 1);
}

/// §6.3–6.4: on the large-object dataset, EulerApprox improves the
/// contains estimate over S-EulerApprox, and M-EulerApprox improves it
/// further, at mid-size queries.
#[test]
fn estimator_hierarchy_on_sz_skew() {
    let grid = Grid::paper_default();
    let d = sz_skew(&SzSkewConfig {
        count: 20_000,
        ..SzSkewConfig::default()
    });
    let objects = d.snap(&grid);
    let hist = EulerHistogram::build(grid, &objects).freeze();
    let s = SEulerApprox::new(hist.clone());
    let e = EulerApprox::new(hist);
    let m = MEulerApprox::build(
        grid,
        &objects,
        &MEulerApprox::boundaries_from_sides(&[3, 10]),
    );
    for tile in [9, 6, 5] {
        let s_are = are_of(&s, &objects, &grid, tile, |c| c.contains);
        let e_are = are_of(&e, &objects, &grid, tile, |c| c.contains);
        let m_are = are_of(&m, &objects, &grid, tile, |c| c.contains);
        assert!(e_are < s_are, "Q{tile}: Euler {e_are} < S-Euler {s_are}");
        assert!(m_are < e_are, "Q{tile}: M-Euler {m_are} < Euler {e_are}");
    }
}

/// §5.4: queries whose area matches a group boundary dispatch every group
/// to a provably sound branch, so M-EulerApprox is exact there (for
/// crossover-free datasets like squares).
#[test]
fn m_euler_exact_at_boundary_aligned_queries() {
    let grid = Grid::paper_default();
    let d = sz_skew(&SzSkewConfig {
        count: 20_000,
        ..SzSkewConfig::default()
    });
    let objects = d.snap(&grid);
    let m = MEulerApprox::build(
        grid,
        &objects,
        &MEulerApprox::boundaries_from_sides(&[3, 10]),
    );
    for tile in [3, 10] {
        assert_eq!(
            are_of(&m, &objects, &grid, tile, |c| c.contains),
            0.0,
            "Q{tile}"
        );
        assert_eq!(
            are_of(&m, &objects, &grid, tile, |c| c.contained),
            0.0,
            "Q{tile}"
        );
    }
}

/// Theorem 3.1 / §3: exact `contains` storage is quadratic in the cell
/// count and ≈4 GB for the paper's grid; the Euler histogram is linear.
#[test]
fn storage_bounds_match_the_paper() {
    let exact = storage::exact_contains_buckets_all_types(&[360, 180]);
    let bytes = storage::buckets_to_bytes(exact, 1);
    assert!((4.0e9..4.5e9).contains(&(bytes as f64)), "paper's ~4GB");
    let euler = storage::euler_histogram_buckets(&[360, 180]);
    assert_eq!(euler, 719 * 359);
    // Quadratic vs linear growth: doubling the grid multiplies the exact
    // bound by ~16 and the Euler bound by ~4.
    let e1 = storage::exact_contains_buckets(&[360, 180]) as f64;
    let e2 = storage::exact_contains_buckets(&[720, 360]) as f64;
    assert!((15.0..17.0).contains(&(e2 / e1)));
    let h1 = storage::euler_histogram_buckets(&[360, 180]) as f64;
    let h2 = storage::euler_histogram_buckets(&[720, 360]) as f64;
    assert!((3.9..4.1).contains(&(h2 / h1)));
}

/// §6.5: the whole Q2 sweep (16,200 constant-time queries) completes well
/// inside the paper's 100 ms browsing budget even in a debug-friendly
/// integration test.
#[test]
fn q2_sweep_is_fast() {
    let grid = Grid::paper_default();
    let d = paper_dataset("adl", 100).unwrap();
    let objects = d.snap(&grid);
    let est = SEulerApprox::new(EulerHistogram::build(grid, &objects).freeze());
    let qs = QuerySet::q_n(&grid, 2).unwrap();
    let start = std::time::Instant::now();
    let mut sink = 0i64;
    for q in qs.iter() {
        sink = sink.wrapping_add(est.estimate(&q).contains);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    // Generous bound: debug builds are ~50x slower than release; the
    // release number lands in the low milliseconds.
    assert!(
        elapsed.as_millis() < 2_000,
        "Q2 sweep took {elapsed:?} for {} queries",
        qs.len()
    );
}
