//! End-to-end browsing-service tests: the full §1 workflow (select →
//! tile → count per relation → render → advise) across backends, plus
//! concurrent use of the updatable service.

use std::sync::Arc;

use spatial_histograms::browse::{
    advise, render_heatmap, Browser, EulerBrowser, ExactBrowser, GeoBrowsingService, Relation,
};
use spatial_histograms::core::{EulerHistogram, MEulerApprox, SEulerApprox};
use spatial_histograms::datagen::{paper_dataset, road_like, RoadConfig};
use spatial_histograms::prelude::*;

#[test]
fn euler_browser_matches_exact_browser_on_small_objects() {
    let grid = Grid::paper_default();
    let d = road_like(&RoadConfig {
        target_count: 30_000,
        ..RoadConfig::default()
    });
    let objects = d.snap(&grid);
    let exact = ExactBrowser::new(objects.clone());
    let euler = EulerBrowser::new(SEulerApprox::new(
        EulerHistogram::build(grid, &objects).freeze(),
    ));
    for (cols, rows) in [(36, 18), (22, 24), (5, 3)] {
        let tiling = Tiling::new(grid.full(), cols, rows).unwrap();
        let a = exact.browse(&tiling);
        let b = euler.browse(&tiling);
        for ((c, r), _tile) in tiling.iter() {
            assert_eq!(a.get(c, r), b.get(c, r), "{cols}x{rows} tile ({c},{r})");
        }
    }
}

#[test]
fn m_euler_browser_close_to_exact_on_adl() {
    let grid = Grid::paper_default();
    let d = paper_dataset("adl", 100).unwrap();
    let objects = d.snap(&grid);
    let exact = ExactBrowser::new(objects.clone());
    let m = EulerBrowser::new(MEulerApprox::build(
        grid,
        &objects,
        &MEulerApprox::boundaries_from_sides(&[10]),
    ));
    let tiling = Tiling::new(grid.full(), 36, 18).unwrap();
    let a = exact.browse(&tiling);
    let b = m.browse(&tiling);
    let (mut err, mut mass) = (0.0, 0.0);
    for ((c, r), _t) in tiling.iter() {
        err += (a.get(c, r).contains - b.get(c, r).contains).abs() as f64;
        mass += a.get(c, r).contains as f64;
    }
    assert!(err / mass < 0.05, "browse-level ARE {}", err / mass);
}

#[test]
fn heatmap_and_advice_pipeline() {
    let grid = Grid::paper_default();
    let d = paper_dataset("sp_skew", 200).unwrap();
    let service = GeoBrowsingService::with_objects(grid, d.rects());
    let tiling = Tiling::new(grid.full(), 36, 18).unwrap();
    let result = service.browse(&tiling, &BrowseRequest::default());

    let map = render_heatmap(&result, Relation::Intersect);
    // Frame: 18 map rows + 2 borders + legend line.
    assert_eq!(map.lines().count(), 21);
    assert!(map.lines().all(|l| l.len() <= 38 + 60));

    let tips = advise(&result, Relation::Intersect, 1_000_000);
    assert!(tips.hottest.is_some());
    assert!(tips.mega_fraction <= 1.0 && tips.zero_fraction <= 1.0);

    // The clustered dataset must produce an informative (non-uniform) map.
    let max = result.max_of(Relation::Intersect);
    let zeros = result
        .counts()
        .iter()
        .filter(|c| c.intersecting() == 0)
        .count();
    assert!(max > 0);
    assert!(zeros > 0, "sp_skew leaves empty regions");
}

#[test]
fn polygon_ingest_filter_and_refine() {
    // The full production pipeline: polygons → MBRs → snapped histogram →
    // browse (filter step) → exact polygon tests on the hot tile (refine
    // step). The histogram's intersect count upper-bounds the refined one.
    use spatial_histograms::geom::{Point, Polygon};
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let polygons: Vec<Polygon> = (0..300)
        .map(|i| {
            let cx = 30.0 + (i * 13 % 300) as f64;
            let cy = 20.0 + (i * 29 % 140) as f64;
            // Diamond (fills half its MBR).
            Polygon::new(vec![
                Point::new(cx, cy - 3.0),
                Point::new(cx + 4.0, cy),
                Point::new(cx, cy + 3.0),
                Point::new(cx - 4.0, cy),
            ])
            .unwrap()
        })
        .collect();
    let mbrs: Vec<Rect> = polygons.iter().map(|p| p.mbr()).collect();
    for (p, m) in polygons.iter().zip(&mbrs) {
        assert!((p.mbr_coverage() - 0.5).abs() < 1e-9);
        assert!(m.area() > 0.0);
    }
    let service = GeoBrowsingService::with_objects(grid, &mbrs);
    let tiling = Tiling::new(grid.full(), 6, 3).unwrap();
    let result = service.browse(&tiling, &BrowseRequest::default());
    // Refine the hottest tile: count polygons whose geometry actually
    // reaches the tile center region (a cheap proxy for exact overlap).
    let tips = spatial_histograms::browse::advise(
        &result,
        spatial_histograms::browse::Relation::Intersect,
        1_000_000,
    );
    let ((c, r), mbr_hits) = tips.hottest.unwrap();
    let tile = tiling.tile(c, r);
    let tile_rect = grid.rect_of(&tile);
    let refined = polygons
        .iter()
        .filter(|p| p.mbr().intersects_open(&tile_rect))
        .count() as i64;
    assert!(refined <= mbr_hits, "filter step upper-bounds refinement");
    assert!(refined > 0);
}

#[test]
fn service_updates_visible_to_new_snapshots_only() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let service = GeoBrowsingService::new(grid);
    let tiling = Tiling::new(grid.full(), 6, 3).unwrap();
    assert_eq!(
        service.browse(&tiling, &BrowseRequest::default()).counts()[0].total(),
        0
    );

    service.insert(&Rect::new(15.0, 15.0, 25.0, 25.0).unwrap());
    let snap_before = service.snapshot();
    service.insert(&Rect::new(100.0, 100.0, 120.0, 110.0).unwrap());
    assert_eq!(snap_before.object_count(), 1);
    assert_eq!(service.snapshot().object_count(), 2);
    assert_eq!(service.len(), 2);

    service.remove(&Rect::new(15.0, 15.0, 25.0, 25.0).unwrap());
    assert_eq!(service.len(), 1);
}

#[test]
fn concurrent_browse_under_write_load() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    let service = Arc::new(GeoBrowsingService::new(grid));
    let tiling = Tiling::new(grid.full(), 9, 6).unwrap();
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let svc = service.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    let x = ((w * 100 + i) % 350) as f64;
                    let y = ((w * 37 + i * 3) % 175) as f64;
                    svc.insert(&Rect::new(x, y, x + 2.0, y + 2.0).unwrap());
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let svc = service.clone();
            std::thread::spawn(move || {
                let mut last_total = 0;
                for _ in 0..50 {
                    let res = svc.browse(&tiling, &BrowseRequest::default());
                    let total = res.counts()[0].total();
                    // Monotone dataset growth: snapshots never go backward.
                    assert!(total >= last_total);
                    last_total = total;
                }
            })
        })
        .collect();
    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }
    assert_eq!(service.len(), 200);
}
