//! Cross-crate validation: every independent implementation of the same
//! quantity must agree — the Euler histogram's `n_ii` vs the CD corner
//! histograms vs the exact O(N²) structure vs per-object classification
//! vs the R-tree oracle vs the difference-array ground truth.

use spatial_histograms::baselines::{BtHistogram, CdHistogram, NaiveScan, RTreeOracle};
use spatial_histograms::core::{EulerHistogram, ExactContains2D, Level2Estimator};
use spatial_histograms::datagen::exact::ground_truth;
use spatial_histograms::datagen::{paper_dataset, PAPER_DATASETS};
use spatial_histograms::prelude::*;

/// All paper datasets at 1/200 scale, snapped to a coarse grid so the
/// exact O(N²) structure stays small.
fn scaled_datasets(grid: &Grid) -> Vec<(String, Vec<SnappedRect>)> {
    PAPER_DATASETS
        .iter()
        .map(|name| {
            let d = paper_dataset(name, 200).expect("dataset");
            (name.to_string(), d.snap(grid))
        })
        .collect()
}

#[test]
fn intersect_counts_agree_across_five_implementations() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    for (name, objects) in scaled_datasets(&grid) {
        let euler = EulerHistogram::build(grid, &objects).freeze();
        let cd = CdHistogram::build(&grid, &objects);
        let bt = BtHistogram::build(grid, &objects);
        let exact2d = ExactContains2D::build(&grid, &objects);
        let scan = NaiveScan::new(objects.clone());
        for (x0, y0, w, h) in [
            (0usize, 0usize, 36usize, 18usize),
            (3, 2, 6, 5),
            (10, 8, 1, 1),
            (0, 0, 2, 18),
            (30, 12, 6, 6),
        ] {
            let q = GridRect::unchecked(x0, y0, x0 + w, y0 + h);
            let reference = scan.estimate(&q).intersecting();
            assert_eq!(euler.intersect_count(&q), reference, "{name} euler {q}");
            assert_eq!(cd.intersect_count(&q), reference, "{name} cd {q}");
            assert_eq!(bt.intersect_count(&q), reference, "{name} bt {q}");
            assert_eq!(
                exact2d.counts(&q).intersecting(),
                reference,
                "{name} exact2d {q}"
            );
        }
    }
}

#[test]
fn level2_oracles_agree_everywhere() {
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    for (name, objects) in scaled_datasets(&grid) {
        let exact2d = ExactContains2D::build(&grid, &objects);
        let rtree = RTreeOracle::build(&objects);
        let scan = NaiveScan::new(objects.clone());
        let qs = QuerySet::q_n(&grid, 6).unwrap();
        let gt = ground_truth(&objects, qs.tiling());
        for (q, gt_counts) in gt.iter_with(qs.tiling()) {
            let reference = scan.estimate(&q);
            assert_eq!(*gt_counts, reference, "{name} ground_truth {q}");
            assert_eq!(exact2d.counts(&q), reference, "{name} exact2d {q}");
            assert_eq!(rtree.estimate(&q), reference, "{name} rtree {q}");
        }
    }
}

#[test]
fn estimators_are_conservative_about_structure() {
    // For every dataset and estimator: totals equal |S| and N_d is exact
    // (n_ii is exact by Corollary 4.1, so the disjoint count always is).
    let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
    for (name, objects) in scaled_datasets(&grid) {
        let hist = EulerHistogram::build(grid, &objects).freeze();
        let estimators: Vec<Box<dyn Level2Estimator>> = vec![
            Box::new(SEulerApprox::new(hist.clone())),
            Box::new(EulerApprox::new(hist.clone())),
            Box::new(MEulerApprox::build(grid, &objects, &[9.0, 100.0])),
        ];
        let qs = QuerySet::q_n(&grid, 9).unwrap();
        let gt = ground_truth(&objects, qs.tiling());
        for est in &estimators {
            for (q, exact) in gt.iter_with(qs.tiling()) {
                let e = est.estimate(&q);
                assert_eq!(e.total(), objects.len() as i64, "{name} {} {q}", est.name());
                assert_eq!(e.disjoint, exact.disjoint, "{name} {} {q}", est.name());
            }
        }
    }
}

#[test]
fn one_dimensional_exact_matches_brute_force() {
    use spatial_histograms::core::ExactContains1D;
    // 1-D intervals with assorted endpoints, validated against direct
    // interval arithmetic.
    let objects: Vec<(f64, f64)> = (0..200)
        .map(|i| {
            let a = 0.01 + (i as f64 * 0.37) % 9.0;
            let len = 0.05 + (i as f64 * 0.13) % 2.0;
            (a, (a + len).min(9.99))
        })
        .collect();
    let e = ExactContains1D::build(10, &objects);
    for m in 0..9 {
        for k in (m + 1)..=10 {
            let contains = objects
                .iter()
                .filter(|&&(a, b)| a > m as f64 && b < k as f64)
                .count() as i64;
            let contained = objects
                .iter()
                .filter(|&&(a, b)| a < m as f64 && b > k as f64)
                .count() as i64;
            let intersect = objects
                .iter()
                .filter(|&&(a, b)| a < k as f64 && b > m as f64)
                .count() as i64;
            assert_eq!(e.contains(m, k), contains, "contains [{m},{k}]");
            assert_eq!(e.contained(m, k), contained, "contained [{m},{k}]");
            assert_eq!(e.intersect(m, k), intersect, "intersect [{m},{k}]");
        }
    }
}
