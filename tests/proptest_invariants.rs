//! Cross-crate property tests: randomized datasets and queries exercise
//! the full stack (snapping → histograms → estimators → oracles) against
//! brute-force classification.

use proptest::prelude::*;
use spatial_histograms::baselines::CdHistogram;
use spatial_histograms::core::model::count_by_classification;
use spatial_histograms::core::{
    DynamicEulerHistogram, EulerHistogram, ExactContains2D, Level2Estimator,
};
use spatial_histograms::datagen::exact::ground_truth;
use spatial_histograms::prelude::*;

fn grid() -> Grid {
    Grid::new(
        DataSpace::new(Rect::new(0.0, 0.0, 20.0, 14.0).unwrap()),
        20,
        14,
    )
    .unwrap()
}

fn snap_objects(raw: &[(f64, f64, f64, f64)]) -> Vec<SnappedRect> {
    let s = Snapper::new(grid());
    raw.iter()
        .map(|&(x, y, w, h)| {
            s.snap(&Rect::new(x, y, (x + w).min(20.0), (y + h).min(14.0)).unwrap())
        })
        .collect()
}

prop_compose! {
    fn arb_objects()(v in prop::collection::vec(
        (0.0..20.0f64, 0.0..14.0f64, 0.0..18.0f64, 0.0..12.0f64), 0..80)
    ) -> Vec<(f64, f64, f64, f64)> {
        v
    }
}

prop_compose! {
    fn arb_query()(x0 in 0usize..19, y0 in 0usize..13,
                   w in 1usize..20, h in 1usize..14) -> GridRect {
        GridRect::unchecked(x0, y0, (x0 + w).min(20), (y0 + h).min(14))
    }
}

proptest! {
    /// The Euler histogram's n_ii, CD's inclusion–exclusion and the exact
    /// 4-index structure all equal brute-force intersect counts.
    #[test]
    fn intersect_agreement(raw in arb_objects(), q in arb_query()) {
        let g = grid();
        let objects = snap_objects(&raw);
        let reference = objects.iter().filter(|o| o.intersects(&q)).count() as i64;
        prop_assert_eq!(
            EulerHistogram::build(g, &objects).freeze().intersect_count(&q),
            reference
        );
        prop_assert_eq!(CdHistogram::build(&g, &objects).intersect_count(&q), reference);
        prop_assert_eq!(ExactContains2D::build(&g, &objects).intersect(&q), reference);
    }

    /// The exact structure reproduces full Level 2 counts.
    #[test]
    fn exact_structure_is_an_oracle(raw in arb_objects(), q in arb_query()) {
        let g = grid();
        let objects = snap_objects(&raw);
        prop_assert_eq!(
            ExactContains2D::build(&g, &objects).counts(&q),
            count_by_classification(&objects, &q)
        );
    }

    /// Ground truth over a random tiling equals brute force per tile, and
    /// every estimator's totals partition |S| on those tiles.
    #[test]
    fn tiling_ground_truth_and_partition(raw in arb_objects(),
                                         cols in 1usize..6, rows in 1usize..5) {
        let g = grid();
        let objects = snap_objects(&raw);
        let tiling = Tiling::new(g.full(), cols, rows).unwrap();
        let gt = ground_truth(&objects, &tiling);
        let hist = EulerHistogram::build(g, &objects).freeze();
        let s_est = SEulerApprox::new(hist.clone());
        let e_est = EulerApprox::new(hist);
        let m_est = MEulerApprox::build(g, &objects, &[6.0, 30.0]);
        for ((c, r), tile) in tiling.iter() {
            prop_assert_eq!(*gt.get(c, r), count_by_classification(&objects, &tile));
            for est in [&s_est as &dyn Level2Estimator, &e_est, &m_est] {
                prop_assert_eq!(est.estimate(&tile).total(), objects.len() as i64);
            }
        }
    }

    /// Incremental maintenance: histogram(insert-all) == bulk build, and
    /// removing a random subset equals building from the complement.
    #[test]
    fn linear_sketch_maintenance(raw in arb_objects(),
                                 keep_mask in prop::collection::vec(prop::bool::ANY, 80)) {
        let g = grid();
        let objects = snap_objects(&raw);
        let mut incremental = EulerHistogram::new(g);
        for o in &objects {
            incremental.insert(o);
        }
        prop_assert_eq!(&incremental, &EulerHistogram::build(g, &objects));
        // Remove the masked-out objects.
        let kept: Vec<SnappedRect> = objects
            .iter()
            .zip(&keep_mask)
            .filter_map(|(o, &k)| k.then_some(*o))
            .collect();
        for (o, &k) in objects.iter().zip(&keep_mask) {
            if !k {
                incremental.remove(o);
            }
        }
        prop_assert_eq!(incremental, EulerHistogram::build(g, &kept));
    }

    /// A dynamically maintained histogram (random inserts, then removing
    /// a random subset) answers every tile of a tiling exactly like a
    /// histogram freshly built-and-frozen from the surviving objects —
    /// the update path and the bulk path agree through the estimator.
    #[test]
    fn dynamic_agrees_with_fresh_freeze(raw in arb_objects(),
                                        keep_mask in prop::collection::vec(prop::bool::ANY, 80),
                                        cols in 1usize..6, rows in 1usize..5) {
        let g = grid();
        let objects = snap_objects(&raw);
        let mut dynamic = DynamicEulerHistogram::new(g);
        for o in &objects {
            dynamic.insert(o);
        }
        let kept: Vec<SnappedRect> = objects
            .iter()
            .zip(&keep_mask)
            .filter_map(|(o, &k)| k.then_some(*o))
            .collect();
        for (o, &k) in objects.iter().zip(&keep_mask) {
            if !k {
                dynamic.remove(o);
            }
        }
        let fresh = SEulerApprox::new(EulerHistogram::build(g, &kept).freeze());
        let tiling = Tiling::new(g.full(), cols, rows).unwrap();
        for (_, tile) in tiling.iter() {
            prop_assert_eq!(dynamic.s_euler_estimate(&tile), fresh.estimate(&tile));
        }
    }

    /// Estimators are exact whenever the dataset admits no containing or
    /// crossing objects for the query — the §5.2 exactness envelope.
    #[test]
    fn exactness_envelope(raw in arb_objects(), q in arb_query()) {
        let g = grid();
        let objects = snap_objects(&raw);
        prop_assume!(objects
            .iter()
            .all(|o| !o.contains_query(&q) && !o.crosses(&q)));
        let est = SEulerApprox::new(EulerHistogram::build(g, &objects).freeze());
        prop_assert_eq!(est.estimate(&q), count_by_classification(&objects, &q));
    }
}
