//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset this workspace uses — the [`proptest!`],
//! [`prop_compose!`], `prop_assert*!` and [`prop_assume!`] macros, range
//! / tuple / vec / bool strategies — over a deterministic, seeded,
//! **non-shrinking** runner. Failing cases are reported verbatim (with
//! the generated inputs) instead of being minimized.
//!
//! Case count defaults to 256 and can be overridden with the
//! `PROPTEST_CASES` environment variable.

pub mod runner;
pub mod strategy;

/// `proptest::prelude` equivalent: everything tests import.
pub mod prelude {
    pub use crate::runner::{TestCaseError, TestRng};
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };

    /// Strategy namespaces (`prop::collection`, `prop::bool`).
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::strategy::{vec, SizeRange};
        }
        /// Boolean strategies.
        pub mod bool {
            pub use crate::strategy::ANY;
        }
    }
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)*);
                $crate::runner::run(stringify!($name), strategy, |($($pat,)*)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Composes strategies into a named derived strategy:
/// `fn name(args)(bindings in strategies) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($argn:ident : $argt:ty),* $(,)? )
                                ( $($pat:pat in $strat:expr),+ $(,)? )
                                -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::map(($($strat,)+), move |($($pat,)+)| $body)
        }
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current test case (resampled, not failed) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::runner::TestCaseError::Reject);
        }
    };
}
