//! The test runner: deterministic seeding, rejection handling, verbatim
//! failure reports (no shrinking).

use crate::strategy::Strategy;

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is resampled.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (see `prop_assume!`).
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// The runner's random source: xoshiro256++ seeded per test name, so
/// runs are reproducible and independent of test execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from `seed` via SplitMix64.
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(256)
}

/// Runs `test` against `cases` inputs drawn from `strategy`, panicking
/// on the first failing case with the inputs that produced it.
pub fn run<S>(name: &str, strategy: S, test: impl Fn(S::Value) -> Result<(), TestCaseError>)
where
    S: Strategy,
    S::Value: std::fmt::Debug + Clone,
{
    let cases = case_count();
    // Seed from the test name so each property gets an independent,
    // stable stream.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut rng = TestRng::new(seed);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    let max_rejects = cases.saturating_mul(16).max(1024);
    while passed < cases {
        let value = strategy.new_value(&mut rng);
        match test(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {passed}/{cases} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed after {passed} passing case(s): {msg}\n\
                     inputs: {value:#?}\n(no shrinking in the offline proptest stand-in)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0usize;
        let counter = std::cell::Cell::new(0usize);
        run("always_ok", (0u32..10,), |(v,)| {
            counter.set(counter.get() + 1);
            if v < 10 {
                Ok(())
            } else {
                Err(TestCaseError::fail("impossible"))
            }
        });
        count += counter.get();
        assert_eq!(count, case_count());
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_inputs() {
        run("always_fails", (0u32..10,), |(_v,)| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn rejections_resample() {
        run("rejects_half", (0u32..10,), |(v,)| {
            if v < 5 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
    }
}
