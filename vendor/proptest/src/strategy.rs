//! Value-generation strategies: ranges, tuples, vectors, bool, map.

use std::ops::Range;

use crate::runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + u * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Always-uniform boolean strategy (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// The uniform boolean strategy instance.
pub const ANY: AnyBool = AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Length specification for [`vec`]: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// A strategy producing `Vec`s of `element` values with lengths from
/// `size` (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A strategy applying `f` to another strategy's output (the engine
/// behind `prop_compose!`).
pub fn map<S: Strategy, T, F: Fn(S::Value) -> T>(inner: S, f: F) -> MapStrategy<S, F> {
    MapStrategy { inner, f }
}

/// See [`map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapStrategy<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::new(11);
        let strat = (0usize..5, -2.0..2.0f64, ANY);
        for _ in 0..100 {
            let (i, f, _b) = strat.new_value(&mut rng);
            assert!(i < 5);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = TestRng::new(3);
        let exact = vec(0u32..9, 7usize);
        assert_eq!(exact.new_value(&mut rng).len(), 7);
        let ranged = vec(0u32..9, 2..5usize);
        for _ in 0..50 {
            let v = ranged.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::new(1);
        let doubled = map((1u32..4,), |(v,)| v * 2);
        for _ in 0..20 {
            let v = doubled.new_value(&mut rng);
            assert!(v == 2 || v == 4 || v == 6);
        }
    }
}
