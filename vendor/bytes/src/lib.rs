//! Offline stand-in for `bytes`: `BytesMut` (append) and `Bytes`
//! (consume) over a `Vec<u8>`, with the little-endian `Buf`/`BufMut`
//! accessors the workspace codec uses. No zero-copy slicing — `slice`
//! copies — which is irrelevant at histogram-payload sizes.

/// A growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

/// An immutable byte payload with a read cursor (subset of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Write-side accessors (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read-side accessors (subset of `bytes::Buf`). Reads past the end
/// panic, as upstream does.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "Bytes: read past end");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl Bytes {
    /// Total payload length (ignores the read cursor).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The payload as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// The full payload as a borrowed slice (ignores the read cursor).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// A copy of the `range` sub-payload with a fresh cursor.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[range].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"HEAD");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        let mut b = buf.freeze();
        let mut head = [0u8; 4];
        b.copy_to_slice(&mut head);
        assert_eq!(&head, b"HEAD");
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_copies_with_fresh_cursor() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(s.len(), 3);
    }
}
