//! Offline stand-in for `tokio`, providing the async surface this
//! workspace consumes — no more.
//!
//! * [`runtime`] — a multi-threaded executor: `Runtime::new()` /
//!   `Builder::new_multi_thread()`, `block_on`, worker threads driving
//!   spawned tasks through an atomic IDLE/QUEUED/RUNNING/NOTIFIED state
//!   machine (no lost or duplicated wake-ups).
//! * [`task`] — `spawn` (also re-exported at the crate root),
//!   `spawn_blocking`, `yield_now`, and a `JoinHandle` future resolving
//!   to `Result<T, JoinError>` (panics are caught and reported, exactly
//!   like upstream).
//! * [`time`] — `sleep` / `timeout` served by one global timer thread
//!   (binary heap of deadlines + condvar).
//! * [`net`] — `TcpListener` / `TcpStream` over nonblocking
//!   `std::net` sockets; `WouldBlock` re-arms a short timer tick and the
//!   task retries, so no OS readiness API is required.
//! * [`io`] — `AsyncRead`/`AsyncWrite` (plain-slice variants), the
//!   `AsyncReadExt`/`AsyncWriteExt` helpers, and a `BufReader` with
//!   `read_line` for line-delimited protocols.
//!
//! Behavioral caveats (by design): socket readiness is polled on a
//! ~1 ms timer tick rather than epoll/kqueue, `connect` resolves and
//! connects synchronously, and there is no cooperative budget — none of
//! which matters at the request rates this workspace serves in tests,
//! examples and CI.

#![warn(missing_docs)]

pub mod io;
pub mod net;
pub mod runtime;
pub mod task;
pub mod time;

pub use task::spawn;

#[cfg(test)]
mod tests {
    use crate::io::{AsyncWriteExt, BufReader};
    use crate::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn block_on_spawn_and_join() {
        let rt = crate::runtime::Runtime::new().unwrap();
        let total = rt.block_on(async {
            let handles: Vec<_> = (0..16)
                .map(|i| crate::spawn(async move { i * 2 }))
                .collect();
            let mut total = 0;
            for h in handles {
                total += h.await.unwrap();
            }
            total
        });
        assert_eq!(total, (0..16).map(|i| i * 2).sum());
    }

    #[test]
    fn spawn_blocking_runs_off_pool() {
        let rt = crate::runtime::Runtime::new().unwrap();
        let out = rt.block_on(async {
            crate::task::spawn_blocking(|| {
                std::thread::sleep(Duration::from_millis(5));
                7
            })
            .await
            .unwrap()
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn panics_surface_as_join_errors() {
        let rt = crate::runtime::Runtime::new().unwrap();
        let err = rt.block_on(async { crate::spawn(async { panic!("boom") }).await.unwrap_err() });
        assert!(err.is_panic());
        assert_eq!(err.into_panic().downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn sleep_and_timeout() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let t0 = Instant::now();
            crate::time::sleep(Duration::from_millis(20)).await;
            assert!(t0.elapsed() >= Duration::from_millis(20));

            let slow = crate::time::timeout(
                Duration::from_millis(10),
                crate::time::sleep(Duration::from_secs(60)),
            )
            .await;
            assert!(slow.is_err());

            let fast = crate::time::timeout(Duration::from_secs(60), async { 5 }).await;
            assert_eq!(fast.unwrap(), 5);
        });
    }

    #[test]
    fn tcp_line_echo_round_trip() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (stream, _) = listener.accept().await.unwrap();
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                while reader.read_line(&mut line).await.unwrap() > 0 {
                    if line.trim_end() == "quit" {
                        break;
                    }
                    let reply = format!("echo:{line}");
                    reader.get_mut().write_all(reply.as_bytes()).await.unwrap();
                    line.clear();
                }
            });
            let stream = TcpStream::connect(addr).await.unwrap();
            let mut client = BufReader::new(stream);
            for i in 0..5 {
                let msg = format!("hello {i}\n");
                client.get_mut().write_all(msg.as_bytes()).await.unwrap();
                let mut reply = String::new();
                client.read_line(&mut reply).await.unwrap();
                assert_eq!(reply, format!("echo:hello {i}\n"));
            }
            client.get_mut().write_all(b"quit\n").await.unwrap();
            server.await.unwrap();
        });
    }
}
