//! Timers: `sleep` and `timeout`, served by one global timer thread
//! holding a deadline heap. The same thread provides the retry ticks the
//! [`crate::net`] sockets use in place of an OS readiness API.

use std::cmp::{Ordering as CmpOrdering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

struct Entry {
    at: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> CmpOrdering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct TimerState {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

struct Timer {
    state: Mutex<TimerState>,
    changed: Condvar,
}

static TIMER: OnceLock<&'static Timer> = OnceLock::new();

fn timer() -> &'static Timer {
    TIMER.get_or_init(|| {
        let timer: &'static Timer = Box::leak(Box::new(Timer {
            state: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            changed: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("tokio-timer".into())
            .spawn(move || timer_loop(timer))
            .expect("spawn timer thread");
        timer
    })
}

fn timer_loop(timer: &'static Timer) {
    let mut state = timer.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let now = Instant::now();
        // Fire everything due, outside the lock.
        let mut due = Vec::new();
        while let Some(Reverse(e)) = state.heap.peek() {
            if e.at <= now {
                due.push(state.heap.pop().unwrap().0.waker);
            } else {
                break;
            }
        }
        if !due.is_empty() {
            drop(state);
            for w in due {
                w.wake();
            }
            state = timer.state.lock().unwrap_or_else(|e| e.into_inner());
            continue;
        }
        state = match state.heap.peek() {
            Some(Reverse(e)) => {
                let wait = e.at.saturating_duration_since(now);
                timer
                    .changed
                    .wait_timeout(state, wait)
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
            None => timer.changed.wait(state).unwrap_or_else(|e| e.into_inner()),
        };
    }
}

/// Wakes `waker` at (or shortly after) `at`. Duplicate registrations are
/// fine — a spurious wake just re-polls the future.
pub(crate) fn wake_at(at: Instant, waker: Waker) {
    let t = timer();
    let mut state = t.state.lock().unwrap_or_else(|e| e.into_inner());
    let seq = state.seq;
    state.seq += 1;
    state.heap.push(Reverse(Entry { at, seq, waker }));
    drop(state);
    t.changed.notify_one();
}

/// A future completing once its deadline has passed.
pub struct Sleep {
    deadline: Instant,
}

impl Sleep {
    /// The instant the sleep completes at.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            wake_at(self.deadline, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Sleeps for at least `duration`.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
    }
}

/// Sleeps until at least `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// The error returned by [`timeout`] when the inner future was too slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed(());

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Error types, mirroring `tokio::time::error`.
pub mod error {
    pub use super::Elapsed;
}

/// A future racing an inner future against a deadline.
pub struct Timeout<F: Future> {
    future: Pin<Box<F>>,
    deadline: Instant,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.future.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if Instant::now() >= self.deadline {
            return Poll::Ready(Err(Elapsed(())));
        }
        wake_at(self.deadline, cx.waker().clone());
        Poll::Pending
    }
}

/// Requires `future` to complete within `duration`, else resolves to
/// `Err(Elapsed)` (the inner future is dropped).
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future: Box::pin(future),
        deadline: Instant::now() + duration,
    }
}
