//! Async IO traits and helpers: `AsyncRead`/`AsyncWrite` (plain-slice
//! variants of tokio's traits), the `AsyncReadExt`/`AsyncWriteExt`
//! helper methods, and a `BufReader` with `read_line` for line-delimited
//! protocols.

use std::future::{poll_fn, Future};
use std::io;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Nonblocking byte-stream reads (plain-slice variant of tokio's
/// `AsyncRead`: the buffer is a `&mut [u8]`, the result the byte count,
/// `Ok(0)` meaning EOF).
pub trait AsyncRead {
    /// Attempts to read into `buf`.
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut [u8],
    ) -> Poll<io::Result<usize>>;
}

/// Nonblocking byte-stream writes.
pub trait AsyncWrite {
    /// Attempts to write from `buf`.
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>>;

    /// Attempts to flush buffered data.
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;

    /// Attempts to shut the writer down.
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;
}

/// Helper methods for [`AsyncRead`] streams.
pub trait AsyncReadExt: AsyncRead + Unpin + Send {
    /// Reads some bytes into `buf`, resolving with the count (0 = EOF).
    fn read<'a>(
        &'a mut self,
        buf: &'a mut [u8],
    ) -> impl Future<Output = io::Result<usize>> + Send + 'a {
        poll_fn(move |cx| Pin::new(&mut *self).poll_read(cx, buf))
    }

    /// Reads exactly `buf.len()` bytes, failing with `UnexpectedEof` on a
    /// short stream.
    fn read_exact<'a>(
        &'a mut self,
        buf: &'a mut [u8],
    ) -> impl Future<Output = io::Result<()>> + Send + 'a {
        async move {
            let mut filled = 0;
            while filled < buf.len() {
                let n = self.read(&mut buf[filled..]).await?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "early eof in read_exact",
                    ));
                }
                filled += n;
            }
            Ok(())
        }
    }
}

impl<T: AsyncRead + Unpin + Send + ?Sized> AsyncReadExt for T {}

/// Helper methods for [`AsyncWrite`] streams.
pub trait AsyncWriteExt: AsyncWrite + Unpin + Send {
    /// Writes the whole of `buf`.
    fn write_all<'a>(
        &'a mut self,
        buf: &'a [u8],
    ) -> impl Future<Output = io::Result<()>> + Send + 'a {
        async move {
            let mut written = 0;
            while written < buf.len() {
                let n = poll_fn(|cx| Pin::new(&mut *self).poll_write(cx, &buf[written..])).await?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "write_all made no progress",
                    ));
                }
                written += n;
            }
            Ok(())
        }
    }

    /// Flushes buffered data.
    fn flush(&mut self) -> impl Future<Output = io::Result<()>> + Send + '_ {
        poll_fn(|cx| Pin::new(&mut *self).poll_flush(cx))
    }

    /// Shuts the writer down.
    fn shutdown(&mut self) -> impl Future<Output = io::Result<()>> + Send + '_ {
        poll_fn(|cx| Pin::new(&mut *self).poll_shutdown(cx))
    }
}

impl<T: AsyncWrite + Unpin + Send + ?Sized> AsyncWriteExt for T {}

/// A buffered reader over an [`AsyncRead`], providing `read_line` for
/// line-delimited protocols.
pub struct BufReader<R> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    cap: usize,
}

impl<R: AsyncRead + Unpin + Send> BufReader<R> {
    /// Wraps `inner` with an 8 KiB buffer.
    pub fn new(inner: R) -> BufReader<R> {
        BufReader {
            inner,
            buf: vec![0; 8 * 1024],
            pos: 0,
            cap: 0,
        }
    }

    /// The wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// The wrapped reader, mutably.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Unwraps the reader, discarding any buffered data.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Refills the internal buffer if it is empty; resolves with the
    /// number of buffered bytes (0 = EOF).
    async fn fill(&mut self) -> io::Result<usize> {
        if self.pos < self.cap {
            return Ok(self.cap - self.pos);
        }
        let me = &mut *self;
        let n = poll_fn(|cx| Pin::new(&mut me.inner).poll_read(cx, &mut me.buf)).await?;
        self.pos = 0;
        self.cap = n;
        Ok(n)
    }

    /// Reads bytes until (and including) the next `\n`, appending the
    /// UTF-8 text to `out`. Resolves with the byte count: 0 means EOF; a
    /// non-empty final line without a terminator is returned as-is.
    pub async fn read_line(&mut self, out: &mut String) -> io::Result<usize> {
        match self.read_line_bounded(out, usize::MAX).await? {
            Some(n) => Ok(n),
            None => unreachable!("usize::MAX bound cannot be exceeded"),
        }
    }

    /// Like [`BufReader::read_line`], but resolves with `None` as soon as
    /// the line exceeds `max` bytes (terminator included) — the bounded
    /// read a server needs so one hostile client cannot balloon memory
    /// with a terminator-free stream. The oversized prefix is discarded;
    /// the caller is expected to drop the connection.
    pub async fn read_line_bounded(
        &mut self,
        out: &mut String,
        max: usize,
    ) -> io::Result<Option<usize>> {
        let mut line: Vec<u8> = Vec::new();
        loop {
            if self.fill().await? == 0 {
                break; // EOF: return what we have.
            }
            let avail = &self.buf[self.pos..self.cap];
            match avail.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&avail[..=i]);
                    self.pos += i + 1;
                    break;
                }
                None => {
                    line.extend_from_slice(avail);
                    self.pos = self.cap;
                }
            }
            if line.len() > max {
                return Ok(None);
            }
        }
        if line.len() > max {
            return Ok(None);
        }
        let text =
            String::from_utf8(line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        out.push_str(&text);
        Ok(Some(text.len()))
    }
}

impl<R: AsyncRead + Unpin> AsyncRead for BufReader<R> {
    fn poll_read(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut [u8],
    ) -> Poll<io::Result<usize>> {
        let me = &mut *self;
        if me.pos < me.cap {
            let n = (me.cap - me.pos).min(buf.len());
            buf[..n].copy_from_slice(&me.buf[me.pos..me.pos + n]);
            me.pos += n;
            return Poll::Ready(Ok(n));
        }
        Pin::new(&mut me.inner).poll_read(cx, buf)
    }
}
