//! Task spawning: `spawn`, `spawn_blocking`, `yield_now`, `JoinHandle`.

use std::any::Any;
use std::fmt;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::runtime::{current_spawner, Spawner};

/// Task states. `wake()` and `run()` race through these with
/// compare-exchange loops so a task is never queued twice and a wake
/// arriving mid-poll is never lost.
pub(crate) const IDLE: u8 = 0;
pub(crate) const QUEUED: u8 = 1;
pub(crate) const RUNNING: u8 = 2;
pub(crate) const NOTIFIED: u8 = 3;
pub(crate) const DONE: u8 = 4;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One spawned task: the future, its scheduling state, and the spawner
/// that re-queues it when woken.
pub(crate) struct TaskCell {
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    spawner: Spawner,
}

impl TaskCell {
    pub(crate) fn new(future: BoxFuture, spawner: Spawner) -> TaskCell {
        TaskCell {
            future: Mutex::new(Some(future)),
            state: AtomicU8::new(QUEUED),
            spawner,
        }
    }

    /// Polls the task once; requeues it if a wake arrived mid-poll.
    pub(crate) fn run(self: &Arc<TaskCell>) {
        self.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(self.clone());
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock().unwrap_or_else(|e| e.into_inner());
        let Some(fut) = slot.as_mut() else {
            self.state.store(DONE, Ordering::Release);
            return;
        };
        // The wrapped future catches its own panics (see `spawn`), so a
        // poll never unwinds through the worker.
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                *slot = None;
                self.state.store(DONE, Ordering::Release);
            }
            Poll::Pending => {
                drop(slot);
                loop {
                    match self.state.compare_exchange(
                        RUNNING,
                        IDLE,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return,
                        Err(NOTIFIED) => {
                            if self
                                .state
                                .compare_exchange(
                                    NOTIFIED,
                                    QUEUED,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                self.spawner.enqueue(self.clone());
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                }
            }
        }
    }
}

impl Wake for TaskCell {
    fn wake(self: Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let spawner = self.spawner.clone();
                        spawner.enqueue(self);
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already notified, or finished.
                _ => return,
            }
        }
    }
}

/// What a task left behind: its output, or the panic payload.
type TaskResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

struct JoinState<T> {
    result: Option<TaskResult<T>>,
    waker: Option<Waker>,
}

/// Shared completion slot between a running task and its [`JoinHandle`].
pub(crate) struct JoinShared<T> {
    state: Mutex<JoinState<T>>,
}

impl<T> JoinShared<T> {
    fn new() -> Arc<JoinShared<T>> {
        Arc::new(JoinShared {
            state: Mutex::new(JoinState {
                result: None,
                waker: None,
            }),
        })
    }

    fn complete(&self, result: TaskResult<T>) {
        let waker = {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.result = Some(result);
            s.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// An owned handle awaiting a spawned task, resolving to
/// `Result<T, JoinError>`; a panicking task yields `Err` with the payload
/// preserved, mirroring upstream tokio.
pub struct JoinHandle<T> {
    shared: Arc<JoinShared<T>>,
}

impl<T> JoinHandle<T> {
    /// True once the task has produced its result (or panicked).
    pub fn is_finished(&self) -> bool {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        match s.result.take() {
            Some(Ok(v)) => Poll::Ready(Ok(v)),
            Some(Err(payload)) => Poll::Ready(Err(JoinError { payload })),
            None => {
                s.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// A task failed to produce its output (it panicked).
pub struct JoinError {
    payload: Box<dyn Any + Send + 'static>,
}

impl JoinError {
    /// True when the task panicked (the only failure this stand-in has —
    /// there is no `abort`).
    pub fn is_panic(&self) -> bool {
        true
    }

    /// The panic payload.
    pub fn into_panic(self) -> Box<dyn Any + Send + 'static> {
        self.payload
    }
}

impl fmt::Debug for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JoinError::Panic({})", panic_message(&self.payload))
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task panicked: {}", panic_message(&self.payload))
    }
}

impl std::error::Error for JoinError {}

fn panic_message<'a>(payload: &'a Box<dyn Any + Send + 'static>) -> &'a str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Spawns a future onto the current runtime's thread pool.
///
/// # Panics
///
/// Panics when called from outside a runtime context (a worker thread or
/// a `block_on` caller).
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let spawner = current_spawner().expect("tokio::spawn called from outside a runtime context");
    spawn_on(&spawner, future)
}

pub(crate) fn spawn_on<F>(spawner: &Spawner, future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared = JoinShared::new();
    let completion = shared.clone();
    // CatchUnwind wraps every poll, so a panicking task completes its
    // JoinHandle with the payload instead of unwinding into the worker.
    let wrapped = async move {
        let result = CatchUnwind {
            inner: Box::pin(future),
        }
        .await;
        completion.complete(result);
    };
    let cell = Arc::new(TaskCell::new(Box::pin(wrapped), spawner.clone()));
    spawner.enqueue(cell);
    JoinHandle { shared }
}

struct CatchUnwind<F: Future> {
    inner: Pin<Box<F>>,
}

impl<F: Future> Future for CatchUnwind<F> {
    type Output = TaskResult<F::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let inner = self.inner.as_mut();
        match catch_unwind(AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(payload) => Poll::Ready(Err(payload)),
        }
    }
}

/// Runs a blocking closure on a dedicated OS thread, off the async
/// workers, and resolves with its return value.
pub fn spawn_blocking<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let shared = JoinShared::new();
    let completion = shared.clone();
    std::thread::spawn(move || {
        completion.complete(catch_unwind(AssertUnwindSafe(f)));
    });
    JoinHandle { shared }
}

/// Yields once back to the scheduler, letting other queued tasks run.
pub async fn yield_now() {
    struct YieldNow {
        yielded: bool,
    }
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow { yielded: false }.await
}
