//! Async TCP over nonblocking `std::net` sockets.
//!
//! There is no OS readiness API in this stand-in: a `WouldBlock` arms a
//! short timer tick (see [`crate::time`]) and the task retries — worst
//! case ~1 ms of added latency per wait, irrelevant at the request rates
//! this workspace serves.

use std::future::poll_fn;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
use std::pin::Pin;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use crate::io::{AsyncRead, AsyncWrite};
use crate::time::wake_at;

/// How long to wait before retrying a `WouldBlock` socket operation.
const RETRY_TICK: Duration = Duration::from_millis(1);

fn retry_later(waker: &Waker) {
    wake_at(Instant::now() + RETRY_TICK, waker.clone());
}

/// A TCP listener accepting [`TcpStream`]s.
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds to `addr` (the socket is nonblocking from the start).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// The bound local address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accepts one inbound connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        poll_fn(|cx| match self.inner.accept() {
            Ok((stream, addr)) => {
                stream.set_nonblocking(true)?;
                Poll::Ready(Ok((TcpStream { inner: stream }, addr)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                retry_later(cx.waker());
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}

/// A TCP connection implementing [`AsyncRead`] + [`AsyncWrite`].
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connects to `addr`. Resolution and the connect itself run
    /// synchronously (stand-in simplification); the established stream is
    /// nonblocking.
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let inner = std::net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Disables Nagle's algorithm.
    pub fn set_nodelay(&self, on: bool) -> io::Result<()> {
        self.inner.set_nodelay(on)
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut [u8],
    ) -> Poll<io::Result<usize>> {
        loop {
            match (&self.inner).read(buf) {
                Ok(n) => return Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    retry_later(cx.waker());
                    return Poll::Pending;
                }
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        loop {
            match (&self.inner).write(buf) {
                Ok(n) => return Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    retry_later(cx.waker());
                    return Poll::Pending;
                }
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        // Kernel-buffered; nothing to flush at this layer.
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(self.inner.shutdown(Shutdown::Write))
    }
}
