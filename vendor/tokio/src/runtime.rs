//! The executor: a fixed pool of worker threads draining one shared
//! injection queue, plus `block_on` driving a root future on the caller's
//! thread.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::io;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle as ThreadHandle;

use crate::task::{spawn_on, JoinHandle, TaskCell};

struct Shared {
    queue: Mutex<VecDeque<Arc<TaskCell>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A handle that can enqueue tasks onto a runtime's worker pool.
#[derive(Clone)]
pub(crate) struct Spawner {
    shared: Arc<Shared>,
}

impl Spawner {
    pub(crate) fn enqueue(&self, task: Arc<TaskCell>) {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(task);
        drop(q);
        self.shared.available.notify_one();
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Spawner>> = const { RefCell::new(None) };
}

/// The spawner of the runtime the current thread is running inside, if
/// any (worker threads and `block_on` callers have one).
pub(crate) fn current_spawner() -> Option<Spawner> {
    CURRENT.with(|c| c.borrow().clone())
}

struct EnterGuard {
    prev: Option<Spawner>,
}

fn enter(spawner: Spawner) -> EnterGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(spawner));
    EnterGuard { prev }
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Builds a [`Runtime`] (subset of tokio's builder: worker count only).
pub struct Builder {
    worker_threads: Option<usize>,
}

impl Builder {
    /// A multi-thread runtime builder — the only flavor this stand-in
    /// has.
    pub fn new_multi_thread() -> Builder {
        Builder {
            worker_threads: None,
        }
    }

    /// Sets the number of worker threads (default: available
    /// parallelism, capped at 8).
    pub fn worker_threads(&mut self, n: usize) -> &mut Builder {
        self.worker_threads = Some(n.max(1));
        self
    }

    /// Accepted for API compatibility; IO and time are always enabled.
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Builds the runtime, starting its worker threads.
    pub fn build(&mut self) -> io::Result<Runtime> {
        let workers = self.worker_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4)
        });
        Ok(Runtime::start(workers))
    }
}

/// A multi-threaded async runtime: worker threads drive spawned tasks;
/// [`Runtime::block_on`] drives a root future on the calling thread.
/// Dropping the runtime stops the workers; queued-but-unfinished tasks
/// are dropped.
pub struct Runtime {
    spawner: Spawner,
    workers: Vec<ThreadHandle<()>>,
}

impl Runtime {
    /// A runtime with the default worker count.
    pub fn new() -> io::Result<Runtime> {
        Builder::new_multi_thread().build()
    }

    fn start(workers: usize) -> Runtime {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let spawner = Spawner {
            shared: shared.clone(),
        };
        let handles = (0..workers)
            .map(|i| {
                let spawner = spawner.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("tokio-worker-{i}"))
                    .spawn(move || worker_loop(spawner, shared))
                    .expect("spawn runtime worker")
            })
            .collect();
        Runtime {
            spawner,
            workers: handles,
        }
    }

    /// Spawns a future onto the worker pool from outside async context.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        spawn_on(&self.spawner, future)
    }

    /// Drives `future` to completion on the calling thread. While inside,
    /// the thread counts as runtime context: `tokio::spawn` works.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        let _guard = enter(self.spawner.clone());
        struct ThreadWaker {
            thread: std::thread::Thread,
        }
        impl Wake for ThreadWaker {
            fn wake(self: Arc<Self>) {
                self.thread.unpark();
            }
            fn wake_by_ref(self: &Arc<Self>) {
                self.thread.unpark();
            }
        }
        let waker = Waker::from(Arc::new(ThreadWaker {
            thread: std::thread::current(),
        }));
        let mut cx = Context::from_waker(&waker);
        let mut future = pin!(future);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                // The unpark token is sticky: a wake landing between the
                // poll and the park just makes the park return at once.
                Poll::Pending => std::thread::park(),
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.spawner.shared.shutdown.store(true, Ordering::Release);
        self.spawner.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Remaining queued tasks (and their futures) drop here.
        self.spawner
            .shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

fn worker_loop(spawner: Spawner, shared: Arc<Shared>) {
    let _guard = enter(spawner);
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        task.run();
    }
}
