//! Offline stand-in for `crossbeam`, providing `crossbeam::thread::scope`
//! on top of `std::thread::scope` (Rust ≥ 1.63).

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (passed
        /// by reference), matching crossbeam's `|_| …` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let replica = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&replica)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns `Err` with the panic payload if the closure or
    /// any unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_collects() {
            let data = [1, 2, 3, 4];
            let sum: i32 = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 2)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(sum, 20);
        }

        #[test]
        fn child_panic_surfaces_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
