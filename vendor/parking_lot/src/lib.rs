//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with
//! parking_lot's non-poisoning API, backed by `std::sync`. A poisoned
//! std lock (a panic while held) unwraps into the inner value, matching
//! parking_lot's "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
