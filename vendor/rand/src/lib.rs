//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] (a
//! xoshiro256++ generator), [`SeedableRng`] with `seed_from_u64`, and
//! [`Rng`] with `gen`, `gen_range` and `gen_bool`. Deterministic for a
//! given seed, but **not** bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiplies a uniform 64-bit draw into `[0, span)` without modulo bias
/// worth caring about at these span sizes.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

// Only f64 on purpose: a second float impl would make `{float}` range
// literals (`0.4..1.0`) ambiguous at call sites.
float_sample_range!(f64);

/// The user-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly distributed value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_and_uniform_ish() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            assert_eq!(xs, ys);

            let mut r = StdRng::seed_from_u64(7);
            let mut mean = 0.0;
            for _ in 0..10_000 {
                let v: f64 = r.gen();
                assert!((0.0..1.0).contains(&v));
                mean += v;
            }
            mean /= 10_000.0;
            assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        }

        #[test]
        fn ranges_hit_their_bounds() {
            let mut r = StdRng::seed_from_u64(1);
            let mut seen = [false; 5];
            for _ in 0..200 {
                seen[r.gen_range(0..5usize)] = true;
            }
            assert!(seen.iter().all(|&s| s));
            for _ in 0..100 {
                let v = r.gen_range(-3..3i32);
                assert!((-3..3).contains(&v));
                let f = r.gen_range(-1.5..1.5f64);
                assert!((-1.5..1.5).contains(&f));
            }
        }
    }
}
