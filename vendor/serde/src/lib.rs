//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` trait names and derive macros
//! the workspace imports. The traits are empty markers and the derives
//! expand to nothing — see `vendor/README.md`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive_stub::{Deserialize, Serialize};
