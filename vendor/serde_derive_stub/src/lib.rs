//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace only *declares* serde derives on plain-old-data types;
//! nothing consumes the generated impls (persistence is hand-coded in
//! `euler-core::persist`). These derives therefore expand to nothing,
//! which keeps offline builds dependency-free.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any input the real derive would.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any input the real derive would.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
