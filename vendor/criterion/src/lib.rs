//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the macro + builder surface the workspace benches use, over
//! a simple adaptive wall-clock measurement: each benchmark warms up,
//! picks an iteration count that fills a ~25 ms sample, takes several
//! samples, and prints mean / min / max per-iteration time (plus
//! throughput when configured). No statistics, baselines, or HTML
//! reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (inside a named group).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration nanoseconds of each sample.
    results: Vec<f64>,
}

const TARGET_SAMPLE: Duration = Duration::from_millis(25);
const MAX_ITERS_PER_SAMPLE: u64 = 50_000_000;

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `routine` (the whole closure is the measured unit).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: find an iteration count filling the
        // target sample duration.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE / 4 || iters >= MAX_ITERS_PER_SAMPLE {
                let per_iter = elapsed.as_nanos().max(1) as f64 / iters as f64;
                let target = TARGET_SAMPLE.as_nanos() as f64;
                iters = ((target / per_iter) as u64).clamp(1, MAX_ITERS_PER_SAMPLE);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.results.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibrate with one timed run.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().as_nanos().max(1) as f64;
        let per_sample = ((TARGET_SAMPLE.as_nanos() as f64 / once) as u64).clamp(1, 10_000);
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.results
                .push(elapsed.as_nanos() as f64 / per_sample as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, results: &[f64], throughput: Option<Throughput>) {
    if results.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mean = results.iter().sum::<f64>() / results.len() as f64;
    let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = results.iter().cloned().fold(0.0f64, f64::max);
    let mut line = format!(
        "{id:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / (mean / 1e9);
        line.push_str(&format!("  thrpt: {rate:.0} {unit}/s"));
    }
    println!("{line}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (separator line, matching upstream's API shape).
    pub fn finish(self) {
        let _ = self.criterion;
        println!();
    }
}

fn run_one(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    report(id, &b.results, throughput);
}

/// The harness entry point (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, None, f);
        self
    }

    /// Runs one stand-alone parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, None, |b| f(b, input));
        self
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(3);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.results.len(), 3);
        assert!(b.results.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn batched_measures_routine_only() {
        let mut b = Bencher::new(2);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.results.len(), 2);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("build", 64).to_string(), "build/64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
