use euler_core::{Level2Estimator, RelationCounts};
use euler_grid::{GridRect, Tiling};
use serde::{Deserialize, Serialize};

/// The relation a browsing user asks about — the query-type selector of
/// the GeoBrowsing client (§1: contains, contained, overlap; plus the
/// Level 1 intersect view existing systems offer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// Objects contained in a tile (`N_cs`).
    Contains,
    /// Objects containing a tile (`N_cd`).
    Contained,
    /// Objects overlapping a tile (`N_o`).
    Overlap,
    /// Objects intersecting a tile (`N_cs + N_cd + N_o`, Level 1).
    Intersect,
    /// Objects disjoint from a tile (`N_d`).
    Disjoint,
}

impl Relation {
    /// Extracts the relation's count from a tile's [`RelationCounts`].
    pub fn of(&self, c: &RelationCounts) -> i64 {
        match self {
            Relation::Contains => c.contains,
            Relation::Contained => c.contained,
            Relation::Overlap => c.overlaps,
            Relation::Intersect => c.intersecting(),
            Relation::Disjoint => c.disjoint,
        }
    }
}

/// The result of a browsing query: per-tile Level 2 counts over a tiling,
/// plus per-tile *availability* — under deadlines or contained faults the
/// engine may deliver only part of a tiling, and the unanswered tiles are
/// listed here instead of failing the whole browse.
#[derive(Debug, Clone)]
pub struct BrowseResult {
    tiling: Tiling,
    counts: Vec<RelationCounts>,
    /// Row-major indices of tiles with no answer (sorted, usually empty).
    unavailable: Vec<usize>,
}

impl BrowseResult {
    /// Assembles a fully-available result (row-major counts,
    /// [`Tiling::iter`] order).
    pub fn new(tiling: Tiling, counts: Vec<RelationCounts>) -> BrowseResult {
        BrowseResult::with_unavailable(tiling, counts, Vec::new())
    }

    /// Assembles a partial result: `unavailable` lists the row-major
    /// indices of tiles that went unanswered (their counts slots hold
    /// zeros).
    pub fn with_unavailable(
        tiling: Tiling,
        counts: Vec<RelationCounts>,
        mut unavailable: Vec<usize>,
    ) -> BrowseResult {
        assert_eq!(counts.len(), tiling.len(), "one count per tile");
        unavailable.sort_unstable();
        unavailable.dedup();
        assert!(
            unavailable.last().is_none_or(|&i| i < counts.len()),
            "unavailable index out of range"
        );
        BrowseResult {
            tiling,
            counts,
            unavailable,
        }
    }

    /// Whether every tile was answered.
    pub fn is_complete(&self) -> bool {
        self.unavailable.is_empty()
    }

    /// Row-major indices of unanswered tiles (sorted; empty on a full
    /// result). Their counts slots hold zeros — use
    /// [`Self::is_available`] to tell "zero hits" from "no answer".
    pub fn unavailable(&self) -> &[usize] {
        &self.unavailable
    }

    /// Whether tile `(col, row)` was answered.
    pub fn is_available(&self, col: usize, row: usize) -> bool {
        self.unavailable
            .binary_search(&(row * self.tiling.cols() + col))
            .is_err()
    }

    /// The tiling browsed.
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// Counts for tile `(col, row)`.
    pub fn get(&self, col: usize, row: usize) -> &RelationCounts {
        &self.counts[row * self.tiling.cols() + col]
    }

    /// All counts, row-major.
    pub fn counts(&self) -> &[RelationCounts] {
        &self.counts
    }

    /// Pairs each tile with its counts.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), GridRect, &RelationCounts)> + '_ {
        self.tiling
            .iter()
            .map(move |((c, r), t)| ((c, r), t, self.get(c, r)))
    }

    /// The largest count of `rel` across tiles (heatmap normalization).
    pub fn max_of(&self, rel: Relation) -> i64 {
        self.counts.iter().map(|c| rel.of(c)).max().unwrap_or(0)
    }

    /// The `k` hottest tiles for a relation, descending; ties broken by
    /// tile order. The drill-down list next to a heat map.
    pub fn top_k(&self, rel: Relation, k: usize) -> Vec<((usize, usize), GridRect, i64)> {
        let mut all: Vec<((usize, usize), GridRect, i64)> = self
            .iter()
            .map(|(pos, tile, c)| (pos, tile, rel.of(c)))
            .collect();
        // Ties break in row-major tile order (row, then column).
        all.sort_by(|a, b| b.2.cmp(&a.2).then((a.0 .1, a.0 .0).cmp(&(b.0 .1, b.0 .0))));
        all.truncate(k);
        all
    }

    /// Per-tile difference `self − other` (e.g. two facets, or the same
    /// facet across two time windows). Panics unless both results share
    /// the same tiling. Differences can be negative. A tile unavailable
    /// on either side is unavailable in the difference.
    pub fn diff(&self, other: &BrowseResult) -> BrowseResult {
        assert_eq!(self.tiling, other.tiling, "tilings must match");
        let counts = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(a, b)| RelationCounts {
                disjoint: a.disjoint - b.disjoint,
                contains: a.contains - b.contains,
                contained: a.contained - b.contained,
                overlaps: a.overlaps - b.overlaps,
            })
            .collect();
        let mut unavailable = self.unavailable.clone();
        unavailable.extend_from_slice(&other.unavailable);
        BrowseResult::with_unavailable(self.tiling, counts, unavailable)
    }
}

/// A browsing backend: answers a whole tiling at once.
pub trait Browser {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Answers every tile of the tiling.
    fn browse(&self, tiling: &Tiling) -> BrowseResult;
}

/// Constant-time browsing over any Level 2 estimator — S-EulerApprox,
/// EulerApprox, M-EulerApprox, or an exact oracle.
#[derive(Debug, Clone)]
pub struct EulerBrowser<E> {
    estimator: E,
}

impl<E: Level2Estimator> EulerBrowser<E> {
    /// Wraps an estimator.
    pub fn new(estimator: E) -> EulerBrowser<E> {
        EulerBrowser { estimator }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }
}

impl<E: Level2Estimator> Browser for EulerBrowser<E> {
    fn name(&self) -> &'static str {
        self.estimator.name()
    }

    fn browse(&self, tiling: &Tiling) -> BrowseResult {
        let counts: Vec<RelationCounts> = tiling
            .iter()
            .map(|(_, tile)| self.estimator.estimate(&tile).clamped())
            .collect();
        BrowseResult::new(*tiling, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_core::{EulerHistogram, SEulerApprox};
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid, Snapper};

    fn browser() -> EulerBrowser<SEulerApprox> {
        let g = Grid::new(DataSpace::new(Rect::new(0.0, 0.0, 8.0, 8.0).unwrap()), 8, 8).unwrap();
        let s = Snapper::new(g);
        let objs = vec![
            s.snap(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap()),
            s.snap(&Rect::new(5.2, 5.2, 5.8, 5.8).unwrap()),
            s.snap(&Rect::new(5.4, 5.4, 6.4, 6.4).unwrap()),
        ];
        EulerBrowser::new(SEulerApprox::new(EulerHistogram::build(g, &objs).freeze()))
    }

    #[test]
    fn browse_answers_every_tile() {
        let b = browser();
        let g = Grid::new(DataSpace::new(Rect::new(0.0, 0.0, 8.0, 8.0).unwrap()), 8, 8).unwrap();
        let tiling = Tiling::new(g.full(), 4, 4).unwrap();
        let res = b.browse(&tiling);
        assert_eq!(res.counts().len(), 16);
        // Tile (0,0) covers cells [0,2)x[0,2): contains the first object.
        assert_eq!(res.get(0, 0).contains, 1);
        // Tile (2,2) covers [4,6)x[4,6): contains the second object and
        // overlaps the third.
        assert_eq!(res.get(2, 2).contains, 1);
        assert_eq!(res.get(2, 2).overlaps, 1);
        assert_eq!(res.max_of(Relation::Contains), 1);
        assert_eq!(res.max_of(Relation::Intersect), 2);
    }

    /// The engine is the parallel multi-tile path: clamped engine results
    /// over a tiling match the sequential [`Browser::browse`] loop.
    #[test]
    fn engine_browse_matches_sequential() {
        use euler_engine::{EstimatorEngine, QueryBatch};
        use std::sync::Arc;

        let g = Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, 36.0, 18.0).unwrap()),
            36,
            18,
        )
        .unwrap();
        let s = Snapper::new(g);
        let objs: Vec<_> = (0..500)
            .map(|i| {
                let x = (i * 13 % 340) as f64 / 10.0;
                let y = (i * 7 % 160) as f64 / 10.0;
                s.snap(&Rect::new(x, y, x + 1.7, y + 1.1).unwrap())
            })
            .collect();
        let est = SEulerApprox::new(EulerHistogram::build(g, &objs).freeze());
        let b = EulerBrowser::new(est.clone());
        let tiling = Tiling::new(g.full(), 18, 18).unwrap();
        let seq = b.browse(&tiling);
        for threads in [1, 2, 3, 7, 64] {
            let engine = EstimatorEngine::builder(Arc::new(est.clone()))
                .threads(threads)
                .build();
            let par: Vec<_> = engine
                .run_batch(&QueryBatch::from(&tiling))
                .counts
                .into_iter()
                .map(|c| c.clamped())
                .collect();
            assert_eq!(seq.counts(), &par[..], "{threads} threads");
        }
    }

    #[test]
    fn relation_selector() {
        let c = RelationCounts::new(5, 3, 1, 2);
        assert_eq!(Relation::Contains.of(&c), 3);
        assert_eq!(Relation::Contained.of(&c), 1);
        assert_eq!(Relation::Overlap.of(&c), 2);
        assert_eq!(Relation::Intersect.of(&c), 6);
        assert_eq!(Relation::Disjoint.of(&c), 5);
    }

    #[test]
    fn top_k_and_diff() {
        let region = GridRect::unchecked(0, 0, 6, 4);
        let tiling = Tiling::new(region, 3, 2).unwrap();
        let mk = |vals: [i64; 6]| {
            BrowseResult::new(
                tiling,
                vals.iter()
                    .map(|&v| RelationCounts::new(0, v, 0, 0))
                    .collect(),
            )
        };
        let a = mk([5, 1, 9, 2, 9, 0]);
        let top = a.top_k(Relation::Contains, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].2, 9);
        assert_eq!(top[1].2, 9);
        assert_eq!(top[2].2, 5);
        // Ties broken by tile order: (2,0) before (1,1).
        assert_eq!(top[0].0, (2, 0));
        assert_eq!(top[1].0, (1, 1));

        let b = mk([1, 1, 1, 1, 10, 0]);
        let d = a.diff(&b);
        assert_eq!(d.get(0, 0).contains, 4);
        assert_eq!(d.get(1, 1).contains, -1);
        assert_eq!(d.top_k(Relation::Contains, 1)[0].2, 8);
    }

    #[test]
    fn availability_is_per_tile() {
        let region = GridRect::unchecked(0, 0, 6, 4);
        let tiling = Tiling::new(region, 3, 2).unwrap();
        let full = BrowseResult::new(tiling, vec![RelationCounts::default(); 6]);
        assert!(full.is_complete());
        assert!(full.is_available(2, 1));

        let partial = BrowseResult::with_unavailable(
            tiling,
            vec![RelationCounts::default(); 6],
            vec![4, 1, 4], // unsorted + duplicate on purpose
        );
        assert!(!partial.is_complete());
        assert_eq!(partial.unavailable(), &[1, 4]);
        assert!(partial.is_available(0, 0));
        assert!(!partial.is_available(1, 0), "index 1 = (col 1, row 0)");
        assert!(!partial.is_available(1, 1), "index 4 = (col 1, row 1)");

        // Diff: unavailability is the union of both sides.
        let d = full.diff(&partial);
        assert_eq!(d.unavailable(), &[1, 4]);
    }

    #[test]
    #[should_panic(expected = "unavailable index out of range")]
    fn availability_indices_checked() {
        let tiling = Tiling::new(GridRect::unchecked(0, 0, 6, 4), 3, 2).unwrap();
        BrowseResult::with_unavailable(tiling, vec![RelationCounts::default(); 6], vec![6]);
    }

    #[test]
    #[should_panic(expected = "tilings must match")]
    fn diff_requires_matching_tilings() {
        let t1 = Tiling::new(GridRect::unchecked(0, 0, 6, 4), 3, 2).unwrap();
        let t2 = Tiling::new(GridRect::unchecked(0, 0, 6, 4), 2, 2).unwrap();
        let a = BrowseResult::new(t1, vec![RelationCounts::default(); 6]);
        let b = BrowseResult::new(t2, vec![RelationCounts::default(); 4]);
        let _ = a.diff(&b);
    }

    #[test]
    #[should_panic(expected = "one count per tile")]
    fn result_length_checked() {
        let g = Grid::new(DataSpace::new(Rect::new(0.0, 0.0, 8.0, 8.0).unwrap()), 8, 8).unwrap();
        let tiling = Tiling::new(g.full(), 2, 2).unwrap();
        BrowseResult::new(tiling, vec![RelationCounts::default()]);
    }
}
