//! The GeoBrowsing service (§1): multi-tile browsing queries over spatial
//! datasets.
//!
//! A *browsing query* selects a region, partitions it into tiles ("22×24
//! tiles" over California in Figure 1(b)), and asks for the number of
//! objects standing in a chosen Level 2 relation to every tile — hundreds
//! or thousands of trial queries with a single click. This crate wires the
//! estimators of `euler-core` (and the exact backends) into that workflow:
//!
//! * [`Browser`] — the service interface: a tiling in, a grid of
//!   [`RelationCounts`] out;
//! * [`EulerBrowser`] — constant-time browsing over any
//!   [`euler_core::Level2Estimator`];
//! * [`ExactBrowser`] — the exact difference-array backend (ground truth
//!   at scale);
//! * [`GeoBrowsingService`] — a concurrent, updatable front end: writers
//!   insert/remove objects, readers browse consistent epoch snapshots of
//!   an LSM-style live histogram (`euler_core::LiveEulerHistogram`)
//!   through the one engine-backed entry point
//!   ([`GeoBrowsingService::browse`] + [`BrowseRequest`]), with always-on
//!   telemetry (latency percentiles, epochs, zero-hit/mega-hit counters);
//! * [`DynamicGeoBrowsingService`] — the write-heavy profile of the same
//!   substrate: browses pin the current snapshot (frozen cube + delta
//!   view) and hold no lock across the tiling, so a browse never blocks
//!   a concurrent insert;
//! * [`FacetedService`] — multi-attribute browsing (Figure 1's
//!   region/date/subject filters) via one histogram per facet value;
//! * [`PyramidBrowser`] — §1's "various resolutions": a lazily
//!   materialized ladder of grids sharing one finest-grid lineage (coarse
//!   levels derived by exact 2×2 fold, published via epoch snapshots),
//!   coarse views served from kilobyte histograms;
//! * [`render_heatmap`] — terminal rendering of a result grid (the
//!   Figure 1 color map, in ASCII);
//! * [`advise`] — zero-hit/mega-hit analysis: the query-refinement hints
//!   that motivate browsing in the first place.
//!
//! Both updatable services implement [`BrowseSession`] — pin-stamped
//! snapshot acquisition plus the unified [`BrowseRequest`] browse entry
//! point — which is what multi-tenant front doors (the `geobrowse serve`
//! mode) and the conformance harness program against.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod advise;
mod browser;
mod dynamic_service;
mod exact_browser;
mod faceted;
mod pyramid;
mod render;
mod request;
mod service;
mod session;

pub use advise::{advise, Advice};
pub use browser::{BrowseResult, Browser, EulerBrowser, Relation};
pub use dynamic_service::DynamicGeoBrowsingService;
pub use exact_browser::ExactBrowser;
pub use faceted::FacetedService;
pub use pyramid::{PyramidBrowser, PyramidError};
pub use render::render_heatmap;
pub use request::BrowseRequest;
#[allow(deprecated)]
pub use service::BrowseOptions;
pub use service::GeoBrowsingService;
pub use session::{run_browse, BrowseSession, PinnedSession};

pub use euler_core::RelationCounts;
pub use euler_engine::{BatchOptions, BatchOutcome, CancelToken};
pub use euler_metrics::{Recorder, TelemetrySnapshot};
