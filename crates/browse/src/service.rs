use std::sync::Arc;

use euler_core::{LiveEulerHistogram, LiveSEuler};
use euler_engine::{BatchOptions, EstimatorEngine, SharedEstimator};
use euler_geom::Rect;
use euler_grid::{Grid, SnappedRect, Snapper, Tiling};
use euler_metrics::{Recorder, TelemetrySnapshot};

use crate::session::{run_browse, BrowseSession, PinnedSession};
use crate::{BrowseRequest, BrowseResult, Browser};

/// Options for a multi-tile browse: worker count and telemetry.
///
/// Superseded by [`BrowseRequest`], which additionally carries the
/// deadline and cancellation controls that used to require a separate
/// `BatchOptions` argument. This struct remains for one release as a
/// shim; `BrowseRequest::from(&opts)` carries the values over.
#[deprecated(
    since = "0.1.0",
    note = "use `BrowseRequest` — one builder for threads, telemetry, \
            mega_threshold, deadline and cancel_token"
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrowseOptions {
    threads: usize,
    telemetry: bool,
    mega_threshold: i64,
}

#[allow(deprecated)]
impl Default for BrowseOptions {
    fn default() -> BrowseOptions {
        BrowseOptions {
            threads: 1,
            telemetry: true,
            mega_threshold: 10_000,
        }
    }
}

#[allow(deprecated)]
impl BrowseOptions {
    /// The default options: one thread, telemetry on, mega-hit threshold
    /// 10 000.
    pub fn new() -> BrowseOptions {
        BrowseOptions::default()
    }

    /// Sets the engine worker count; `0` means one worker per available
    /// core.
    pub fn threads(mut self, threads: usize) -> BrowseOptions {
        self.threads = threads;
        self
    }

    /// Toggles recording into the service's [`Recorder`].
    pub fn telemetry(mut self, on: bool) -> BrowseOptions {
        self.telemetry = on;
        self
    }

    /// Sets the per-tile intersect count from which a tile counts as a
    /// mega-hit in the telemetry.
    pub fn mega_threshold(mut self, threshold: i64) -> BrowseOptions {
        self.mega_threshold = threshold;
        self
    }

    /// The effective worker count for this machine.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Whether telemetry recording is enabled.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// The raw configured worker count (0 = one per core).
    pub fn raw_threads(&self) -> usize {
        self.threads
    }

    /// The mega-hit advice threshold.
    pub fn mega_limit(&self) -> i64 {
        self.mega_threshold
    }
}

/// A concurrent GeoBrowsing front end over an updatable Euler histogram.
///
/// The Euler histogram is a *linear sketch*: inserts and removes commute,
/// so the service keeps one [`LiveEulerHistogram`] — writes append to its
/// delta, readers pin epoch snapshots. Browsing takes an `Arc` snapshot —
/// readers never block writers (pinning is one brief lock acquisition,
/// after which the view answers with no synchronization at all), and a
/// long browse keeps working on the consistent epoch it started from.
///
/// Refreezing is deferred and amortized: the first read after a batch of
/// writes folds the delta into a fresh frozen cube and publishes a new
/// epoch, so steady-state browses sweep a pure frozen prefix cube.
///
/// Every browse is dispatched through the batch engine and (unless
/// disabled per request) recorded into the service's always-on
/// [`Recorder`]: queries served, latency percentiles, per-relation
/// totals, the epoch each batch was answered from, and the
/// zero-hit/mega-hit tile counters that drive refinement advice. Read
/// the stats with [`GeoBrowsingService::telemetry`].
///
/// The service implements [`BrowseSession`] — the interface the
/// `geobrowse serve` front door and the conformance harness multiplex
/// over; [`DynamicGeoBrowsingService`](crate::DynamicGeoBrowsingService)
/// is the same substrate under the write-heavy read policy.
pub struct GeoBrowsingService {
    grid: Grid,
    snapper: Snapper,
    live: Arc<LiveEulerHistogram>,
    recorder: Arc<Recorder>,
}

impl GeoBrowsingService {
    /// An empty service over `grid`.
    pub fn new(grid: Grid) -> GeoBrowsingService {
        GeoBrowsingService::from_live(Arc::new(LiveEulerHistogram::new(grid)))
    }

    /// Bulk-loads a service from raw MBRs.
    pub fn with_objects(grid: Grid, rects: &[Rect]) -> GeoBrowsingService {
        let snapper = Snapper::new(grid);
        let snapped: Vec<SnappedRect> = rects.iter().map(|r| snapper.snap(r)).collect();
        GeoBrowsingService::from_live(Arc::new(LiveEulerHistogram::with_objects(grid, &snapped)))
    }

    /// A service over an existing shared substrate — how a durable store
    /// (whose writes must go through its WAL) shares its histogram with
    /// the read path.
    pub fn from_live(live: Arc<LiveEulerHistogram>) -> GeoBrowsingService {
        let grid = live.grid();
        GeoBrowsingService {
            grid,
            snapper: Snapper::new(grid),
            live,
            recorder: Recorder::shared(),
        }
    }

    /// The service grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.live.len()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current ingest epoch (bumped by every refreeze; starts at 1).
    pub fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// The current write-log version (bumped by every insert/remove).
    pub fn version(&self) -> u64 {
        self.live.version()
    }

    /// Inserts an object MBR (appends to the live delta).
    pub fn insert(&self, rect: &Rect) {
        self.live.insert(&self.snapper.snap(rect));
    }

    /// Removes a previously inserted MBR (linear-sketch exact removal).
    pub fn remove(&self, rect: &Rect) {
        self.live.remove(&self.snapper.snap(rect));
    }

    /// Returns the current read snapshot, refreezing it if stale: when
    /// writes have accumulated in the delta, they are folded into a fresh
    /// frozen cube and a new epoch is published, so the snapshot handed
    /// out always sweeps a pure frozen prefix cube.
    pub fn snapshot(&self) -> Arc<LiveSEuler> {
        Arc::new(LiveSEuler::new(self.live.refreeze_if_stale()))
    }

    /// The service's telemetry recorder (always on; shared with every
    /// engine the service hands out).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A point-in-time readout of the service's query stats: queries and
    /// batches served, `p50/p95/p99/max` latency, per-relation estimate
    /// totals, zero-hit/mega-hit tiles.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot()
    }

    /// A batch engine over the current snapshot — the shared multi-tile
    /// dispatch path, wired to the service recorder. The engine keeps the
    /// snapshot `Arc`, so writes after this call don't affect an engine
    /// already handed out.
    pub fn engine(&self, threads: usize) -> EstimatorEngine {
        EstimatorEngine::builder(self.snapshot())
            .threads(threads)
            .recorder(self.recorder.clone())
            .build()
    }

    /// Answers a browsing query on the current snapshot — the one
    /// multi-tile entry point. The request carries every knob: worker
    /// count (engine fan-out; worthwhile from a few thousand tiles),
    /// telemetry, the mega-hit advice threshold, and optionally a
    /// wall-clock deadline and/or a cancellation token.
    ///
    /// Without controls, the batch is tiling-shaped and the frozen
    /// S-Euler snapshot supports the sweep evaluator, so the engine
    /// answers it with one amortized row-major pass (`estimate_tiling`)
    /// rather than a per-tile loop; the telemetry's `sweep_hits` counter
    /// and tiling latency series record each such dispatch.
    ///
    /// With a deadline or cancel token, the engine takes the cancellable
    /// per-tile rung of the degradation ladder, and instead of erroring
    /// the whole tiling when the budget runs out (or a worker faults) the
    /// result surfaces per-tile availability: answered tiles carry their
    /// counts, unanswered ones are listed in
    /// [`BrowseResult::unavailable`] (and excluded from the
    /// zero-hit/mega-hit advice counters — "no answer" is not "zero
    /// hits").
    pub fn browse(&self, tiling: &Tiling, req: &BrowseRequest) -> BrowseResult {
        let est: SharedEstimator = self.snapshot();
        run_browse(&est, &self.recorder, tiling, req)
    }

    /// [`Self::browse`] under split legacy option structs.
    #[deprecated(
        since = "0.1.0",
        note = "fold `BrowseOptions` + `BatchOptions` into one \
                `BrowseRequest` and call `browse`"
    )]
    #[allow(deprecated)]
    pub fn browse_with(
        &self,
        tiling: &Tiling,
        opts: &BrowseOptions,
        batch: &BatchOptions,
    ) -> BrowseResult {
        let mut req = BrowseRequest::from(opts);
        if let Some(budget) = batch.deadline_budget() {
            req = req.deadline(budget);
        }
        if let Some(stride) = batch.check_interval() {
            req = req.check_every(stride);
        }
        if let Some(token) = batch.cancel() {
            req = req.cancel_token(token.clone());
        }
        self.browse(tiling, &req)
    }
}

impl BrowseSession for GeoBrowsingService {
    fn session_name(&self) -> &'static str {
        "GeoBrowsingService"
    }

    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn len(&self) -> u64 {
        self.live.len()
    }

    fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    fn version(&self) -> u64 {
        self.live.version()
    }

    /// Pin under the static read policy: refreeze if stale, so the view
    /// handed out always sweeps a pure frozen prefix cube.
    fn pin_session(&self) -> PinnedSession {
        let snap = self.live.refreeze_if_stale();
        let (epoch, version) = (snap.epoch(), snap.version());
        PinnedSession::new(Arc::new(LiveSEuler::new(snap)), epoch, version)
    }

    fn insert(&self, rect: &Rect) {
        GeoBrowsingService::insert(self, rect);
    }

    fn remove(&self, rect: &Rect) {
        GeoBrowsingService::remove(self, rect);
    }

    fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    fn browse(&self, tiling: &Tiling, req: &BrowseRequest) -> BrowseResult {
        GeoBrowsingService::browse(self, tiling, req)
    }
}

impl Browser for GeoBrowsingService {
    fn name(&self) -> &'static str {
        "GeoBrowsingService"
    }

    fn browse(&self, tiling: &Tiling) -> BrowseResult {
        GeoBrowsingService::browse(self, tiling, &BrowseRequest::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_core::Level2Estimator;
    use euler_engine::QueryBatch;
    use euler_grid::DataSpace;

    fn grid() -> Grid {
        Grid::new(DataSpace::new(Rect::new(0.0, 0.0, 8.0, 8.0).unwrap()), 8, 8).unwrap()
    }

    fn req() -> BrowseRequest {
        BrowseRequest::default()
    }

    #[test]
    fn insert_remove_roundtrip() {
        let svc = GeoBrowsingService::new(grid());
        let r = Rect::new(1.2, 1.2, 1.8, 1.8).unwrap();
        svc.insert(&r);
        assert_eq!(svc.len(), 1);
        let tiling = Tiling::new(svc.grid().full(), 4, 4).unwrap();
        assert_eq!(svc.browse(&tiling, &req()).get(0, 0).contains, 1);
        svc.remove(&r);
        assert_eq!(svc.len(), 0);
        assert_eq!(svc.browse(&tiling, &req()).get(0, 0).contains, 0);
    }

    #[test]
    fn parallel_browse_matches_sequential() {
        let svc = GeoBrowsingService::new(grid());
        for i in 0..40 {
            let x = 0.1 + (i % 7) as f64;
            let y = 0.1 + (i % 5) as f64;
            svc.insert(&Rect::new(x, y, x + 0.7, y + 0.6).unwrap());
        }
        let tiling = Tiling::new(svc.grid().full(), 8, 8).unwrap();
        let seq = svc.browse(&tiling, &req());
        for threads in [0, 2, 4, 16] {
            let par = svc.browse(&tiling, &req().threads(threads));
            assert_eq!(seq.counts(), par.counts(), "{threads} threads");
        }
        // The engine reports through the shared estimator interface.
        let report = svc.engine(4).run_batch(&QueryBatch::from(&tiling)).report;
        assert_eq!(report.queries, 64);
        assert_eq!(report.estimator, "S-EulerApprox");
    }

    #[test]
    fn telemetry_records_browses_and_advice_counters() {
        let svc = GeoBrowsingService::new(grid());
        svc.insert(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap());
        let tiling = Tiling::new(svc.grid().full(), 4, 4).unwrap();

        svc.browse(&tiling, &req().mega_threshold(1));
        let stats = svc.telemetry();
        assert_eq!(stats.queries, 16);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.query_latency.count(), 16);
        // One object in one tile: 15 zero-hit tiles, 1 mega-hit (≥ 1).
        assert_eq!(stats.zero_hits, 15);
        assert_eq!(stats.mega_hits, 1);
        assert!(stats.query_latency.p50() <= stats.query_latency.p99());

        // Telemetry off: nothing moves.
        svc.browse(&tiling, &req().telemetry(false));
        let after = svc.telemetry();
        assert_eq!(after.queries, 16);
        assert_eq!(after.batches, 1);

        // The engine() path shares the same recorder.
        svc.engine(2).run_batch(&QueryBatch::from(&tiling));
        assert_eq!(svc.telemetry().queries, 32);

        // The snapshot renders as text tables.
        assert!(svc.telemetry().render().contains("p99"));
    }

    #[test]
    fn browse_dispatches_sweep_and_counts_it() {
        let svc = GeoBrowsingService::new(grid());
        for i in 0..12 {
            let x = 0.2 + (i % 6) as f64;
            let y = 0.2 + (i % 4) as f64;
            svc.insert(&Rect::new(x, y, x + 0.5, y + 0.5).unwrap());
        }
        let tiling = Tiling::new(svc.grid().full(), 4, 4).unwrap();
        let result = svc.browse(&tiling, &req());
        let stats = svc.telemetry();
        assert_eq!(stats.sweep_hits, 1, "tiling browse takes the sweep path");
        assert_eq!(stats.tiling_latency.count(), 1);
        assert_eq!(stats.queries, 16, "sweep telemetry stays tile-granular");

        // The sweep path returns exactly what the per-tile loop would.
        let snapshot = svc.snapshot();
        for ((_, tile), got) in tiling.iter().zip(result.counts()) {
            assert_eq!(*got, snapshot.estimate(&tile).clamped(), "tile {tile}");
        }

        // A telemetry-off browse still sweeps, but records nothing.
        svc.browse(&tiling, &req().telemetry(false));
        assert_eq!(svc.telemetry().sweep_hits, 1);
    }

    /// Degraded serving: under a deadline the browse returns per-tile
    /// availability instead of erroring the whole tiling, and the advice
    /// counters do not mistake "no answer" for "zero hits".
    #[test]
    fn browse_with_deadline_surfaces_partial_availability() {
        let svc = GeoBrowsingService::new(grid());
        svc.insert(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap());
        let tiling = Tiling::new(svc.grid().full(), 4, 4).unwrap();

        // A generous budget delivers everything, identical to browse().
        let full = svc.browse(&tiling, &req().telemetry(false));
        let generous = svc.browse(
            &tiling,
            &req()
                .telemetry(false)
                .deadline(std::time::Duration::from_secs(3600)),
        );
        assert!(generous.is_complete());
        assert_eq!(generous.counts(), full.counts());

        // A zero budget delivers nothing — but still returns.
        let zero_before = svc.telemetry().zero_hits;
        let starved = svc.browse(&tiling, &req().deadline(std::time::Duration::ZERO));
        assert!(!starved.is_complete());
        assert_eq!(starved.unavailable().len(), 16);
        assert!(!starved.is_available(0, 0));
        assert!(starved.counts().iter().all(|c| c.total() == 0));
        let stats = svc.telemetry();
        assert_eq!(
            stats.zero_hits, zero_before,
            "unanswered tiles are not zero-hit advice"
        );
        assert_eq!(stats.deadline_exceeded, 1);
    }

    /// The deprecated two-struct surface still answers, identically to
    /// the unified request it forwards to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_forward_to_browse_request() {
        let svc = GeoBrowsingService::new(grid());
        svc.insert(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap());
        let tiling = Tiling::new(svc.grid().full(), 4, 4).unwrap();

        let new_api = svc.browse(&tiling, &req().threads(2).telemetry(false));
        let old_api = svc.browse_with(
            &tiling,
            &BrowseOptions::new().threads(2).telemetry(false),
            &BatchOptions::default(),
        );
        assert_eq!(new_api.counts(), old_api.counts());

        // Controls carried by the legacy BatchOptions still bite.
        let starved = svc.browse_with(
            &tiling,
            &BrowseOptions::new().telemetry(false),
            &BatchOptions::new().deadline(std::time::Duration::ZERO),
        );
        assert_eq!(starved.unavailable().len(), 16);
    }

    #[test]
    fn trait_browse_uses_default_options() {
        let svc = GeoBrowsingService::new(grid());
        svc.insert(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap());
        let tiling = Tiling::new(svc.grid().full(), 2, 2).unwrap();
        let via_trait = Browser::browse(&svc, &tiling);
        assert_eq!(via_trait.counts().len(), 4);
        assert_eq!(svc.telemetry().queries, 4);
        assert_eq!(Browser::name(&svc), "GeoBrowsingService");
    }

    /// Writes accumulate in the delta; the first read folds them and
    /// publishes a new epoch, which tags every batch answered from it —
    /// visible both on the service and in its telemetry.
    #[test]
    fn browses_are_answered_from_published_epochs() {
        let svc = GeoBrowsingService::new(grid());
        assert_eq!(svc.epoch(), 1);
        svc.insert(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap());
        assert_eq!(svc.epoch(), 1, "writes alone do not refreeze");

        let tiling = Tiling::new(svc.grid().full(), 4, 4).unwrap();
        svc.browse(&tiling, &req());
        assert_eq!(svc.epoch(), 2, "first read after a write refreezes");
        assert_eq!(svc.telemetry().last_epoch, 2);

        // Read-only browses reuse the epoch…
        svc.browse(&tiling, &req());
        assert_eq!(svc.epoch(), 2);
        // …and the next write/read cycle publishes the next one.
        svc.insert(&Rect::new(5.2, 5.2, 5.8, 5.8).unwrap());
        svc.browse(&tiling, &req());
        assert_eq!(svc.epoch(), 3);
        assert_eq!(svc.telemetry().last_epoch, 3);
    }

    #[test]
    fn snapshot_survives_concurrent_writes() {
        let svc = GeoBrowsingService::new(grid());
        svc.insert(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap());
        let snap = svc.snapshot();
        svc.insert(&Rect::new(5.2, 5.2, 5.8, 5.8).unwrap());
        // The old snapshot still sees one object (consistent reads)…
        assert_eq!(snap.object_count(), 1);
        // …and a fresh snapshot sees both.
        assert_eq!(svc.snapshot().object_count(), 2);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let svc = Arc::new(GeoBrowsingService::with_objects(
            grid(),
            &[Rect::new(2.2, 2.2, 2.8, 2.8).unwrap()],
        ));
        let tiling = Tiling::new(svc.grid().full(), 2, 2).unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let svc = svc.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    if t == 0 {
                        let x = 0.1 + (i % 7) as f64;
                        svc.insert(&Rect::new(x, 0.1, x + 0.5, 0.6).unwrap());
                    } else {
                        let res = svc.browse(&tiling, &BrowseRequest::default());
                        let total = res.counts()[0].total();
                        assert!(total >= 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.len(), 51);
        // Telemetry saw every concurrent browse exactly once.
        assert_eq!(svc.telemetry().queries, 3 * 50 * 4);
    }
}
