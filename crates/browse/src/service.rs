use std::sync::Arc;

use euler_core::{EulerHistogram, SEulerApprox};
use euler_engine::{EstimatorEngine, QueryBatch};
use euler_geom::Rect;
use euler_grid::{Grid, SnappedRect, Snapper, Tiling};
use parking_lot::RwLock;

use crate::{BrowseResult, Browser};

/// A concurrent GeoBrowsing front end over an updatable Euler histogram.
///
/// The Euler histogram is a *linear sketch*: inserts and removes commute,
/// so the service maintains one mutable histogram behind a write lock and
/// publishes immutable frozen snapshots for readers. Browsing takes an
/// `Arc` snapshot — readers never block writers beyond the snapshot swap,
/// and a long browse keeps working on the consistent state it started
/// from.
///
/// Freezing is deferred and amortized: the snapshot is rebuilt on first
/// read after a batch of writes.
pub struct GeoBrowsingService {
    grid: Grid,
    snapper: Snapper,
    inner: RwLock<Inner>,
}

struct Inner {
    hist: EulerHistogram,
    snapshot: Option<Arc<SEulerApprox>>,
}

impl GeoBrowsingService {
    /// An empty service over `grid`.
    pub fn new(grid: Grid) -> GeoBrowsingService {
        GeoBrowsingService {
            grid,
            snapper: Snapper::new(grid),
            inner: RwLock::new(Inner {
                hist: EulerHistogram::new(grid),
                snapshot: None,
            }),
        }
    }

    /// Bulk-loads a service from raw MBRs.
    pub fn with_objects(grid: Grid, rects: &[Rect]) -> GeoBrowsingService {
        let snapper = Snapper::new(grid);
        let snapped: Vec<SnappedRect> = rects.iter().map(|r| snapper.snap(r)).collect();
        GeoBrowsingService {
            grid,
            snapper,
            inner: RwLock::new(Inner {
                hist: EulerHistogram::build(grid, &snapped),
                snapshot: None,
            }),
        }
    }

    /// The service grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.inner.read().hist.object_count()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an object MBR (invalidates the read snapshot).
    pub fn insert(&self, rect: &Rect) {
        let snapped = self.snapper.snap(rect);
        let mut inner = self.inner.write();
        inner.hist.insert(&snapped);
        inner.snapshot = None;
    }

    /// Removes a previously inserted MBR (linear-sketch exact removal).
    pub fn remove(&self, rect: &Rect) {
        let snapped = self.snapper.snap(rect);
        let mut inner = self.inner.write();
        inner.hist.remove(&snapped);
        inner.snapshot = None;
    }

    /// Returns the current read snapshot, rebuilding it if stale.
    pub fn snapshot(&self) -> Arc<SEulerApprox> {
        if let Some(s) = self.inner.read().snapshot.clone() {
            return s;
        }
        let mut inner = self.inner.write();
        if let Some(s) = inner.snapshot.clone() {
            return s; // another writer already refreshed it
        }
        let snap = Arc::new(SEulerApprox::new(inner.hist.freeze()));
        inner.snapshot = Some(snap.clone());
        snap
    }

    /// A batch engine over the current snapshot — the shared multi-tile
    /// dispatch path. The engine keeps the snapshot `Arc`, so writes
    /// after this call don't affect an engine already handed out.
    pub fn engine(&self, threads: usize) -> EstimatorEngine {
        EstimatorEngine::new(self.snapshot()).with_threads(threads)
    }

    /// Answers a browsing query on the current snapshot (sequentially —
    /// cheaper than fan-out for interactive tile counts).
    pub fn browse(&self, tiling: &Tiling) -> BrowseResult {
        self.browse_parallel(tiling, 1)
    }

    /// Answers a browsing query with the batch engine fanned across
    /// `threads` workers. Identical results to [`browse`]; worthwhile
    /// from a few thousand tiles.
    pub fn browse_parallel(&self, tiling: &Tiling, threads: usize) -> BrowseResult {
        let result = self.engine(threads).run_batch(&QueryBatch::from(tiling));
        BrowseResult::new(
            *tiling,
            result.counts.into_iter().map(|c| c.clamped()).collect(),
        )
    }
}

impl Browser for GeoBrowsingService {
    fn name(&self) -> &'static str {
        "GeoBrowsingService"
    }

    fn browse(&self, tiling: &Tiling) -> BrowseResult {
        GeoBrowsingService::browse(self, tiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_core::Level2Estimator;
    use euler_grid::DataSpace;

    fn grid() -> Grid {
        Grid::new(DataSpace::new(Rect::new(0.0, 0.0, 8.0, 8.0).unwrap()), 8, 8).unwrap()
    }

    #[test]
    fn insert_remove_roundtrip() {
        let svc = GeoBrowsingService::new(grid());
        let r = Rect::new(1.2, 1.2, 1.8, 1.8).unwrap();
        svc.insert(&r);
        assert_eq!(svc.len(), 1);
        let tiling = Tiling::new(svc.grid().full(), 4, 4).unwrap();
        assert_eq!(svc.browse(&tiling).get(0, 0).contains, 1);
        svc.remove(&r);
        assert_eq!(svc.len(), 0);
        assert_eq!(svc.browse(&tiling).get(0, 0).contains, 0);
    }

    #[test]
    fn parallel_browse_matches_sequential() {
        let svc = GeoBrowsingService::new(grid());
        for i in 0..40 {
            let x = 0.1 + (i % 7) as f64;
            let y = 0.1 + (i % 5) as f64;
            svc.insert(&Rect::new(x, y, x + 0.7, y + 0.6).unwrap());
        }
        let tiling = Tiling::new(svc.grid().full(), 8, 8).unwrap();
        let seq = svc.browse(&tiling);
        for threads in [2, 4, 16] {
            let par = svc.browse_parallel(&tiling, threads);
            assert_eq!(seq.counts(), par.counts(), "{threads} threads");
        }
        // The engine reports through the shared estimator interface.
        let report = svc.engine(4).run_batch(&QueryBatch::from(&tiling)).report;
        assert_eq!(report.queries, 64);
        assert_eq!(report.estimator, "S-EulerApprox");
    }

    #[test]
    fn snapshot_survives_concurrent_writes() {
        let svc = GeoBrowsingService::new(grid());
        svc.insert(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap());
        let snap = svc.snapshot();
        svc.insert(&Rect::new(5.2, 5.2, 5.8, 5.8).unwrap());
        // The old snapshot still sees one object (consistent reads)…
        assert_eq!(snap.object_count(), 1);
        // …and a fresh snapshot sees both.
        assert_eq!(svc.snapshot().object_count(), 2);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let svc = Arc::new(GeoBrowsingService::with_objects(
            grid(),
            &[Rect::new(2.2, 2.2, 2.8, 2.8).unwrap()],
        ));
        let tiling = Tiling::new(svc.grid().full(), 2, 2).unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let svc = svc.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    if t == 0 {
                        let x = 0.1 + (i % 7) as f64;
                        svc.insert(&Rect::new(x, 0.1, x + 0.5, 0.6).unwrap());
                    } else {
                        let res = svc.browse(&tiling);
                        let total = res.counts()[0].total();
                        assert!(total >= 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.len(), 51);
    }
}
