//! Multi-resolution browsing: §1's GeoBrowsing "provides summary
//! information of a data collection or a subset of it **at various
//! resolutions**".
//!
//! A single fine grid answers every aligned tiling (accuracy is
//! resolution-independent for aligned queries — see the
//! `ablation_resolution` experiment), but costs `(2n₁−1)(2n₂−1)` buckets
//! up front. The pyramid instead keeps a ladder of grids, each half the
//! resolution of the previous, and **materializes a level only when a
//! browsing query first needs it**: world-scale overviews are served from
//! kilobyte histograms, and the full-resolution level is only built when
//! a user actually zooms that deep.
//!
//! All levels share **one lineage**: objects are snapped once, at the
//! finest grid, and every coarser level is derived from it — either by an
//! exact 2×2 bucket fold of an already-materialized finer level, or by a
//! direct build over [`SnappedRect::coarsen`]ed objects when no finer
//! level exists yet. The two routes are bit-identical (the fold law in
//! `euler-core`), so a coarse overview never forces the finest cube into
//! memory and never disagrees with it either.
//!
//! A request is dispatched to the *coarsest* level on which the tiling is
//! grid-aligned, which minimizes build cost and working-set size without
//! changing any answer. Materialized levels are published through an
//! epoch snapshot (the same idiom as `euler-core`'s snapshot module):
//! readers pin an immutable `Arc` and never block behind a materializing
//! writer.

use std::sync::{Arc, Mutex, RwLock};

use euler_core::{EulerHistogram, Level2Estimator, SEulerApprox};
use euler_geom::Rect;
use euler_grid::{DataSpace, Grid, SnappedRect, Snapper, Tiling};

use crate::BrowseResult;

/// Errors from pyramid browsing.
#[derive(Debug, Clone, PartialEq)]
pub enum PyramidError {
    /// The requested region/tiling does not align with any level, not
    /// even the finest.
    Misaligned {
        /// Explanation from the finest level's aligner.
        detail: String,
    },
    /// Construction parameters were invalid.
    BadConfig(&'static str),
}

impl std::fmt::Display for PyramidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PyramidError::Misaligned { detail } => write!(f, "misaligned tiling: {detail}"),
            PyramidError::BadConfig(what) => write!(f, "bad pyramid config: {what}"),
        }
    }
}

impl std::error::Error for PyramidError {}

/// One immutable published state of the ladder: which levels exist, and
/// the estimators serving them. Readers clone the `Arc` and work from a
/// consistent view for the whole request.
struct PyramidSnapshot {
    /// Estimator per level, `None` until materialized (index = level).
    levels: Vec<Option<Arc<SEulerApprox>>>,
    /// Bumped on every publication.
    epoch: u64,
}

/// A lazily-materialized resolution pyramid over one dataset.
pub struct PyramidBrowser {
    space: DataSpace,
    /// Grids, finest (level 0) to coarsest.
    grids: Vec<Grid>,
    /// Objects snapped once at the finest grid — the shared lineage every
    /// level derives from.
    lineage: Vec<SnappedRect>,
    /// Serializes materialization; never held while readers pin.
    writer: Mutex<()>,
    current: RwLock<Arc<PyramidSnapshot>>,
}

impl PyramidBrowser {
    /// Creates a pyramid whose finest grid is `finest_nx × finest_ny`,
    /// halving resolution per level while both dimensions stay even and
    /// at least `levels` deep as permitted. Nothing is built yet.
    pub fn new(
        space: DataSpace,
        finest_nx: usize,
        finest_ny: usize,
        levels: usize,
        rects: Vec<Rect>,
    ) -> Result<PyramidBrowser, PyramidError> {
        if finest_nx == 0 || finest_ny == 0 {
            return Err(PyramidError::BadConfig("finest grid must be nonzero"));
        }
        if levels == 0 {
            return Err(PyramidError::BadConfig("need at least one level"));
        }
        let mut grids = Vec::new();
        let (mut nx, mut ny) = (finest_nx, finest_ny);
        for _ in 0..levels {
            grids.push(Grid::new(space, nx, ny).expect("validated dims"));
            if nx % 2 != 0 || ny % 2 != 0 || nx < 2 || ny < 2 {
                break;
            }
            nx /= 2;
            ny /= 2;
        }
        let snapper = Snapper::new(grids[0]);
        let lineage = rects.iter().map(|r| snapper.snap(r)).collect();
        let snapshot = Arc::new(PyramidSnapshot {
            levels: vec![None; grids.len()],
            epoch: 0,
        });
        Ok(PyramidBrowser {
            space,
            grids,
            lineage,
            writer: Mutex::new(()),
            current: RwLock::new(snapshot),
        })
    }

    /// Number of levels in the ladder (level 0 = finest).
    pub fn level_count(&self) -> usize {
        self.grids.len()
    }

    /// The grid of a level.
    pub fn grid(&self, level: usize) -> &Grid {
        &self.grids[level]
    }

    /// Pins the current published snapshot.
    fn pin(&self) -> Arc<PyramidSnapshot> {
        self.current.read().expect("pyramid lock").clone()
    }

    /// Levels that have been materialized so far.
    pub fn materialized_levels(&self) -> Vec<usize> {
        let snap = self.pin();
        (0..snap.levels.len())
            .filter(|&l| snap.levels[l].is_some())
            .collect()
    }

    /// The publication epoch — bumps once per materialized level.
    pub fn epoch(&self) -> u64 {
        self.pin().epoch
    }

    /// Resident cube bytes of a level, `None` while unmaterialized.
    pub fn level_storage_bytes(&self, level: usize) -> Option<usize> {
        self.pin().levels[level]
            .as_ref()
            .map(|est| est.histogram().storage_bytes())
    }

    /// Picks the coarsest level whose grid aligns the region *and* all
    /// tile boundaries of a `cols × rows` split.
    fn pick_level(&self, region: &Rect, cols: usize, rows: usize) -> Result<usize, PyramidError> {
        let mut finest_error = None;
        for level in (0..self.grids.len()).rev() {
            let grid = &self.grids[level];
            match grid.align(region, 1e-9) {
                Ok(aligned) => {
                    if aligned.width() % cols == 0 && aligned.height() % rows == 0 {
                        return Ok(level);
                    }
                    if level == 0 {
                        finest_error = Some(format!(
                            "{} cells cannot split into {cols}x{rows} equal tiles",
                            aligned
                        ));
                    }
                }
                Err(e) => {
                    if level == 0 {
                        finest_error = Some(e.to_string());
                    }
                }
            }
        }
        Err(PyramidError::Misaligned {
            detail: finest_error.unwrap_or_else(|| "no level aligned".into()),
        })
    }

    /// Builds the histogram for `level` from the cheapest exact source: a
    /// 2×2 fold chain off the nearest finer materialized level if one
    /// exists, else a direct build over the coarsened lineage. Both
    /// routes produce bit-identical buckets (the fold law).
    fn materialize(&self, level: usize, snap: &PyramidSnapshot) -> EulerHistogram {
        let finer = (0..level).rev().find(|&l| snap.levels[l].is_some());
        if let Some(from) = finer {
            let mut h = snap.levels[from]
                .as_ref()
                .expect("checked is_some")
                .histogram()
                .fold2x2()
                .expect("ladder grids stay even while halving");
            for _ in from + 1..level {
                h = h.fold2x2().expect("ladder grids stay even while halving");
            }
            h
        } else {
            let factor = 1usize << level;
            let coarse: Vec<SnappedRect> = self.lineage.iter().map(|s| s.coarsen(factor)).collect();
            EulerHistogram::build(self.grids[level], &coarse)
        }
    }

    fn estimator_for(&self, level: usize) -> Arc<SEulerApprox> {
        if let Some(est) = &self.pin().levels[level] {
            return est.clone();
        }
        let _writer = self.writer.lock().expect("pyramid writer lock");
        // Re-check under the writer lock: another materializer may have
        // published this level while we waited.
        let snap = self.pin();
        if let Some(est) = &snap.levels[level] {
            return est.clone();
        }
        let est = Arc::new(SEulerApprox::new(self.materialize(level, &snap).freeze()));
        let mut levels = snap.levels.clone();
        levels[level] = Some(est.clone());
        *self.current.write().expect("pyramid lock") = Arc::new(PyramidSnapshot {
            levels,
            epoch: snap.epoch + 1,
        });
        est
    }

    /// Browses `region` (data units) as `cols × rows` tiles on the
    /// coarsest sufficient level. Returns the result plus the level used.
    pub fn browse(
        &self,
        region: &Rect,
        cols: usize,
        rows: usize,
    ) -> Result<(BrowseResult, usize), PyramidError> {
        let level = self.pick_level(region, cols, rows)?;
        let grid = &self.grids[level];
        let aligned = grid.align(region, 1e-9).expect("picked level aligns");
        let tiling = Tiling::new(aligned, cols, rows).expect("divisibility checked");
        let est = self.estimator_for(level);
        let counts = tiling
            .iter()
            .map(|(_, tile)| est.estimate(&tile).clamped())
            .collect();
        Ok((BrowseResult::new(tiling, counts), level))
    }

    /// The data space.
    pub fn space(&self) -> &DataSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    fn rects() -> Vec<Rect> {
        (0..400)
            .map(|i| {
                let x = (i * 17 % 350) as f64;
                let y = (i * 7 % 170) as f64;
                Rect::new(x + 0.1, y + 0.1, x + 2.1, y + 1.3).unwrap()
            })
            .collect()
    }

    fn pyramid() -> PyramidBrowser {
        PyramidBrowser::new(DataSpace::paper_world(), 360, 180, 4, rects()).unwrap()
    }

    #[test]
    fn ladder_shape() {
        let p = pyramid();
        // Halving stops when a dimension turns odd: 360x180 → 180x90 →
        // 90x45 (45 is odd, so the requested 4th level is not created).
        assert_eq!(p.level_count(), 3);
        assert_eq!((p.grid(0).nx(), p.grid(0).ny()), (360, 180));
        assert_eq!((p.grid(2).nx(), p.grid(2).ny()), (90, 45));
    }

    #[test]
    fn coarse_views_use_coarse_levels_lazily() {
        let p = pyramid();
        assert!(p.materialized_levels().is_empty());
        assert_eq!(p.epoch(), 0);
        // A 36x18 world view of 10-degree tiles aligns on every level
        // whose cell divides 10 degrees: level 0 (1 deg), 1 (2 deg)...
        let world = Rect::new(0.0, 0.0, 360.0, 180.0).unwrap();
        let (_, level) = p.browse(&world, 36, 18).unwrap();
        assert!(level > 0, "coarse view should use a coarse level");
        assert_eq!(p.materialized_levels(), vec![level]);
        assert_eq!(p.epoch(), 1);
        // The coarse overview must not have dragged the finest cube into
        // memory: its resident footprint stays well under level 0's
        // (2·360−1)(2·180−1) buckets — roughly 4× smaller per halving.
        let coarse_bytes = p.level_storage_bytes(level).unwrap();
        assert!(p.level_storage_bytes(0).is_none());
        assert!(coarse_bytes * 3 < (2 * 360 - 1) * (2 * 180 - 1) * 8);
        // Zooming to 1-degree tiles forces the finest level.
        let city = Rect::new(100.0, 60.0, 110.0, 70.0).unwrap();
        let (_, fine_level) = p.browse(&city, 10, 10).unwrap();
        assert_eq!(fine_level, 0);
        assert_eq!(p.materialized_levels(), vec![0, level]);
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn answers_match_across_levels() {
        // The same aligned tiling answered at different levels must agree
        // **exactly**: all levels fold out of one finest-grid lineage, so
        // dispatch level is unobservable in the counts, not merely in the
        // thresholded relations.
        let p = pyramid();
        let world = Rect::new(0.0, 0.0, 360.0, 180.0).unwrap();
        let (coarse, level) = p.browse(&world, 36, 18).unwrap();
        assert!(level > 0);
        // Force the finest level by asking through a fresh pyramid with
        // one level only.
        let fine = PyramidBrowser::new(DataSpace::paper_world(), 360, 180, 1, rects()).unwrap();
        let (fine_res, fine_level) = fine.browse(&world, 36, 18).unwrap();
        assert_eq!(fine_level, 0);
        for col in 0..36 {
            for row in 0..18 {
                assert_eq!(
                    coarse.get(col, row),
                    fine_res.get(col, row),
                    "tile ({col},{row})"
                );
                assert_eq!(
                    Relation::Intersect.of(coarse.get(col, row)),
                    Relation::Intersect.of(fine_res.get(col, row)),
                    "tile ({col},{row})"
                );
                assert_eq!(
                    Relation::Contains.of(coarse.get(col, row)),
                    Relation::Contains.of(fine_res.get(col, row)),
                    "tile ({col},{row})"
                );
            }
        }
    }

    #[test]
    fn fold_route_matches_direct_route() {
        // Materializing coarse-first (direct build from coarsened
        // lineage) and fine-first (2×2 fold chain) must agree exactly.
        let world = Rect::new(0.0, 0.0, 360.0, 180.0).unwrap();
        let coarse_first = pyramid();
        let (a, level) = coarse_first.browse(&world, 36, 18).unwrap();
        assert!(level > 0);

        let fine_first = pyramid();
        let city = Rect::new(100.0, 60.0, 110.0, 70.0).unwrap();
        let _ = fine_first.browse(&city, 10, 10).unwrap(); // materializes level 0
        let (b, level_b) = fine_first.browse(&world, 36, 18).unwrap();
        assert_eq!(level, level_b);
        for col in 0..36 {
            for row in 0..18 {
                assert_eq!(a.get(col, row), b.get(col, row), "tile ({col},{row})");
            }
        }
    }

    #[test]
    fn misaligned_requests_error() {
        let p = pyramid();
        let crooked = Rect::new(0.25, 0.0, 359.25, 180.0).unwrap();
        assert!(matches!(
            p.browse(&crooked, 10, 10),
            Err(PyramidError::Misaligned { .. })
        ));
        // Aligned region, indivisible tiling.
        let world = Rect::new(0.0, 0.0, 360.0, 180.0).unwrap();
        assert!(matches!(
            p.browse(&world, 7, 18),
            Err(PyramidError::Misaligned { .. })
        ));
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(PyramidBrowser::new(DataSpace::paper_world(), 0, 10, 2, vec![]).is_err());
        assert!(PyramidBrowser::new(DataSpace::paper_world(), 10, 10, 0, vec![]).is_err());
    }
}
