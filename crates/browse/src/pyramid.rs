//! Multi-resolution browsing: §1's GeoBrowsing "provides summary
//! information of a data collection or a subset of it **at various
//! resolutions**".
//!
//! A single fine grid answers every aligned tiling (accuracy is
//! resolution-independent for aligned queries — see the
//! `ablation_resolution` experiment), but costs `(2n₁−1)(2n₂−1)` buckets
//! up front. The pyramid instead keeps a ladder of grids, each half the
//! resolution of the previous, and **materializes a level only when a
//! browsing query first needs it**: world-scale overviews are served from
//! kilobyte histograms, and the full-resolution level is only built when
//! a user actually zooms that deep.
//!
//! A request is dispatched to the *coarsest* level on which the tiling is
//! grid-aligned, which minimizes build cost and working-set size without
//! changing any answer.

use std::collections::HashMap;
use std::sync::Arc;

use euler_core::{EulerHistogram, Level2Estimator, SEulerApprox};
use euler_geom::Rect;
use euler_grid::{DataSpace, Grid, Tiling};
use parking_lot::RwLock;

use crate::BrowseResult;

/// Errors from pyramid browsing.
#[derive(Debug, Clone, PartialEq)]
pub enum PyramidError {
    /// The requested region/tiling does not align with any level, not
    /// even the finest.
    Misaligned {
        /// Explanation from the finest level's aligner.
        detail: String,
    },
    /// Construction parameters were invalid.
    BadConfig(&'static str),
}

impl std::fmt::Display for PyramidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PyramidError::Misaligned { detail } => write!(f, "misaligned tiling: {detail}"),
            PyramidError::BadConfig(what) => write!(f, "bad pyramid config: {what}"),
        }
    }
}

impl std::error::Error for PyramidError {}

/// A lazily-materialized resolution pyramid over one dataset.
pub struct PyramidBrowser {
    space: DataSpace,
    /// Grids, finest (level 0) to coarsest.
    grids: Vec<Grid>,
    rects: Vec<Rect>,
    built: RwLock<HashMap<usize, Arc<SEulerApprox>>>,
}

impl PyramidBrowser {
    /// Creates a pyramid whose finest grid is `finest_nx × finest_ny`,
    /// halving resolution per level while both dimensions stay even and
    /// at least `levels` deep as permitted. Nothing is built yet.
    pub fn new(
        space: DataSpace,
        finest_nx: usize,
        finest_ny: usize,
        levels: usize,
        rects: Vec<Rect>,
    ) -> Result<PyramidBrowser, PyramidError> {
        if finest_nx == 0 || finest_ny == 0 {
            return Err(PyramidError::BadConfig("finest grid must be nonzero"));
        }
        if levels == 0 {
            return Err(PyramidError::BadConfig("need at least one level"));
        }
        let mut grids = Vec::new();
        let (mut nx, mut ny) = (finest_nx, finest_ny);
        for _ in 0..levels {
            grids.push(Grid::new(space, nx, ny).expect("validated dims"));
            if nx % 2 != 0 || ny % 2 != 0 || nx < 2 || ny < 2 {
                break;
            }
            nx /= 2;
            ny /= 2;
        }
        Ok(PyramidBrowser {
            space,
            grids,
            rects,
            built: RwLock::new(HashMap::new()),
        })
    }

    /// Number of levels in the ladder (level 0 = finest).
    pub fn level_count(&self) -> usize {
        self.grids.len()
    }

    /// The grid of a level.
    pub fn grid(&self, level: usize) -> &Grid {
        &self.grids[level]
    }

    /// Levels that have been materialized so far.
    pub fn materialized_levels(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.built.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Picks the coarsest level whose grid aligns the region *and* all
    /// tile boundaries of a `cols × rows` split.
    fn pick_level(&self, region: &Rect, cols: usize, rows: usize) -> Result<usize, PyramidError> {
        let mut finest_error = None;
        for level in (0..self.grids.len()).rev() {
            let grid = &self.grids[level];
            match grid.align(region, 1e-9) {
                Ok(aligned) => {
                    if aligned.width() % cols == 0 && aligned.height() % rows == 0 {
                        return Ok(level);
                    }
                    if level == 0 {
                        finest_error = Some(format!(
                            "{} cells cannot split into {cols}x{rows} equal tiles",
                            aligned
                        ));
                    }
                }
                Err(e) => {
                    if level == 0 {
                        finest_error = Some(e.to_string());
                    }
                }
            }
        }
        Err(PyramidError::Misaligned {
            detail: finest_error.unwrap_or_else(|| "no level aligned".into()),
        })
    }

    fn estimator_for(&self, level: usize) -> Arc<SEulerApprox> {
        if let Some(est) = self.built.read().get(&level) {
            return est.clone();
        }
        let mut built = self.built.write();
        built
            .entry(level)
            .or_insert_with(|| {
                let grid = self.grids[level];
                let snapper = euler_grid::Snapper::new(grid);
                let snapped: Vec<_> = self.rects.iter().map(|r| snapper.snap(r)).collect();
                Arc::new(SEulerApprox::new(
                    EulerHistogram::build(grid, &snapped).freeze(),
                ))
            })
            .clone()
    }

    /// Browses `region` (data units) as `cols × rows` tiles on the
    /// coarsest sufficient level. Returns the result plus the level used.
    pub fn browse(
        &self,
        region: &Rect,
        cols: usize,
        rows: usize,
    ) -> Result<(BrowseResult, usize), PyramidError> {
        let level = self.pick_level(region, cols, rows)?;
        let grid = &self.grids[level];
        let aligned = grid.align(region, 1e-9).expect("picked level aligns");
        let tiling = Tiling::new(aligned, cols, rows).expect("divisibility checked");
        let est = self.estimator_for(level);
        let counts = tiling
            .iter()
            .map(|(_, tile)| est.estimate(&tile).clamped())
            .collect();
        Ok((BrowseResult::new(tiling, counts), level))
    }

    /// The data space.
    pub fn space(&self) -> &DataSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    fn rects() -> Vec<Rect> {
        (0..400)
            .map(|i| {
                let x = (i * 17 % 350) as f64;
                let y = (i * 7 % 170) as f64;
                Rect::new(x + 0.1, y + 0.1, x + 2.1, y + 1.3).unwrap()
            })
            .collect()
    }

    fn pyramid() -> PyramidBrowser {
        PyramidBrowser::new(DataSpace::paper_world(), 360, 180, 4, rects()).unwrap()
    }

    #[test]
    fn ladder_shape() {
        let p = pyramid();
        // Halving stops when a dimension turns odd: 360x180 → 180x90 →
        // 90x45 (45 is odd, so the requested 4th level is not created).
        assert_eq!(p.level_count(), 3);
        assert_eq!((p.grid(0).nx(), p.grid(0).ny()), (360, 180));
        assert_eq!((p.grid(2).nx(), p.grid(2).ny()), (90, 45));
    }

    #[test]
    fn coarse_views_use_coarse_levels_lazily() {
        let p = pyramid();
        assert!(p.materialized_levels().is_empty());
        // A 36x18 world view of 10-degree tiles aligns on every level
        // whose cell divides 10 degrees: level 0 (1 deg), 1 (2 deg)...
        let world = Rect::new(0.0, 0.0, 360.0, 180.0).unwrap();
        let (_, level) = p.browse(&world, 36, 18).unwrap();
        assert!(level > 0, "coarse view should use a coarse level");
        assert_eq!(p.materialized_levels(), vec![level]);
        // Zooming to 1-degree tiles forces the finest level.
        let city = Rect::new(100.0, 60.0, 110.0, 70.0).unwrap();
        let (_, fine_level) = p.browse(&city, 10, 10).unwrap();
        assert_eq!(fine_level, 0);
        assert_eq!(p.materialized_levels(), vec![0, level]);
    }

    #[test]
    fn answers_match_across_levels() {
        // The same aligned tiling answered at different levels must agree
        // (resolution independence of aligned queries).
        let p = pyramid();
        let world = Rect::new(0.0, 0.0, 360.0, 180.0).unwrap();
        let (coarse, level) = p.browse(&world, 36, 18).unwrap();
        assert!(level > 0);
        // Force the finest level by asking through a fresh pyramid with
        // one level only.
        let fine = PyramidBrowser::new(DataSpace::paper_world(), 360, 180, 1, rects()).unwrap();
        let (fine_res, fine_level) = fine.browse(&world, 36, 18).unwrap();
        assert_eq!(fine_level, 0);
        for col in 0..36 {
            for row in 0..18 {
                assert_eq!(
                    Relation::Intersect.of(coarse.get(col, row)),
                    Relation::Intersect.of(fine_res.get(col, row)),
                    "tile ({col},{row})"
                );
                assert_eq!(
                    Relation::Contains.of(coarse.get(col, row)),
                    Relation::Contains.of(fine_res.get(col, row)),
                    "tile ({col},{row})"
                );
            }
        }
    }

    #[test]
    fn misaligned_requests_error() {
        let p = pyramid();
        let crooked = Rect::new(0.25, 0.0, 359.25, 180.0).unwrap();
        assert!(matches!(
            p.browse(&crooked, 10, 10),
            Err(PyramidError::Misaligned { .. })
        ));
        // Aligned region, indivisible tiling.
        let world = Rect::new(0.0, 0.0, 360.0, 180.0).unwrap();
        assert!(matches!(
            p.browse(&world, 7, 18),
            Err(PyramidError::Misaligned { .. })
        ));
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(PyramidBrowser::new(DataSpace::paper_world(), 0, 10, 2, vec![]).is_err());
        assert!(PyramidBrowser::new(DataSpace::paper_world(), 10, 10, 0, vec![]).is_err());
    }
}
