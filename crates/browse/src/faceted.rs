//! Faceted browsing: the paper's Figure 1 client lets users constrain
//! queries "based on various data attributes such as region, date and
//! subject type" before tiling. This module keeps **one Euler histogram
//! per attribute value** (facet); because the facets partition the
//! dataset and every Level 2 count is additive over disjoint object
//! sets, a browse under any facet *subset* is the exact sum of per-facet
//! estimates — still constant time per tile per selected facet.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, RwLock};

use euler_core::{EulerHistogram, Level2Estimator, RelationCounts, SEulerApprox};
use euler_geom::Rect;
use euler_grid::{Grid, Snapper, Tiling};

use crate::BrowseResult;

/// A multi-attribute GeoBrowsing service with one histogram per facet
/// value (e.g. per subject type, or per decade).
pub struct FacetedService<F: Eq + Hash + Clone> {
    grid: Grid,
    snapper: Snapper,
    inner: RwLock<HashMap<F, FacetState>>,
}

struct FacetState {
    hist: EulerHistogram,
    snapshot: Option<Arc<SEulerApprox>>,
}

impl<F: Eq + Hash + Clone> FacetedService<F> {
    /// An empty service over `grid`.
    pub fn new(grid: Grid) -> FacetedService<F> {
        FacetedService {
            grid,
            snapper: Snapper::new(grid),
            inner: RwLock::new(HashMap::new()),
        }
    }

    /// The service grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Inserts an object under a facet value.
    pub fn insert(&self, facet: F, rect: &Rect) {
        let snapped = self.snapper.snap(rect);
        let mut inner = self.inner.write().expect("facet lock");
        let state = inner.entry(facet).or_insert_with(|| FacetState {
            hist: EulerHistogram::new(self.grid),
            snapshot: None,
        });
        state.hist.insert(&snapped);
        state.snapshot = None;
    }

    /// Removes a previously inserted object from a facet. Returns false
    /// when the facet is unknown.
    pub fn remove(&self, facet: &F, rect: &Rect) -> bool {
        let snapped = self.snapper.snap(rect);
        let mut inner = self.inner.write().expect("facet lock");
        match inner.get_mut(facet) {
            Some(state) => {
                state.hist.remove(&snapped);
                state.snapshot = None;
                true
            }
            None => false,
        }
    }

    /// The facet values currently present.
    pub fn facets(&self) -> Vec<F> {
        self.inner
            .read()
            .expect("facet lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Objects indexed under one facet (0 for unknown facets).
    pub fn facet_len(&self, facet: &F) -> u64 {
        self.inner
            .read()
            .expect("facet lock")
            .get(facet)
            .map_or(0, |s| s.hist.object_count())
    }

    /// Total objects across facets.
    pub fn len(&self) -> u64 {
        self.inner
            .read()
            .expect("facet lock")
            .values()
            .map(|s| s.hist.object_count())
            .sum()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current frozen snapshots for the selected facets (refreshing stale
    /// ones). Unknown facets are ignored, matching a filter UI where a
    /// value may have no objects yet.
    fn snapshots(&self, filter: &[F]) -> Vec<Arc<SEulerApprox>> {
        let mut out = Vec::with_capacity(filter.len());
        // Fast path under the read lock.
        {
            let inner = self.inner.read().expect("facet lock");
            if filter
                .iter()
                .all(|f| inner.get(f).is_none_or(|s| s.snapshot.is_some()))
            {
                for f in filter {
                    if let Some(s) = inner.get(f) {
                        out.push(s.snapshot.clone().expect("checked above"));
                    }
                }
                return out;
            }
        }
        // Refresh stale snapshots under the write lock.
        let mut inner = self.inner.write().expect("facet lock");
        for f in filter {
            if let Some(s) = inner.get_mut(f) {
                let snap = s
                    .snapshot
                    .get_or_insert_with(|| Arc::new(SEulerApprox::new(s.hist.freeze())));
                out.push(snap.clone());
            }
        }
        out
    }

    /// Browses a tiling restricted to the given facet values. Per-facet
    /// Level 2 counts are summed — exact additivity over the partition.
    pub fn browse(&self, tiling: &Tiling, filter: &[F]) -> BrowseResult {
        let snaps = self.snapshots(filter);
        let counts: Vec<RelationCounts> = tiling
            .iter()
            .map(|(_, tile)| {
                let mut acc = RelationCounts::default();
                for s in &snaps {
                    acc = acc.add(&s.estimate(&tile));
                }
                acc.clamped()
            })
            .collect();
        BrowseResult::new(*tiling, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_grid::DataSpace;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Subject {
        Maps,
        Photos,
        Surveys,
    }

    fn grid() -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, 12.0, 12.0).unwrap()),
            12,
            12,
        )
        .unwrap()
    }

    fn service() -> FacetedService<Subject> {
        let svc = FacetedService::new(grid());
        svc.insert(Subject::Maps, &Rect::new(1.2, 1.2, 2.8, 2.8).unwrap());
        svc.insert(Subject::Maps, &Rect::new(7.2, 7.2, 8.8, 8.8).unwrap());
        svc.insert(Subject::Photos, &Rect::new(1.4, 1.4, 2.6, 2.6).unwrap());
        svc.insert(Subject::Surveys, &Rect::new(0.5, 0.5, 11.5, 11.5).unwrap());
        svc
    }

    #[test]
    fn facet_filters_select_subsets() {
        let svc = service();
        let tiling = Tiling::new(grid().full(), 4, 4).unwrap();
        // Maps only: one object in tile (0,0), one in tile (2,2).
        let maps = svc.browse(&tiling, &[Subject::Maps]);
        assert_eq!(maps.get(0, 0).contains, 1);
        assert_eq!(maps.get(2, 2).contains, 1);
        // Maps + photos: tile (0,0) now has two.
        let both = svc.browse(&tiling, &[Subject::Maps, Subject::Photos]);
        assert_eq!(both.get(0, 0).contains, 2);
        // Everything: totals include the big survey object.
        let all = svc.browse(&tiling, &[Subject::Maps, Subject::Photos, Subject::Surveys]);
        assert_eq!(all.counts()[0].total(), 4);
    }

    #[test]
    fn facet_sums_equal_union_estimates() {
        // Additivity: per-facet sums equal a single histogram over all
        // objects (estimators are linear in disjoint datasets).
        let svc = service();
        let tiling = Tiling::new(grid().full(), 3, 3).unwrap();
        let all_filter = [Subject::Maps, Subject::Photos, Subject::Surveys];
        let summed = svc.browse(&tiling, &all_filter);

        let union = crate::GeoBrowsingService::with_objects(
            grid(),
            &[
                Rect::new(1.2, 1.2, 2.8, 2.8).unwrap(),
                Rect::new(7.2, 7.2, 8.8, 8.8).unwrap(),
                Rect::new(1.4, 1.4, 2.6, 2.6).unwrap(),
                Rect::new(0.5, 0.5, 11.5, 11.5).unwrap(),
            ],
        );
        let direct = union.browse(&tiling, &crate::BrowseRequest::default());
        for ((c, r), _t) in tiling.iter() {
            assert_eq!(summed.get(c, r), direct.get(c, r), "tile ({c},{r})");
        }
    }

    #[test]
    fn unknown_and_empty_facets() {
        let svc = service();
        let tiling = Tiling::new(grid().full(), 2, 2).unwrap();
        let none: [Subject; 0] = [];
        assert_eq!(svc.browse(&tiling, &none).counts()[0].total(), 0);
        assert_eq!(svc.facet_len(&Subject::Photos), 1);
        assert_eq!(svc.len(), 4);
        assert!(!svc.is_empty());
        let mut facets = svc.facets();
        facets.sort_by_key(|f| format!("{f:?}"));
        assert_eq!(facets.len(), 3);
    }

    #[test]
    fn removal_updates_facet() {
        let svc = service();
        let r = Rect::new(1.4, 1.4, 2.6, 2.6).unwrap();
        assert!(svc.remove(&Subject::Photos, &r));
        assert_eq!(svc.facet_len(&Subject::Photos), 0);
        // Removing under a facet value that was never created is a no-op.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        struct Unknown;
        let other: FacetedService<Unknown> = FacetedService::new(grid());
        assert!(!other.remove(&Unknown, &r));
        let tiling = Tiling::new(grid().full(), 4, 4).unwrap();
        let photos = svc.browse(&tiling, &[Subject::Photos]);
        assert_eq!(photos.get(0, 0).contains, 0);
    }
}
