//! The unified browse request: one builder for everything a multi-tile
//! browse can be asked to do.
//!
//! Before this module the browse surface was split across two structs —
//! `BrowseOptions` (threads, telemetry, mega-hit threshold) and the
//! engine's `BatchOptions` (deadline, cancel token) — forced through two
//! entry points (`browse` / `browse_with`). [`BrowseRequest`] collapses
//! the pair: every knob in one builder, one
//! `browse(&Tiling, &BrowseRequest)` entry point, and a front door that
//! can hand the same request to any [`crate::BrowseSession`].

use std::time::Duration;

use euler_engine::{BatchOptions, CancelToken};

/// Everything one multi-tile browse can be asked to do: worker count,
/// telemetry, the mega-hit advice threshold, a wall-clock deadline and a
/// cancellation token.
///
/// The default is the interactive profile — sequential (engine fan-out
/// only pays from a few thousand tiles), telemetry on, mega-hit
/// threshold 10 000, no deadline, no cancel token:
///
/// ```
/// use euler_browse::BrowseRequest;
/// use std::time::Duration;
///
/// let req = BrowseRequest::new()
///     .threads(4)
///     .deadline(Duration::from_millis(50))
///     .mega_threshold(1_000);
/// assert_eq!(req.effective_threads(), 4);
/// assert!(req.has_controls());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BrowseRequest {
    threads: Option<usize>,
    telemetry: Option<bool>,
    mega_threshold: Option<i64>,
    deadline: Option<Duration>,
    check_every: Option<usize>,
    cancel: Option<CancelToken>,
}

impl BrowseRequest {
    /// The mega-hit threshold used when none is set.
    pub const DEFAULT_MEGA_THRESHOLD: i64 = 10_000;

    /// The default request: one thread, telemetry on, mega-hit threshold
    /// 10 000, no deadline or cancel token.
    pub fn new() -> BrowseRequest {
        BrowseRequest::default()
    }

    /// Sets the engine worker count; `0` means one worker per available
    /// core.
    pub fn threads(mut self, threads: usize) -> BrowseRequest {
        self.threads = Some(threads);
        self
    }

    /// Toggles recording into the session's `Recorder`.
    pub fn telemetry(mut self, on: bool) -> BrowseRequest {
        self.telemetry = Some(on);
        self
    }

    /// Sets the per-tile intersect count from which a tile counts as a
    /// mega-hit in the telemetry.
    pub fn mega_threshold(mut self, threshold: i64) -> BrowseRequest {
        self.mega_threshold = Some(threshold);
        self
    }

    /// Sets a wall-clock budget for the browse: when it runs out, the
    /// answered tiles are delivered and the unanswered tail is reported
    /// per tile (see `BrowseResult::unavailable`).
    pub fn deadline(mut self, budget: Duration) -> BrowseRequest {
        self.deadline = Some(budget);
        self
    }

    /// Sets how many queries a worker runs between deadline/cancellation
    /// polls (see [`BatchOptions::check_every`]).
    pub fn check_every(mut self, queries: usize) -> BrowseRequest {
        self.check_every = Some(queries.max(1));
        self
    }

    /// Attaches a cancellation token; flip it with [`CancelToken::cancel`]
    /// and the browse stops with partial delivery.
    pub fn cancel_token(mut self, token: CancelToken) -> BrowseRequest {
        self.cancel = Some(token);
        self
    }

    /// The effective worker count for this machine.
    pub fn effective_threads(&self) -> usize {
        match self.threads.unwrap_or(1) {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Whether telemetry recording is enabled (the default).
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.unwrap_or(true)
    }

    /// The mega-hit advice threshold.
    pub fn mega_limit(&self) -> i64 {
        self.mega_threshold.unwrap_or(Self::DEFAULT_MEGA_THRESHOLD)
    }

    /// The wall-clock budget, if any.
    pub fn deadline_budget(&self) -> Option<Duration> {
        self.deadline
    }

    /// The attached cancellation token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Whether a deadline or cancel token is set — if so the engine takes
    /// the cancellable per-tile path of the degradation ladder.
    pub fn has_controls(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// The engine-level controls this request carries.
    pub fn batch_options(&self) -> BatchOptions {
        let mut opts = BatchOptions::new();
        if let Some(budget) = self.deadline {
            opts = opts.deadline(budget);
        }
        if let Some(stride) = self.check_every {
            opts = opts.check_every(stride);
        }
        if let Some(token) = &self.cancel {
            opts = opts.cancel_token(token.clone());
        }
        opts
    }
}

#[allow(deprecated)]
impl From<&crate::BrowseOptions> for BrowseRequest {
    /// Carries the legacy options into the unified request (deprecation
    /// bridge; remove with `BrowseOptions`).
    fn from(opts: &crate::BrowseOptions) -> BrowseRequest {
        BrowseRequest::new()
            .threads(opts.raw_threads())
            .telemetry(opts.telemetry_enabled())
            .mega_threshold(opts.mega_limit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_interactive_profile() {
        let req = BrowseRequest::new();
        assert_eq!(req.effective_threads(), 1);
        assert!(req.telemetry_enabled());
        assert_eq!(req.mega_limit(), 10_000);
        assert!(req.deadline_budget().is_none());
        assert!(req.cancel().is_none());
        assert!(!req.has_controls());
        assert!(!req.batch_options().has_controls());
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let token = CancelToken::new();
        let req = BrowseRequest::new()
            .threads(0)
            .telemetry(false)
            .mega_threshold(7)
            .deadline(Duration::from_millis(9))
            .check_every(3)
            .cancel_token(token.clone());
        assert!(req.effective_threads() >= 1);
        assert!(!req.telemetry_enabled());
        assert_eq!(req.mega_limit(), 7);
        assert_eq!(req.deadline_budget(), Some(Duration::from_millis(9)));
        assert!(req.has_controls());
        let batch = req.batch_options();
        assert_eq!(batch.deadline_budget(), Some(Duration::from_millis(9)));
        assert_eq!(batch.check_interval(), Some(3));
        token.cancel();
        assert!(batch.cancel().expect("token attached").is_cancelled());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_options_convert_losslessly() {
        let opts = crate::BrowseOptions::new()
            .threads(5)
            .telemetry(false)
            .mega_threshold(42);
        let req = BrowseRequest::from(&opts);
        assert_eq!(req.effective_threads(), 5);
        assert!(!req.telemetry_enabled());
        assert_eq!(req.mega_limit(), 42);
        assert!(!req.has_controls());
    }
}
