use euler_datagen::exact::ground_truth;
use euler_grid::{SnappedRect, Tiling};

use crate::{BrowseResult, Browser};

/// The exact browsing backend: difference-array ground truth over the
/// snapped dataset. O(|S|) per *tiling* (not per tile) — fast enough for
/// interactive use on whole query sets, and the accuracy reference for
/// every estimator-backed browser.
#[derive(Debug, Clone)]
pub struct ExactBrowser {
    objects: Vec<SnappedRect>,
}

impl ExactBrowser {
    /// Wraps a snapped dataset.
    pub fn new(objects: Vec<SnappedRect>) -> ExactBrowser {
        ExactBrowser { objects }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

impl Browser for ExactBrowser {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn browse(&self, tiling: &Tiling) -> BrowseResult {
        let gt = ground_truth(&self.objects, tiling);
        BrowseResult::new(*tiling, gt.counts().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EulerBrowser, Relation};
    use euler_core::{EulerHistogram, SEulerApprox};
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid, Snapper};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn exact_and_euler_browsers_agree_on_small_objects() {
        let g = Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, 16.0, 12.0).unwrap()),
            16,
            12,
        )
        .unwrap();
        let s = Snapper::new(g);
        let mut rng = StdRng::seed_from_u64(5);
        let objs: Vec<_> = (0..300)
            .map(|_| {
                let x = rng.gen_range(0.0..15.0);
                let y = rng.gen_range(0.0..11.0);
                s.snap(&Rect::new(x, y, x + 0.8, y + 0.6).unwrap())
            })
            .collect();
        let exact = ExactBrowser::new(objs.clone());
        let euler = EulerBrowser::new(SEulerApprox::new(EulerHistogram::build(g, &objs).freeze()));
        let tiling = Tiling::new(g.full(), 4, 3).unwrap();
        let er = exact.browse(&tiling);
        let ur = euler.browse(&tiling);
        for ((c, r), _tile) in tiling.iter() {
            // Sub-cell objects, 4-cell tiles: S-EulerApprox is exact here.
            assert_eq!(er.get(c, r), ur.get(c, r), "tile ({c},{r})");
        }
        assert_eq!(
            er.max_of(Relation::Intersect),
            ur.max_of(Relation::Intersect)
        );
    }
}
