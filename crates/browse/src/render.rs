use crate::{BrowseResult, Relation};

/// Shade ramp from empty to dense (Figure 1's color scale, in ASCII).
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders a browse result as a terminal heat map for one relation.
///
/// Rows print top-down (row `rows−1` first) so the picture matches map
/// orientation; shades are linear in `count / max`, with a legend line.
pub fn render_heatmap(result: &BrowseResult, rel: Relation) -> String {
    let t = result.tiling();
    let (cols, rows) = (t.cols(), t.rows());
    let max = result.max_of(rel).max(1);
    let mut out = String::with_capacity((cols + 4) * (rows + 3));
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    for row in (0..rows).rev() {
        out.push('|');
        for col in 0..cols {
            let v = rel.of(result.get(col, row)).max(0);
            let idx = if v == 0 {
                0
            } else {
                // Nonzero values always render at least the lightest ink.
                1 + ((v - 1) as usize * (RAMP.len() - 2)) / ((max as usize - 1).max(1))
            };
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    out.push_str(&format!(
        "{:?}: max={} per tile; ramp \"{}\"\n",
        rel,
        max,
        RAMP.iter().collect::<String>()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_core::RelationCounts;
    use euler_grid::{GridRect, Tiling};

    fn result_3x2(values: &[i64; 6]) -> BrowseResult {
        let region = GridRect::unchecked(0, 0, 6, 4);
        let tiling = Tiling::new(region, 3, 2).unwrap();
        let counts = values
            .iter()
            .map(|&v| RelationCounts::new(0, v, 0, 0))
            .collect();
        BrowseResult::new(tiling, counts)
    }

    #[test]
    fn shades_scale_with_counts() {
        let r = result_3x2(&[0, 1, 2, 3, 4, 100]);
        let map = render_heatmap(&r, Relation::Contains);
        let lines: Vec<&str> = map.lines().collect();
        // Top line of the map is row 1 (values 3, 4, 100).
        assert_eq!(lines[0], "+---+");
        let top = lines[1];
        let bottom = lines[2];
        assert_eq!(bottom.chars().nth(1), Some(' '), "zero renders blank");
        assert_ne!(top.chars().nth(3), Some(' '), "max renders ink");
        assert_eq!(top.chars().nth(3), Some('@'), "max renders darkest");
        assert!(map.contains("max=100"));
    }

    #[test]
    fn nonzero_tiles_never_blank() {
        let r = result_3x2(&[1, 1, 1, 1, 1, 1_000_000]);
        let map = render_heatmap(&r, Relation::Contains);
        let body: Vec<char> = map
            .lines()
            .skip(1)
            .take(2)
            .flat_map(|l| l.chars().skip(1).take(3))
            .collect();
        assert!(body.iter().all(|&c| c != ' '), "{body:?}");
    }
}
