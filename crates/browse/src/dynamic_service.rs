use std::sync::Arc;

use euler_core::{LiveEulerHistogram, LiveSEuler, LiveSnapshot};
use euler_engine::SharedEstimator;
use euler_geom::Rect;
use euler_grid::{Grid, Snapper, Tiling};
use euler_metrics::{Recorder, TelemetrySnapshot};

use crate::session::{run_browse, BrowseSession, PinnedSession};
use crate::{BrowseRequest, BrowseResult, Browser};

/// A GeoBrowsing front end tuned for write-heavy feeds (live sensor
/// registrations, streaming catalog updates): writes append to the live
/// delta and never trigger a refreeze, so ingest stays cheap and the
/// data stays browsable at all times.
///
/// A thin facade over the same [`LiveEulerHistogram`] substrate as
/// [`crate::GeoBrowsingService`] — the difference is read policy:
///
/// * browses here pin the **current** snapshot (frozen cube + delta view)
///   and answer from it with no lock held across the tiling, so a browse
///   never blocks a concurrent insert;
/// * reads always see every write applied before the pin (no refreeze
///   staleness), at `O(delta)` extra cost per tiling;
/// * the static-profile service instead refreezes on read, paying the
///   fold once so steady-state browses sweep a pure frozen cube.
///
/// Both profiles implement [`BrowseSession`] and browse through the same
/// engine-backed path, so every request knob (threads, telemetry,
/// deadline, cancellation) applies here too.
pub struct DynamicGeoBrowsingService {
    grid: Grid,
    snapper: Snapper,
    live: Arc<LiveEulerHistogram>,
    recorder: Arc<Recorder>,
}

impl DynamicGeoBrowsingService {
    /// An empty service over `grid` (at least 2×2 cells).
    pub fn new(grid: Grid) -> DynamicGeoBrowsingService {
        DynamicGeoBrowsingService::from_live(Arc::new(LiveEulerHistogram::new(grid)))
    }

    /// A service over an existing shared substrate — how a durable store
    /// (whose writes must go through its WAL) shares its histogram with
    /// the read path.
    pub fn from_live(live: Arc<LiveEulerHistogram>) -> DynamicGeoBrowsingService {
        let grid = live.grid();
        DynamicGeoBrowsingService {
            grid,
            snapper: Snapper::new(grid),
            live,
            recorder: Recorder::shared(),
        }
    }

    /// Bulk-loads a service from raw MBRs.
    pub fn with_objects(grid: Grid, rects: &[Rect]) -> DynamicGeoBrowsingService {
        let svc = DynamicGeoBrowsingService::new(grid);
        for r in rects {
            svc.insert(r);
        }
        svc
    }

    /// The service grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.live.len()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current publish epoch. Under this profile nothing refreezes,
    /// so the epoch only advances if the substrate is refrozen through
    /// some other handle; reads are keyed by [`Self::version`] instead.
    pub fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// The current write-log version (bumped by every insert/remove).
    pub fn version(&self) -> u64 {
        self.live.version()
    }

    /// Inserts an object MBR.
    pub fn insert(&self, rect: &Rect) {
        self.live.insert(&self.snapper.snap(rect));
    }

    /// Removes a previously inserted MBR.
    pub fn remove(&self, rect: &Rect) {
        self.live.remove(&self.snapper.snap(rect));
    }

    /// Pins the current epoch snapshot: every write applied before this
    /// call is visible, and the returned view answers queries with no
    /// synchronization — concurrent writers are never blocked by it.
    pub fn pin(&self) -> Arc<LiveSnapshot> {
        self.live.pin()
    }

    /// The service's telemetry recorder (always on).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A point-in-time readout of the service's query stats.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot()
    }

    /// Answers a browsing query with current data (S-EulerApprox algebra).
    ///
    /// The tiling is answered from one pinned snapshot — consistent
    /// across all tiles, and held without any lock, so inserts land
    /// freely while the browse runs. Dispatch goes through the shared
    /// engine path: the frozen prefix is swept in one amortized pass and
    /// the live delta scattered over the tile grid in `O(delta + tiles)`,
    /// bit-identical to a per-tile loop over the pin. The request carries
    /// the same knobs as the static profile — worker count, telemetry,
    /// mega-hit threshold, deadline, cancellation.
    pub fn browse(&self, tiling: &Tiling, req: &BrowseRequest) -> BrowseResult {
        let est: SharedEstimator = Arc::new(LiveSEuler::new(self.live.pin()));
        run_browse(&est, &self.recorder, tiling, req)
    }
}

impl BrowseSession for DynamicGeoBrowsingService {
    fn session_name(&self) -> &'static str {
        "DynamicGeoBrowsingService"
    }

    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn len(&self) -> u64 {
        self.live.len()
    }

    fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    fn version(&self) -> u64 {
        self.live.version()
    }

    /// Pin under the dynamic read policy: take the current snapshot as
    /// is (frozen cube + delta view) — never refreeze, never block a
    /// writer, always see every write applied before the pin.
    fn pin_session(&self) -> PinnedSession {
        let snap = self.live.pin();
        let (epoch, version) = (snap.epoch(), snap.version());
        PinnedSession::new(Arc::new(LiveSEuler::new(snap)), epoch, version)
    }

    fn insert(&self, rect: &Rect) {
        DynamicGeoBrowsingService::insert(self, rect);
    }

    fn remove(&self, rect: &Rect) {
        DynamicGeoBrowsingService::remove(self, rect);
    }

    fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    fn browse(&self, tiling: &Tiling, req: &BrowseRequest) -> BrowseResult {
        DynamicGeoBrowsingService::browse(self, tiling, req)
    }
}

impl Browser for DynamicGeoBrowsingService {
    fn name(&self) -> &'static str {
        "DynamicGeoBrowsingService"
    }

    fn browse(&self, tiling: &Tiling) -> BrowseResult {
        DynamicGeoBrowsingService::browse(self, tiling, &BrowseRequest::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeoBrowsingService;
    use euler_core::s_euler_counts;
    use euler_grid::DataSpace;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::sync::Arc;

    fn grid() -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, 16.0, 12.0).unwrap()),
            16,
            12,
        )
        .unwrap()
    }

    fn req() -> BrowseRequest {
        BrowseRequest::default()
    }

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..15.0);
                let y = rng.gen_range(0.0..11.0);
                let w = rng.gen_range(0.0..6.0);
                let h = rng.gen_range(0.0..5.0);
                Rect::new(x, y, (x + w).min(16.0), (y + h).min(12.0)).unwrap()
            })
            .collect()
    }

    #[test]
    fn agrees_with_static_service() {
        let rects = random_rects(300, 1);
        let stat = GeoBrowsingService::with_objects(grid(), &rects);
        let dynamic = DynamicGeoBrowsingService::with_objects(grid(), &rects);
        let tiling = Tiling::new(grid().full(), 4, 3).unwrap();
        let a = stat.browse(&tiling, &req());
        let b = dynamic.browse(&tiling, &req());
        for ((c, r), _t) in tiling.iter() {
            assert_eq!(a.get(c, r), b.get(c, r), "tile ({c},{r})");
        }
    }

    #[test]
    fn telemetry_tracks_dynamic_browses() {
        let svc = DynamicGeoBrowsingService::new(grid());
        svc.insert(&Rect::new(1.2, 1.2, 2.8, 2.8).unwrap());
        let tiling = Tiling::new(grid().full(), 4, 3).unwrap();
        svc.browse(&tiling, &req());
        svc.browse(&tiling, &req());
        let stats = svc.telemetry();
        assert_eq!(stats.queries, 24);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.query_latency.count(), 24);
        assert!(stats.query_latency.p50() <= stats.query_latency.max());
        // Every tile accounts for the one object.
        assert_eq!(stats.objects_estimated, 24);
    }

    #[test]
    fn updates_visible_immediately() {
        let svc = DynamicGeoBrowsingService::new(grid());
        let tiling = Tiling::new(grid().full(), 2, 2).unwrap();
        assert_eq!(svc.browse(&tiling, &req()).counts()[0].total(), 0);
        let r = Rect::new(1.2, 1.2, 2.8, 2.8).unwrap();
        svc.insert(&r);
        assert_eq!(svc.browse(&tiling, &req()).get(0, 0).contains, 1);
        svc.remove(&r);
        assert_eq!(svc.browse(&tiling, &req()).get(0, 0).contains, 0);
        assert!(svc.is_empty());
    }

    /// Writes bump the version, never the epoch: under this profile
    /// nothing refreezes, so the cacheable stamp is the version.
    #[test]
    fn versions_advance_epochs_do_not() {
        let svc = DynamicGeoBrowsingService::new(grid());
        let (e0, v0) = (svc.epoch(), svc.version());
        svc.insert(&Rect::new(1.2, 1.2, 2.8, 2.8).unwrap());
        let tiling = Tiling::new(grid().full(), 2, 2).unwrap();
        svc.browse(&tiling, &req());
        assert_eq!(svc.epoch(), e0, "dynamic reads never refreeze");
        assert_eq!(svc.version(), v0 + 1, "every write bumps the version");
    }

    /// Regression for the old read-lock-across-the-tiling design: a
    /// browse in flight must never block a concurrent insert. The pinned
    /// read path holds no lock, which the test proves *deterministically*
    /// by interleaving writes into a browse from the same thread — under
    /// any lock-held read path this would deadlock (or require a
    /// reentrant lock), not merely slow down.
    #[test]
    fn a_browse_never_blocks_a_concurrent_insert() {
        let svc = DynamicGeoBrowsingService::new(grid());
        svc.insert(&Rect::new(1.2, 1.2, 2.8, 2.8).unwrap());
        let tiling = Tiling::new(grid().full(), 4, 3).unwrap();

        // A reader mid-browse: the snapshot is pinned, tiles are being
        // answered…
        let snap = svc.pin();
        let mut counts = Vec::new();
        for (i, (_, tile)) in tiling.iter().enumerate() {
            counts.push(s_euler_counts(&*snap, &tile).clamped());
            // …while inserts land between tiles, from the very same
            // thread. No deadlock, no torn reads.
            svc.insert(&Rect::new(4.0 + i as f64 * 0.5, 4.0, 14.0, 9.0).unwrap());
        }

        // The browse answered entirely from its pinned epoch (1 object),
        // and every interleaved write landed.
        let total: i64 = counts.iter().map(|c| c.intersecting()).sum();
        assert_eq!(total, 1, "pinned view is isolated from mid-browse writes");
        assert_eq!(svc.len(), 1 + tiling.len() as u64);
        // A fresh browse sees all of them.
        let fresh = svc.browse(&tiling, &req());
        assert!(fresh.counts().iter().any(|c| c.intersecting() > 1));
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let svc = Arc::new(DynamicGeoBrowsingService::new(grid()));
        let tiling = Tiling::new(grid().full(), 4, 3).unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let svc = svc.clone();
            handles.push(std::thread::spawn(move || {
                let rects = random_rects(50, t);
                for (i, r) in rects.iter().enumerate() {
                    if t < 2 {
                        svc.insert(r);
                    } else {
                        let res = svc.browse(&tiling, &BrowseRequest::default());
                        assert!(res.counts()[0].total() >= 0);
                        let _ = i;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.len(), 100);
    }
}
