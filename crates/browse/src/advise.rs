use crate::{BrowseResult, Relation};

/// Analysis of a browse result: the zero-hit / mega-hit diagnosis the
/// paper's introduction motivates ("trial queries tend to be either overly
/// restrictive or overly broad, resulting in either zero hit or thousands
/// of hits").
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Fraction of tiles with zero results for the relation.
    pub zero_fraction: f64,
    /// Fraction of tiles exceeding `mega_threshold` results.
    pub mega_fraction: f64,
    /// The densest tile `(col, row)` and its count.
    pub hottest: Option<((usize, usize), i64)>,
    /// Suggested action for the user.
    pub suggestion: Suggestion,
}

/// The refinement suggestion derived from a browse result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suggestion {
    /// Most tiles empty: the query region/filters are too restrictive —
    /// zoom out or relax constraints.
    ZoomOut,
    /// Most tiles overflowing: refine with more tiles or tighter filters.
    Refine,
    /// Distribution is informative as-is; evaluate the real query.
    Proceed,
}

/// Analyzes a browse result for the given relation.
///
/// `mega_threshold` is the per-tile count beyond which a tile is "mega-hit"
/// (a result too large to convey information, §1).
pub fn advise(result: &BrowseResult, rel: Relation, mega_threshold: i64) -> Advice {
    let n = result.counts().len().max(1);
    let mut zero = 0usize;
    let mut mega = 0usize;
    let mut hottest: Option<((usize, usize), i64)> = None;
    for ((c, r), _tile, counts) in result.iter() {
        let v = rel.of(counts).max(0);
        if v == 0 {
            zero += 1;
        }
        if v > mega_threshold {
            mega += 1;
        }
        if hottest.is_none_or(|(_, best)| v > best) {
            hottest = Some(((c, r), v));
        }
    }
    let zero_fraction = zero as f64 / n as f64;
    let mega_fraction = mega as f64 / n as f64;
    let suggestion = if zero_fraction > 0.9 {
        Suggestion::ZoomOut
    } else if mega_fraction > 0.5 {
        Suggestion::Refine
    } else {
        Suggestion::Proceed
    };
    Advice {
        zero_fraction,
        mega_fraction,
        hottest,
        suggestion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_core::RelationCounts;
    use euler_grid::{GridRect, Tiling};

    fn result(values: Vec<i64>) -> BrowseResult {
        let side = (values.len() as f64).sqrt() as usize;
        let region = GridRect::unchecked(0, 0, side * 2, side * 2);
        let tiling = Tiling::new(region, side, side).unwrap();
        BrowseResult::new(
            tiling,
            values
                .into_iter()
                .map(|v| RelationCounts::new(0, v, 0, 0))
                .collect(),
        )
    }

    #[test]
    fn empty_region_suggests_zoom_out() {
        let r = result(vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        let a = advise(&r, Relation::Contains, 100);
        assert!(a.zero_fraction > 0.8);
        assert_eq!(a.suggestion, Suggestion::ZoomOut);
        assert_eq!(a.hottest, Some(((3, 3), 1)));
    }

    #[test]
    fn overflowing_region_suggests_refine() {
        let r = result(vec![500, 900, 800, 700, 600, 1000, 50, 0, 999]);
        let a = advise(&r, Relation::Contains, 100);
        assert!(a.mega_fraction > 0.5);
        assert_eq!(a.suggestion, Suggestion::Refine);
    }

    #[test]
    fn informative_region_proceeds() {
        let r = result(vec![0, 5, 12, 3, 0, 7, 20, 1, 4]);
        let a = advise(&r, Relation::Contains, 100);
        assert_eq!(a.suggestion, Suggestion::Proceed);
        assert_eq!(a.hottest, Some(((0, 2), 20)));
    }
}
