//! The [`BrowseSession`] abstraction: one interface over the two browse
//! service profiles.
//!
//! [`GeoBrowsingService`](crate::GeoBrowsingService) (refreeze-on-read)
//! and [`DynamicGeoBrowsingService`](crate::DynamicGeoBrowsingService)
//! (pin-current, never refreeze) are facades over the same
//! `LiveEulerHistogram` substrate that differ only in *read policy*.
//! Anything that multiplexes work onto "a browsable, updatable spatial
//! session" — the `geobrowse serve` front door, the conformance harness —
//! should be written once against this trait instead of twice against
//! the twins.

use std::sync::Arc;

use euler_core::RelationCounts;
use euler_engine::{EstimatorEngine, QueryBatch, SharedEstimator};
use euler_geom::Rect;
use euler_grid::{Grid, Tiling};
use euler_metrics::{Recorder, TelemetrySnapshot};

use crate::{BrowseRequest, BrowseResult};

/// A consistent, lock-free read view acquired from a [`BrowseSession`]:
/// the pinned estimator plus the epoch and write-log version it answers
/// from. Everything computed from the estimator is attributable to
/// exactly this `(epoch, version)` — the property result caches key on.
#[derive(Clone)]
pub struct PinnedSession {
    estimator: SharedEstimator,
    epoch: u64,
    version: u64,
}

impl PinnedSession {
    /// Wraps a pinned estimator with its provenance stamps.
    pub fn new(estimator: SharedEstimator, epoch: u64, version: u64) -> PinnedSession {
        PinnedSession {
            estimator,
            epoch,
            version,
        }
    }

    /// The pinned estimator (answers with no synchronization).
    pub fn estimator(&self) -> &SharedEstimator {
        &self.estimator
    }

    /// The ingest epoch the pinned snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The write-log prefix length the pinned snapshot reflects. Unlike
    /// the epoch (bumped only by refreezes) this advances on *every*
    /// write, so it is the correct cache/invalidation stamp for both
    /// read profiles.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl std::fmt::Debug for PinnedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedSession")
            .field("estimator", &self.estimator.name())
            .field("epoch", &self.epoch)
            .field("version", &self.version)
            .finish()
    }
}

/// A browsable, updatable spatial session: the interface the serve front
/// door and the conformance harness program against.
///
/// Both service profiles implement it; which one you hand out decides
/// the read policy (refreeze-on-read vs pin-current), not the API.
pub trait BrowseSession: Send + Sync {
    /// The session profile name (for telemetry and protocol banners).
    fn session_name(&self) -> &'static str;

    /// The session grid.
    fn grid(&self) -> &Grid;

    /// Number of indexed objects.
    fn len(&self) -> u64;

    /// True when no objects are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current publish epoch (bumped by every refreeze; starts at 1).
    fn epoch(&self) -> u64;

    /// The current write-log version (bumped by every insert/remove).
    fn version(&self) -> u64;

    /// Acquires a consistent read view: a pinned estimator stamped with
    /// the epoch and version it answers from. Pinning never blocks
    /// writers, and a pinned view is immune to later writes.
    fn pin_session(&self) -> PinnedSession;

    /// The resolution level this session would serve `_tiling` from.
    /// Flat sessions always answer at the finest (and only) resolution;
    /// pyramid-backed sessions override this so front-door caches can
    /// key results by the level that actually produced them.
    fn resolution_level(&self, _tiling: &Tiling) -> usize {
        0
    }

    /// Inserts an object MBR.
    fn insert(&self, rect: &Rect);

    /// Removes a previously inserted MBR (linear-sketch exact removal).
    fn remove(&self, rect: &Rect);

    /// Inserts an object MBR, reporting the acknowledged write-log
    /// version — the fallible form durable sessions implement (a WAL
    /// append can fail; an in-memory insert cannot). In-memory sessions
    /// use this default and never error.
    fn try_insert(&self, rect: &Rect) -> std::io::Result<u64> {
        self.insert(rect);
        Ok(self.version())
    }

    /// Removes a previously inserted MBR, reporting the acknowledged
    /// write-log version. See [`BrowseSession::try_insert`].
    fn try_remove(&self, rect: &Rect) -> std::io::Result<u64> {
        self.remove(rect);
        Ok(self.version())
    }

    /// Forces every acknowledged write to stable storage — a no-op for
    /// in-memory sessions, the WAL drain for durable ones. Called by the
    /// serve front door on graceful shutdown.
    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }

    /// Takes a durability checkpoint, returning the `(epoch, version)`
    /// it captured — `Ok(None)` for sessions with nothing to checkpoint.
    fn checkpoint(&self) -> std::io::Result<Option<(u64, u64)>> {
        Ok(None)
    }

    /// The session's always-on telemetry recorder.
    fn recorder(&self) -> &Arc<Recorder>;

    /// A point-in-time readout of the session's query stats.
    fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder().snapshot()
    }

    /// Answers a browsing query on a freshly pinned view — the one
    /// multi-tile entry point. The request carries every knob: worker
    /// count, telemetry, mega-hit threshold, deadline, cancel token.
    fn browse(&self, tiling: &Tiling, req: &BrowseRequest) -> BrowseResult {
        run_browse(self.pin_session().estimator(), self.recorder(), tiling, req)
    }
}

/// The shared engine-backed browse path: dispatches `tiling` through an
/// [`EstimatorEngine`] over `estimator` under the request's controls,
/// converts failed slots into per-tile availability, and (when telemetry
/// is on) feeds the zero-hit/mega-hit advice counters.
///
/// Both service profiles and the serve front door funnel through this
/// one function, so "what a browse means" is defined exactly once.
pub fn run_browse(
    estimator: &SharedEstimator,
    recorder: &Arc<Recorder>,
    tiling: &Tiling,
    req: &BrowseRequest,
) -> BrowseResult {
    let mut builder = EstimatorEngine::builder(estimator.clone()).threads(req.effective_threads());
    let telemetry = req.telemetry_enabled();
    if telemetry {
        builder = builder.recorder(recorder.clone());
    }
    let result = builder
        .build()
        .run_batch_with(&QueryBatch::from(tiling), &req.batch_options());
    let unavailable: Vec<usize> = result
        .outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_failed())
        .map(|(i, _)| i)
        .collect();
    let counts: Vec<_> = result.counts.into_iter().map(|c| c.clamped()).collect();
    if telemetry {
        let hits = |c: &RelationCounts| c.intersecting();
        let delivered = || {
            counts
                .iter()
                .zip(&result.outcomes)
                .filter(|(_, o)| o.is_delivered())
                .map(|(c, _)| c)
        };
        let zero = delivered().filter(|c| hits(c) == 0).count();
        let mega = delivered().filter(|c| hits(c) >= req.mega_limit()).count();
        recorder.add_zero_hits(zero as u64);
        recorder.add_mega_hits(mega as u64);
    }
    BrowseResult::with_unavailable(*tiling, counts, unavailable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicGeoBrowsingService, GeoBrowsingService};
    use euler_core::Level2Estimator;
    use euler_grid::DataSpace;

    fn grid() -> Grid {
        Grid::new(DataSpace::new(Rect::new(0.0, 0.0, 8.0, 8.0).unwrap()), 8, 8).unwrap()
    }

    fn sessions() -> Vec<Box<dyn BrowseSession>> {
        vec![
            Box::new(GeoBrowsingService::new(grid())),
            Box::new(DynamicGeoBrowsingService::new(grid())),
        ]
    }

    /// The law the trait exists for: written once, it holds for both
    /// profiles — browse tile = clamped pinned estimate, writes land,
    /// versions advance per write, epochs only at publish points.
    #[test]
    fn both_profiles_satisfy_the_session_contract() {
        for session in sessions() {
            let name = session.session_name();
            assert!(session.is_empty(), "{name}");
            let r = Rect::new(1.2, 1.2, 2.8, 2.8).unwrap();
            let v0 = session.version();
            session.insert(&r);
            assert_eq!(session.len(), 1, "{name}");
            assert_eq!(session.version(), v0 + 1, "{name}: insert bumps version");

            let tiling = Tiling::new(session.grid().full(), 4, 4).unwrap();
            let result = session.browse(&tiling, &BrowseRequest::new());
            let pinned = session.pin_session();
            for ((_, tile), got) in tiling.iter().zip(result.counts()) {
                let want = pinned.estimator().estimate(&tile).clamped();
                assert_eq!(*got, want, "{name}: tile {tile}");
            }
            assert_eq!(
                pinned.epoch(),
                session.epoch(),
                "{name}: pin carries the session epoch"
            );

            session.remove(&r);
            assert_eq!(session.version(), v0 + 2, "{name}: remove bumps version");
            assert!(session.is_empty(), "{name}");
            assert_eq!(session.telemetry().queries, 16, "{name}");
        }
    }

    /// A pinned view is isolated from later writes; a fresh pin sees them.
    #[test]
    fn pins_are_consistent_snapshots() {
        for session in sessions() {
            let name = session.session_name();
            session.insert(&Rect::new(1.2, 1.2, 1.8, 1.8).unwrap());
            let pinned = session.pin_session();
            session.insert(&Rect::new(5.2, 5.2, 5.8, 5.8).unwrap());
            let q = session.grid().full();
            assert_eq!(
                pinned.estimator().estimate(&q).clamped().total(),
                1,
                "{name}"
            );
            let fresh = session.pin_session();
            assert_eq!(
                fresh.estimator().estimate(&q).clamped().total(),
                2,
                "{name}"
            );
            assert!(fresh.version() > pinned.version(), "{name}");
        }
    }
}
