//! The append side: an open segment file, rotation, fsync policy, and
//! the deterministic fault sites that let tests tear writes at exact
//! byte positions.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use euler_core::DeltaOp;
use euler_engine::faults::{wal_fault, FaultKind, FaultSite};

use crate::record::{encode_frame, FRAME_LEN};
use crate::segment::{encode_header, segment_file_name, SEGMENT_HEADER_LEN};

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` before every acknowledgement: a power cut loses nothing
    /// acknowledged. The slowest and the only policy with a zero-op
    /// durability window.
    Always,
    /// `fsync` every `n` appends: the loss window is at most `n`
    /// acknowledged ops. `EveryN(1)` behaves like `Always`.
    EveryN(u32),
    /// Never `fsync` on the append path; the OS flushes when it likes.
    /// Graceful shutdown still drains via [`Wal::sync`].
    Never,
}

/// Append-side configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Fsync policy for acknowledged appends.
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes (header included). Small values exercise rotation; the
    /// default keeps segments around a mebibyte.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 1 << 20,
        }
    }
}

/// The write-ahead log appender: owns the current segment file and the
/// version counter the next record must carry.
///
/// A failed append or fsync **poisons** the log: the on-disk tail is in
/// an unknown state, so every later operation fails fast instead of
/// appending after garbage. The recovery path (a restart) truncates the
/// torn tail and resumes cleanly — the same story a real crash gets.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    file: File,
    seq: u64,
    /// Bytes in the current segment, header included.
    len: u64,
    appends_since_sync: u32,
    next_version: u64,
    poisoned: bool,
}

pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn poisoned_error() -> io::Error {
    io::Error::other("wal poisoned by an earlier write failure; restart to recover")
}

fn injected_error(site: FaultSite) -> io::Error {
    io::Error::other(format!("injected wal fault at {site:?}"))
}

impl Wal {
    /// Opens a fresh segment `seq` in `dir` whose first record will carry
    /// `next_version`. The file must not already exist (sequence numbers
    /// are never reused); the directory entry is fsynced so the segment
    /// survives a crash immediately after creation.
    pub(crate) fn create(
        dir: &Path,
        cfg: WalConfig,
        seq: u64,
        next_version: u64,
    ) -> io::Result<Wal> {
        let path = dir.join(segment_file_name(seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(&encode_header(seq, next_version))?;
        file.sync_data()?;
        fsync_dir(dir)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            cfg,
            file,
            seq,
            len: SEGMENT_HEADER_LEN as u64,
            appends_since_sync: 0,
            next_version,
            poisoned: false,
        })
    }

    /// The version the next append will carry.
    pub fn next_version(&self) -> u64 {
        self.next_version
    }

    /// Current segment sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Whether an earlier failure poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends one record and applies the fsync policy. On `Ok`, the
    /// record for `next_version` is durable to the policy's guarantee
    /// and the caller may acknowledge; on `Err`, nothing was
    /// acknowledged and the log is poisoned.
    pub fn append(&mut self, op: &DeltaOp) -> io::Result<u64> {
        if self.poisoned {
            return Err(poisoned_error());
        }
        if self.len + FRAME_LEN as u64 > self.cfg.segment_bytes
            && self.len > SEGMENT_HEADER_LEN as u64
        {
            self.rotate()?;
        }
        let version = self.next_version;
        let frame = encode_frame(version, op);
        match wal_fault(FaultSite::WalAppend) {
            Some(FaultKind::IoError) => {
                self.poisoned = true;
                return Err(injected_error(FaultSite::WalAppend));
            }
            Some(FaultKind::ShortWrite(n)) => {
                // A torn write: the first `n` bytes of the frame reach
                // the file, then the "machine dies".
                let keep = (n as usize).min(frame.len());
                let _ = self.file.write_all(&frame[..keep]);
                let _ = self.file.sync_data();
                self.poisoned = true;
                return Err(injected_error(FaultSite::WalAppend));
            }
            _ => {}
        }
        if let Err(e) = self.file.write_all(&frame) {
            self.poisoned = true;
            return Err(e);
        }
        self.len += frame.len() as u64;
        self.appends_since_sync += 1;
        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        self.next_version = version + 1;
        Ok(version)
    }

    /// Forces everything appended so far to disk (the shutdown drain and
    /// the `Always`/`EveryN` policies' commit point).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.poisoned {
            return Err(poisoned_error());
        }
        if let Some(kind) = wal_fault(FaultSite::WalFsync) {
            if matches!(kind, FaultKind::IoError | FaultKind::ShortWrite(_)) {
                // A failed fsync leaves the kernel's view unknowable;
                // poison rather than guess (the "fsync-gate" lesson).
                self.poisoned = true;
                return Err(injected_error(FaultSite::WalFsync));
            }
        }
        match self.file.sync_data() {
            Ok(()) => {
                self.appends_since_sync = 0;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Closes the current segment and opens `seq + 1`. Used on size
    /// rotation and after a checkpoint (so the manifest can name a clean
    /// `(segment, offset)` replay start).
    pub(crate) fn rotate(&mut self) -> io::Result<()> {
        if self.poisoned {
            return Err(poisoned_error());
        }
        // Make the old tail durable before the new segment exists, so
        // recovery never sees a newer segment with an older one missing
        // acknowledged bytes.
        self.file.sync_data()?;
        let next = Wal::create(&self.dir, self.cfg, self.seq + 1, self.next_version)?;
        let old = std::mem::replace(self, next);
        drop(old);
        Ok(())
    }
}
