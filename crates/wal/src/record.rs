//! Record framing: fixed-width [`DeltaOp`] payloads wrapped in a
//! length-prefixed, CRC32-guarded frame.
//!
//! ```text
//! frame   = len u32 LE | crc32 u32 LE (over payload) | payload
//! payload = version u64 LE | sign i8 | a f64 | b f64 | c f64 | d f64
//! ```
//!
//! The payload is fixed-width (41 bytes, [`RECORD_PAYLOAD_LEN`]), which
//! makes torn-tail classification crisp: any frame whose length field
//! disagrees is either a torn write (at the tail) or corruption (before
//! acknowledged records) — there is no in-between to guess about.

use euler_core::DeltaOp;
use euler_grid::SnappedRect;

/// Fixed payload width: version + sign + four `f64` bounds.
pub const RECORD_PAYLOAD_LEN: usize = 8 + 1 + 4 * 8;

/// Full frame width: length prefix + CRC + payload.
pub(crate) const FRAME_LEN: usize = 4 + 4 + RECORD_PAYLOAD_LEN;

const CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC32 (the zlib/gzip polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encodes one record frame for `op` at write-log `version`.
pub(crate) fn encode_frame(version: u64, op: &DeltaOp) -> [u8; FRAME_LEN] {
    let mut payload = [0u8; RECORD_PAYLOAD_LEN];
    payload[0..8].copy_from_slice(&version.to_le_bytes());
    payload[8] = op.sign as i8 as u8;
    payload[9..17].copy_from_slice(&op.rect.a().to_le_bytes());
    payload[17..25].copy_from_slice(&op.rect.b().to_le_bytes());
    payload[25..33].copy_from_slice(&op.rect.c().to_le_bytes());
    payload[33..41].copy_from_slice(&op.rect.d().to_le_bytes());
    let mut frame = [0u8; FRAME_LEN];
    frame[0..4].copy_from_slice(&(RECORD_PAYLOAD_LEN as u32).to_le_bytes());
    frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
    frame[8..].copy_from_slice(&payload);
    frame
}

/// Why a frame failed to parse. Whether that is a torn tail or hard
/// corruption is the segment scanner's decision, not the frame's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameFailure {
    /// Fewer than 8 bytes remain — a truncated frame header.
    TruncatedHeader,
    /// The length field is not [`RECORD_PAYLOAD_LEN`].
    BadLength(u32),
    /// The payload is shorter than the length field promises.
    TruncatedPayload,
    /// The payload CRC does not match.
    CrcMismatch,
    /// The sign byte is neither `+1` nor `−1`, or the bounds are not an
    /// ordered open rectangle.
    BadPayload,
}

impl FrameFailure {
    pub(crate) fn describe(self) -> String {
        match self {
            FrameFailure::TruncatedHeader => "truncated frame header".into(),
            FrameFailure::BadLength(l) => format!("bad record length {l}"),
            FrameFailure::TruncatedPayload => "truncated record payload".into(),
            FrameFailure::CrcMismatch => "record crc mismatch".into(),
            FrameFailure::BadPayload => "malformed record payload".into(),
        }
    }
}

/// Tries to parse one frame at the start of `bytes`. On success returns
/// the record and the number of bytes consumed.
pub(crate) fn decode_frame(bytes: &[u8]) -> Result<((u64, DeltaOp), usize), FrameFailure> {
    if bytes.len() < 8 {
        return Err(FrameFailure::TruncatedHeader);
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if len as usize != RECORD_PAYLOAD_LEN {
        return Err(FrameFailure::BadLength(len));
    }
    if bytes.len() < FRAME_LEN {
        return Err(FrameFailure::TruncatedPayload);
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let payload = &bytes[8..FRAME_LEN];
    if crc32(payload) != crc {
        return Err(FrameFailure::CrcMismatch);
    }
    let version = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let sign = payload[8] as i8;
    if sign != 1 && sign != -1 {
        return Err(FrameFailure::BadPayload);
    }
    let f = |o: usize| f64::from_le_bytes(payload[o..o + 8].try_into().unwrap());
    let (a, b, c, d) = (f(9), f(17), f(25), f(33));
    if !(a < b && c < d && a.is_finite() && b.is_finite() && c.is_finite() && d.is_finite()) {
        return Err(FrameFailure::BadPayload);
    }
    let rect = SnappedRect::from_bounds(a, b, c, d);
    let op = if sign > 0 {
        DeltaOp::insert(rect)
    } else {
        DeltaOp::delete(rect)
    };
    Ok(((version, op), FRAME_LEN))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(sign: i64) -> DeltaOp {
        let r = SnappedRect::from_bounds(0.25, 3.75, 1.25, 2.75);
        if sign > 0 {
            DeltaOp::insert(r)
        } else {
            DeltaOp::delete(r)
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        for sign in [1i64, -1] {
            let frame = encode_frame(7, &op(sign));
            let ((version, back), used) = decode_frame(&frame).unwrap();
            assert_eq!(used, FRAME_LEN);
            assert_eq!(version, 7);
            assert_eq!(back, op(sign));
        }
    }

    #[test]
    fn every_truncation_and_flip_is_detected() {
        let frame = encode_frame(3, &op(1));
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
        for i in 0..frame.len() {
            let mut m = frame;
            m[i] ^= 0x10;
            assert!(decode_frame(&m).is_err(), "flip at {i}");
        }
    }
}
