#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Durability for the live serving path: a write-ahead log, checkpoint
//! images, and crash-tolerant recovery for
//! [`euler_core::LiveEulerHistogram`].
//!
//! ## Why
//!
//! The epoch-snapshot substrate gives the serving system concurrent
//! ingest with lock-free reads, but its write log lives only in memory:
//! a crash or restart silently loses every acknowledged insert/remove.
//! This crate adds the standard LSM-style complement — append each
//! [`DeltaOp`](euler_core::DeltaOp) to a CRC-framed log *before*
//! applying and acknowledging it, periodically checkpoint the folded
//! histogram through the existing persist codec, and on boot rebuild
//! exactly the acknowledged prefix: checkpoint + WAL suffix replay.
//!
//! ## On-disk layout
//!
//! A data directory holds rotating segment files, checkpoint images and
//! one manifest:
//!
//! ```text
//! data/
//! ├── MANIFEST                  ← names the active checkpoint + WAL position
//! ├── checkpoint-000042.euh     ← persist-codec image (to_bytes_compressed)
//! ├── wal-000007.log            ← segment: header + CRC32-framed records
//! └── wal-000008.log
//!
//! segment   = "EWAL" | format u32 | seq u64 | first_version u64 | frame*
//! frame     = len u32 | crc32 u32 | payload (len bytes)
//! payload   = version u64 | sign i8 | a f64 | b f64 | c f64 | d f64
//! MANIFEST  = "EULM" | format u32 | epoch u64 | version u64 | wal_seq u64
//!             | wal_offset u64 | name_len u32 | checkpoint file name | crc32 u32
//! ```
//!
//! Records are version-aligned with the live histogram's write log: WAL
//! record `N` carries write-log version `N`, so recovery can assert
//! contiguity, skip records a checkpoint already covers, and report the
//! exact acknowledged prefix it rebuilt.
//!
//! ## Recovery rules
//!
//! Recovery ([`DurableLive::open`]) is corruption-tolerant exactly at
//! the tail and paranoid everywhere else:
//!
//! - a **torn tail** — the final segment ends in a truncated frame or a
//!   CRC-failing record with nothing valid after it — is cleanly
//!   truncated and reported as a warning in the [`RecoveryReport`];
//! - corruption **before acknowledged records** (a bad frame followed by
//!   a parseable record, or any damage in a non-final segment, the
//!   manifest, or the checkpoint image) is a hard [`WalError`]: silent
//!   data loss is never an acceptable outcome;
//! - duplicate or gapped segment sequence numbers, and version gaps in
//!   the replayed records, are hard errors too.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades ingest latency for the durability window:
//! `Always` fsyncs before every acknowledgement (a power cut loses
//! nothing acknowledged), `EveryN(n)` bounds the loss window to `n`
//! acknowledged ops, `Never` leaves flushing to the OS (the window is
//! unbounded, but `sync` on graceful shutdown still drains). Crash
//! points are deterministic and seed-replayable through the engine's
//! fail-point facility (`euler_engine::faults::wal_fault` at the
//! `WalAppend` / `WalFsync` / `WalCheckpoint` sites).

mod log;
mod manifest;
mod record;
mod segment;
mod store;

pub use crate::log::{FsyncPolicy, Wal, WalConfig};
pub use manifest::Manifest;
pub use record::{crc32, RECORD_PAYLOAD_LEN};
pub use segment::{ScanEnd, ScannedRecord};
pub use store::{DurableConfig, DurableLive, RecoveryReport, TornTail};

use std::fmt;

/// Errors from the durability layer. I/O failures wrap the OS error;
/// the structured variants report *where* recovery found damage so an
/// operator can decide between restoring a backup and accepting loss.
#[derive(Debug)]
pub enum WalError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// Hard corruption before acknowledged records — never auto-healed.
    Corrupt {
        /// Segment sequence number the damage was found in.
        segment: u64,
        /// Byte offset of the damaged frame within the segment.
        offset: u64,
        /// What failed to parse.
        what: String,
    },
    /// Two segment files claim the same sequence number.
    DuplicateSegment(u64),
    /// The replayed record versions are not contiguous.
    VersionGap {
        /// Version recovery expected next.
        expected: u64,
        /// Version the record carried.
        found: u64,
        /// Segment the record came from.
        segment: u64,
    },
    /// The manifest or checkpoint image failed to load.
    BadCheckpoint(String),
    /// The checkpoint's grid differs from the one the caller supplied.
    GridMismatch,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                what,
            } => write!(
                f,
                "hard corruption in segment {segment} at offset {offset}: {what} \
                 (precedes acknowledged records; refusing to truncate)"
            ),
            WalError::DuplicateSegment(seq) => {
                write!(f, "duplicate wal segment sequence number {seq}")
            }
            WalError::VersionGap {
                expected,
                found,
                segment,
            } => write!(
                f,
                "wal version gap in segment {segment}: expected record {expected}, found {found}"
            ),
            WalError::BadCheckpoint(what) => write!(f, "bad checkpoint: {what}"),
            WalError::GridMismatch => write!(f, "checkpoint grid differs from the configured grid"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}
