//! Segment files: `wal-<seq>.log`, a fixed header followed by record
//! frames, plus the scanner that classifies damage as torn tail vs hard
//! corruption.

use std::path::{Path, PathBuf};

use euler_core::DeltaOp;

use crate::record::{decode_frame, FrameFailure, FRAME_LEN};
use crate::WalError;

pub(crate) const SEGMENT_MAGIC: &[u8; 4] = b"EWAL";
pub(crate) const SEGMENT_FORMAT: u32 = 1;
/// magic + format + seq + first_version.
pub(crate) const SEGMENT_HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Renders the canonical file name for segment `seq`.
pub(crate) fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:06}.log")
}

/// Parses `wal-<digits>.log` into a sequence number; `None` for any
/// other file name.
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists segment files in `dir`, sorted by sequence number. Two files
/// parsing to the same seq (e.g. `wal-7.log` and `wal-000007.log`) are
/// a hard [`WalError::DuplicateSegment`].
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(seq) = parse_segment_name(&name.to_string_lossy()) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|(seq, _)| *seq);
    for pair in found.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(WalError::DuplicateSegment(pair[0].0));
        }
    }
    Ok(found)
}

/// Encodes a segment header.
pub(crate) fn encode_header(seq: u64, first_version: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[0..4].copy_from_slice(SEGMENT_MAGIC);
    h[4..8].copy_from_slice(&SEGMENT_FORMAT.to_le_bytes());
    h[8..16].copy_from_slice(&seq.to_le_bytes());
    h[16..24].copy_from_slice(&first_version.to_le_bytes());
    h
}

/// One parsed record with its position, for replay and reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScannedRecord {
    /// Write-log version the record carries.
    pub version: u64,
    /// The operation.
    pub op: DeltaOp,
    /// Byte offset of the record's frame within its segment.
    pub offset: u64,
}

/// How a segment scan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanEnd {
    /// The segment ends exactly on a frame boundary.
    Clean,
    /// The final segment ends in a torn write: everything from `offset`
    /// on is unparseable and nothing valid follows. The recovery path
    /// truncates the file here.
    Torn {
        /// Offset the tail should be truncated to.
        offset: u64,
        /// What the torn bytes failed as.
        reason: String,
    },
}

/// Scans one segment image. `is_last` selects the tail-tolerance rule:
/// in the last segment a trailing unparseable region with **no** valid
/// frame after it is a torn tail; anywhere else (or with a valid frame
/// after it) the same damage is hard corruption, because acknowledged
/// records demonstrably follow it.
pub(crate) fn scan_segment(
    bytes: &[u8],
    seq: u64,
    is_last: bool,
) -> Result<(u64, Vec<ScannedRecord>, ScanEnd), WalError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        // A header is written in one syscall at creation; a short one on
        // the last segment is a torn creation (no records can be lost).
        if is_last {
            return Ok((
                0,
                Vec::new(),
                ScanEnd::Torn {
                    offset: 0,
                    reason: "truncated segment header".into(),
                },
            ));
        }
        return Err(WalError::Corrupt {
            segment: seq,
            offset: 0,
            what: "truncated segment header".into(),
        });
    }
    if &bytes[0..4] != SEGMENT_MAGIC {
        return Err(WalError::Corrupt {
            segment: seq,
            offset: 0,
            what: "bad segment magic".into(),
        });
    }
    let format = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if format != SEGMENT_FORMAT {
        return Err(WalError::Corrupt {
            segment: seq,
            offset: 4,
            what: format!("unsupported segment format {format}"),
        });
    }
    let header_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if header_seq != seq {
        return Err(WalError::Corrupt {
            segment: seq,
            offset: 8,
            what: format!("segment header claims seq {header_seq}"),
        });
    }
    let first_version = u64::from_le_bytes(bytes[16..24].try_into().unwrap());

    let mut records = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    while offset < bytes.len() {
        match decode_frame(&bytes[offset..]) {
            Ok(((version, op), used)) => {
                records.push(ScannedRecord {
                    version,
                    op,
                    offset: offset as u64,
                });
                offset += used;
            }
            Err(failure) => {
                return classify_failure(bytes, seq, is_last, offset, failure)
                    .map(|end| (first_version, records, end));
            }
        }
    }
    Ok((first_version, records, ScanEnd::Clean))
}

/// An unparseable frame at `offset`: torn tail or hard corruption?
/// Hard if this is not the final segment, or if any complete valid
/// frame parses anywhere after the failure point — acknowledged records
/// follow the damage, so truncation would lose them.
fn classify_failure(
    bytes: &[u8],
    seq: u64,
    is_last: bool,
    offset: usize,
    failure: FrameFailure,
) -> Result<ScanEnd, WalError> {
    let hard = |what: String| WalError::Corrupt {
        segment: seq,
        offset: offset as u64,
        what,
    };
    if !is_last {
        return Err(hard(failure.describe()));
    }
    let resync_from = offset + 1;
    if bytes.len() >= FRAME_LEN {
        for p in resync_from..=bytes.len() - FRAME_LEN {
            if decode_frame(&bytes[p..]).is_ok() {
                return Err(hard(format!(
                    "{} with a valid record after it at offset {p}",
                    failure.describe()
                )));
            }
        }
    }
    Ok(ScanEnd::Torn {
        offset: offset as u64,
        reason: failure.describe(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode_frame;
    use euler_grid::SnappedRect;

    fn ops(n: u64) -> Vec<(u64, DeltaOp)> {
        (1..=n)
            .map(|v| {
                let base = v as f64;
                (
                    v,
                    DeltaOp::insert(SnappedRect::from_bounds(
                        base + 0.25,
                        base + 1.75,
                        0.25,
                        1.75,
                    )),
                )
            })
            .collect()
    }

    fn segment(seq: u64, records: &[(u64, DeltaOp)]) -> Vec<u8> {
        let first = records.first().map_or(1, |(v, _)| *v);
        let mut bytes = encode_header(seq, first).to_vec();
        for (v, op) in records {
            bytes.extend_from_slice(&encode_frame(*v, op));
        }
        bytes
    }

    #[test]
    fn names_round_trip_and_reject_noise() {
        assert_eq!(parse_segment_name(&segment_file_name(42)), Some(42));
        assert_eq!(parse_segment_name("wal-7.log"), Some(7));
        assert_eq!(parse_segment_name("wal-.log"), None);
        assert_eq!(parse_segment_name("wal-7a.log"), None);
        assert_eq!(parse_segment_name("checkpoint-7.euh"), None);
        assert_eq!(parse_segment_name("wal-7.log.tmp"), None);
    }

    #[test]
    fn clean_segments_scan_fully() {
        let recs = ops(5);
        let bytes = segment(3, &recs);
        let (first, scanned, end) = scan_segment(&bytes, 3, true).unwrap();
        assert_eq!(first, 1);
        assert_eq!(end, ScanEnd::Clean);
        assert_eq!(scanned.len(), 5);
        assert_eq!(scanned[4].version, 5);
    }

    #[test]
    fn torn_tail_at_every_offset_truncates_to_the_last_full_record() {
        let recs = ops(4);
        let full = segment(9, &recs);
        // Cut the file at every byte position past the header: scan must
        // either end clean on a frame boundary or report a torn tail at
        // the last boundary — never a hard error, never a wrong prefix.
        for cut in SEGMENT_HEADER_LEN..full.len() {
            let bytes = &full[..cut];
            let (_, scanned, end) = scan_segment(bytes, 9, true).unwrap();
            let whole = (cut - SEGMENT_HEADER_LEN) / FRAME_LEN;
            assert_eq!(scanned.len(), whole, "cut at {cut}");
            if (cut - SEGMENT_HEADER_LEN).is_multiple_of(FRAME_LEN) {
                assert_eq!(end, ScanEnd::Clean, "cut at {cut}");
            } else {
                let boundary = SEGMENT_HEADER_LEN + whole * FRAME_LEN;
                match end {
                    ScanEnd::Torn { offset, .. } => {
                        assert_eq!(offset as usize, boundary, "cut at {cut}")
                    }
                    other => panic!("cut at {cut}: expected torn tail, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn mid_log_corruption_is_hard_even_in_the_last_segment() {
        let recs = ops(4);
        let mut bytes = segment(2, &recs);
        // Flip a byte inside record 2's payload: records 3 and 4 still
        // parse, so this is damage before acknowledged records.
        let off = SEGMENT_HEADER_LEN + FRAME_LEN + 20;
        bytes[off] ^= 0xFF;
        match scan_segment(&bytes, 2, true) {
            Err(WalError::Corrupt { segment, .. }) => assert_eq!(segment, 2),
            other => panic!("expected hard corruption, got {other:?}"),
        }
        // The same damage in a non-final segment is also hard.
        match scan_segment(&bytes, 2, false) {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("expected hard corruption, got {other:?}"),
        }
    }

    #[test]
    fn crc_failing_final_record_is_a_torn_tail() {
        let recs = ops(3);
        let mut bytes = segment(1, &recs);
        let last_payload = bytes.len() - 10;
        bytes[last_payload] ^= 0x55;
        let (_, scanned, end) = scan_segment(&bytes, 1, true).unwrap();
        assert_eq!(scanned.len(), 2);
        match end {
            ScanEnd::Torn { offset, .. } => {
                assert_eq!(offset as usize, SEGMENT_HEADER_LEN + 2 * FRAME_LEN);
            }
            other => panic!("expected torn tail, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_seq_detection() {
        let dir = std::env::temp_dir().join(format!("euler-wal-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal-7.log"), b"x").unwrap();
        std::fs::write(dir.join("wal-000007.log"), b"y").unwrap();
        match list_segments(&dir) {
            Err(WalError::DuplicateSegment(7)) => {}
            other => panic!("expected duplicate segment error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
