//! The manifest: one small CRC-guarded file naming the authoritative
//! checkpoint and the WAL position recovery should replay from.
//!
//! Written to a temp file, fsynced, then atomically renamed over
//! `MANIFEST` (and the directory fsynced), so at every instant the
//! directory holds exactly one complete manifest — the old one or the
//! new one, never a torn hybrid.

use std::io::{self, Write};
use std::path::Path;

use crate::log::fsync_dir;
use crate::record::crc32;
use crate::WalError;

const MANIFEST_MAGIC: &[u8; 4] = b"EULM";
const MANIFEST_FORMAT: u32 = 1;

/// The file name the manifest lives under.
pub(crate) const MANIFEST_NAME: &str = "MANIFEST";

/// Recovery's starting point: which checkpoint image to load and where
/// in the WAL the uncovered suffix begins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Epoch the checkpoint captured.
    pub epoch: u64,
    /// Write-log version the checkpoint covers (records `<= version`
    /// are inside the image).
    pub version: u64,
    /// First WAL segment that may hold records `> version`.
    pub wal_seq: u64,
    /// Byte offset within that segment where replay starts (the segment
    /// header, since checkpoints rotate to a fresh segment).
    pub wal_offset: u64,
    /// File name of the checkpoint image in the same directory.
    pub checkpoint: String,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let name = self.checkpoint.as_bytes();
        let mut out = Vec::with_capacity(4 + 4 + 8 * 4 + 4 + name.len() + 4);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_FORMAT.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.wal_seq.to_le_bytes());
        out.extend_from_slice(&self.wal_offset.to_le_bytes());
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, WalError> {
        let bad = |what: &str| WalError::BadCheckpoint(format!("manifest: {what}"));
        if bytes.len() < 4 + 4 + 8 * 4 + 4 + 4 {
            return Err(bad("truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != crc {
            return Err(bad("crc mismatch"));
        }
        if &body[0..4] != MANIFEST_MAGIC {
            return Err(bad("bad magic"));
        }
        let format = u32::from_le_bytes(body[4..8].try_into().unwrap());
        if format != MANIFEST_FORMAT {
            return Err(bad("unsupported format"));
        }
        let u = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().unwrap());
        let name_len = u32::from_le_bytes(body[40..44].try_into().unwrap()) as usize;
        if body.len() != 44 + name_len {
            return Err(bad("bad name length"));
        }
        let checkpoint = std::str::from_utf8(&body[44..])
            .map_err(|_| bad("checkpoint name not utf-8"))?
            .to_string();
        Ok(Manifest {
            epoch: u(8),
            version: u(16),
            wal_seq: u(24),
            wal_offset: u(32),
            checkpoint,
        })
    }

    /// Atomically installs this manifest in `dir`: temp file → fsync →
    /// rename → directory fsync.
    pub(crate) fn install(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.encode())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
        fsync_dir(dir)
    }

    /// Loads the manifest from `dir`; `Ok(None)` when none exists (a
    /// fresh directory or one that never checkpointed). A present but
    /// unreadable manifest is a hard error — it was installed
    /// atomically, so damage means real corruption, not a crash.
    pub(crate) fn load(dir: &Path) -> Result<Option<Manifest>, WalError> {
        let path = dir.join(MANIFEST_NAME);
        match std::fs::read(&path) {
            Ok(bytes) => Manifest::decode(&bytes).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(WalError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            epoch: 5,
            version: 1234,
            wal_seq: 7,
            wal_offset: 24,
            checkpoint: "checkpoint-001234.euh".into(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn every_flip_and_truncation_is_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x01;
            assert!(Manifest::decode(&m).is_err(), "flip at {i}");
        }
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn install_then_load() {
        let dir = std::env::temp_dir().join(format!("euler-wal-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let m = sample();
        m.install(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m.clone()));
        // Reinstall overwrites atomically.
        let m2 = Manifest { version: 9999, ..m };
        m2.install(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m2));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
