//! [`DurableLive`]: a [`LiveEulerHistogram`] whose write log survives
//! process death — append + fsync to the WAL first, apply and
//! acknowledge second — plus the recovery path that rebuilds exactly
//! the acknowledged prefix on boot.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use euler_core::snapshot::DEFAULT_SEAL_EVERY;
use euler_core::{DeltaOp, EulerHistogram, LiveEulerHistogram};
use euler_engine::faults::{wal_fault, FaultKind, FaultSite};
use euler_grid::{Grid, SnappedRect};

use crate::log::{fsync_dir, FsyncPolicy, Wal, WalConfig};
use crate::manifest::Manifest;
use crate::segment::{list_segments, scan_segment, ScanEnd, SEGMENT_HEADER_LEN};
use crate::WalError;

/// Configuration for a [`DurableLive`] store.
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Append-side settings (fsync policy, segment rotation size).
    pub wal: WalConfig,
    /// The live histogram's memtable seal threshold.
    pub seal_every: usize,
    /// The live histogram's automatic refreeze threshold.
    pub refreeze_every: Option<usize>,
    /// Take a checkpoint automatically every this many acknowledged
    /// records (`None` leaves checkpointing to explicit calls and
    /// shutdown). Checkpoints bound replay time and let old segments be
    /// pruned.
    pub checkpoint_every: Option<u64>,
}

impl Default for DurableConfig {
    fn default() -> DurableConfig {
        DurableConfig {
            wal: WalConfig::default(),
            seal_every: DEFAULT_SEAL_EVERY,
            refreeze_every: Some(1024),
            checkpoint_every: Some(4096),
        }
    }
}

impl DurableConfig {
    /// Same config with a different fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> DurableConfig {
        self.wal.fsync = fsync;
        self
    }
}

/// A torn tail recovery truncated away: a warning, not an error — the
/// bytes were a record in flight when the process died, never
/// acknowledged durable under `FsyncPolicy::Always`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment the tail was found in.
    pub segment: u64,
    /// Offset the segment was truncated to.
    pub offset: u64,
    /// What the torn bytes failed to parse as.
    pub reason: String,
}

/// What recovery did on boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch the loaded checkpoint captured (1 when starting empty).
    pub checkpoint_epoch: u64,
    /// Write-log version the checkpoint covered (0 when starting empty).
    pub checkpoint_version: u64,
    /// Records replayed from the WAL suffix.
    pub replayed: u64,
    /// Final recovered version (`checkpoint_version + replayed`).
    pub version: u64,
    /// Segments scanned (including fully-covered ones skipped).
    pub segments_scanned: usize,
    /// The torn tail truncated away, if any.
    pub torn_tail: Option<TornTail>,
}

struct Inner {
    wal: Wal,
    records_since_checkpoint: u64,
}

/// A durable [`LiveEulerHistogram`]: every write is appended to the WAL
/// (and fsynced per policy) *before* it is applied and acknowledged, so
/// [`DurableLive::open`] after a crash rebuilds exactly the
/// acknowledged prefix — checkpoint image + WAL suffix replay.
///
/// All writes must go through this handle; reads go straight to the
/// shared [`LiveEulerHistogram`] (pin a snapshot, answer lock-free) and
/// never touch the WAL.
pub struct DurableLive {
    live: Arc<LiveEulerHistogram>,
    dir: PathBuf,
    cfg: DurableConfig,
    inner: Mutex<Inner>,
    checkpoint_failures: AtomicU64,
    last_checkpoint_error: Mutex<Option<String>>,
}

impl std::fmt::Debug for DurableLive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLive")
            .field("dir", &self.dir)
            .field("version", &self.live.version())
            .finish_non_exhaustive()
    }
}

impl DurableLive {
    /// Opens (and if necessary recovers) a durable store in `dir`,
    /// creating the directory when missing. `grid` is the histogram
    /// grid an empty store starts with; a checkpoint found on disk must
    /// match it ([`WalError::GridMismatch`] otherwise).
    pub fn open(
        dir: &Path,
        grid: Grid,
        cfg: DurableConfig,
    ) -> Result<(DurableLive, RecoveryReport), WalError> {
        std::fs::create_dir_all(dir)?;

        // 1. Manifest → checkpoint image (or a fresh empty base).
        let manifest = Manifest::load(dir)?;
        let (base, ckpt_epoch, ckpt_version, replay_from_seq) = match &manifest {
            Some(m) => {
                let bytes = std::fs::read(dir.join(&m.checkpoint))
                    .map_err(|e| WalError::BadCheckpoint(format!("{}: {e}", m.checkpoint)))?;
                let hist = EulerHistogram::from_bytes(bytes::Bytes::from(bytes))
                    .map_err(|e| WalError::BadCheckpoint(format!("{}: {e}", m.checkpoint)))?;
                if *hist.grid() != grid {
                    return Err(WalError::GridMismatch);
                }
                (hist, m.epoch, m.version, m.wal_seq)
            }
            None => (EulerHistogram::new(grid), 1, 0, 0),
        };

        // 2. Scan segments and collect the replay suffix.
        let segments = list_segments(dir)?;
        let mut replay: Vec<DeltaOp> = Vec::new();
        let mut expected_next = ckpt_version + 1;
        let mut torn_tail: Option<TornTail> = None;
        let mut max_seq = manifest.as_ref().map_or(0, |m| m.wal_seq);
        let last_idx = segments.len().wrapping_sub(1);
        for (i, (seq, path)) in segments.iter().enumerate() {
            max_seq = max_seq.max(*seq);
            if *seq < replay_from_seq {
                continue; // fully covered by the checkpoint; stale.
            }
            let bytes = std::fs::read(path)?;
            let (_, records, end) = scan_segment(&bytes, *seq, i == last_idx)?;
            for r in &records {
                if r.version <= ckpt_version {
                    continue; // covered by the checkpoint; idempotent skip.
                }
                if r.version != expected_next {
                    return Err(WalError::VersionGap {
                        expected: expected_next,
                        found: r.version,
                        segment: *seq,
                    });
                }
                replay.push(r.op);
                expected_next += 1;
            }
            if let ScanEnd::Torn { offset, reason } = end {
                // Physically truncate the torn bytes so the next boot
                // (and any external reader) sees a clean log.
                let f = std::fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(offset)?;
                f.sync_data()?;
                torn_tail = Some(TornTail {
                    segment: *seq,
                    offset,
                    reason,
                });
            }
        }

        // 3. Rebuild the live histogram and replay the suffix.
        let live = LiveEulerHistogram::restore(
            base,
            cfg.seal_every,
            cfg.refreeze_every,
            ckpt_epoch,
            ckpt_version,
        );
        for op in &replay {
            live.apply(*op);
        }
        let report = RecoveryReport {
            checkpoint_epoch: ckpt_epoch,
            checkpoint_version: ckpt_version,
            replayed: replay.len() as u64,
            version: live.version(),
            segments_scanned: segments.len(),
            torn_tail,
        };

        // 4. Open a fresh segment for new appends (sequence numbers are
        // never reused, so a torn previous tail can never be confused
        // with new records).
        let wal = Wal::create(dir, cfg.wal, max_seq + 1, live.version() + 1)?;
        Ok((
            DurableLive {
                live: Arc::new(live),
                dir: dir.to_path_buf(),
                cfg,
                inner: Mutex::new(Inner {
                    wal,
                    records_since_checkpoint: 0,
                }),
                checkpoint_failures: AtomicU64::new(0),
                last_checkpoint_error: Mutex::new(None),
            },
            report,
        ))
    }

    /// The shared live histogram — hand this to read paths (browse
    /// sessions, estimators); they pin snapshots without touching the
    /// WAL.
    pub fn live(&self) -> &Arc<LiveEulerHistogram> {
        &self.live
    }

    /// Write-log version (number of acknowledged writes).
    pub fn version(&self) -> u64 {
        self.live.version()
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// Live object count.
    pub fn len(&self) -> u64 {
        self.live.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of background checkpoints that failed (the op that
    /// triggered them was still acknowledged — the WAL has it).
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures.load(Relaxed)
    }

    /// The most recent background-checkpoint failure, if any.
    pub fn last_checkpoint_error(&self) -> Option<String> {
        self.last_checkpoint_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Durably applies one write: WAL append (+ fsync per policy), then
    /// the in-memory apply. Returns the acknowledged write-log version.
    /// On `Err` the write is **not** acknowledged, not applied, and the
    /// WAL is poisoned until restart — the fail-stop contract.
    pub fn apply(&self, op: DeltaOp) -> io::Result<u64> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if op.sign < 0 && self.live.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "remove from empty live histogram",
            ));
        }
        let version = inner.wal.append(&op)?;
        self.live.apply(op);
        debug_assert_eq!(self.live.version(), version);
        inner.records_since_checkpoint += 1;
        if let Some(every) = self.cfg.checkpoint_every {
            if inner.records_since_checkpoint >= every {
                if let Err(e) = self.checkpoint_locked(&mut inner) {
                    // The op is acknowledged (it is in the WAL); a failed
                    // background checkpoint only delays pruning.
                    self.checkpoint_failures.fetch_add(1, Relaxed);
                    *self
                        .last_checkpoint_error
                        .lock()
                        .unwrap_or_else(|p| p.into_inner()) = Some(e.to_string());
                }
            }
        }
        Ok(version)
    }

    /// Durably inserts a snapped object.
    pub fn insert(&self, o: &SnappedRect) -> io::Result<u64> {
        self.apply(DeltaOp::insert(*o))
    }

    /// Durably removes a previously inserted object.
    pub fn remove(&self, o: &SnappedRect) -> io::Result<u64> {
        self.apply(DeltaOp::delete(*o))
    }

    /// Forces every acknowledged record to disk — the shutdown drain,
    /// and the commit point for the `EveryN`/`Never` policies.
    pub fn sync(&self) -> io::Result<()> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .wal
            .sync()
    }

    /// Takes a checkpoint now: folds the delta, writes the image through
    /// the persist codec, rotates the WAL, installs the manifest, prunes
    /// covered segments and superseded images. Returns the `(epoch,
    /// version)` the checkpoint captured.
    pub fn checkpoint(&self) -> io::Result<(u64, u64)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.checkpoint_locked(&mut inner)
    }

    fn checkpoint_locked(&self, inner: &mut Inner) -> io::Result<(u64, u64)> {
        match wal_fault(FaultSite::WalCheckpoint) {
            Some(FaultKind::IoError) => {
                return Err(io::Error::other("injected wal fault at WalCheckpoint"));
            }
            Some(FaultKind::ShortWrite(n)) => {
                // Tear the temp image: harmless on recovery (the rename
                // never happens), but the checkpoint attempt fails.
                let image = self.live.checkpoint_image();
                let tmp = self.dir.join("checkpoint.tmp");
                if let Ok(mut f) = std::fs::File::create(&tmp) {
                    let keep = (n as usize).min(image.bytes.len());
                    let _ = f.write_all(&image.bytes.as_slice()[..keep]);
                    let _ = f.sync_data();
                }
                return Err(io::Error::other("injected wal fault at WalCheckpoint"));
            }
            _ => {}
        }
        // Everything appended so far must be durable before the manifest
        // can claim the image + this WAL position as authoritative.
        inner.wal.sync()?;
        let image = self.live.checkpoint_image();
        let name = format!("checkpoint-{:06}.euh", image.version);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(image.bytes.as_slice())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, self.dir.join(&name))?;
        fsync_dir(&self.dir)?;
        // Fresh segment so the manifest names a clean replay start.
        inner.wal.rotate()?;
        let manifest = Manifest {
            epoch: image.epoch,
            version: image.version,
            wal_seq: inner.wal.seq(),
            wal_offset: SEGMENT_HEADER_LEN as u64,
            checkpoint: name.clone(),
        };
        manifest.install(&self.dir)?;
        inner.records_since_checkpoint = 0;
        self.prune(&name, inner.wal.seq());
        Ok((image.epoch, image.version))
    }

    /// Best-effort removal of segments and images the manifest no longer
    /// needs. Failures are harmless (retried by the next checkpoint).
    fn prune(&self, keep_checkpoint: &str, keep_seq_from: u64) {
        if let Ok(segments) = list_segments(&self.dir) {
            for (seq, path) in segments {
                if seq < keep_seq_from {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("checkpoint-")
                    && name.ends_with(".euh")
                    && name != keep_checkpoint
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}
