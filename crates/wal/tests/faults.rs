//! Fault-injection tests (only with `--features failpoints`): armed
//! `Wal*` fail-points must fail the op, poison the log, and leave a
//! directory that recovers to a consistent acknowledged prefix.
#![cfg(feature = "failpoints")]

use std::path::PathBuf;

use euler_core::{DeltaOp, EulerHistogram, FrozenEulerHistogram};
use euler_engine::faults::{install, FaultKind, FaultPlan, FaultSite};
use euler_geom::Rect;
use euler_grid::{DataSpace, Grid, SnappedRect, Snapper};
use euler_wal::{DurableConfig, DurableLive};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn grid(nx: usize, ny: usize) -> Grid {
    Grid::new(
        DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
        nx,
        ny,
    )
    .unwrap()
}

fn write_log(g: &Grid, n: usize, seed: u64) -> Vec<DeltaOp> {
    let s = Snapper::new(*g);
    let mut rng = StdRng::seed_from_u64(seed);
    let (w, h) = (g.nx() as f64, g.ny() as f64);
    let mut alive: Vec<SnappedRect> = Vec::new();
    let mut log = Vec::with_capacity(n);
    for _ in 0..n {
        if !alive.is_empty() && rng.gen_bool(0.3) {
            let i = rng.gen_range(0..alive.len());
            log.push(DeltaOp::delete(alive.swap_remove(i)));
        } else {
            let x = rng.gen_range(0.0..w - 0.05);
            let y = rng.gen_range(0.0..h - 0.05);
            let ww = rng.gen_range(0.05..w);
            let hh = rng.gen_range(0.05..h);
            let o = s.snap(&Rect::new(x, y, (x + ww).min(w), (y + hh).min(h)).unwrap());
            alive.push(o);
            log.push(DeltaOp::insert(o));
        }
    }
    log
}

fn rebuild(g: Grid, log: &[DeltaOp]) -> FrozenEulerHistogram {
    let mut h = EulerHistogram::new(g);
    h.apply_signed_batch(log.iter().map(|op| (&op.rect, op.sign)));
    h.freeze()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("euler-wal-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `log` against a store with `plan` armed, "killing" the process
/// at the first error; then recovers with the plan disarmed and checks
/// the crash law: every acknowledged op survived, and the recovered
/// state is a frozen rebuild of an attempted-order prefix (a failed
/// fsync may leave the in-flight record durable, so the prefix may run
/// one record past the acknowledged count — never a gap, never a
/// reorder).
fn kill_and_recover(tag: &str, plan: FaultPlan, cfg: DurableConfig, seed: u64) {
    let dir = temp_dir(tag);
    let g = grid(10, 8);
    let log = write_log(&g, 24, seed);
    let mut acked = 0usize;
    let mut failed = false;
    {
        let _guard = install(plan);
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        for op in &log {
            match store.apply(*op) {
                Ok(_) => acked += 1,
                Err(_) => {
                    failed = true;
                    // Poisoned: every later op must fail fast too.
                    assert!(store.apply(log[0]).is_err(), "{tag}: not poisoned");
                    break;
                }
            }
        }
        // `store` is dropped mid-flight — the simulated kill.
    }
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    let recovered = store.version() as usize;
    assert!(
        recovered >= acked && recovered <= acked + usize::from(failed),
        "{tag}: acked {acked}, recovered {recovered}"
    );
    assert_eq!(
        *store.live().refreeze().frozen().as_ref(),
        rebuild(g, &log[..recovered]),
        "{tag}: recovered state is not the prefix rebuild"
    );
    assert_eq!(report.version as usize, recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_append_kills_the_op_and_recovery_drops_the_tail() {
    // Tear the 4th append after 0, 17, and 48 of its 49 frame bytes.
    for torn_bytes in [0u64, 17, 48] {
        kill_and_recover(
            &format!("torn-append-{torn_bytes}"),
            FaultPlan::new().with(FaultSite::WalAppend, 3, FaultKind::ShortWrite(torn_bytes)),
            DurableConfig::default(),
            41,
        );
    }
}

#[test]
fn append_io_error_poisons_and_recovers_the_acked_prefix() {
    kill_and_recover(
        "append-io",
        FaultPlan::new().with(FaultSite::WalAppend, 5, FaultKind::IoError),
        DurableConfig::default(),
        42,
    );
}

#[test]
fn fsync_failure_poisons_and_recovery_stays_a_prefix() {
    kill_and_recover(
        "fsync-io",
        FaultPlan::new().with(FaultSite::WalFsync, 7, FaultKind::IoError),
        DurableConfig::default(),
        43,
    );
}

#[test]
fn seeded_wal_plans_kill_and_recover_cleanly() {
    for seed in 0..32u64 {
        kill_and_recover(
            &format!("seeded-{seed}"),
            FaultPlan::wal_from_seed(seed),
            DurableConfig::default(),
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
    }
}

#[test]
fn checkpoint_fault_fails_the_checkpoint_but_not_the_ingest() {
    let dir = temp_dir("ckpt-fault");
    let g = grid(10, 8);
    let log = write_log(&g, 30, 44);
    let cfg = DurableConfig {
        checkpoint_every: Some(10),
        ..DurableConfig::default()
    };
    {
        let _guard = install(
            FaultPlan::new()
                .with(FaultSite::WalCheckpoint, 0, FaultKind::IoError)
                .with(FaultSite::WalCheckpoint, 1, FaultKind::ShortWrite(100)),
        );
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        // Every apply must succeed: auto-checkpoint failures are
        // swallowed (the WAL holds the records), only counted.
        for op in &log {
            store.apply(*op).unwrap();
        }
        assert_eq!(store.checkpoint_failures(), 2);
        assert!(store.last_checkpoint_error().unwrap().contains("injected"));
        // The third auto-checkpoint (index 2, unarmed) succeeded.
        assert_eq!(store.version(), 30);
    }
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    assert_eq!(report.version, 30);
    assert_eq!(*store.live().refreeze().frozen().as_ref(), rebuild(g, &log));
    std::fs::remove_dir_all(&dir).unwrap();
}
