//! Recovery-path integration tests: every way a data directory can look
//! on boot — fresh, checkpoint-only, WAL-only, both, torn, duplicated —
//! must either recover to exactly the acknowledged prefix or fail hard.

use std::path::{Path, PathBuf};

use euler_core::{DeltaOp, EulerHistogram, FrozenEulerHistogram};
use euler_geom::Rect;
use euler_grid::{DataSpace, Grid, SnappedRect, Snapper};
use euler_wal::{DurableConfig, DurableLive, FsyncPolicy, WalError};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn grid(nx: usize, ny: usize) -> Grid {
    Grid::new(
        DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
        nx,
        ny,
    )
    .unwrap()
}

/// A seeded write log: inserts and valid deletes of earlier inserts.
fn write_log(g: &Grid, n: usize, seed: u64) -> Vec<DeltaOp> {
    let s = Snapper::new(*g);
    let mut rng = StdRng::seed_from_u64(seed);
    let (w, h) = (g.nx() as f64, g.ny() as f64);
    let mut alive: Vec<SnappedRect> = Vec::new();
    let mut log = Vec::with_capacity(n);
    for _ in 0..n {
        if !alive.is_empty() && rng.gen_bool(0.3) {
            let i = rng.gen_range(0..alive.len());
            log.push(DeltaOp::delete(alive.swap_remove(i)));
        } else {
            let x = rng.gen_range(0.0..w - 0.05);
            let y = rng.gen_range(0.0..h - 0.05);
            let ww = rng.gen_range(0.05..w);
            let hh = rng.gen_range(0.05..h);
            let o = s.snap(&Rect::new(x, y, (x + ww).min(w), (y + hh).min(h)).unwrap());
            alive.push(o);
            log.push(DeltaOp::insert(o));
        }
    }
    log
}

/// Frozen rebuild of a write-log prefix — the recovery oracle.
fn rebuild(g: Grid, log: &[DeltaOp]) -> FrozenEulerHistogram {
    let mut h = EulerHistogram::new(g);
    h.apply_signed_batch(log.iter().map(|op| (&op.rect, op.sign)));
    h.freeze()
}

/// Fresh unique temp directory for one test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("euler-wal-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn frozen_of(store: &DurableLive) -> FrozenEulerHistogram {
    store.live().refreeze().frozen().as_ref().clone()
}

fn assert_matches_prefix(store: &DurableLive, g: Grid, log: &[DeltaOp], acked: usize) {
    assert_eq!(store.version(), acked as u64);
    assert_eq!(frozen_of(store), rebuild(g, &log[..acked]));
}

fn list(dir: &Path, suffix: &str) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(suffix))
        .collect();
    names.sort();
    names
}

#[test]
fn empty_directory_starts_fresh() {
    let dir = temp_dir("fresh");
    let g = grid(8, 6);
    let (store, report) = DurableLive::open(&dir, g, DurableConfig::default()).unwrap();
    assert_eq!(report.checkpoint_version, 0);
    assert_eq!(report.replayed, 0);
    assert_eq!(report.segments_scanned, 0);
    assert_eq!(report.torn_tail, None);
    assert_eq!(store.version(), 0);
    assert!(store.is_empty());
    // The directory now has one empty segment and no manifest.
    assert_eq!(list(&dir, ".log"), vec!["wal-000001.log"]);
    assert_eq!(list(&dir, "MANIFEST"), Vec::<String>::new());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_only_recovery_replays_everything() {
    let dir = temp_dir("wal-only");
    let g = grid(10, 8);
    let log = write_log(&g, 73, 11);
    let cfg = DurableConfig {
        checkpoint_every: None, // never checkpoint: recovery is pure replay
        ..DurableConfig::default()
    };
    {
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        for op in &log {
            store.apply(*op).unwrap();
        }
        assert_matches_prefix(&store, g, &log, log.len());
    }
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    assert_eq!(report.checkpoint_version, 0);
    assert_eq!(report.replayed, log.len() as u64);
    assert_matches_prefix(&store, g, &log, log.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_plus_suffix_recovery() {
    let dir = temp_dir("ckpt-suffix");
    let g = grid(12, 9);
    let log = write_log(&g, 90, 23);
    let cfg = DurableConfig {
        checkpoint_every: None,
        ..DurableConfig::default()
    };
    {
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        for op in &log[..60] {
            store.apply(*op).unwrap();
        }
        let (_, v) = store.checkpoint().unwrap();
        assert_eq!(v, 60);
        for op in &log[60..] {
            store.apply(*op).unwrap();
        }
    }
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    assert_eq!(report.checkpoint_version, 60);
    assert_eq!(report.replayed, 30);
    assert_eq!(report.version, 90);
    assert_matches_prefix(&store, g, &log, log.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_with_no_wal_segments_recovers_from_the_image_alone() {
    let dir = temp_dir("ckpt-no-wal");
    let g = grid(9, 7);
    let log = write_log(&g, 40, 5);
    let cfg = DurableConfig {
        checkpoint_every: None,
        ..DurableConfig::default()
    };
    {
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        for op in &log {
            store.apply(*op).unwrap();
        }
        store.checkpoint().unwrap();
    }
    // Lose every WAL segment (e.g. a backup that copied only the
    // checkpoint + manifest). The checkpoint covers all acked records,
    // so recovery succeeds with zero replay.
    for name in list(&dir, ".log") {
        std::fs::remove_file(dir.join(name)).unwrap();
    }
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    assert_eq!(report.checkpoint_version, 40);
    assert_eq!(report.replayed, 0);
    assert_eq!(report.segments_scanned, 0);
    assert_matches_prefix(&store, g, &log, log.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovering_twice_is_idempotent() {
    let dir = temp_dir("twice");
    let g = grid(10, 10);
    let log = write_log(&g, 55, 31);
    let cfg = DurableConfig {
        checkpoint_every: Some(20), // exercise auto-checkpointing too
        ..DurableConfig::default()
    };
    {
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        for op in &log {
            store.apply(*op).unwrap();
        }
    }
    let first = {
        let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
        assert_matches_prefix(&store, g, &log, log.len());
        (report.checkpoint_version, report.version, frozen_of(&store))
    };
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    assert_eq!(report.checkpoint_version, first.0);
    assert_eq!(report.version, first.1);
    assert_eq!(frozen_of(&store), first.2);
    assert_matches_prefix(&store, g, &log, log.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_is_truncated_and_reported_once() {
    let dir = temp_dir("torn");
    let g = grid(8, 8);
    let log = write_log(&g, 30, 47);
    let cfg = DurableConfig {
        checkpoint_every: None,
        ..DurableConfig::default()
    };
    {
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        for op in &log {
            store.apply(*op).unwrap();
        }
    }
    // Tear 17 bytes off the final record of the newest segment.
    let last = list(&dir, ".log").pop().unwrap();
    let path = dir.join(&last);
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 17).unwrap();
    drop(f);
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    let torn = report.torn_tail.expect("torn tail reported");
    assert_eq!(report.replayed, 29);
    assert_matches_prefix(&store, g, &log, 29);
    // The truncation is physical: the file now ends at the boundary.
    assert_eq!(std::fs::metadata(&path).unwrap().len(), torn.offset);
    drop(store);
    // A second recovery sees a clean log — the tear is gone.
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    assert_eq!(report.torn_tail, None);
    assert_matches_prefix(&store, g, &log, 29);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_segment_sequence_is_a_hard_error() {
    let dir = temp_dir("dup");
    let g = grid(6, 6);
    {
        let (store, _) = DurableLive::open(&dir, g, DurableConfig::default()).unwrap();
        store
            .insert(&SnappedRect::from_bounds(0.25, 1.75, 0.25, 1.75))
            .unwrap();
    }
    // An un-canonically named copy of segment 1.
    std::fs::copy(dir.join("wal-000001.log"), dir.join("wal-1.log")).unwrap();
    match DurableLive::open(&dir, g, DurableConfig::default()) {
        Err(WalError::DuplicateSegment(1)) => {}
        other => panic!("expected duplicate segment error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mismatched_grid_is_rejected() {
    let dir = temp_dir("grid");
    let g = grid(8, 6);
    {
        let (store, _) = DurableLive::open(&dir, g, DurableConfig::default()).unwrap();
        store
            .insert(&SnappedRect::from_bounds(0.25, 1.75, 0.25, 1.75))
            .unwrap();
        store.checkpoint().unwrap();
    }
    match DurableLive::open(&dir, grid(7, 6), DurableConfig::default()) {
        Err(WalError::GridMismatch) => {}
        other => panic!("expected grid mismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segment_rotation_spans_recovery() {
    let dir = temp_dir("rotate");
    let g = grid(10, 8);
    let log = write_log(&g, 120, 77);
    let mut cfg = DurableConfig {
        checkpoint_every: None,
        ..DurableConfig::default()
    };
    // ~20 records per segment → six-plus segments.
    cfg.wal.segment_bytes = 1024;
    {
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        for op in &log {
            store.apply(*op).unwrap();
        }
    }
    assert!(list(&dir, ".log").len() >= 4, "rotation produced segments");
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    assert_eq!(report.replayed, 120);
    assert!(report.segments_scanned >= 4);
    assert_matches_prefix(&store, g, &log, log.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_fsync_policy_survives_a_graceful_close() {
    for (tag, fsync) in [
        ("always", FsyncPolicy::Always),
        ("every8", FsyncPolicy::EveryN(8)),
        ("never", FsyncPolicy::Never),
    ] {
        let dir = temp_dir(&format!("policy-{tag}"));
        let g = grid(9, 9);
        let log = write_log(&g, 33, 3);
        let cfg = DurableConfig::default().with_fsync(fsync);
        {
            let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
            for op in &log {
                store.apply(*op).unwrap();
            }
            store.sync().unwrap(); // the graceful-shutdown drain
        }
        let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
        assert_matches_prefix(&store, g, &log, log.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn checkpoint_prunes_covered_segments_and_old_images() {
    let dir = temp_dir("prune");
    let g = grid(10, 10);
    let log = write_log(&g, 80, 13);
    let cfg = DurableConfig {
        checkpoint_every: None,
        ..DurableConfig::default()
    };
    let (store, _) = DurableLive::open(&dir, g, cfg).unwrap();
    for op in &log[..40] {
        store.apply(*op).unwrap();
    }
    store.checkpoint().unwrap();
    for op in &log[40..] {
        store.apply(*op).unwrap();
    }
    store.checkpoint().unwrap();
    // Only the newest image and the post-checkpoint segment remain.
    assert_eq!(list(&dir, ".euh"), vec!["checkpoint-000080.euh"]);
    let segments = list(&dir, ".log");
    assert_eq!(segments.len(), 1);
    drop(store);
    let (store, report) = DurableLive::open(&dir, g, cfg).unwrap();
    assert_eq!(report.checkpoint_version, 80);
    assert_eq!(report.replayed, 0);
    assert_matches_prefix(&store, g, &log, log.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn delete_from_empty_store_is_rejected_without_a_wal_record() {
    let dir = temp_dir("empty-delete");
    let g = grid(6, 6);
    let (store, _) = DurableLive::open(&dir, g, DurableConfig::default()).unwrap();
    let r = SnappedRect::from_bounds(0.25, 1.75, 0.25, 1.75);
    assert!(store.remove(&r).is_err());
    assert_eq!(store.version(), 0);
    drop(store);
    let (store, report) = DurableLive::open(&dir, g, DurableConfig::default()).unwrap();
    assert_eq!(report.replayed, 0);
    assert_eq!(store.version(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
