use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::Dense2D;
use crate::PrefixSum2D;

/// One parity-pair run: starting at internal index `start`, the row
/// value at internal index `i` is `v[i & 1]` until the next run begins.
type Run = (u32, [i64; 2]);

/// Bytes a run costs in the pooled arrays (`starts` entry + `vals`
/// entry).
const RUN_BYTES: usize = 4 + 16;

/// A run-length–compressed twin of [`PrefixSum2D`] — same prefix values,
/// a fraction of the bytes on sparse or banded data.
///
/// # Why prefix rows compress
///
/// A row of the prefix cube, `P(·, y)`, is the column-wise accumulation
/// of every bucket at or below `y`. For Euler histograms the buckets are
/// signed `±1` patterns over object rectangles, so each object that has
/// *started* by row `y` contributes an alternating `+1/−1` column
/// pattern over its x-extent whose running sum is `1, 0, 1, 0, …` — a
/// function that is **constant on each column-parity class** between
/// object x-edges. `P(·, y)` restricted to even (resp. odd) internal
/// columns is therefore piecewise constant, breaking only at the
/// distinct x-edge columns of started objects. Encoding the row as
/// *parity-pair runs* `(start, [even_value, odd_value])` captures both
/// classes in one directory, and a row with `r` distinct breaks costs
/// `O(r)` instead of `O(width)`.
///
/// Rows themselves repeat: `P(·, y) = P(·, y − 1)` whenever row `y` of
/// the underlying array is all zero (no object y-edge crosses it), so a
/// per-row directory into **deduplicated** encoded rows collapses every
/// horizontal band between object edges to 4 bytes.
///
/// # Contract
///
/// Every query entry point is bit-identical to its [`PrefixSum2D`]
/// counterpart: same clip semantics (`clamp(v, −1, dim − 1) + 1` onto a
/// zero guard plane), same emptiness test in
/// [`Self::range_sum_clipped`], same four-corner algebra (without
/// emptiness tests) in [`Self::signed_sum4`] and
/// [`Self::range_sum_pair`]. The conformance crate holds this as the
/// compressed-tier law.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedPrefix2D {
    width: usize,
    height: usize,
    /// Internal row `iy` (0 = guard) → id of its unique encoded row.
    row_dir: Vec<u32>,
    /// Unique row `u` owns runs `starts[offsets[u]..offsets[u + 1]]`
    /// (and the matching `vals` range).
    offsets: Vec<u32>,
    /// Run start positions, in internal (guard-led) index space.
    starts: Vec<u32>,
    /// Parity-pair values per run: value at internal `i` is `v[i & 1]`.
    vals: Vec<[i64; 2]>,
}

impl CompressedPrefix2D {
    /// Builds the compressed cube from a dense array. Never fails; on
    /// incompressible data the result is simply *larger* than the dense
    /// cube — use [`Self::build_capped`] when a budget applies.
    pub fn build(a: &Dense2D) -> CompressedPrefix2D {
        Self::build_capped(a, usize::MAX).expect("uncapped build cannot abort")
    }

    /// Builds the compressed cube, aborting with `None` as soon as the
    /// encoded size exceeds `max_bytes` — the tier-selection heuristic
    /// passes a fraction of the projected dense footprint here so an
    /// incompressible build stops early instead of ballooning.
    pub fn build_capped(a: &Dense2D, max_bytes: usize) -> Option<CompressedPrefix2D> {
        let (w, h) = (a.width(), a.height());
        let mut row_dir = Vec::with_capacity(h + 1);
        let mut offsets: Vec<u32> = vec![0];
        let mut starts: Vec<u32> = Vec::new();
        let mut vals: Vec<[i64; 2]> = Vec::new();
        let mut seen: HashMap<Box<[Run]>, u32> = HashMap::new();

        // acc[i] = P(i − 1, y) for the current row (acc[0] = guard 0).
        let mut acc = vec![0i64; w + 1];
        let mut encoded: Vec<Run> = Vec::new();
        let mut run_bytes = 0usize;

        // The guard row (all zeros) is always unique row 0; a dedicated
        // encode of `acc` (still zeroed) keeps the encoder the single
        // source of truth for the run shape.
        for iy in 0..=h {
            if iy > 0 {
                let y = iy - 1;
                let mut row_acc = 0i64;
                for x in 0..w {
                    row_acc += a.get(x, y);
                    acc[x + 1] += row_acc;
                }
            }
            encode_parity_runs(&acc, &mut encoded);
            let next_id = offsets.len() as u32 - 1;
            let id = match seen.get(&encoded[..]) {
                Some(&id) => id,
                None => {
                    starts.extend(encoded.iter().map(|r| r.0));
                    vals.extend(encoded.iter().map(|r| r.1));
                    offsets.push(starts.len() as u32);
                    run_bytes += encoded.len() * RUN_BYTES;
                    seen.insert(encoded.clone().into_boxed_slice(), next_id);
                    next_id
                }
            };
            row_dir.push(id);
            let bytes = 4 * row_dir.len() + 4 * offsets.len() + run_bytes;
            if bytes > max_bytes {
                return None;
            }
        }
        Some(CompressedPrefix2D {
            width: w,
            height: h,
            row_dir,
            offsets,
            starts,
            vals,
        })
    }

    /// Width of the summarized array.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the summarized array.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of unique (deduplicated) encoded rows.
    pub fn unique_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total runs across unique rows.
    pub fn run_count(&self) -> usize {
        self.starts.len()
    }

    /// Same branch-free clip as the dense cube: internal index of a
    /// clipped signed coordinate, 0 selecting the guard plane.
    #[inline(always)]
    fn clip(v: i64, dim: usize) -> usize {
        (v.min(dim as i64 - 1) + 1).max(0) as usize
    }

    /// Prefix value at *internal* (guard-shifted) coordinates.
    #[inline]
    fn at(&self, ix: usize, iy: usize) -> i64 {
        debug_assert!(ix <= self.width && iy <= self.height);
        let row = self.row_dir[iy] as usize;
        let lo = self.offsets[row] as usize;
        let hi = self.offsets[row + 1] as usize;
        let runs = &self.starts[lo..hi];
        // Last run with start ≤ ix; runs always begin with start 0.
        let idx = runs.partition_point(|&s| s as usize <= ix) - 1;
        self.vals[lo + idx][ix & 1]
    }

    /// Cumulative sum at clipped signed coordinates — bit-identical to
    /// [`PrefixSum2D::prefix_clipped`].
    #[inline]
    pub fn prefix_clipped(&self, x: i64, y: i64) -> i64 {
        self.at(Self::clip(x, self.width), Self::clip(y, self.height))
    }

    /// Sum over a clipped signed index rectangle — bit-identical to
    /// [`PrefixSum2D::range_sum_clipped`], including the emptiness test
    /// for windows that invert.
    #[inline]
    pub fn range_sum_clipped(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> i64 {
        let lo_x = Self::clip(x0 - 1, self.width);
        let hi_x = Self::clip(x1, self.width);
        let lo_y = Self::clip(y0 - 1, self.height);
        let hi_y = Self::clip(y1, self.height);
        if lo_x >= hi_x || lo_y >= hi_y {
            return 0;
        }
        self.at(hi_x, hi_y) - self.at(lo_x, hi_y) - self.at(hi_x, lo_y) + self.at(lo_x, lo_y)
    }

    /// Four clipped window sums, one per lane — bit-identical to
    /// [`PrefixSum2D::signed_sum4`] (the pure four-corner combination
    /// with no emptiness tests; callers pass ordered windows).
    #[inline]
    pub fn signed_sum4(&self, x0: [i64; 4], y0: [i64; 4], x1: [i64; 4], y1: [i64; 4]) -> [i64; 4] {
        let mut out = [0i64; 4];
        for l in 0..4 {
            let lo_x = Self::clip(x0[l] - 1, self.width);
            let hi_x = Self::clip(x1[l], self.width);
            let lo_y = Self::clip(y0[l] - 1, self.height);
            let hi_y = Self::clip(y1[l], self.height);
            out[l] = self.at(hi_x, hi_y) - self.at(lo_x, hi_y) - self.at(hi_x, lo_y)
                + self.at(lo_x, lo_y);
        }
        out
    }

    /// Two ordered clipped window sums — bit-identical to
    /// [`PrefixSum2D::range_sum_pair`].
    #[inline]
    pub fn range_sum_pair(&self, a: (i64, i64, i64, i64), b: (i64, i64, i64, i64)) -> (i64, i64) {
        debug_assert!(a.0 <= a.2 && a.1 <= a.3 && b.0 <= b.2 && b.1 <= b.3);
        let (w, h) = (self.width, self.height);
        let (hx_a, lx_a) = (Self::clip(a.2, w), Self::clip(a.0 - 1, w));
        let (hx_b, lx_b) = (Self::clip(b.2, w), Self::clip(b.0 - 1, w));
        let (hy_a, ly_a) = (Self::clip(a.3, h), Self::clip(a.1 - 1, h));
        let (hy_b, ly_b) = (Self::clip(b.3, h), Self::clip(b.1 - 1, h));
        (
            self.at(hx_a, hy_a) - self.at(lx_a, hy_a) - self.at(hx_a, ly_a) + self.at(lx_a, ly_a),
            self.at(hx_b, hy_b) - self.at(lx_b, hy_b) - self.at(hx_b, ly_b) + self.at(lx_b, ly_b),
        )
    }

    /// Gathers two clipped column sets out of the row at clipped signed
    /// coordinate `y` — the compressed twin of
    /// [`PrefixSum2D::row_clipped`] + `gather2`, and the strip-fill
    /// primitive of the sweep evaluator on this tier.
    ///
    /// `ia`/`ib` are **internal** (guard-led) indices whose interleaving
    /// `ia[0], ib[0], ia[1], ib[1], …` must be non-decreasing — exactly
    /// the shape the sweep plan produces (`ia[k] = max(2·xsₖ − 1, 0)`,
    /// `ib[k] = 2·xsₖ` over increasing column cuts). One monotone walk
    /// over the row's runs then fills both outputs in
    /// `O(runs + columns)` instead of decoding the full `O(width)` row.
    /// Entries past the row end clamp onto the last column. Returns the
    /// row's final value (internal index `width`).
    pub fn gather_row2_clipped(
        &self,
        y: i64,
        ia: &[usize],
        ib: &[usize],
        out_a: &mut [i64],
        out_b: &mut [i64],
    ) -> i64 {
        assert!(ia.len() == ib.len() && ia.len() == out_a.len() && ia.len() == out_b.len());
        let row = self.row_dir[Self::clip(y, self.height)] as usize;
        let lo = self.offsets[row] as usize;
        let hi = self.offsets[row + 1] as usize;
        let runs_s = &self.starts[lo..hi];
        let runs_v = &self.vals[lo..hi];
        let mut j = 0usize;
        let mut prev = 0usize;
        for k in 0..ia.len() {
            let x = ia[k].min(self.width);
            debug_assert!(x >= prev, "interleaved gather indices must not decrease");
            while j + 1 < runs_s.len() && (runs_s[j + 1] as usize) <= x {
                j += 1;
            }
            out_a[k] = runs_v[j][x & 1];
            let x = ib[k].min(self.width);
            debug_assert!(x >= ia[k].min(self.width));
            while j + 1 < runs_s.len() && (runs_s[j + 1] as usize) <= x {
                j += 1;
            }
            out_b[k] = runs_v[j][x & 1];
            prev = x;
        }
        runs_v[runs_s.len() - 1][self.width & 1]
    }

    /// Sum of the whole array.
    #[inline]
    pub fn total(&self) -> i64 {
        self.at(self.width, self.height)
    }

    /// Bytes of storage held by the compressed cube.
    pub fn storage_bytes(&self) -> usize {
        self.row_dir.len() * 4
            + self.offsets.len() * 4
            + self.starts.len() * 4
            + self.vals.len() * std::mem::size_of::<[i64; 2]>()
    }
}

/// Greedy parity-pair encoder: a new run opens whenever the next value
/// disagrees with the current run's value for its parity class. Every
/// run pre-loads both parities from the next two positions, so runs are
/// maximal and the encoding is canonical (equal rows encode equally —
/// the dedup key relies on this).
fn encode_parity_runs(acc: &[i64], out: &mut Vec<Run>) {
    out.clear();
    let n = acc.len();
    let mut i = 0usize;
    while i < n {
        let mut v = [0i64; 2];
        v[i & 1] = acc[i];
        v[(i + 1) & 1] = if i + 1 < n { acc[i + 1] } else { acc[i] };
        let mut j = i + 1;
        while j < n && acc[j] == v[j & 1] {
            j += 1;
        }
        out.push((i as u32, v));
        i = j;
    }
}

/// The storage tier behind a frozen Euler histogram's prefix cube:
/// either the dense row-blocked [`PrefixSum2D`] (cache-optimal, `O(grid)`
/// bytes) or the run-compressed [`CompressedPrefix2D`] (sparse/banded
/// data, kilobytes at huge resolutions). Both answer every query
/// bit-identically; `euler-core` picks a tier at freeze/refreeze time by
/// a size heuristic, and the sweep evaluator dispatches its strip fills
/// on the variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CubeTier {
    /// The dense row-blocked cube — every lookup is a pure load.
    Dense(PrefixSum2D),
    /// The run-compressed cube — lookups walk a per-row run directory.
    Compressed(CompressedPrefix2D),
}

impl CubeTier {
    /// Width of the summarized array.
    #[inline]
    pub fn width(&self) -> usize {
        match self {
            CubeTier::Dense(d) => d.width(),
            CubeTier::Compressed(c) => c.width(),
        }
    }

    /// Height of the summarized array.
    #[inline]
    pub fn height(&self) -> usize {
        match self {
            CubeTier::Dense(d) => d.height(),
            CubeTier::Compressed(c) => c.height(),
        }
    }

    /// Clipped prefix lookup; see [`PrefixSum2D::prefix_clipped`].
    #[inline]
    pub fn prefix_clipped(&self, x: i64, y: i64) -> i64 {
        match self {
            CubeTier::Dense(d) => d.prefix_clipped(x, y),
            CubeTier::Compressed(c) => c.prefix_clipped(x, y),
        }
    }

    /// Clipped window sum; see [`PrefixSum2D::range_sum_clipped`].
    #[inline]
    pub fn range_sum_clipped(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> i64 {
        match self {
            CubeTier::Dense(d) => d.range_sum_clipped(x0, y0, x1, y1),
            CubeTier::Compressed(c) => c.range_sum_clipped(x0, y0, x1, y1),
        }
    }

    /// Four lane-packed clipped window sums; see
    /// [`PrefixSum2D::signed_sum4`].
    #[inline]
    pub fn signed_sum4(&self, x0: [i64; 4], y0: [i64; 4], x1: [i64; 4], y1: [i64; 4]) -> [i64; 4] {
        match self {
            CubeTier::Dense(d) => d.signed_sum4(x0, y0, x1, y1),
            CubeTier::Compressed(c) => c.signed_sum4(x0, y0, x1, y1),
        }
    }

    /// Two ordered clipped window sums; see
    /// [`PrefixSum2D::range_sum_pair`].
    #[inline]
    pub fn range_sum_pair(&self, a: (i64, i64, i64, i64), b: (i64, i64, i64, i64)) -> (i64, i64) {
        match self {
            CubeTier::Dense(d) => d.range_sum_pair(a, b),
            CubeTier::Compressed(c) => c.range_sum_pair(a, b),
        }
    }

    /// Sum of the whole array.
    #[inline]
    pub fn total(&self) -> i64 {
        match self {
            CubeTier::Dense(d) => d.total(),
            CubeTier::Compressed(c) => c.total(),
        }
    }

    /// Bytes held by the cube on this tier.
    pub fn storage_bytes(&self) -> usize {
        match self {
            CubeTier::Dense(d) => d.storage_bytes(),
            CubeTier::Compressed(c) => c.storage_bytes(),
        }
    }

    /// True on the compressed tier.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        matches!(self, CubeTier::Compressed(_))
    }

    /// The dense cube, when this tier is dense — the point-kernel
    /// batch entry points (`prefix_many`, `signed_sum4_in`) live only
    /// there.
    #[inline]
    pub fn as_dense(&self) -> Option<&PrefixSum2D> {
        match self {
            CubeTier::Dense(d) => Some(d),
            CubeTier::Compressed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_array(w: usize, h: usize, seed: u64) -> Dense2D {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Dense2D::zeros(w, h);
        a.map_in_place(|_, _, _| rng.gen_range(-100..100));
        a
    }

    /// A signed Euler-like array: a few ±1 rectangle stamps, the shape
    /// the compressed tier is built for (parity-alternating prefix
    /// rows, repeated bands).
    fn euler_like_array(w: usize, h: usize, stamps: usize, seed: u64) -> Dense2D {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Dense2D::zeros(w, h);
        for _ in 0..stamps {
            let x0 = rng.gen_range(0..w);
            let y0 = rng.gen_range(0..h);
            let x1 = rng.gen_range(x0..w);
            let y1 = rng.gen_range(y0..h);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let sign = if (x + y) % 2 == 0 { 1 } else { -1 };
                    a.add(x, y, sign);
                }
            }
        }
        a
    }

    fn assert_twin(a: &Dense2D) {
        let dense = PrefixSum2D::build(a);
        let comp = CompressedPrefix2D::build(a);
        assert_eq!(comp.width(), dense.width());
        assert_eq!(comp.height(), dense.height());
        assert_eq!(comp.total(), dense.total());
        let (w, h) = (a.width() as i64, a.height() as i64);
        for y in -2..h + 3 {
            for x in -2..w + 3 {
                assert_eq!(
                    comp.prefix_clipped(x, y),
                    dense.prefix_clipped(x, y),
                    "prefix ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn matches_dense_on_random_arrays() {
        assert_twin(&random_array(17, 9, 1));
        assert_twin(&random_array(1, 1, 2));
        assert_twin(&euler_like_array(20, 14, 6, 3));
    }

    #[test]
    fn zero_area_arrays_build_valid_empty_cubes() {
        for (w, h) in [(0usize, 0usize), (0, 5), (5, 0)] {
            let a = Dense2D::from_vec(w, h, vec![]);
            let c = CompressedPrefix2D::build(&a);
            assert_eq!(c.width(), w);
            assert_eq!(c.height(), h);
            assert_eq!(c.total(), 0, "{w}x{h}");
            for v in [-2i64, -1, 0, 1, 7] {
                assert_eq!(c.prefix_clipped(v, v), 0, "{w}x{h} at {v}");
            }
            assert_eq!(c.range_sum_clipped(-1, -1, 10, 10), 0);
            assert_eq!(c.signed_sum4([-1; 4], [-1; 4], [10; 4], [10; 4]), [0; 4]);
        }
    }

    #[test]
    fn capped_build_aborts_on_incompressible_data() {
        // Random data has no parity structure and no repeated rows.
        let a = random_array(64, 64, 7);
        assert!(CompressedPrefix2D::build_capped(&a, 256).is_none());
        assert!(CompressedPrefix2D::build_capped(&a, usize::MAX).is_some());
    }

    #[test]
    fn banded_rows_deduplicate() {
        // One small stamp: every row outside its y-extent repeats the
        // row below it, so the directory collapses them.
        let mut a = Dense2D::zeros(64, 64);
        for y in 10..=12 {
            for x in 20..=24 {
                let sign = if (x + y) % 2 == 0 { 1 } else { -1 };
                a.add(x, y, sign);
            }
        }
        let c = CompressedPrefix2D::build(&a);
        // Guard + pre-band + 3 in-band rows + post-band ≤ a handful.
        assert!(c.unique_rows() <= 6, "unique rows = {}", c.unique_rows());
        assert!(c.storage_bytes() < PrefixSum2D::build(&a).storage_bytes() / 4);
        assert_twin(&a);
    }

    #[test]
    fn gather_matches_pointwise_lookups() {
        let a = euler_like_array(33, 21, 8, 11);
        let c = CompressedPrefix2D::build(&a);
        let d = PrefixSum2D::build(&a);
        // Interleaved non-decreasing index pairs, the sweep-plan shape,
        // including past-the-end entries that must clamp.
        let xs = [0usize, 3, 7, 8, 15, 30, 33, 40];
        let ia: Vec<usize> = xs.iter().map(|&x| x.saturating_sub(1)).collect();
        let ib: Vec<usize> = xs.to_vec();
        let mut out_a = vec![0i64; xs.len()];
        let mut out_b = vec![0i64; xs.len()];
        for y in -2i64..24 {
            let last = c.gather_row2_clipped(y, &ia, &ib, &mut out_a, &mut out_b);
            let row = d.row_clipped(y);
            for k in 0..xs.len() {
                assert_eq!(out_a[k], row[ia[k].min(33)], "a[{k}] row {y}");
                assert_eq!(out_b[k], row[ib[k].min(33)], "b[{k}] row {y}");
            }
            assert_eq!(last, row[33], "last of row {y}");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        // Rebuilding from the same array yields a structurally equal
        // cube (first-seen dedup ids are deterministic) — frozen
        // histograms derive `PartialEq` through this.
        let a = euler_like_array(12, 9, 4, 5);
        assert_eq!(CompressedPrefix2D::build(&a), CompressedPrefix2D::build(&a));
    }

    proptest! {
        /// The compressed-tier law at the cube level: every query
        /// surface agrees with the dense cube on arbitrary (ordered,
        /// possibly out-of-bounds) windows over signed-stamp arrays.
        #[test]
        fn all_queries_match_dense(
            seed in 0u64..40, w in 1usize..14, h in 1usize..11, stamps in 0usize..6,
            win in prop::collection::vec((-6i64..18, -6i64..16, 0i64..14, 0i64..12), 4))
        {
            let a = euler_like_array(w, h, stamps, seed);
            let dense = PrefixSum2D::build(&a);
            let comp = CompressedPrefix2D::build(&a);
            let mut x0 = [0i64; 4]; let mut y0 = [0i64; 4];
            let mut x1 = [0i64; 4]; let mut y1 = [0i64; 4];
            for l in 0..4 {
                let (a0, b0, dw, dh) = win[l];
                x0[l] = a0; y0[l] = b0;
                x1[l] = a0 + dw; y1[l] = b0 + dh;
            }
            prop_assert_eq!(
                comp.signed_sum4(x0, y0, x1, y1),
                dense.signed_sum4(x0, y0, x1, y1)
            );
            for l in 0..4 {
                prop_assert_eq!(
                    comp.range_sum_clipped(x0[l], y0[l], x1[l], y1[l]),
                    dense.range_sum_clipped(x0[l], y0[l], x1[l], y1[l]),
                    "lane {}", l
                );
            }
            let wa = (x0[0], y0[0], x1[0], y1[0]);
            let wb = (x0[1], y0[1], x1[1], y1[1]);
            prop_assert_eq!(comp.range_sum_pair(wa, wb), dense.range_sum_pair(wa, wb));
            prop_assert_eq!(comp.total(), dense.total());
        }

        /// Inverted ("strictly between") windows hit the emptiness test
        /// on both tiers identically.
        #[test]
        fn inverted_windows_are_empty_on_both_tiers(
            seed in 0u64..20, x0 in -4i64..16, y0 in -4i64..14)
        {
            let a = euler_like_array(12, 10, 3, seed);
            let dense = PrefixSum2D::build(&a);
            let comp = CompressedPrefix2D::build(&a);
            prop_assert_eq!(
                comp.range_sum_clipped(x0, y0, x0 - 2, y0 + 3),
                dense.range_sum_clipped(x0, y0, x0 - 2, y0 + 3)
            );
            prop_assert_eq!(
                comp.range_sum_clipped(x0, y0, x0 + 3, y0 - 2),
                dense.range_sum_clipped(x0, y0, x0 + 3, y0 - 2)
            );
        }
    }
}
