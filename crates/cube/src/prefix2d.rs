use serde::{Deserialize, Serialize};

use crate::Dense2D;

/// The 2-D prefix-sum data cube of \[HAMS97\]: `P(x, y) = Σ_{i≤x, j≤y} A(i, j)`.
///
/// Any inclusive range sum is answered with at most four lookups and three
/// additions (`§5.2`), which is what gives S-EulerApprox, EulerApprox and
/// M-EulerApprox their constant per-query cost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixSum2D {
    width: usize,
    height: usize,
    // Stored with a zero guard row/column so lookups avoid branches:
    // p[(x+1) + (y+1)*(width+1)] = P(x, y).
    p: Vec<i64>,
}

impl PrefixSum2D {
    /// Builds the cube from a dense array in one pass.
    pub fn build(a: &Dense2D) -> PrefixSum2D {
        let (w, h) = (a.width(), a.height());
        let stride = w + 1;
        let mut p = vec![0i64; stride * (h + 1)];
        for y in 0..h {
            let mut row_acc = 0i64;
            for x in 0..w {
                row_acc += a.get(x, y);
                p[(x + 1) + (y + 1) * stride] = row_acc + p[(x + 1) + y * stride];
            }
        }
        PrefixSum2D {
            width: w,
            height: h,
            p,
        }
    }

    /// Width of the summarized array.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the summarized array.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cumulative sum `P(x, y) = Σ_{i≤x, j≤y} A(i, j)`; `x`/`y` may be
    /// `None`-like by passing ranges to [`Self::range_sum`] instead.
    #[inline]
    pub fn prefix(&self, x: usize, y: usize) -> i64 {
        debug_assert!(x < self.width && y < self.height);
        self.p[(x + 1) + (y + 1) * (self.width + 1)]
    }

    /// Sum over the inclusive index rectangle `[x0, x1] × [y0, y1]`.
    ///
    /// Four lookups, three arithmetic operations — constant time.
    #[inline]
    pub fn range_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 <= x1 && x1 < self.width, "x range [{x0},{x1}]");
        debug_assert!(y0 <= y1 && y1 < self.height, "y range [{y0},{y1}]");
        let stride = self.width + 1;
        let br = self.p[(x1 + 1) + (y1 + 1) * stride];
        let tl = self.p[x0 + y0 * stride];
        let bl = self.p[x0 + (y1 + 1) * stride];
        let tr = self.p[(x1 + 1) + y0 * stride];
        br + tl - bl - tr
    }

    /// Cumulative sum at *clipped* signed coordinates: `P(x, y)` with each
    /// coordinate clamped into the array, and 0 when either is negative.
    ///
    /// This is the shared clamping kernel of every boundary-touching
    /// lookup: clamping high is lossless because the prefix function is
    /// constant past the last row/column, and a negative coordinate
    /// selects the zero guard plane. For any ordered window
    /// (`x0 ≤ x1`, `y0 ≤ y1`) the four-corner combination of
    /// `prefix_clipped` equals [`Self::range_sum_clipped`] — which lets
    /// sweep evaluators hoist the clamp out of their per-tile loop by
    /// materializing whole rows of clipped prefix values once.
    #[inline]
    pub fn prefix_clipped(&self, x: i64, y: i64) -> i64 {
        if x < 0 || y < 0 {
            return 0;
        }
        let cx = (x as usize).min(self.width - 1);
        let cy = (y as usize).min(self.height - 1);
        self.p[(cx + 1) + (cy + 1) * (self.width + 1)]
    }

    /// Sum over a *clipped* signed index rectangle: bounds may lie outside
    /// the array (negative or too large); the empty intersection sums to 0.
    ///
    /// Estimator code uses this for Euler-index regions like
    /// `[2·qx0 − 1, 2·qx1 − 1]` that extend past the histogram when the
    /// query touches the data-space boundary.
    #[inline]
    pub fn range_sum_clipped(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> i64 {
        let cx0 = x0.max(0);
        let cy0 = y0.max(0);
        let cx1 = x1.min(self.width as i64 - 1);
        let cy1 = y1.min(self.height as i64 - 1);
        if cx0 > cx1 || cy0 > cy1 {
            return 0;
        }
        self.range_sum(cx0 as usize, cy0 as usize, cx1 as usize, cy1 as usize)
    }

    /// Sum of the whole array.
    #[inline]
    pub fn total(&self) -> i64 {
        self.p[self.p.len() - 1]
    }

    /// Bytes of storage held by the cube.
    pub fn storage_bytes(&self) -> usize {
        self.p.len() * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_array(w: usize, h: usize, seed: u64) -> Dense2D {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Dense2D::zeros(w, h);
        a.map_in_place(|_, _, _| rng.gen_range(-100..100));
        a
    }

    #[test]
    fn total_matches_dense() {
        let a = random_array(17, 9, 1);
        let p = PrefixSum2D::build(&a);
        assert_eq!(p.total(), a.total());
    }

    #[test]
    fn range_sums_match_naive_exhaustively() {
        let a = random_array(9, 7, 2);
        let p = PrefixSum2D::build(&a);
        for y0 in 0..7 {
            for y1 in y0..7 {
                for x0 in 0..9 {
                    for x1 in x0..9 {
                        assert_eq!(
                            p.range_sum(x0, y0, x1, y1),
                            a.range_sum_naive(x0, y0, x1, y1),
                            "[{x0},{x1}]x[{y0},{y1}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn clipped_sums() {
        let a = random_array(5, 5, 3);
        let p = PrefixSum2D::build(&a);
        assert_eq!(p.range_sum_clipped(-3, -3, 10, 10), a.total());
        assert_eq!(p.range_sum_clipped(-3, 0, -1, 4), 0);
        assert_eq!(p.range_sum_clipped(5, 0, 9, 4), 0);
        assert_eq!(
            p.range_sum_clipped(-2, 1, 2, 3),
            a.range_sum_naive(0, 1, 2, 3)
        );
    }

    /// The reference semantics of a clipped window sum: intersect the
    /// signed window with the array and sum naively (0 when empty).
    fn naive_clipped(a: &Dense2D, x0: i64, y0: i64, x1: i64, y1: i64) -> i64 {
        let cx0 = x0.max(0);
        let cy0 = y0.max(0);
        let cx1 = x1.min(a.width() as i64 - 1);
        let cy1 = y1.min(a.height() as i64 - 1);
        if cx0 > cx1 || cy0 > cy1 {
            return 0;
        }
        a.range_sum_naive(cx0 as usize, cy0 as usize, cx1 as usize, cy1 as usize)
    }

    proptest! {
        #[test]
        fn random_ranges_match_naive(seed in 0u64..50,
                                     x0 in 0usize..12, y0 in 0usize..10,
                                     dx in 0usize..12, dy in 0usize..10) {
            let a = random_array(12, 10, seed);
            let p = PrefixSum2D::build(&a);
            let x1 = (x0 + dx).min(11);
            let y1 = (y0 + dy).min(9);
            prop_assert_eq!(p.range_sum(x0, y0, x1, y1), a.range_sum_naive(x0, y0, x1, y1));
        }

        /// Clipped sums agree with the naive dense reference on windows
        /// that hang off every side of the array (negative and
        /// past-the-end bounds) — the edge cases the Euler-index algebra
        /// and the sweep kernels rely on.
        #[test]
        fn clipped_matches_naive_on_out_of_bounds_windows(
            seed in 0u64..50,
            x0 in -6i64..18, y0 in -6i64..16,
            x1 in -6i64..18, y1 in -6i64..16)
        {
            let a = random_array(12, 10, seed);
            let p = PrefixSum2D::build(&a);
            let (lo_x, hi_x) = (x0.min(x1), x0.max(x1));
            let (lo_y, hi_y) = (y0.min(y1), y0.max(y1));
            prop_assert_eq!(
                p.range_sum_clipped(lo_x, lo_y, hi_x, hi_y),
                naive_clipped(&a, lo_x, lo_y, hi_x, hi_y)
            );
        }

        /// The four-corner combination of `prefix_clipped` reproduces
        /// `range_sum_clipped` for every ordered signed window — the
        /// identity that lets sweep evaluators materialize rows of
        /// clipped prefixes instead of clamping per tile.
        #[test]
        fn prefix_clipped_corners_equal_clipped_range_sum(
            seed in 0u64..50,
            x0 in -6i64..18, y0 in -6i64..16,
            x1 in -6i64..18, y1 in -6i64..16)
        {
            let a = random_array(12, 10, seed);
            let p = PrefixSum2D::build(&a);
            let (lo_x, hi_x) = (x0.min(x1), x0.max(x1));
            let (lo_y, hi_y) = (y0.min(y1), y0.max(y1));
            let corners = p.prefix_clipped(hi_x, hi_y)
                - p.prefix_clipped(lo_x - 1, hi_y)
                - p.prefix_clipped(hi_x, lo_y - 1)
                + p.prefix_clipped(lo_x - 1, lo_y - 1);
            prop_assert_eq!(corners, p.range_sum_clipped(lo_x, lo_y, hi_x, hi_y));
        }
    }
}
