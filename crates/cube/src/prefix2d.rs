use serde::{Deserialize, Serialize};

use crate::kernels::{Active, KernelTier};
use crate::Dense2D;

/// Row stride granularity, in `i64` elements: 8 × 8 bytes = one 64-byte
/// cache line, so every row starts at the same line offset and a
/// four-corner lookup touches at most one line per corner pair.
const ROW_BLOCK: usize = 8;

/// The 2-D prefix-sum data cube of \[HAMS97\]: `P(x, y) = Σ_{i≤x, j≤y} A(i, j)`.
///
/// Any inclusive range sum is answered with at most four lookups and three
/// additions (`§5.2`), which is what gives S-EulerApprox, EulerApprox and
/// M-EulerApprox their constant per-query cost.
///
/// # Layout
///
/// Storage is row-blocked: each internal row is padded to a multiple of
/// [`ROW_BLOCK`] elements (one cache line), with a zero **guard** row and
/// column in front — `p[(x+1) + (y+1)·stride] = P(x, y)`, and index 0 on
/// either axis is a zero plane. The guard plus a branchless clamp make
/// every clipped lookup a pure load: a signed coordinate maps to
/// `clamp(v, −1, dim − 1) + 1` with no data-dependent branch, which is
/// what the batched kernels ([`Self::prefix_many`], [`Self::signed_sum4`]
/// and the sweep strip fills in `euler-core`) lean on. The padding is
/// invisible to the API and to persistence — `euler-core`'s `to_bytes`
/// serializes raw buckets and rebuilds the cube (this layout) on load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixSum2D {
    width: usize,
    height: usize,
    /// Padded row stride: `width + 1` rounded up to a cache-line
    /// multiple.
    stride: usize,
    p: Vec<i64>,
}

impl PrefixSum2D {
    /// Builds the cube from a dense array in one pass.
    ///
    /// A degenerate array (`width` or `height` zero) yields a valid empty
    /// cube: every query method returns 0 and [`Self::row_clipped`]
    /// returns guard (all-zero) rows — callers never index through a
    /// `w·h == 0` grid.
    pub fn build(a: &Dense2D) -> PrefixSum2D {
        let (w, h) = (a.width(), a.height());
        let stride = (w + 1).next_multiple_of(ROW_BLOCK);
        let mut p = vec![0i64; stride * (h + 1)];
        for y in 0..h {
            let mut row_acc = 0i64;
            let (prev, cur) = p[y * stride..].split_at_mut(stride);
            for x in 0..w {
                row_acc += a.get(x, y);
                cur[x + 1] = row_acc + prev[x + 1];
            }
        }
        PrefixSum2D {
            width: w,
            height: h,
            stride,
            p,
        }
    }

    /// Width of the summarized array.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the summarized array.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cumulative sum `P(x, y) = Σ_{i≤x, j≤y} A(i, j)`; `x`/`y` may be
    /// `None`-like by passing ranges to [`Self::range_sum`] instead.
    #[inline]
    pub fn prefix(&self, x: usize, y: usize) -> i64 {
        debug_assert!(x < self.width && y < self.height);
        self.p[(x + 1) + (y + 1) * self.stride]
    }

    /// Sum over the inclusive index rectangle `[x0, x1] × [y0, y1]`.
    ///
    /// Four lookups, three arithmetic operations — constant time.
    #[inline]
    pub fn range_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 <= x1 && x1 < self.width, "x range [{x0},{x1}]");
        debug_assert!(y0 <= y1 && y1 < self.height, "y range [{y0},{y1}]");
        let stride = self.stride;
        let br = self.p[(x1 + 1) + (y1 + 1) * stride];
        let tl = self.p[x0 + y0 * stride];
        let bl = self.p[x0 + (y1 + 1) * stride];
        let tr = self.p[(x1 + 1) + y0 * stride];
        br + tl - bl - tr
    }

    /// Internal (guard-shifted) index of a clipped signed coordinate:
    /// `clamp(v, −1, dim − 1) + 1`, branch-free. 0 is the guard plane.
    #[inline(always)]
    fn clip(v: i64, dim: usize) -> usize {
        (v.min(dim as i64 - 1) + 1).max(0) as usize
    }

    /// Cumulative sum at *clipped* signed coordinates: `P(x, y)` with each
    /// coordinate clamped into the array, and 0 when either is negative.
    ///
    /// This is the shared clamping kernel of every boundary-touching
    /// lookup: clamping high is lossless because the prefix function is
    /// constant past the last row/column, and a negative coordinate
    /// selects the zero guard plane — a branchless clamp-and-load thanks
    /// to the guard layout. For any ordered window (`x0 ≤ x1`, `y0 ≤ y1`)
    /// the four-corner combination of `prefix_clipped` equals
    /// [`Self::range_sum_clipped`] — which lets sweep evaluators hoist
    /// the clamp out of their per-tile loop by materializing whole rows
    /// of clipped prefix values once.
    #[inline]
    pub fn prefix_clipped(&self, x: i64, y: i64) -> i64 {
        self.p[Self::clip(x, self.width) + Self::clip(y, self.height) * self.stride]
    }

    /// Sum over a *clipped* signed index rectangle: bounds may lie outside
    /// the array (negative or too large); the empty intersection sums to 0.
    ///
    /// Estimator code uses this for Euler-index regions like
    /// `[2·qx0 − 1, 2·qx1 − 1]` that extend past the histogram when the
    /// query touches the data-space boundary.
    #[inline]
    pub fn range_sum_clipped(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> i64 {
        // Unlike the kernels (which require ordered windows), this entry
        // point accepts windows that are empty by inversion — several
        // callers build "strictly between" windows that legitimately
        // invert — so the emptiness test stays.
        let lo_x = Self::clip(x0 - 1, self.width);
        let hi_x = Self::clip(x1, self.width);
        let lo_y = Self::clip(y0 - 1, self.height);
        let hi_y = Self::clip(y1, self.height);
        if lo_x >= hi_x || lo_y >= hi_y {
            return 0;
        }
        let (lo_y, hi_y) = (lo_y * self.stride, hi_y * self.stride);
        self.p[hi_x + hi_y] - self.p[lo_x + hi_y] - self.p[hi_x + lo_y] + self.p[lo_x + lo_y]
    }

    /// The internal row at clipped signed row coordinate `y`, including
    /// the leading guard entry: `row[x + 1] = P(x, y)` for `x <
    /// width`, and `row[0] = 0`. A negative `y` selects the all-zero
    /// guard row; a too-large `y` clamps (losslessly) onto the last row.
    ///
    /// This is the strip-fill primitive of the sweep evaluator: one call
    /// pins the row, then [`crate::kernels`] gathers arbitrary clipped
    /// column sets out of it with plain indexing.
    #[inline]
    pub fn row_clipped(&self, y: i64) -> &[i64] {
        let off = Self::clip(y, self.height) * self.stride;
        &self.p[off..off + self.width + 1]
    }

    /// Batched [`Self::prefix_clipped`]: `out[i] = P(xs[i], ys[i])`
    /// through the active kernel tier (`xs`, `ys` and `out` must share a
    /// length).
    #[inline]
    pub fn prefix_many(&self, xs: &[i64], ys: &[i64], out: &mut [i64]) {
        self.prefix_many_in::<Active>(xs, ys, out);
    }

    /// [`Self::prefix_many`] through an explicit kernel tier — the
    /// differential-testing entry point of the kernel-equivalence law.
    #[inline]
    pub fn prefix_many_in<K: KernelTier>(&self, xs: &[i64], ys: &[i64], out: &mut [i64]) {
        assert!(xs.len() == out.len() && ys.len() == out.len());
        K::prefix_many(&self.p, self.stride, self.width, self.height, xs, ys, out);
    }

    /// Four [`Self::range_sum_clipped`] windows in one lane-packed call,
    /// one window per lane; see
    /// [`crate::kernels::KernelTier::signed_sum4`] for the lane-ordering
    /// contract. Dispatches through the active kernel tier — see
    /// [`Self::signed_sum4_in`] to pin a tier explicitly.
    #[inline]
    pub fn signed_sum4(&self, x0: [i64; 4], y0: [i64; 4], x1: [i64; 4], y1: [i64; 4]) -> [i64; 4] {
        self.signed_sum4_in::<Active>(x0, y0, x1, y1)
    }

    /// [`Self::signed_sum4`] through an explicit kernel tier — the
    /// differential-testing entry point of the kernel-equivalence law.
    #[inline]
    pub fn signed_sum4_in<K: KernelTier>(
        &self,
        x0: [i64; 4],
        y0: [i64; 4],
        x1: [i64; 4],
        y1: [i64; 4],
    ) -> [i64; 4] {
        K::signed_sum4(
            &self.p,
            self.stride,
            self.width,
            self.height,
            x0,
            y0,
            x1,
            y1,
        )
    }

    /// Two *ordered* clipped window sums in one batched call: all eight
    /// corner planes of both windows clamp branchlessly (no emptiness
    /// tests — ordered windows collapse to exactly 0 when clipping
    /// empties them), then the eight prefixes gather and combine. This
    /// is the point-query twin of the sweep strips — an estimator's
    /// inside and closed Euler windows resolve in one call with zero
    /// redundant loads (unlike [`Self::signed_sum4`], which would spend
    /// four lanes on two windows).
    ///
    /// Each window is `(x0, y0, x1, y1)` and must be ordered
    /// (`x0 ≤ x1`, `y0 ≤ y1`); bounds may lie outside the array.
    /// Bit-identical to two [`Self::range_sum_clipped`] calls.
    #[inline]
    pub fn range_sum_pair(&self, a: (i64, i64, i64, i64), b: (i64, i64, i64, i64)) -> (i64, i64) {
        debug_assert!(a.0 <= a.2 && a.1 <= a.3 && b.0 <= b.2 && b.1 <= b.3);
        let (w, h) = (self.width, self.height);
        let (hx_a, lx_a) = (Self::clip(a.2, w), Self::clip(a.0 - 1, w));
        let (hx_b, lx_b) = (Self::clip(b.2, w), Self::clip(b.0 - 1, w));
        let s = self.stride;
        let (hy_a, ly_a) = (Self::clip(a.3, h) * s, Self::clip(a.1 - 1, h) * s);
        let (hy_b, ly_b) = (Self::clip(b.3, h) * s, Self::clip(b.1 - 1, h) * s);
        let p = &self.p;
        (
            p[hx_a + hy_a] - p[lx_a + hy_a] - p[hx_a + ly_a] + p[lx_a + ly_a],
            p[hx_b + hy_b] - p[lx_b + hy_b] - p[hx_b + ly_b] + p[lx_b + ly_b],
        )
    }

    /// Sum of the whole array.
    #[inline]
    pub fn total(&self) -> i64 {
        self.p[self.width + self.height * self.stride]
    }

    /// Bytes of storage held by the cube (including row padding).
    pub fn storage_bytes(&self) -> usize {
        self.p.len() * std::mem::size_of::<i64>()
    }

    /// Bytes a dense cube over a `width × height` array *would* occupy,
    /// without building it — the tier-selection heuristic compares the
    /// compressed encoder's running size against this projection.
    pub fn projected_bytes(width: usize, height: usize) -> usize {
        (width + 1).next_multiple_of(ROW_BLOCK) * (height + 1) * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{PackedTier, ScalarTier, LANES};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_array(w: usize, h: usize, seed: u64) -> Dense2D {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Dense2D::zeros(w, h);
        a.map_in_place(|_, _, _| rng.gen_range(-100..100));
        a
    }

    #[test]
    fn total_matches_dense() {
        let a = random_array(17, 9, 1);
        let p = PrefixSum2D::build(&a);
        assert_eq!(p.total(), a.total());
    }

    #[test]
    fn range_sums_match_naive_exhaustively() {
        let a = random_array(9, 7, 2);
        let p = PrefixSum2D::build(&a);
        for y0 in 0..7 {
            for y1 in y0..7 {
                for x0 in 0..9 {
                    for x1 in x0..9 {
                        assert_eq!(
                            p.range_sum(x0, y0, x1, y1),
                            a.range_sum_naive(x0, y0, x1, y1),
                            "[{x0},{x1}]x[{y0},{y1}]"
                        );
                    }
                }
            }
        }
    }

    /// Unaligned-tail coverage: widths around the lane/block size (1, 2,
    /// 3, `LANES ± 1`, `ROW_BLOCK ± 1`) and single-row/column arrays all
    /// produce correct sums despite the padded stride.
    #[test]
    fn narrow_and_ragged_widths_match_naive() {
        for &w in &[1, 2, 3, LANES - 1, LANES + 1, ROW_BLOCK - 1, ROW_BLOCK + 1] {
            for &h in &[1, 2, 5] {
                let a = random_array(w, h, (w * 31 + h) as u64);
                let p = PrefixSum2D::build(&a);
                assert_eq!(p.total(), a.total(), "{w}x{h}");
                for y0 in 0..h {
                    for y1 in y0..h {
                        for x0 in 0..w {
                            for x1 in x0..w {
                                assert_eq!(
                                    p.range_sum(x0, y0, x1, y1),
                                    a.range_sum_naive(x0, y0, x1, y1),
                                    "{w}x{h} [{x0},{x1}]x[{y0},{y1}]"
                                );
                            }
                        }
                    }
                }
                // Clipped reads past every edge stay in the guard/clamp
                // regime.
                assert_eq!(
                    p.range_sum_clipped(-3, -3, w as i64 + 2, h as i64 + 2),
                    a.total()
                );
                assert_eq!(p.prefix_clipped(-1, 0), 0);
                assert_eq!(p.prefix_clipped(w as i64 + 5, h as i64 + 5), a.total());
            }
        }
    }

    /// Regression: a `w·h == 0` array builds a *valid* empty cube — no
    /// arithmetic underflow, no out-of-bounds indexing — and every query
    /// surface returns 0 / guard rows.
    #[test]
    fn zero_area_arrays_build_valid_empty_cubes() {
        for (w, h) in [(0usize, 0usize), (0, 5), (5, 0)] {
            let a = Dense2D::from_vec(w, h, vec![]);
            let p = PrefixSum2D::build(&a);
            assert_eq!(p.width(), w);
            assert_eq!(p.height(), h);
            assert_eq!(p.total(), 0, "{w}x{h}");
            for v in [-2i64, -1, 0, 1, 7] {
                assert_eq!(p.prefix_clipped(v, v), 0, "{w}x{h} at {v}");
                assert!(p.row_clipped(v).iter().all(|&e| e == 0), "{w}x{h} row {v}");
            }
            assert_eq!(p.range_sum_clipped(-1, -1, 10, 10), 0);
            assert_eq!(
                p.signed_sum4([-1; 4], [-1; 4], [10; 4], [10; 4]),
                [0; 4],
                "{w}x{h}"
            );
            let mut out = [1i64; 3];
            p.prefix_many(&[-1, 0, 3], &[0, -1, 9], &mut out);
            assert_eq!(out, [0; 3], "{w}x{h}");
        }
    }

    #[test]
    fn row_clipped_matches_prefix_clipped() {
        let a = random_array(11, 6, 4);
        let p = PrefixSum2D::build(&a);
        for y in -2i64..8 {
            let row = p.row_clipped(y);
            assert_eq!(row.len(), 12);
            assert_eq!(row[0], 0, "guard at row {y}");
            for x in 0..11i64 {
                assert_eq!(row[(x + 1) as usize], p.prefix_clipped(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn clipped_sums() {
        let a = random_array(5, 5, 3);
        let p = PrefixSum2D::build(&a);
        assert_eq!(p.range_sum_clipped(-3, -3, 10, 10), a.total());
        assert_eq!(p.range_sum_clipped(-3, 0, -1, 4), 0);
        assert_eq!(p.range_sum_clipped(5, 0, 9, 4), 0);
        assert_eq!(
            p.range_sum_clipped(-2, 1, 2, 3),
            a.range_sum_naive(0, 1, 2, 3)
        );
    }

    /// The reference semantics of a clipped window sum: intersect the
    /// signed window with the array and sum naively (0 when empty).
    fn naive_clipped(a: &Dense2D, x0: i64, y0: i64, x1: i64, y1: i64) -> i64 {
        let cx0 = x0.max(0);
        let cy0 = y0.max(0);
        let cx1 = x1.min(a.width() as i64 - 1);
        let cy1 = y1.min(a.height() as i64 - 1);
        if cx0 > cx1 || cy0 > cy1 {
            return 0;
        }
        a.range_sum_naive(cx0 as usize, cy0 as usize, cx1 as usize, cy1 as usize)
    }

    proptest! {
        #[test]
        fn random_ranges_match_naive(seed in 0u64..50,
                                     x0 in 0usize..12, y0 in 0usize..10,
                                     dx in 0usize..12, dy in 0usize..10) {
            let a = random_array(12, 10, seed);
            let p = PrefixSum2D::build(&a);
            let x1 = (x0 + dx).min(11);
            let y1 = (y0 + dy).min(9);
            prop_assert_eq!(p.range_sum(x0, y0, x1, y1), a.range_sum_naive(x0, y0, x1, y1));
        }

        /// Clipped sums agree with the naive dense reference on windows
        /// that hang off every side of the array (negative and
        /// past-the-end bounds) — the edge cases the Euler-index algebra
        /// and the sweep kernels rely on. Width 12 is lane-ragged on
        /// purpose.
        #[test]
        fn clipped_matches_naive_on_out_of_bounds_windows(
            seed in 0u64..50,
            x0 in -6i64..18, y0 in -6i64..16,
            x1 in -6i64..18, y1 in -6i64..16)
        {
            let a = random_array(12, 10, seed);
            let p = PrefixSum2D::build(&a);
            let (lo_x, hi_x) = (x0.min(x1), x0.max(x1));
            let (lo_y, hi_y) = (y0.min(y1), y0.max(y1));
            prop_assert_eq!(
                p.range_sum_clipped(lo_x, lo_y, hi_x, hi_y),
                naive_clipped(&a, lo_x, lo_y, hi_x, hi_y)
            );
        }

        /// The four-corner combination of `prefix_clipped` reproduces
        /// `range_sum_clipped` for every ordered signed window — the
        /// identity that lets sweep evaluators materialize rows of
        /// clipped prefixes instead of clamping per tile.
        #[test]
        fn prefix_clipped_corners_equal_clipped_range_sum(
            seed in 0u64..50,
            x0 in -6i64..18, y0 in -6i64..16,
            x1 in -6i64..18, y1 in -6i64..16)
        {
            let a = random_array(12, 10, seed);
            let p = PrefixSum2D::build(&a);
            let (lo_x, hi_x) = (x0.min(x1), x0.max(x1));
            let (lo_y, hi_y) = (y0.min(y1), y0.max(y1));
            let corners = p.prefix_clipped(hi_x, hi_y)
                - p.prefix_clipped(lo_x - 1, hi_y)
                - p.prefix_clipped(hi_x, lo_y - 1)
                + p.prefix_clipped(lo_x - 1, lo_y - 1);
            prop_assert_eq!(corners, p.range_sum_clipped(lo_x, lo_y, hi_x, hi_y));
        }

        /// `range_sum_clipped` (through the active tier's layout) agrees
        /// with both explicit kernel tiers' `signed_sum4` on ordered
        /// windows — the cube-level kernel-equivalence law, including
        /// arrays narrower than a lane.
        #[test]
        fn signed_sum4_tiers_match_range_sum_clipped(
            seed in 0u64..30, w in 1usize..14, h in 1usize..11,
            win in prop::collection::vec((-6i64..18, -6i64..16, 0i64..14, 0i64..12), 4))
        {
            let a = random_array(w, h, seed);
            let p = PrefixSum2D::build(&a);
            let mut x0 = [0i64; 4]; let mut y0 = [0i64; 4];
            let mut x1 = [0i64; 4]; let mut y1 = [0i64; 4];
            for l in 0..4 {
                let (a0, b0, dw, dh) = win[l];
                x0[l] = a0; y0[l] = b0;
                x1[l] = a0 + dw; y1[l] = b0 + dh;
            }
            let packed = p.signed_sum4_in::<PackedTier>(x0, y0, x1, y1);
            let scalar = p.signed_sum4_in::<ScalarTier>(x0, y0, x1, y1);
            prop_assert_eq!(packed, scalar);
            for l in 0..4 {
                prop_assert_eq!(
                    packed[l],
                    p.range_sum_clipped(x0[l], y0[l], x1[l], y1[l]),
                    "lane {}", l
                );
            }
        }

        /// The paired-window kernel equals two independent clipped range
        /// sums on arbitrary ordered (possibly out-of-bounds) windows.
        #[test]
        fn range_sum_pair_matches_two_clipped_sums(
            seed in 0u64..30, w in 1usize..14, h in 1usize..11,
            win in prop::collection::vec((-6i64..18, -6i64..16, 0i64..14, 0i64..12), 2))
        {
            let arr = random_array(w, h, seed);
            let p = PrefixSum2D::build(&arr);
            let win: Vec<(i64, i64, i64, i64)> = win
                .iter()
                .map(|&(x0, y0, dw, dh)| (x0, y0, x0 + dw, y0 + dh))
                .collect();
            let (sa, sb) = p.range_sum_pair(win[0], win[1]);
            prop_assert_eq!(sa, p.range_sum_clipped(win[0].0, win[0].1, win[0].2, win[0].3));
            prop_assert_eq!(sb, p.range_sum_clipped(win[1].0, win[1].1, win[1].2, win[1].3));
        }

        /// `prefix_many` through both tiers equals per-point
        /// `prefix_clipped`, across ragged batch lengths.
        #[test]
        fn prefix_many_tiers_match_pointwise(
            seed in 0u64..30, w in 1usize..14, h in 1usize..11, n in 0usize..13,
            pts in prop::collection::vec((-6i64..18, -6i64..16), 13))
        {
            let a = random_array(w, h, seed);
            let p = PrefixSum2D::build(&a);
            let xs: Vec<i64> = pts[..n].iter().map(|&(x, _)| x).collect();
            let ys: Vec<i64> = pts[..n].iter().map(|&(_, y)| y).collect();
            let mut out = vec![0i64; n];
            p.prefix_many(&xs, &ys, &mut out);
            for i in 0..n {
                prop_assert_eq!(out[i], p.prefix_clipped(xs[i], ys[i]), "point {}", i);
            }
        }
    }
}
