//! Batched, lane-packed kernels over the blocked prefix cube.
//!
//! The sweep evaluator in `euler-core` and the clipped point lookups of
//! [`crate::PrefixSum2D`] both reduce to a handful of dense loops: gather
//! clipped prefix values into structure-of-arrays strips, combine four
//! shifted strips into per-tile sums, and clamp/lookup small batches of
//! signed coordinates. This module implements those loops twice:
//!
//! * [`PackedTier`] — the production tier, written against the explicit
//!   4-wide [`I64x4`] lane struct so the combines compile to vector
//!   arithmetic on any target without `std::simd` (MSRV 1.87) or
//!   `unsafe`;
//! * [`ScalarTier`] — the obviously-correct scalar reference, kept
//!   compiled at all times so conformance can differentially compare the
//!   two tiers bit for bit in a single binary.
//!
//! [`Active`] is the tier behind the public cube/sweep API: the packed
//! tier by default, the scalar tier when the `scalar-kernels` feature is
//! enabled (CI runs the full test suite under both).
//!
//! All kernels share the cube's clipped-lookup convention: a signed
//! coordinate is clamped to `[-1, dim - 1]` and shifted by the zero guard
//! row/column, so out-of-range reads land on a zero plane instead of a
//! branch (see [`crate::PrefixSum2D::prefix_clipped`]).

use std::ops::{Add, Sub};

/// Lane width of the packed kernels, in `i64` elements (4 × 64 bit =
/// one 256-bit vector register).
pub const LANES: usize = 4;

/// An explicit 4-wide `i64` lane group.
///
/// Plain safe Rust: the compiler maps the element-wise operations onto
/// vector instructions where available (the 32-byte alignment matches a
/// 256-bit register), and onto scalar code otherwise. This is the
/// "explicit lanes, no intrinsics" middle ground that keeps the crate
/// `#![forbid(unsafe_code)]` and MSRV-clean while making the
/// vectorization opportunity impossible for the optimizer to miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(align(32))]
pub struct I64x4(pub [i64; 4]);

impl I64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: i64) -> I64x4 {
        I64x4([v; 4])
    }

    /// Loads the first four elements of `s` (unaligned).
    #[inline(always)]
    pub fn load(s: &[i64]) -> I64x4 {
        I64x4([s[0], s[1], s[2], s[3]])
    }

    /// Stores the four lanes into the first four elements of `out`.
    #[inline(always)]
    pub fn store(self, out: &mut [i64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, rhs: I64x4) -> I64x4 {
        let (a, b) = (self.0, rhs.0);
        I64x4([
            a[0].min(b[0]),
            a[1].min(b[1]),
            a[2].min(b[2]),
            a[3].min(b[3]),
        ])
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: I64x4) -> I64x4 {
        let (a, b) = (self.0, rhs.0);
        I64x4([
            a[0].max(b[0]),
            a[1].max(b[1]),
            a[2].max(b[2]),
            a[3].max(b[3]),
        ])
    }

    /// The four lanes as a plain array.
    #[inline(always)]
    pub fn to_array(self) -> [i64; 4] {
        self.0
    }
}

/// Lane-wise addition.
impl Add for I64x4 {
    type Output = I64x4;

    #[inline(always)]
    fn add(self, rhs: I64x4) -> I64x4 {
        let (a, b) = (self.0, rhs.0);
        I64x4([a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]])
    }
}

/// Lane-wise subtraction.
impl Sub for I64x4 {
    type Output = I64x4;

    #[inline(always)]
    fn sub(self, rhs: I64x4) -> I64x4 {
        let (a, b) = (self.0, rhs.0);
        I64x4([a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]])
    }
}

/// Clamps a lane group of signed coordinates into the cube's internal
/// (guard-shifted) index range `[0, dim]`:
/// `clip(v) = max(min(v, dim − 1) + 1, 0)`. Index 0 is the zero guard
/// plane, index `dim` the last prefix plane.
#[inline(always)]
pub(crate) fn clip4(v: I64x4, dim: i64) -> [usize; 4] {
    let c = v
        .min(I64x4::splat(dim - 1))
        .add(I64x4::splat(1))
        .max(I64x4::splat(0))
        .to_array();
    [c[0] as usize, c[1] as usize, c[2] as usize, c[3] as usize]
}

/// The scalar twin of [`clip4`] for loop tails.
#[inline(always)]
fn clip1(v: i64, dim: i64) -> usize {
    (v.min(dim - 1) + 1).max(0) as usize
}

/// One kernel tier: a full set of the strip/batch primitives the cube
/// and the sweep evaluator consume.
///
/// The two implementors ([`PackedTier`], [`ScalarTier`]) are required to
/// be **bit-identical** on every input — the kernel-equivalence law the
/// conformance suite enforces across the whole estimator corpus. All
/// methods are static so a tier can be selected at compile time as a
/// zero-sized type parameter.
pub trait KernelTier {
    /// Shifted four-strip combine: `out[i] = a[i+1] − b[i] − c[i+1] +
    /// d[i]`. This is the four-corner arithmetic of every per-tile
    /// signed sum, applied across a whole row of tiles at once
    /// (`a`/`c` need `out.len() + 1` elements, `b`/`d` `out.len()`).
    fn strip_combine(a: &[i64], b: &[i64], c: &[i64], d: &[i64], out: &mut [i64]);

    /// [`Self::strip_combine`] plus a per-row constant: `out[i] =
    /// a[i+1] − b[i] − c[i+1] + d[i] + k`.
    fn strip_combine_k(a: &[i64], b: &[i64], c: &[i64], d: &[i64], k: i64, out: &mut [i64]);

    /// [`Self::strip_combine`] plus a per-column addend: `out[i] =
    /// a[i+1] − b[i] − c[i+1] + d[i] + add[i]`.
    fn strip_combine_add(a: &[i64], b: &[i64], c: &[i64], d: &[i64], add: &[i64], out: &mut [i64]);

    /// Two independent [`Self::strip_combine`]s in one fused pass:
    /// `out1` from `(a1, b1, c1, d1)` and `out2` from `(a2, b2, c2,
    /// d2)`. The sweep's inside and closed rows read disjoint corner
    /// strips of the same tile row, so fusing them halves the loop
    /// overhead and keeps both output streams hot.
    #[allow(clippy::too_many_arguments)]
    fn strip_combine2(
        a1: &[i64],
        b1: &[i64],
        c1: &[i64],
        d1: &[i64],
        a2: &[i64],
        b2: &[i64],
        c2: &[i64],
        d2: &[i64],
        out1: &mut [i64],
        out2: &mut [i64],
    );

    /// Dual gather: `a[k] = row[ia[k]]`, `b[k] = row[ib[k]]` for `k <
    /// a.len()`. Used to fill the structure-of-arrays corner strips from
    /// one cube row; the index pairs are adjacent Euler columns, so both
    /// loads of a pair usually share a cache line.
    fn gather2(row: &[i64], ia: &[usize], ib: &[usize], a: &mut [i64], b: &mut [i64]);

    /// Quad gather over two rows sharing one index lattice: `a0[k] =
    /// row0[ia[k]]`, `b0[k] = row0[ib[k]]`, `a1[k] = row1[ia[k]]`,
    /// `b1[k] = row1[ib[k]]`. The sweep fills an open-corner strip and a
    /// closed-corner strip per boundary row — the same column indices
    /// against two adjacent cube rows — so fusing the two fills halves
    /// the index traffic and keeps four independent loads in flight per
    /// boundary.
    #[allow(clippy::too_many_arguments)]
    fn gather2x2(
        row0: &[i64],
        row1: &[i64],
        ia: &[usize],
        ib: &[usize],
        a0: &mut [i64],
        b0: &mut [i64],
        a1: &mut [i64],
        b1: &mut [i64],
    );

    /// Strided quad gather for an **affine** index lattice: with `j =
    /// start + k·stride`, `a0[k] = row0[j]`, `b0[k] = row0[j + 1]`,
    /// `a1[k] = row1[j]`, `b1[k] = row1[j + 1]`. Tiling plans produce
    /// exactly this shape away from the clamped edges (closed column =
    /// open column + 1, consecutive boundaries `2·w` apart), which turns
    /// the gather into a strided pair copy: no index-array loads and —
    /// in the packed tier — no per-element bounds checks. Requires
    /// `stride ≥ 2` and `start + (len − 1)·stride + 1 < row.len()` when
    /// `len > 0`.
    #[allow(clippy::too_many_arguments)]
    fn gather_pairs2(
        row0: &[i64],
        row1: &[i64],
        start: usize,
        stride: usize,
        a0: &mut [i64],
        b0: &mut [i64],
        a1: &mut [i64],
        b1: &mut [i64],
    );

    /// Batched clipped prefix lookup over the raw cube storage:
    /// `out[i] = P(xs[i], ys[i])` with each signed coordinate clamped
    /// into the array and negatives landing on the zero guard plane.
    fn prefix_many(
        p: &[i64],
        stride: usize,
        width: usize,
        height: usize,
        xs: &[i64],
        ys: &[i64],
        out: &mut [i64],
    );

    /// Four clipped window sums in one call, one window per lane:
    /// `out[l] = Σ` over the signed inclusive window `[x0[l], x1[l]] ×
    /// [y0[l], y1[l]]` intersected with the array, computed as the
    /// four-corner combination of branchlessly clipped prefixes. For an
    /// ordered lane (`x0 ≤ x1`, `y0 ≤ y1`) this equals the clipped range
    /// sum (0 when clipping empties the window). An inverted lane is
    /// permitted only when both bounds of the inverted axis clamp onto a
    /// common plane (entirely below the array or entirely past it) — the
    /// Euler boundary-window algebra produces exactly these, and they
    /// collapse to 0.
    #[allow(clippy::too_many_arguments)]
    fn signed_sum4(
        p: &[i64],
        stride: usize,
        width: usize,
        height: usize,
        x0: [i64; 4],
        y0: [i64; 4],
        x1: [i64; 4],
        y1: [i64; 4],
    ) -> [i64; 4];
}

/// The scalar reference tier: straight-line loops with no lane
/// structure, kept compiled as the differential-testing baseline.
pub struct ScalarTier;

impl KernelTier for ScalarTier {
    #[inline]
    fn strip_combine(a: &[i64], b: &[i64], c: &[i64], d: &[i64], out: &mut [i64]) {
        for i in 0..out.len() {
            out[i] = a[i + 1] - b[i] - c[i + 1] + d[i];
        }
    }

    #[inline]
    fn strip_combine_k(a: &[i64], b: &[i64], c: &[i64], d: &[i64], k: i64, out: &mut [i64]) {
        for i in 0..out.len() {
            out[i] = a[i + 1] - b[i] - c[i + 1] + d[i] + k;
        }
    }

    #[inline]
    fn strip_combine_add(a: &[i64], b: &[i64], c: &[i64], d: &[i64], add: &[i64], out: &mut [i64]) {
        for i in 0..out.len() {
            out[i] = a[i + 1] - b[i] - c[i + 1] + d[i] + add[i];
        }
    }

    #[inline]
    fn strip_combine2(
        a1: &[i64],
        b1: &[i64],
        c1: &[i64],
        d1: &[i64],
        a2: &[i64],
        b2: &[i64],
        c2: &[i64],
        d2: &[i64],
        out1: &mut [i64],
        out2: &mut [i64],
    ) {
        for i in 0..out1.len() {
            out1[i] = a1[i + 1] - b1[i] - c1[i + 1] + d1[i];
            out2[i] = a2[i + 1] - b2[i] - c2[i + 1] + d2[i];
        }
    }

    #[inline]
    fn gather2(row: &[i64], ia: &[usize], ib: &[usize], a: &mut [i64], b: &mut [i64]) {
        for k in 0..a.len() {
            a[k] = row[ia[k]];
            b[k] = row[ib[k]];
        }
    }

    #[inline]
    fn gather2x2(
        row0: &[i64],
        row1: &[i64],
        ia: &[usize],
        ib: &[usize],
        a0: &mut [i64],
        b0: &mut [i64],
        a1: &mut [i64],
        b1: &mut [i64],
    ) {
        for k in 0..a0.len() {
            a0[k] = row0[ia[k]];
            b0[k] = row0[ib[k]];
            a1[k] = row1[ia[k]];
            b1[k] = row1[ib[k]];
        }
    }

    #[inline]
    fn gather_pairs2(
        row0: &[i64],
        row1: &[i64],
        start: usize,
        stride: usize,
        a0: &mut [i64],
        b0: &mut [i64],
        a1: &mut [i64],
        b1: &mut [i64],
    ) {
        let mut j = start;
        for k in 0..a0.len() {
            a0[k] = row0[j];
            b0[k] = row0[j + 1];
            a1[k] = row1[j];
            b1[k] = row1[j + 1];
            j += stride;
        }
    }

    #[inline]
    fn prefix_many(
        p: &[i64],
        stride: usize,
        width: usize,
        height: usize,
        xs: &[i64],
        ys: &[i64],
        out: &mut [i64],
    ) {
        for i in 0..out.len() {
            let cx = clip1(xs[i], width as i64);
            let cy = clip1(ys[i], height as i64);
            out[i] = p[cx + cy * stride];
        }
    }

    #[inline]
    fn signed_sum4(
        p: &[i64],
        stride: usize,
        width: usize,
        height: usize,
        x0: [i64; 4],
        y0: [i64; 4],
        x1: [i64; 4],
        y1: [i64; 4],
    ) -> [i64; 4] {
        let mut out = [0i64; 4];
        for l in 0..4 {
            let lo_x = clip1(x0[l] - 1, width as i64);
            let hi_x = clip1(x1[l], width as i64);
            let lo_y = clip1(y0[l] - 1, height as i64) * stride;
            let hi_y = clip1(y1[l], height as i64) * stride;
            out[l] = p[hi_x + hi_y] - p[lo_x + hi_y] - p[hi_x + lo_y] + p[lo_x + lo_y];
        }
        out
    }
}

/// The production tier: explicit [`I64x4`] lane groups with scalar loop
/// tails, autovectorization-friendly by construction.
pub struct PackedTier;

impl KernelTier for PackedTier {
    #[inline]
    fn strip_combine(a: &[i64], b: &[i64], c: &[i64], d: &[i64], out: &mut [i64]) {
        let n = out.len();
        // Pre-narrowed slices + `chunks_exact` zips: every lane load is
        // provably in bounds, so the I64x4 arithmetic lowers to clean
        // vector code instead of check-laden scalar loops.
        let (ah, ch, bl, dl) = (&a[1..n + 1], &c[1..n + 1], &b[..n], &d[..n]);
        let mut oc = out.chunks_exact_mut(LANES);
        for ((((o, pa), pb), pc), pd) in (&mut oc)
            .zip(ah.chunks_exact(LANES))
            .zip(bl.chunks_exact(LANES))
            .zip(ch.chunks_exact(LANES))
            .zip(dl.chunks_exact(LANES))
        {
            I64x4::load(pa)
                .sub(I64x4::load(pb))
                .sub(I64x4::load(pc))
                .add(I64x4::load(pd))
                .store(o);
        }
        let rem = oc.into_remainder();
        let start = n - rem.len();
        for (i, o) in rem.iter_mut().enumerate() {
            let i = start + i;
            *o = ah[i] - bl[i] - ch[i] + dl[i];
        }
    }

    #[inline]
    fn strip_combine_k(a: &[i64], b: &[i64], c: &[i64], d: &[i64], k: i64, out: &mut [i64]) {
        let n = out.len();
        let (ah, ch, bl, dl) = (&a[1..n + 1], &c[1..n + 1], &b[..n], &d[..n]);
        let vk = I64x4::splat(k);
        let mut oc = out.chunks_exact_mut(LANES);
        for ((((o, pa), pb), pc), pd) in (&mut oc)
            .zip(ah.chunks_exact(LANES))
            .zip(bl.chunks_exact(LANES))
            .zip(ch.chunks_exact(LANES))
            .zip(dl.chunks_exact(LANES))
        {
            I64x4::load(pa)
                .sub(I64x4::load(pb))
                .sub(I64x4::load(pc))
                .add(I64x4::load(pd))
                .add(vk)
                .store(o);
        }
        let rem = oc.into_remainder();
        let start = n - rem.len();
        for (i, o) in rem.iter_mut().enumerate() {
            let i = start + i;
            *o = ah[i] - bl[i] - ch[i] + dl[i] + k;
        }
    }

    #[inline]
    fn strip_combine_add(a: &[i64], b: &[i64], c: &[i64], d: &[i64], add: &[i64], out: &mut [i64]) {
        let n = out.len();
        let (ah, ch, bl, dl, xl) = (&a[1..n + 1], &c[1..n + 1], &b[..n], &d[..n], &add[..n]);
        let mut oc = out.chunks_exact_mut(LANES);
        for (((((o, pa), pb), pc), pd), px) in (&mut oc)
            .zip(ah.chunks_exact(LANES))
            .zip(bl.chunks_exact(LANES))
            .zip(ch.chunks_exact(LANES))
            .zip(dl.chunks_exact(LANES))
            .zip(xl.chunks_exact(LANES))
        {
            I64x4::load(pa)
                .sub(I64x4::load(pb))
                .sub(I64x4::load(pc))
                .add(I64x4::load(pd))
                .add(I64x4::load(px))
                .store(o);
        }
        let rem = oc.into_remainder();
        let start = n - rem.len();
        for (i, o) in rem.iter_mut().enumerate() {
            let i = start + i;
            *o = ah[i] - bl[i] - ch[i] + dl[i] + xl[i];
        }
    }

    #[inline]
    fn strip_combine2(
        a1: &[i64],
        b1: &[i64],
        c1: &[i64],
        d1: &[i64],
        a2: &[i64],
        b2: &[i64],
        c2: &[i64],
        d2: &[i64],
        out1: &mut [i64],
        out2: &mut [i64],
    ) {
        let n = out1.len();
        let (ah1, ch1, bl1, dl1) = (&a1[1..n + 1], &c1[1..n + 1], &b1[..n], &d1[..n]);
        let (ah2, ch2, bl2, dl2) = (&a2[1..n + 1], &c2[1..n + 1], &b2[..n], &d2[..n]);
        let mut o1c = out1.chunks_exact_mut(LANES);
        let mut o2c = out2.chunks_exact_mut(LANES);
        for (((((((((o1, o2), p1a), p1b), p1c), p1d), p2a), p2b), p2c), p2d) in (&mut o1c)
            .zip(&mut o2c)
            .zip(ah1.chunks_exact(LANES))
            .zip(bl1.chunks_exact(LANES))
            .zip(ch1.chunks_exact(LANES))
            .zip(dl1.chunks_exact(LANES))
            .zip(ah2.chunks_exact(LANES))
            .zip(bl2.chunks_exact(LANES))
            .zip(ch2.chunks_exact(LANES))
            .zip(dl2.chunks_exact(LANES))
        {
            I64x4::load(p1a)
                .sub(I64x4::load(p1b))
                .sub(I64x4::load(p1c))
                .add(I64x4::load(p1d))
                .store(o1);
            I64x4::load(p2a)
                .sub(I64x4::load(p2b))
                .sub(I64x4::load(p2c))
                .add(I64x4::load(p2d))
                .store(o2);
        }
        let (r1, r2) = (o1c.into_remainder(), o2c.into_remainder());
        let start = n - r1.len();
        for (i, (o1, o2)) in r1.iter_mut().zip(r2.iter_mut()).enumerate() {
            let i = start + i;
            *o1 = ah1[i] - bl1[i] - ch1[i] + dl1[i];
            *o2 = ah2[i] - bl2[i] - ch2[i] + dl2[i];
        }
    }

    #[inline]
    fn gather2(row: &[i64], ia: &[usize], ib: &[usize], a: &mut [i64], b: &mut [i64]) {
        // Gathers are address-bound, not arithmetic-bound; the lane win
        // here is unrolling the loop 4-wide so four independent loads are
        // in flight per iteration, with grouped stores. The index loads
        // themselves stay bounds-checked — they are data-dependent.
        let n = a.len();
        let (ia, ib) = (&ia[..n], &ib[..n]);
        let mut ac = a.chunks_exact_mut(LANES);
        let mut bc = b.chunks_exact_mut(LANES);
        for (((oa, ob), pi), pj) in (&mut ac)
            .zip(&mut bc)
            .zip(ia.chunks_exact(LANES))
            .zip(ib.chunks_exact(LANES))
        {
            I64x4([row[pi[0]], row[pi[1]], row[pi[2]], row[pi[3]]]).store(oa);
            I64x4([row[pj[0]], row[pj[1]], row[pj[2]], row[pj[3]]]).store(ob);
        }
        let (ra, rb) = (ac.into_remainder(), bc.into_remainder());
        let start = n - ra.len();
        for (k, (oa, ob)) in ra.iter_mut().zip(rb.iter_mut()).enumerate() {
            let k = start + k;
            *oa = row[ia[k]];
            *ob = row[ib[k]];
        }
    }

    #[inline]
    fn gather2x2(
        row0: &[i64],
        row1: &[i64],
        ia: &[usize],
        ib: &[usize],
        a0: &mut [i64],
        b0: &mut [i64],
        a1: &mut [i64],
        b1: &mut [i64],
    ) {
        // Same unrolling rationale as `gather2`, doubled: one pass over
        // the index lattice feeds all four strip arrays, so each index
        // pair is loaded once instead of twice and eight independent
        // gathers are in flight per iteration.
        let n = a0.len();
        let (ia, ib) = (&ia[..n], &ib[..n]);
        let mut a0c = a0.chunks_exact_mut(LANES);
        let mut b0c = b0.chunks_exact_mut(LANES);
        let mut a1c = a1.chunks_exact_mut(LANES);
        let mut b1c = b1.chunks_exact_mut(LANES);
        for (((((oa0, ob0), oa1), ob1), pi), pj) in (&mut a0c)
            .zip(&mut b0c)
            .zip(&mut a1c)
            .zip(&mut b1c)
            .zip(ia.chunks_exact(LANES))
            .zip(ib.chunks_exact(LANES))
        {
            I64x4([row0[pi[0]], row0[pi[1]], row0[pi[2]], row0[pi[3]]]).store(oa0);
            I64x4([row0[pj[0]], row0[pj[1]], row0[pj[2]], row0[pj[3]]]).store(ob0);
            I64x4([row1[pi[0]], row1[pi[1]], row1[pi[2]], row1[pi[3]]]).store(oa1);
            I64x4([row1[pj[0]], row1[pj[1]], row1[pj[2]], row1[pj[3]]]).store(ob1);
        }
        let (ra0, rb0) = (a0c.into_remainder(), b0c.into_remainder());
        let (ra1, rb1) = (a1c.into_remainder(), b1c.into_remainder());
        let start = n - ra0.len();
        for k in 0..ra0.len() {
            let i = start + k;
            ra0[k] = row0[ia[i]];
            rb0[k] = row0[ib[i]];
            ra1[k] = row1[ia[i]];
            rb1[k] = row1[ib[i]];
        }
    }

    #[inline]
    fn gather_pairs2(
        row0: &[i64],
        row1: &[i64],
        start: usize,
        stride: usize,
        a0: &mut [i64],
        b0: &mut [i64],
        a1: &mut [i64],
        b1: &mut [i64],
    ) {
        let n = a0.len();
        if n == 0 {
            return;
        }
        // Narrow both rows to exactly the strided span, then unroll
        // 4-wide like `gather2x2` with the offsets computed from one
        // running base — sixteen independent loads in flight per
        // iteration and no index-array traffic at all.
        let end = start + (n - 1) * stride + 2;
        let (r0, r1) = (&row0[start..end], &row1[start..end]);
        let (s1, s2, s3) = (stride, 2 * stride, 3 * stride);
        let mut a0c = a0.chunks_exact_mut(LANES);
        let mut b0c = b0.chunks_exact_mut(LANES);
        let mut a1c = a1.chunks_exact_mut(LANES);
        let mut b1c = b1.chunks_exact_mut(LANES);
        let mut j = 0usize;
        for (((oa0, ob0), oa1), ob1) in (&mut a0c).zip(&mut b0c).zip(&mut a1c).zip(&mut b1c) {
            I64x4([r0[j], r0[j + s1], r0[j + s2], r0[j + s3]]).store(oa0);
            I64x4([r0[j + 1], r0[j + s1 + 1], r0[j + s2 + 1], r0[j + s3 + 1]]).store(ob0);
            I64x4([r1[j], r1[j + s1], r1[j + s2], r1[j + s3]]).store(oa1);
            I64x4([r1[j + 1], r1[j + s1 + 1], r1[j + s2 + 1], r1[j + s3 + 1]]).store(ob1);
            j += 4 * stride;
        }
        let (ra0, rb0) = (a0c.into_remainder(), b0c.into_remainder());
        let (ra1, rb1) = (a1c.into_remainder(), b1c.into_remainder());
        let start_k = n - ra0.len();
        for k in 0..ra0.len() {
            let j = (start_k + k) * stride;
            ra0[k] = r0[j];
            rb0[k] = r0[j + 1];
            ra1[k] = r1[j];
            rb1[k] = r1[j + 1];
        }
    }

    #[inline]
    fn prefix_many(
        p: &[i64],
        stride: usize,
        width: usize,
        height: usize,
        xs: &[i64],
        ys: &[i64],
        out: &mut [i64],
    ) {
        let n = out.len();
        let (w, h) = (width as i64, height as i64);
        let mut i = 0;
        while i + LANES <= n {
            let cx = clip4(I64x4::load(&xs[i..]), w);
            let cy = clip4(I64x4::load(&ys[i..]), h);
            let v = I64x4([
                p[cx[0] + cy[0] * stride],
                p[cx[1] + cy[1] * stride],
                p[cx[2] + cy[2] * stride],
                p[cx[3] + cy[3] * stride],
            ]);
            v.store(&mut out[i..]);
            i += LANES;
        }
        while i < n {
            out[i] = p[clip1(xs[i], w) + clip1(ys[i], h) * stride];
            i += 1;
        }
    }

    #[inline]
    fn signed_sum4(
        p: &[i64],
        stride: usize,
        width: usize,
        height: usize,
        x0: [i64; 4],
        y0: [i64; 4],
        x1: [i64; 4],
        y1: [i64; 4],
    ) -> [i64; 4] {
        let (w, h) = (width as i64, height as i64);
        let one = I64x4::splat(1);
        // Branchless lane clamps; the ±1 shifts select the four-corner
        // planes of each window.
        let lo_x = clip4(I64x4(x0).sub(one), w);
        let hi_x = clip4(I64x4(x1), w);
        let lo_y = clip4(I64x4(y0).sub(one), h);
        let hi_y = clip4(I64x4(y1), h);
        let mut out = [0i64; 4];
        for l in 0..4 {
            let (ly, hy) = (lo_y[l] * stride, hi_y[l] * stride);
            out[l] = p[hi_x[l] + hy] - p[lo_x[l] + hy] - p[hi_x[l] + ly] + p[lo_x[l] + ly];
        }
        out
    }
}

/// The tier behind the public cube/sweep API: packed by default, the
/// scalar reference when the `scalar-kernels` feature is enabled.
#[cfg(not(feature = "scalar-kernels"))]
pub type Active = PackedTier;
/// The tier behind the public cube/sweep API: packed by default, the
/// scalar reference when the `scalar-kernels` feature is enabled.
#[cfg(feature = "scalar-kernels")]
pub type Active = ScalarTier;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1000..1000)).collect()
    }

    /// Every strip kernel shape agrees between the two tiers on lengths
    /// around the lane width (0..=2·LANES + 3 covers empty, sub-lane,
    /// exact-lane and ragged-tail cases).
    #[test]
    fn tiers_agree_on_strip_combines() {
        for n in 0..=(2 * LANES + 3) {
            let a = random_vec(n + 1, 1);
            let b = random_vec(n + 1, 2);
            let c = random_vec(n + 1, 3);
            let d = random_vec(n + 1, 4);
            let add = random_vec(n, 5);
            let mut s = vec![0i64; n];
            let mut v = vec![0i64; n];
            ScalarTier::strip_combine(&a, &b, &c, &d, &mut s);
            PackedTier::strip_combine(&a, &b, &c, &d, &mut v);
            assert_eq!(s, v, "strip_combine n={n}");
            ScalarTier::strip_combine_k(&a, &b, &c, &d, 17, &mut s);
            PackedTier::strip_combine_k(&a, &b, &c, &d, 17, &mut v);
            assert_eq!(s, v, "strip_combine_k n={n}");
            ScalarTier::strip_combine_add(&a, &b, &c, &d, &add, &mut s);
            PackedTier::strip_combine_add(&a, &b, &c, &d, &add, &mut v);
            assert_eq!(s, v, "strip_combine_add n={n}");

            let e = random_vec(n + 1, 6);
            let f = random_vec(n + 1, 7);
            let g = random_vec(n + 1, 8);
            let h = random_vec(n + 1, 9);
            let (mut s2, mut v2) = (vec![0i64; n], vec![0i64; n]);
            ScalarTier::strip_combine2(&a, &b, &c, &d, &e, &f, &g, &h, &mut s, &mut s2);
            PackedTier::strip_combine2(&a, &b, &c, &d, &e, &f, &g, &h, &mut v, &mut v2);
            assert_eq!((&s, &s2), (&v, &v2), "strip_combine2 n={n}");
            // And the fused dual combine agrees with two plain combines.
            let mut one = vec![0i64; n];
            ScalarTier::strip_combine(&a, &b, &c, &d, &mut one);
            assert_eq!(s, one, "strip_combine2 first row n={n}");
            ScalarTier::strip_combine(&e, &f, &g, &h, &mut one);
            assert_eq!(s2, one, "strip_combine2 second row n={n}");
        }
    }

    #[test]
    fn tiers_agree_on_gather2() {
        let row = random_vec(64, 7);
        let mut rng = StdRng::seed_from_u64(8);
        for n in 0..=(2 * LANES + 3) {
            let ia: Vec<usize> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let ib: Vec<usize> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let (mut sa, mut sb) = (vec![0i64; n], vec![0i64; n]);
            let (mut va, mut vb) = (vec![0i64; n], vec![0i64; n]);
            ScalarTier::gather2(&row, &ia, &ib, &mut sa, &mut sb);
            PackedTier::gather2(&row, &ia, &ib, &mut va, &mut vb);
            assert_eq!((sa, sb), (va, vb), "gather2 n={n}");
        }
    }

    #[test]
    fn tiers_agree_on_gather2x2() {
        let row0 = random_vec(64, 9);
        let row1 = random_vec(64, 10);
        let mut rng = StdRng::seed_from_u64(11);
        for n in 0..=(2 * LANES + 3) {
            let ia: Vec<usize> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let ib: Vec<usize> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let mut s = [vec![0i64; n], vec![0i64; n], vec![0i64; n], vec![0i64; n]];
            let mut v = [vec![0i64; n], vec![0i64; n], vec![0i64; n], vec![0i64; n]];
            {
                let [s0, s1, s2, s3] = &mut s;
                ScalarTier::gather2x2(&row0, &row1, &ia, &ib, s0, s1, s2, s3);
            }
            {
                let [v0, v1, v2, v3] = &mut v;
                PackedTier::gather2x2(&row0, &row1, &ia, &ib, v0, v1, v2, v3);
            }
            assert_eq!(s, v, "gather2x2 n={n}");
            // And the fused gather agrees with two plain dual gathers.
            let (mut ga, mut gb) = (vec![0i64; n], vec![0i64; n]);
            ScalarTier::gather2(&row0, &ia, &ib, &mut ga, &mut gb);
            assert_eq!((&s[0], &s[1]), (&ga, &gb), "gather2x2 row0 n={n}");
        }
    }

    /// The strided pair gather agrees between tiers and with the general
    /// quad gather over the equivalent affine index lattice, across
    /// strides (2 = back-to-back pairs, the full-chunk edge case) and
    /// lengths straddling the lane width.
    #[test]
    fn tiers_agree_on_gather_pairs2() {
        let row0 = random_vec(128, 12);
        let row1 = random_vec(128, 13);
        for stride in [2usize, 3, 5, 10] {
            for start in [0usize, 1, 4] {
                for n in 0..=(2 * LANES + 3) {
                    if n > 0 && start + (n - 1) * stride + 1 >= 128 {
                        continue;
                    }
                    let ia: Vec<usize> = (0..n).map(|k| start + k * stride).collect();
                    let ib: Vec<usize> = ia.iter().map(|&j| j + 1).collect();
                    let mut s = [vec![0i64; n], vec![0i64; n], vec![0i64; n], vec![0i64; n]];
                    let mut v = [vec![0i64; n], vec![0i64; n], vec![0i64; n], vec![0i64; n]];
                    let mut g = [vec![0i64; n], vec![0i64; n], vec![0i64; n], vec![0i64; n]];
                    {
                        let [s0, s1, s2, s3] = &mut s;
                        ScalarTier::gather_pairs2(&row0, &row1, start, stride, s0, s1, s2, s3);
                    }
                    {
                        let [v0, v1, v2, v3] = &mut v;
                        PackedTier::gather_pairs2(&row0, &row1, start, stride, v0, v1, v2, v3);
                    }
                    {
                        let [g0, g1, g2, g3] = &mut g;
                        ScalarTier::gather2x2(&row0, &row1, &ia, &ib, g0, g1, g2, g3);
                    }
                    assert_eq!(s, v, "gather_pairs2 stride={stride} start={start} n={n}");
                    assert_eq!(s, g, "vs gather2x2 stride={stride} start={start} n={n}");
                }
            }
        }
    }
}
