//! A 2-D Fenwick (binary indexed) tree with **range update / range
//! query** in `O(log² n)` — the dynamic counterpart of the prefix-sum
//! cube, in the spirit of the update-efficient cubes the paper cites
//! (\[GRAE99\] "Data cubes in dynamic environments", \[RAE00\] pCube).
//!
//! The static [`crate::PrefixSum2D`] answers queries in O(1) but a single
//! counter change invalidates O(N) prefix entries. This structure trades
//! query constant-ness for incremental updates: both a rectangle add and
//! a rectangle sum cost `O(log² n)` — the substrate for
//! `euler_core::DynamicEulerHistogram`, which keeps Level-2 browsing
//! queries available *while* objects stream in and out.
//!
//! Implementation: the classic four-tree decomposition. A point update at
//! `(x, y)` (in difference form) contributes
//! `v · (qx − x + 1)(qy − y + 1)` to `prefix(qx, qy)`; expanding the
//! product into `qx·qy`, `qx`, `qy`, `1` coefficients yields four BITs
//! whose weighted combination reconstructs the prefix sum. A rectangle
//! add is four signed point updates (the 2-D difference trick).

/// One plain 2-D BIT over `i64` (point add / prefix sum), 1-indexed
/// internally.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bit2D {
    w: usize,
    h: usize,
    t: Vec<i64>,
}

impl Bit2D {
    fn new(w: usize, h: usize) -> Bit2D {
        Bit2D {
            w,
            h,
            t: vec![0; (w + 1) * (h + 1)],
        }
    }

    fn add(&mut self, x: usize, y: usize, v: i64) {
        // 1-indexed coordinates in [1, w] × [1, h].
        let mut i = x;
        while i <= self.w {
            let mut j = y;
            while j <= self.h {
                self.t[i * (self.h + 1) + j] += v;
                j += j & j.wrapping_neg();
            }
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, x: usize, y: usize) -> i64 {
        let mut s = 0;
        let mut i = x;
        while i > 0 {
            let mut j = y;
            while j > 0 {
                s += self.t[i * (self.h + 1) + j];
                j -= j & j.wrapping_neg();
            }
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// The range-update / range-query 2-D Fenwick structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeFenwick2D {
    width: usize,
    height: usize,
    txy: Bit2D,
    tx: Bit2D,
    ty: Bit2D,
    t1: Bit2D,
}

impl RangeFenwick2D {
    /// A zeroed `width × height` array.
    pub fn new(width: usize, height: usize) -> RangeFenwick2D {
        assert!(width > 0 && height > 0);
        RangeFenwick2D {
            width,
            height,
            txy: Bit2D::new(width, height),
            tx: Bit2D::new(width, height),
            ty: Bit2D::new(width, height),
            t1: Bit2D::new(width, height),
        }
    }

    /// Array width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Array height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// One corner of the difference decomposition, 1-indexed.
    fn point(&mut self, x: usize, y: usize, v: i64) {
        if x > self.width || y > self.height {
            return; // the +1 corners that fall off the edge vanish
        }
        let (xi, yi) = (x as i64, y as i64);
        self.txy.add(x, y, v);
        self.tx.add(x, y, v * (1 - yi));
        self.ty.add(x, y, v * (1 - xi));
        self.t1.add(x, y, v * (xi - 1) * (yi - 1));
    }

    /// Adds `v` to every cell of the inclusive 0-indexed rectangle
    /// `[x0, x1] × [y0, y1]`. `O(log² n)`.
    pub fn add_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, v: i64) {
        assert!(x0 <= x1 && x1 < self.width, "x range [{x0},{x1}]");
        assert!(y0 <= y1 && y1 < self.height, "y range [{y0},{y1}]");
        // Shift to 1-indexed corners.
        self.point(x0 + 1, y0 + 1, v);
        self.point(x0 + 1, y1 + 2, -v);
        self.point(x1 + 2, y0 + 1, -v);
        self.point(x1 + 2, y1 + 2, v);
    }

    /// Cumulative sum over `[0, x] × [0, y]` (0-indexed). `O(log² n)`.
    pub fn prefix(&self, x: usize, y: usize) -> i64 {
        debug_assert!(x < self.width && y < self.height);
        let (xi, yi) = (x as i64 + 1, y as i64 + 1);
        let (x1, y1) = (x + 1, y + 1);
        self.txy.prefix(x1, y1) * xi * yi
            + self.tx.prefix(x1, y1) * xi
            + self.ty.prefix(x1, y1) * yi
            + self.t1.prefix(x1, y1)
    }

    /// Sum over the inclusive 0-indexed rectangle `[x0, x1] × [y0, y1]`.
    pub fn range_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 <= x1 && x1 < self.width);
        debug_assert!(y0 <= y1 && y1 < self.height);
        let mut s = self.prefix(x1, y1);
        if x0 > 0 {
            s -= self.prefix(x0 - 1, y1);
        }
        if y0 > 0 {
            s -= self.prefix(x1, y0 - 1);
        }
        if x0 > 0 && y0 > 0 {
            s += self.prefix(x0 - 1, y0 - 1);
        }
        s
    }

    /// Clipped signed range sum (see [`crate::PrefixSum2D::range_sum_clipped`]).
    pub fn range_sum_clipped(&self, x0: i64, y0: i64, x1: i64, y1: i64) -> i64 {
        let cx0 = x0.max(0);
        let cy0 = y0.max(0);
        let cx1 = x1.min(self.width as i64 - 1);
        let cy1 = y1.min(self.height as i64 - 1);
        if cx0 > cx1 || cy0 > cy1 {
            return 0;
        }
        self.range_sum(cx0 as usize, cy0 as usize, cx1 as usize, cy1 as usize)
    }

    /// Sum of the whole array.
    pub fn total(&self) -> i64 {
        self.prefix(self.width - 1, self.height - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense2D;
    use proptest::prelude::*;

    #[test]
    fn single_cell_update() {
        let mut f = RangeFenwick2D::new(6, 5);
        f.add_rect(2, 3, 2, 3, 7);
        assert_eq!(f.range_sum(2, 3, 2, 3), 7);
        assert_eq!(f.range_sum(0, 0, 5, 4), 7);
        assert_eq!(f.range_sum(0, 0, 1, 4), 0);
        assert_eq!(f.prefix(1, 4), 0);
        assert_eq!(f.prefix(2, 3), 7);
    }

    #[test]
    fn full_rect_update() {
        let mut f = RangeFenwick2D::new(4, 4);
        f.add_rect(0, 0, 3, 3, 2);
        assert_eq!(f.total(), 32);
        assert_eq!(f.range_sum(1, 1, 2, 2), 8);
    }

    #[test]
    fn edge_touching_updates() {
        let mut f = RangeFenwick2D::new(5, 3);
        f.add_rect(4, 2, 4, 2, 1);
        f.add_rect(0, 0, 4, 2, 1);
        assert_eq!(f.range_sum(4, 2, 4, 2), 2);
        assert_eq!(f.total(), 16);
    }

    proptest! {
        /// RangeFenwick2D agrees with a naive dense array under arbitrary
        /// interleavings of rectangle updates and range queries.
        #[test]
        fn matches_naive(ops in prop::collection::vec(
            (0usize..9, 0usize..7, 0usize..9, 0usize..7, -4i64..5), 1..40),
            queries in prop::collection::vec(
            (0usize..9, 0usize..7, 0usize..9, 0usize..7), 1..20))
        {
            let (w, h) = (9, 7);
            let mut f = RangeFenwick2D::new(w, h);
            let mut naive = Dense2D::zeros(w, h);
            for (a, b, c, d, v) in ops {
                let (x0, x1) = (a.min(c), a.max(c));
                let (y0, y1) = (b.min(d), b.max(d));
                f.add_rect(x0, y0, x1, y1, v);
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        naive.add(x, y, v);
                    }
                }
                for &(a, b, c, d) in &queries {
                    let (qx0, qx1) = (a.min(c), a.max(c));
                    let (qy0, qy1) = (b.min(d), b.max(d));
                    prop_assert_eq!(
                        f.range_sum(qx0, qy0, qx1, qy1),
                        naive.range_sum_naive(qx0, qy0, qx1, qy1)
                    );
                }
                prop_assert_eq!(f.total(), naive.total());
            }
        }

        /// Clipped sums agree with the naive dense reference on windows
        /// hanging off every side of the array, under arbitrary rectangle
        /// updates — the same edge cases the sweep kernels lean on for
        /// boundary-touching Euler regions.
        #[test]
        fn clipped_matches_naive_on_out_of_bounds_windows(
            ops in prop::collection::vec(
                (0usize..9, 0usize..7, 0usize..9, 0usize..7, -4i64..5), 1..20),
            x0 in -5i64..14, y0 in -5i64..12,
            x1 in -5i64..14, y1 in -5i64..12)
        {
            let (w, h) = (9usize, 7usize);
            let mut f = RangeFenwick2D::new(w, h);
            let mut naive = Dense2D::zeros(w, h);
            for (a, b, c, d, v) in ops {
                let (rx0, rx1) = (a.min(c), a.max(c));
                let (ry0, ry1) = (b.min(d), b.max(d));
                f.add_rect(rx0, ry0, rx1, ry1, v);
                for y in ry0..=ry1 {
                    for x in rx0..=rx1 {
                        naive.add(x, y, v);
                    }
                }
            }
            let (lo_x, hi_x) = (x0.min(x1), x0.max(x1));
            let (lo_y, hi_y) = (y0.min(y1), y0.max(y1));
            let want = {
                let cx0 = lo_x.max(0);
                let cy0 = lo_y.max(0);
                let cx1 = hi_x.min(w as i64 - 1);
                let cy1 = hi_y.min(h as i64 - 1);
                if cx0 > cx1 || cy0 > cy1 {
                    0
                } else {
                    naive.range_sum_naive(cx0 as usize, cy0 as usize,
                                          cx1 as usize, cy1 as usize)
                }
            };
            prop_assert_eq!(f.range_sum_clipped(lo_x, lo_y, hi_x, hi_y), want);
        }

        /// Clipping semantics match PrefixSum2D's.
        #[test]
        fn clipped_matches(x0 in -3i64..12, y0 in -3i64..10,
                           x1 in -3i64..12, y1 in -3i64..10) {
            let mut f = RangeFenwick2D::new(9, 7);
            f.add_rect(1, 1, 7, 5, 3);
            let naive = {
                let mut d = crate::Diff2D::zeros(9, 7);
                d.add_rect(1, 1, 7, 5, 3);
                crate::PrefixSum2D::build(&d.build())
            };
            let (lo_x, hi_x) = (x0.min(x1), x0.max(x1));
            let (lo_y, hi_y) = (y0.min(y1), y0.max(y1));
            prop_assert_eq!(
                f.range_sum_clipped(lo_x, lo_y, hi_x, hi_y),
                naive.range_sum_clipped(lo_x, lo_y, hi_x, hi_y)
            );
        }
    }
}
