use serde::{Deserialize, Serialize};

/// A dense d-dimensional array of `i64` counters with runtime-chosen
/// dimensionality.
///
/// Theorem 3.1 and Beigel–Tanin's corollary are stated for d dimensions;
/// this array (plus [`PrefixSumNd`]) is the substrate for the
/// d-dimensional Euler histogram and the paper's §2 example comparing a
/// 2-D grid (64,800 cells) against the 4-D point encoding (4·10⁹ cells).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseNd {
    dims: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<i64>,
}

fn strides_of(dims: &[usize]) -> Vec<usize> {
    // First dimension is the fastest-varying, matching Dense2D's layout.
    let mut strides = vec![0; dims.len()];
    let mut acc = 1usize;
    for (s, &d) in strides.iter_mut().zip(dims) {
        *s = acc;
        acc = acc.checked_mul(d).expect("DenseNd size overflow");
    }
    strides
}

impl DenseNd {
    /// A zero-filled array with the given per-dimension extents.
    pub fn zeros(dims: &[usize]) -> DenseNd {
        assert!(!dims.is_empty(), "DenseNd needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        let strides = strides_of(dims);
        let len = dims.iter().product();
        DenseNd {
            dims: dims.to_vec(),
            strides,
            data: vec![0; len],
        }
    }

    /// Per-dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty (never true: dims are validated nonzero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut off = 0;
        for ((&i, &d), &s) in idx.iter().zip(&self.dims).zip(&self.strides) {
            debug_assert!(i < d, "index {i} out of bound {d}");
            off += i * s;
        }
        off
    }

    /// Value at the multi-index.
    pub fn get(&self, idx: &[usize]) -> i64 {
        self.data[self.offset(idx)]
    }

    /// Adds `v` at the multi-index.
    pub fn add(&mut self, idx: &[usize], v: i64) {
        let off = self.offset(idx);
        self.data[off] += v;
    }

    /// Sum of all entries.
    pub fn total(&self) -> i64 {
        self.data.iter().sum()
    }

    /// Naive O(volume) inclusive range sum, the testing reference.
    pub fn range_sum_naive(&self, lo: &[usize], hi: &[usize]) -> i64 {
        assert_eq!(lo.len(), self.ndim());
        assert_eq!(hi.len(), self.ndim());
        let mut idx = lo.to_vec();
        let mut sum = 0i64;
        'outer: loop {
            sum += self.get(&idx);
            // Odometer increment.
            for d in 0..self.ndim() {
                if idx[d] < hi[d] {
                    idx[d] += 1;
                    continue 'outer;
                }
                idx[d] = lo[d];
            }
            break;
        }
        sum
    }

    /// Bytes of storage held.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i64>()
    }
}

/// The d-dimensional prefix-sum cube: inclusive range sums via 2^d
/// inclusion–exclusion lookups \[HAMS97\].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixSumNd {
    dims: Vec<usize>,
    // Guard-padded extents (each +1) and their strides.
    padded_strides: Vec<usize>,
    p: Vec<i64>,
}

impl PrefixSumNd {
    /// Builds the cube from a dense array, one axis-sweep per dimension.
    pub fn build(a: &DenseNd) -> PrefixSumNd {
        let dims = a.dims().to_vec();
        let padded: Vec<usize> = dims.iter().map(|&d| d + 1).collect();
        let padded_strides = strides_of(&padded);
        let len = padded.iter().product();
        let mut p = vec![0i64; len];

        // Copy source values into the padded layout at index+1.
        {
            let mut idx = vec![0usize; dims.len()];
            loop {
                let mut off = 0;
                for (d, &i) in idx.iter().enumerate() {
                    off += (i + 1) * padded_strides[d];
                }
                p[off] = a.get(&idx);
                let mut d = 0;
                loop {
                    if d == dims.len() {
                        // Finished full sweep.
                        idx.clear();
                        break;
                    }
                    idx[d] += 1;
                    if idx[d] < dims[d] {
                        break;
                    }
                    idx[d] = 0;
                    d += 1;
                }
                if idx.is_empty() {
                    break;
                }
            }
        }

        // Accumulate along each axis in turn.
        for d in 0..dims.len() {
            let stride = padded_strides[d];
            let extent = padded[d];
            // Iterate over all lines along axis d.
            let line_count = len / extent;
            for line in 0..line_count {
                // Decompose `line` into the coordinates of the other axes.
                let mut base = 0usize;
                let mut rem = line;
                for (ad, (&pd, &ps)) in padded.iter().zip(&padded_strides).enumerate() {
                    if ad == d {
                        continue;
                    }
                    let coord = rem % pd;
                    rem /= pd;
                    base += coord * ps;
                }
                let mut acc = 0i64;
                for i in 0..extent {
                    let off = base + i * stride;
                    acc += p[off];
                    p[off] = acc;
                }
            }
        }

        PrefixSumNd {
            dims,
            padded_strides,
            p,
        }
    }

    /// Per-dimension extents of the summarized array.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Sum over the inclusive multi-index range `[lo, hi]`, answered with
    /// `2^d` lookups.
    pub fn range_sum(&self, lo: &[usize], hi: &[usize]) -> i64 {
        let d = self.dims.len();
        assert_eq!(lo.len(), d);
        assert_eq!(hi.len(), d);
        for i in 0..d {
            assert!(lo[i] <= hi[i] && hi[i] < self.dims[i], "bad range dim {i}");
        }
        let mut sum = 0i64;
        for mask in 0..(1u32 << d) {
            let mut off = 0usize;
            let mut sign = 1i64;
            for (i, &s) in self.padded_strides.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    // Choose the (lo-1) corner: subtract.
                    off += lo[i] * s; // padded index lo[i] == source lo[i]-1
                    sign = -sign;
                } else {
                    off += (hi[i] + 1) * s;
                }
            }
            sum += sign * self.p[off];
        }
        sum
    }

    /// Cumulative sum at *clipped* signed coordinates: the inclusive
    /// prefix `P(idx)` with each coordinate clamped into the array, and 0
    /// when any is negative (the zero guard plane).
    ///
    /// The d-dimensional sibling of
    /// [`crate::PrefixSum2D::prefix_clipped`]: the `2^d` signed-corner
    /// combination of `prefix_clipped` values reproduces
    /// [`Self::range_sum_clipped`] for any ordered window, which lets
    /// batched evaluators cache corner planes instead of re-deriving the
    /// clamp per query.
    #[inline]
    pub fn prefix_clipped(&self, idx: &[i64]) -> i64 {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut off = 0usize;
        for ((&i, &d), &s) in idx.iter().zip(&self.dims).zip(&self.padded_strides) {
            if i < 0 {
                return 0;
            }
            off += ((i as usize).min(d - 1) + 1) * s;
        }
        self.p[off]
    }

    /// Decomposed per-axis offset for [`Self::prefix_clipped`]: the
    /// flattened-array contribution of the clamped index `i` on `axis`,
    /// or `None` when `i < 0` (any negative coordinate zeroes the whole
    /// prefix read). Sweep kernels precompute these per tile row/column
    /// and combine them with [`Self::value_at_offset`], hoisting the
    /// clamp and stride arithmetic out of the per-query hot loop.
    #[inline]
    pub fn axis_offset_clipped(&self, axis: usize, i: i64) -> Option<usize> {
        if i < 0 {
            return None;
        }
        Some(((i as usize).min(self.dims[axis] - 1) + 1) * self.padded_strides[axis])
    }

    /// Padded-array read at a sum of per-axis offsets, one per axis, each
    /// produced by [`Self::axis_offset_clipped`]. Equals
    /// [`Self::prefix_clipped`] at the corresponding multi-index.
    #[inline]
    pub fn value_at_offset(&self, off: usize) -> i64 {
        self.p[off]
    }

    /// Clipped signed range sum (see [`crate::PrefixSum2D::range_sum_clipped`]).
    pub fn range_sum_clipped(&self, lo: &[i64], hi: &[i64]) -> i64 {
        let d = self.dims.len();
        let mut clo = vec![0usize; d];
        let mut chi = vec![0usize; d];
        for i in 0..d {
            let l = lo[i].max(0);
            let h = hi[i].min(self.dims[i] as i64 - 1);
            if l > h {
                return 0;
            }
            clo[i] = l as usize;
            chi[i] = h as usize;
        }
        self.range_sum(&clo, &chi)
    }

    /// Sum of the whole array.
    pub fn total(&self) -> i64 {
        let hi: Vec<usize> = self.dims.iter().map(|&d| d - 1).collect();
        self.range_sum(&vec![0; self.dims.len()], &hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_nd(dims: &[usize], seed: u64) -> DenseNd {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = DenseNd::zeros(dims);
        let mut idx = vec![0usize; dims.len()];
        loop {
            a.add(&idx, rng.gen_range(-50..50));
            let mut d = 0;
            loop {
                if d == dims.len() {
                    return a;
                }
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
                d += 1;
            }
        }
    }

    #[test]
    fn one_dimensional_prefix() {
        let mut a = DenseNd::zeros(&[5]);
        for i in 0..5 {
            a.add(&[i], (i + 1) as i64);
        }
        let p = PrefixSumNd::build(&a);
        assert_eq!(p.range_sum(&[0], &[4]), 15);
        assert_eq!(p.range_sum(&[2], &[3]), 7);
        assert_eq!(p.total(), 15);
    }

    #[test]
    fn two_dimensional_matches_dense2d_semantics() {
        let a = random_nd(&[6, 4], 7);
        let p = PrefixSumNd::build(&a);
        for x0 in 0..6 {
            for x1 in x0..6 {
                for y0 in 0..4 {
                    for y1 in y0..4 {
                        assert_eq!(
                            p.range_sum(&[x0, y0], &[x1, y1]),
                            a.range_sum_naive(&[x0, y0], &[x1, y1])
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn three_dimensional_range_sums() {
        let a = random_nd(&[4, 3, 5], 11);
        let p = PrefixSumNd::build(&a);
        let cases = [
            ([0, 0, 0], [3, 2, 4]),
            ([1, 1, 1], [2, 2, 3]),
            ([0, 0, 2], [3, 0, 2]),
            ([2, 1, 0], [2, 1, 0]),
        ];
        for (lo, hi) in cases {
            assert_eq!(p.range_sum(&lo, &hi), a.range_sum_naive(&lo, &hi));
        }
        assert_eq!(p.total(), a.total());
    }

    #[test]
    fn four_dimensional_spot_checks() {
        // The paper's "rectangles as 4-d points" encoding (§2).
        let a = random_nd(&[3, 4, 3, 4], 13);
        let p = PrefixSumNd::build(&a);
        assert_eq!(p.total(), a.total());
        assert_eq!(
            p.range_sum(&[1, 1, 0, 2], &[2, 3, 2, 3]),
            a.range_sum_naive(&[1, 1, 0, 2], &[2, 3, 2, 3])
        );
    }

    #[test]
    fn clipped_nd() {
        let a = random_nd(&[4, 4], 17);
        let p = PrefixSumNd::build(&a);
        assert_eq!(p.range_sum_clipped(&[-5, -5], &[10, 10]), a.total());
        assert_eq!(p.range_sum_clipped(&[4, 0], &[5, 3]), 0);
        assert_eq!(
            p.range_sum_clipped(&[-1, 1], &[2, 5]),
            a.range_sum_naive(&[0, 1], &[2, 3])
        );
    }

    #[test]
    fn prefix_clipped_corners_equal_clipped_range_sum() {
        let a = random_nd(&[4, 3, 4], 19);
        let p = PrefixSumNd::build(&a);
        for (lo, hi) in [
            ([-2i64, -1, 0], [5i64, 2, 3]),
            ([0, 0, 0], [3, 2, 3]),
            ([1, -3, 2], [2, 1, 9]),
            ([3, 2, 3], [3, 2, 3]),
            ([-1, -1, -1], [10, 10, 10]),
        ] {
            let mut corners = 0i64;
            for mask in 0..8u32 {
                let mut idx = [0i64; 3];
                let mut sign = 1i64;
                for i in 0..3 {
                    if mask & (1 << i) != 0 {
                        idx[i] = lo[i] - 1;
                        sign = -sign;
                    } else {
                        idx[i] = hi[i];
                    }
                }
                corners += sign * p.prefix_clipped(&idx);
            }
            assert_eq!(
                corners,
                p.range_sum_clipped(&lo, &hi),
                "window {lo:?}..{hi:?}"
            );
        }
    }

    #[test]
    fn axis_offsets_reassemble_prefix_clipped() {
        let a = random_nd(&[4, 3, 4], 23);
        let p = PrefixSumNd::build(&a);
        for idx in [
            [0i64, 0, 0],
            [3, 2, 3],
            [5, 1, 2],
            [-1, 2, 2],
            [2, -3, 1],
            [9, 9, 9],
        ] {
            let off = (0..3)
                .map(|d| p.axis_offset_clipped(d, idx[d]))
                .try_fold(0usize, |acc, o| o.map(|o| acc + o));
            let via_offsets = off.map_or(0, |o| p.value_at_offset(o));
            assert_eq!(via_offsets, p.prefix_clipped(&idx), "index {idx:?}");
        }
    }

    #[test]
    fn storage_matches_paper_example() {
        // §2: 360×180 grid = 64,800 cells.
        let g = DenseNd::zeros(&[360, 180]);
        assert_eq!(g.len(), 64_800);
    }
}
