use serde::{Deserialize, Serialize};

/// A dense row-major 2-D array of `i64` counters.
///
/// Index convention throughout the workspace: `(x, y)` with `x` the fast
/// axis — `idx = y * width + x`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dense2D {
    width: usize,
    height: usize,
    data: Vec<i64>,
}

impl Dense2D {
    /// A zero-filled `width × height` array.
    pub fn zeros(width: usize, height: usize) -> Dense2D {
        assert!(
            width > 0 && height > 0,
            "Dense2D dimensions must be nonzero"
        );
        Dense2D {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Builds from existing row-major data.
    pub fn from_vec(width: usize, height: usize, data: Vec<i64>) -> Dense2D {
        assert_eq!(data.len(), width * height, "data length mismatch");
        Dense2D {
            width,
            height,
            data,
        }
    }

    /// Array width (x extent).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Array height (y extent).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        y * self.width + x
    }

    /// Value at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> i64 {
        self.data[self.idx(x, y)]
    }

    /// Sets the value at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: i64) {
        let i = self.idx(x, y);
        self.data[i] = v;
    }

    /// Adds `v` to the value at `(x, y)`.
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, v: i64) {
        let i = self.idx(x, y);
        self.data[i] += v;
    }

    /// Raw row-major data.
    #[inline]
    pub fn raw(&self) -> &[i64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Sum of all entries.
    pub fn total(&self) -> i64 {
        self.data.iter().sum()
    }

    /// Applies `f(x, y, value) -> value` to every entry in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(usize, usize, i64) -> i64) {
        for y in 0..self.height {
            let row = &mut self.data[y * self.width..(y + 1) * self.width];
            for (x, v) in row.iter_mut().enumerate() {
                *v = f(x, y, *v);
            }
        }
    }

    /// Naive O(area) sum over the inclusive index range
    /// `[x0, x1] × [y0, y1]` — the reference implementation the prefix-sum
    /// cube is tested against.
    pub fn range_sum_naive(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        assert!(x1 < self.width && y1 < self.height && x0 <= x1 && y0 <= y1);
        let mut s = 0;
        for y in y0..=y1 {
            for x in x0..=x1 {
                s += self.get(x, y);
            }
        }
        s
    }

    /// Bytes of storage held by the array (the metric of Theorem 3.1's
    /// storage discussion).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_add_roundtrip() {
        let mut a = Dense2D::zeros(4, 3);
        a.set(2, 1, 5);
        a.add(2, 1, -2);
        assert_eq!(a.get(2, 1), 3);
        assert_eq!(a.get(0, 0), 0);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)] // the check is a debug_assert; release elides it
    fn debug_bounds_check() {
        let a = Dense2D::zeros(4, 3);
        let _ = a.get(4, 0);
    }

    #[test]
    fn map_in_place_sees_coordinates() {
        let mut a = Dense2D::zeros(3, 2);
        a.map_in_place(|x, y, _| (x + 10 * y) as i64);
        assert_eq!(a.get(2, 1), 12);
        assert_eq!(a.get(0, 0), 0);
    }

    #[test]
    fn naive_range_sum() {
        let a = Dense2D::from_vec(3, 3, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.range_sum_naive(0, 0, 2, 2), 45);
        assert_eq!(a.range_sum_naive(1, 1, 2, 2), 5 + 6 + 8 + 9);
        assert_eq!(a.range_sum_naive(0, 0, 0, 0), 1);
    }

    #[test]
    fn storage_accounting() {
        let a = Dense2D::zeros(10, 10);
        assert_eq!(a.storage_bytes(), 800);
    }
}
