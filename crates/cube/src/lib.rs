//! Prefix-sum data cubes — the query-time substrate of every histogram in
//! this workspace.
//!
//! Ho, Agrawal, Megiddo & Srikant's *prefix-sum data cube* \[HAMS97\] stores
//! the cumulative sums of a dense array so that the sum over any axis-
//! aligned index range is answered with `2^d` lookups and `2^d − 1`
//! additions — the constant-time property the paper leans on for its
//! "browsing query with 5000 tiles under 100 ms" goal (§5.2, §6.5).
//!
//! Provided structures:
//!
//! * [`Dense2D`] — a flat row-major 2-D array;
//! * [`Diff2D`] — a 2-D difference array for O(1) rectangle increments,
//!   used to bulk-build Euler histograms and exact ground truth;
//! * [`PrefixSum2D`] — the 2-D prefix-sum cube with O(1) range sums;
//! * [`CompressedPrefix2D`] / [`CubeTier`] — a run-length–compressed twin
//!   of the 2-D cube (parity-pair runs + a deduplicating row directory)
//!   and the enum that lets frozen histograms pick a tier per dataset,
//!   bit-identically;
//! * [`DenseNd`] / [`PrefixSumNd`] — the d-dimensional generalization
//!   (the paper states its results for d dimensions in Theorem 3.1);
//! * [`RangeFenwick2D`] — a dynamic cube (O(log² n) rectangle update and
//!   rectangle sum), in the update-efficient-cube direction the paper
//!   cites as \[GRAE99\]/\[RAE00\];
//! * [`kernels`] — the batched, lane-packed kernel tiers behind
//!   [`PrefixSum2D`]'s clipped lookups and `euler-core`'s sweep strips
//!   (the `scalar-kernels` feature swaps in the scalar reference tier).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compressed2d;
mod dense2d;
mod diff2d;
mod fenwick2d;
pub mod kernels;
mod ndim;
mod prefix2d;

pub use compressed2d::{CompressedPrefix2D, CubeTier};
pub use dense2d::Dense2D;
pub use diff2d::Diff2D;
pub use fenwick2d::RangeFenwick2D;
pub use ndim::{DenseNd, PrefixSumNd};
pub use prefix2d::PrefixSum2D;
