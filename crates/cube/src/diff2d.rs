use crate::Dense2D;

/// A 2-D difference array: O(1) "add `v` to every cell of a rectangle",
/// O(area) one-shot materialization.
///
/// This is how Euler histograms are bulk-built (each snapped object is one
/// rectangle update, §5.1) and how the exact ground-truth tile counter
/// turns per-object tile ranges into per-tile counts.
#[derive(Debug, Clone)]
pub struct Diff2D {
    // One extra row/column absorbs the closing decrement of ranges that
    // touch the array edge.
    grid: Dense2D,
    width: usize,
    height: usize,
}

impl Diff2D {
    /// A difference array for a `width × height` target.
    pub fn zeros(width: usize, height: usize) -> Diff2D {
        Diff2D {
            grid: Dense2D::zeros(width + 1, height + 1),
            width,
            height,
        }
    }

    /// Target width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Target height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Adds `v` to every cell of the inclusive rectangle `[x0,x1] × [y0,y1]`.
    #[inline]
    pub fn add_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, v: i64) {
        debug_assert!(x0 <= x1 && x1 < self.width, "x range [{x0},{x1}]");
        debug_assert!(y0 <= y1 && y1 < self.height, "y range [{y0},{y1}]");
        self.grid.add(x0, y0, v);
        self.grid.add(x1 + 1, y0, -v);
        self.grid.add(x0, y1 + 1, -v);
        self.grid.add(x1 + 1, y1 + 1, v);
    }

    /// Materializes the accumulated updates into a dense array.
    pub fn build(self) -> Dense2D {
        let Diff2D {
            grid,
            width,
            height,
        } = self;
        let mut out = Dense2D::zeros(width, height);
        // Running 2-D prefix sum of the difference grid, restricted to the
        // target extent.
        let mut prev_row = vec![0i64; width];
        for y in 0..height {
            let mut row_acc = 0i64;
            for (x, prev) in prev_row.iter_mut().enumerate() {
                row_acc += grid.get(x, y);
                let v = row_acc + *prev;
                out.set(x, y, v);
                *prev = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_rect_update() {
        let mut d = Diff2D::zeros(5, 4);
        d.add_rect(1, 1, 3, 2, 7);
        let a = d.build();
        for y in 0..4 {
            for x in 0..5 {
                let inside = (1..=3).contains(&x) && (1..=2).contains(&y);
                assert_eq!(a.get(x, y), if inside { 7 } else { 0 }, "({x},{y})");
            }
        }
    }

    #[test]
    fn edge_touching_rects() {
        let mut d = Diff2D::zeros(3, 3);
        d.add_rect(0, 0, 2, 2, 1);
        d.add_rect(2, 2, 2, 2, 5);
        let a = d.build();
        assert_eq!(a.get(0, 0), 1);
        assert_eq!(a.get(2, 2), 6);
        assert_eq!(a.total(), 9 + 5);
    }

    proptest! {
        /// Difference-array materialization equals naive accumulation.
        #[test]
        fn matches_naive(rects in prop::collection::vec(
            (0usize..8, 0usize..8, 0usize..8, 0usize..8, -5i64..5), 0..40)) {
            let (w, h) = (8, 8);
            let mut d = Diff2D::zeros(w, h);
            let mut naive = Dense2D::zeros(w, h);
            for (x0, y0, x1, y1, v) in rects {
                let (x0, x1) = (x0.min(x1), x0.max(x1));
                let (y0, y1) = (y0.min(y1), y0.max(y1));
                d.add_rect(x0, y0, x1, y1, v);
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        naive.add(x, y, v);
                    }
                }
            }
            prop_assert_eq!(d.build(), naive);
        }
    }
}
