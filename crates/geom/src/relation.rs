//! The spatial-relation models of the paper's §2.
//!
//! * **Level 1** — `disjoint` / `intersect`, definable from the interiors
//!   alone; this is what prior selectivity estimators support.
//! * **Level 2** — the five relations of the *interior–exterior intersection
//!   model* introduced by the paper (Equation 2): `disjoint`, `contains`,
//!   `contained`, `equals`, `overlap`.
//! * **Level 3** — the eight region relations of the 9-intersection model
//!   of Egenhofer & Herring \[EH94\].
//!
//! All classifications take `p` as the *query* and `q` as the *object*, as
//! in the paper: `Contains` means "the query contains the object" (the
//! paper's `N_cs`), `Contained` means "the query is contained in the
//! object" (`N_cd`).
//!
//! ### Degenerate objects
//!
//! Real datasets contain point and segment MBRs whose topological interior
//! is empty, which would make every Level 2/3 relation degenerate. We use
//! *relative interior* semantics instead: the interior of a point is the
//! point, the interior of a segment is the open segment. Under these
//! semantics a point strictly inside the query classifies as `Contains`,
//! matching what a browsing user expects for point data.

use crate::Rect;
use serde::{Deserialize, Serialize};

/// Level 1 spatial relations (top of the paper's Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level1Relation {
    /// Interiors do not intersect.
    Disjoint,
    /// Interiors intersect.
    Intersect,
}

/// Level 2 spatial relations (interior–exterior intersection model,
/// middle of Figure 3). `p` is the query, `q` the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level2Relation {
    /// Interiors do not intersect (includes boundary-only contact).
    Disjoint,
    /// The query contains the object (`N_cs` in the paper).
    Contains,
    /// The query is contained in the object (`N_cd`).
    Contained,
    /// Query and object coincide (eliminated by snapping, `N_eq = 0`).
    Equals,
    /// Interiors intersect and each has interior outside the other (`N_o`).
    Overlap,
}

impl Level2Relation {
    /// All five relations, in the order of the paper's Equation 8 terms.
    pub const ALL: [Level2Relation; 5] = [
        Level2Relation::Disjoint,
        Level2Relation::Contains,
        Level2Relation::Contained,
        Level2Relation::Equals,
        Level2Relation::Overlap,
    ];

    /// Collapse to the Level 1 dichotomy (Figure 3's upward arrows).
    pub fn to_level1(self) -> Level1Relation {
        match self {
            Level2Relation::Disjoint => Level1Relation::Disjoint,
            _ => Level1Relation::Intersect,
        }
    }
}

/// Level 3 spatial relations: the eight region relations of the
/// 9-intersection model (bottom of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level3Relation {
    /// Closures do not intersect.
    Disjoint,
    /// Boundaries touch, interiors do not intersect.
    Meet,
    /// Interiors intersect, each escapes the other.
    Overlap,
    /// `q` inside `p` with boundary contact.
    Covers,
    /// `q` strictly inside `p`'s interior.
    Contains,
    /// `p` inside `q` with boundary contact.
    CoveredBy,
    /// `p` strictly inside `q`'s interior.
    Inside,
    /// `p` and `q` coincide.
    Equal,
}

/// Collapse a Level 3 relation to its Level 2 relation (the downward arrows
/// of Figure 3: boundary distinctions are dropped).
pub fn level2_of_level3(r: Level3Relation) -> Level2Relation {
    match r {
        Level3Relation::Disjoint | Level3Relation::Meet => Level2Relation::Disjoint,
        Level3Relation::Overlap => Level2Relation::Overlap,
        Level3Relation::Covers | Level3Relation::Contains => Level2Relation::Contains,
        Level3Relation::CoveredBy | Level3Relation::Inside => Level2Relation::Contained,
        Level3Relation::Equal => Level2Relation::Equals,
    }
}

/// The interior–exterior intersection matrix of the paper's Equation 2:
///
/// ```text
/// | p.i ∩ q.i    p.i ∩ q.e |
/// | p.e ∩ q.i    p.e ∩ q.e |
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InteriorExterior {
    /// `p.i ∩ q.i ≠ ∅`
    pub ii: bool,
    /// `p.i ∩ q.e ≠ ∅`
    pub ie: bool,
    /// `p.e ∩ q.i ≠ ∅`
    pub ei: bool,
    /// `p.e ∩ q.e ≠ ∅` (always true for bounded objects)
    pub ee: bool,
}

/// Does the relative interior of `q` intersect the open interior of `p`?
///
/// Per-dimension: a degenerate extent contributes the single coordinate,
/// which must fall strictly inside `p`'s extent; a full extent needs the
/// usual strict overlap.
fn rel_interior_meets_open(p: &Rect, q: &Rect) -> bool {
    let x_ok = if q.xlo() == q.xhi() {
        p.xlo() < q.xlo() && q.xlo() < p.xhi()
    } else {
        q.xlo() < p.xhi() && q.xhi() > p.xlo()
    };
    let y_ok = if q.ylo() == q.yhi() {
        p.ylo() < q.ylo() && q.ylo() < p.yhi()
    } else {
        q.ylo() < p.yhi() && q.yhi() > p.ylo()
    };
    // p itself may be degenerate in a dimension; its open extent is then
    // empty and nothing can meet it.
    let p_ok = p.xlo() < p.xhi() || q.xlo() == q.xhi();
    let p_ok_y = p.ylo() < p.yhi() || q.ylo() == q.yhi();
    x_ok && y_ok && p_ok && p_ok_y
}

impl InteriorExterior {
    /// Computes the interior–exterior matrix for query `p` and object `q`
    /// under relative-interior semantics.
    pub fn compute(p: &Rect, q: &Rect) -> InteriorExterior {
        let ii = rel_interior_meets_open(p, q) || rel_interior_meets_open(q, p);
        // Symmetric ii: for two full-dimensional rects both calls agree; for
        // mixed degeneracy the relative interior of the degenerate one must
        // sit strictly inside the open extent of the other, which only the
        // call with the degenerate rect as `q` captures. We accept either
        // orientation so the matrix is well defined for any input pair.
        let ie = !p.inside_closed(q); // p's interior escapes q's closure
        let ei = !q.inside_closed(p); // q's interior escapes p's closure
        InteriorExterior {
            ii,
            ie,
            ei,
            ee: true,
        }
    }

    /// Classify the matrix into a Level 2 relation per Figure 3.
    pub fn classify(&self) -> Level2Relation {
        match (self.ii, self.ie, self.ei) {
            (false, _, _) => Level2Relation::Disjoint,
            (true, true, false) => Level2Relation::Contains,
            (true, false, true) => Level2Relation::Contained,
            (true, false, false) => Level2Relation::Equals,
            (true, true, true) => Level2Relation::Overlap,
        }
    }
}

/// Classify the Level 2 relation of object `q` with respect to query `p`.
pub fn classify_level2(p: &Rect, q: &Rect) -> Level2Relation {
    InteriorExterior::compute(p, q).classify()
}

/// Classify the Level 1 relation of object `q` with respect to query `p`.
pub fn classify_level1(p: &Rect, q: &Rect) -> Level1Relation {
    classify_level2(p, q).to_level1()
}

/// The full 9-intersection matrix of Egenhofer & Herring \[EH94\]
/// (Equation 1 of the paper), for two full-dimensional rectangles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NineIntersection {
    /// Row-major entries: `[p.i, p.b, p.e] × [q.i, q.b, q.e]`.
    pub m: [[bool; 3]; 3],
}

/// Does the interior of `b` contain a point of `a`'s boundary ring?
/// Valid for full-dimensional rectangles only.
fn boundary_meets_interior(a: &Rect, b: &Rect) -> bool {
    // b's open interior reaches a's ring iff the open rects intersect and
    // b's closure is not confined to a's closure... more precisely: the open
    // set of b intersects the closed set of a (same predicate as open-open
    // intersection for full-dimensional rects) while b is not nested inside
    // a's closure (in which case b's interior only sees a's interior).
    a.intersects_open(b) && !b.inside_closed(a)
}

impl NineIntersection {
    /// Computes the matrix. Both rectangles must be full-dimensional
    /// (non-degenerate); degenerate inputs return `None` because a region
    /// without interior has no 9-intersection classification as a region.
    pub fn compute(p: &Rect, q: &Rect) -> Option<NineIntersection> {
        if p.is_degenerate() || q.is_degenerate() {
            return None;
        }
        let ii = p.intersects_open(q);
        let ib = boundary_meets_interior(q, p); // p.i ∩ q.b
        let ie = !p.inside_closed(q);
        let bi = boundary_meets_interior(p, q); // p.b ∩ q.i
        let bb = p.intersects_closed(q) && !p.inside_open(q) && !q.inside_open(p);
        let be = !p.inside_closed(q);
        let ei = !q.inside_closed(p);
        let eb = !q.inside_closed(p);
        let ee = true;
        Some(NineIntersection {
            m: [[ii, ib, ie], [bi, bb, be], [ei, eb, ee]],
        })
    }

    /// Classify into one of the eight Level 3 region relations.
    pub fn classify(&self) -> Level3Relation {
        let [[ii, _ib, ie], [_bi, bb, _be], [ei, _eb, _ee]] = self.m;
        match (ii, bb, ie, ei) {
            (false, false, _, _) => Level3Relation::Disjoint,
            (false, true, _, _) => Level3Relation::Meet,
            (true, _, true, true) => Level3Relation::Overlap,
            (true, bb, true, false) => {
                if bb {
                    Level3Relation::Covers
                } else {
                    Level3Relation::Contains
                }
            }
            (true, bb, false, true) => {
                if bb {
                    Level3Relation::CoveredBy
                } else {
                    Level3Relation::Inside
                }
            }
            (true, _, false, false) => Level3Relation::Equal,
        }
    }
}

/// Classify the Level 3 relation of object `q` with respect to query `p`.
/// Returns `None` for degenerate rectangles.
pub fn classify_level3(p: &Rect, q: &Rect) -> Option<Level3Relation> {
    NineIntersection::compute(p, q).map(|m| m.classify())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(xlo: f64, ylo: f64, xhi: f64, yhi: f64) -> Rect {
        Rect::new(xlo, ylo, xhi, yhi).unwrap()
    }

    const Q: fn() -> Rect = || r(10.0, 10.0, 20.0, 20.0);

    #[test]
    fn level3_eight_relations() {
        let p = Q();
        let cases = [
            (r(30.0, 30.0, 40.0, 40.0), Level3Relation::Disjoint),
            (r(20.0, 10.0, 30.0, 20.0), Level3Relation::Meet),
            (r(15.0, 15.0, 25.0, 25.0), Level3Relation::Overlap),
            (r(10.0, 12.0, 15.0, 18.0), Level3Relation::Covers),
            (r(12.0, 12.0, 18.0, 18.0), Level3Relation::Contains),
            (r(10.0, 5.0, 25.0, 25.0), Level3Relation::CoveredBy),
            (r(5.0, 5.0, 25.0, 25.0), Level3Relation::Inside),
            (Q(), Level3Relation::Equal),
        ];
        for (q, expect) in cases {
            assert_eq!(classify_level3(&p, &q), Some(expect), "object {q}");
        }
    }

    #[test]
    fn level3_degenerate_is_none() {
        let p = Q();
        let seg = r(12.0, 15.0, 18.0, 15.0);
        assert_eq!(classify_level3(&p, &seg), None);
    }

    #[test]
    fn level2_five_relations() {
        let p = Q();
        let cases = [
            (r(30.0, 30.0, 40.0, 40.0), Level2Relation::Disjoint),
            // Boundary-only contact is Level 2 disjoint.
            (r(20.0, 10.0, 30.0, 20.0), Level2Relation::Disjoint),
            (r(15.0, 15.0, 25.0, 25.0), Level2Relation::Overlap),
            (r(12.0, 12.0, 18.0, 18.0), Level2Relation::Contains),
            // Covers collapses to Contains at Level 2.
            (r(10.0, 12.0, 15.0, 18.0), Level2Relation::Contains),
            (r(5.0, 5.0, 25.0, 25.0), Level2Relation::Contained),
            // CoveredBy collapses to Contained.
            (r(10.0, 5.0, 25.0, 25.0), Level2Relation::Contained),
            (Q(), Level2Relation::Equals),
        ];
        for (q, expect) in cases {
            assert_eq!(classify_level2(&p, &q), expect, "object {q}");
        }
    }

    #[test]
    fn level2_point_and_segment_objects() {
        let p = Q();
        // A point strictly inside the query: the query contains it.
        let pt = r(15.0, 15.0, 15.0, 15.0);
        assert_eq!(classify_level2(&p, &pt), Level2Relation::Contains);
        // A point on the query boundary is Level 2 disjoint.
        let on_edge = r(10.0, 15.0, 10.0, 15.0);
        assert_eq!(classify_level2(&p, &on_edge), Level2Relation::Disjoint);
        // A point outside.
        let out = r(0.0, 0.0, 0.0, 0.0);
        assert_eq!(classify_level2(&p, &out), Level2Relation::Disjoint);
        // A horizontal segment crossing the query overlaps it.
        let seg = r(5.0, 15.0, 25.0, 15.0);
        assert_eq!(classify_level2(&p, &seg), Level2Relation::Overlap);
        // A segment fully inside is contained by the query.
        let seg_in = r(12.0, 15.0, 18.0, 15.0);
        assert_eq!(classify_level2(&p, &seg_in), Level2Relation::Contains);
    }

    #[test]
    fn level2_collapses_level3_consistently() {
        // For every pair where Level 3 is defined, collapsing it must agree
        // with direct Level 2 classification (Figure 3's arrows commute).
        let p = Q();
        let objects = [
            r(30.0, 30.0, 40.0, 40.0),
            r(20.0, 10.0, 30.0, 20.0),
            r(15.0, 15.0, 25.0, 25.0),
            r(10.0, 12.0, 15.0, 18.0),
            r(12.0, 12.0, 18.0, 18.0),
            r(10.0, 5.0, 25.0, 25.0),
            r(5.0, 5.0, 25.0, 25.0),
            Q(),
        ];
        for q in objects {
            let l3 = classify_level3(&p, &q).unwrap();
            assert_eq!(level2_of_level3(l3), classify_level2(&p, &q), "{q}");
        }
    }

    #[test]
    fn level1_collapse() {
        assert_eq!(
            Level2Relation::Contains.to_level1(),
            Level1Relation::Intersect
        );
        assert_eq!(
            Level2Relation::Disjoint.to_level1(),
            Level1Relation::Disjoint
        );
    }

    #[test]
    fn nine_intersection_contains_matches_figure_2() {
        // Figure 2 of the paper: when p contains q the matrix is
        // [1 0 1; 0 0 1; 0 1 1]... for rectangles strictly nested:
        // p.i∩q.i=1, p.i∩q.b=1 (q's ring lies in p's interior!),
        // p.i∩q.e=1, rest of row b: 0,0,1; row e: 0,0,1.
        let p = r(0.0, 0.0, 10.0, 10.0);
        let q = r(2.0, 2.0, 8.0, 8.0);
        let m = NineIntersection::compute(&p, &q).unwrap().m;
        assert_eq!(
            m,
            [
                [true, true, true],
                [false, false, true],
                [false, false, true]
            ]
        );
        assert_eq!(
            NineIntersection::compute(&p, &q).unwrap().classify(),
            Level3Relation::Contains
        );
    }

    proptest! {
        /// The interior-exterior matrix must always be one of the five valid
        /// Level 2 patterns for any pair of generated rectangles.
        #[test]
        fn matrix_always_classifiable(ax in 0.0..100.0f64, ay in 0.0..100.0f64,
                                      aw in 0.01..50.0f64, ah in 0.01..50.0f64,
                                      bx in 0.0..100.0f64, by in 0.0..100.0f64,
                                      bw in 0.01..50.0f64, bh in 0.01..50.0f64) {
            let p = r(ax, ay, ax + aw, ay + ah);
            let q = r(bx, by, bx + bw, by + bh);
            let rel = classify_level2(&p, &q);
            prop_assert!(Level2Relation::ALL.contains(&rel));
        }

        /// contains/contained are mirror images under argument swap.
        #[test]
        fn contains_contained_duality(ax in 0.0..100.0f64, ay in 0.0..100.0f64,
                                      aw in 0.01..50.0f64, ah in 0.01..50.0f64,
                                      bx in 0.0..100.0f64, by in 0.0..100.0f64,
                                      bw in 0.01..50.0f64, bh in 0.01..50.0f64) {
            let p = r(ax, ay, ax + aw, ay + ah);
            let q = r(bx, by, bx + bw, by + bh);
            let fwd = classify_level2(&p, &q);
            let rev = classify_level2(&q, &p);
            let expected = match fwd {
                Level2Relation::Contains => Level2Relation::Contained,
                Level2Relation::Contained => Level2Relation::Contains,
                other => other,
            };
            prop_assert_eq!(rev, expected);
        }

        /// Level 3, when defined, always collapses to the direct Level 2.
        #[test]
        fn level3_collapse_commutes(ax in 0.0..20.0f64, ay in 0.0..20.0f64,
                                    aw in 1.0..10.0f64, ah in 1.0..10.0f64,
                                    bx in 0.0..20.0f64, by in 0.0..20.0f64,
                                    bw in 1.0..10.0f64, bh in 1.0..10.0f64) {
            let p = r(ax, ay, ax + aw, ay + ah);
            let q = r(bx, by, bx + bw, by + bh);
            if let Some(l3) = classify_level3(&p, &q) {
                prop_assert_eq!(level2_of_level3(l3), classify_level2(&p, &q));
            }
        }

        /// Integer-coordinate rectangles exercise every touching/equality
        /// edge case; classification must still be total and consistent.
        #[test]
        fn integer_grid_cases(ax in 0..10i32, ay in 0..10i32, aw in 1..6i32, ah in 1..6i32,
                              bx in 0..10i32, by in 0..10i32, bw in 1..6i32, bh in 1..6i32) {
            let p = r(ax as f64, ay as f64, (ax + aw) as f64, (ay + ah) as f64);
            let q = r(bx as f64, by as f64, (bx + bw) as f64, (by + bh) as f64);
            let l3 = classify_level3(&p, &q).unwrap();
            prop_assert_eq!(level2_of_level3(l3), classify_level2(&p, &q));
            // Equal iff identical bounds.
            let eq = ax == bx && ay == by && aw == bw && ah == bh;
            prop_assert_eq!(l3 == Level3Relation::Equal, eq);
        }
    }
}
