use serde::{Deserialize, Serialize};

use crate::GeomError;

/// Whether an interval endpoint is included in the interval.
///
/// The paper's §3 distinguishes between objects that start *at* a grid line
/// (`[i, j)`) and objects that start strictly after it (`(i, j)`), because
/// the two stand in different Level 2 relations to a grid-aligned query.
/// Making the topology explicit lets the snapping step (§4.2's "shrink an
/// object a little bit") be expressed and tested exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// Endpoint belongs to the interval (`[` / `]`).
    Closed,
    /// Endpoint does not belong to the interval (`(` / `)`).
    Open,
}

/// A 1-D interval with explicit endpoint topology.
///
/// Degenerate intervals (`lo == hi`) are allowed only when both endpoints
/// are closed (a single point); an open degenerate interval would be empty
/// and is rejected by [`Interval::new`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
    lo_end: Endpoint,
    hi_end: Endpoint,
}

impl Interval {
    /// Creates an interval, validating orientation and finiteness.
    pub fn new(lo: f64, hi: f64, lo_end: Endpoint, hi_end: Endpoint) -> Result<Self, GeomError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(GeomError::NonFiniteCoordinate);
        }
        if lo > hi {
            return Err(GeomError::InvertedBounds {
                detail: format!("interval lo={lo} > hi={hi}"),
            });
        }
        if lo == hi && (lo_end == Endpoint::Open || hi_end == Endpoint::Open) {
            return Err(GeomError::InvertedBounds {
                detail: format!("degenerate interval at {lo} must be closed on both ends"),
            });
        }
        Ok(Interval {
            lo,
            hi,
            lo_end,
            hi_end,
        })
    }

    /// Open interval `(lo, hi)`. Requires `lo < hi`.
    pub fn open(lo: f64, hi: f64) -> Result<Self, GeomError> {
        if lo >= hi {
            return Err(GeomError::InvertedBounds {
                detail: format!("open interval needs lo < hi, got [{lo}, {hi}]"),
            });
        }
        Interval::new(lo, hi, Endpoint::Open, Endpoint::Open)
    }

    /// Closed interval `[lo, hi]`. Allows the degenerate point case.
    pub fn closed(lo: f64, hi: f64) -> Result<Self, GeomError> {
        Interval::new(lo, hi, Endpoint::Closed, Endpoint::Closed)
    }

    /// Lower bound value.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound value.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Topology of the lower endpoint.
    #[inline]
    pub fn lo_end(&self) -> Endpoint {
        self.lo_end
    }

    /// Topology of the upper endpoint.
    #[inline]
    pub fn hi_end(&self) -> Endpoint {
        self.hi_end
    }

    /// Length of the interval (`hi - lo`).
    #[inline]
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// A single point, or a zero-length interval.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.lo == self.hi
    }

    /// The *interior* of the interval as an open interval, or `None` when
    /// the interior is empty (degenerate intervals have no interior).
    pub fn interior(&self) -> Option<Interval> {
        if self.lo < self.hi {
            Some(Interval {
                lo: self.lo,
                hi: self.hi,
                lo_end: Endpoint::Open,
                hi_end: Endpoint::Open,
            })
        } else {
            None
        }
    }

    /// Does the interval contain the value `x` (respecting topology)?
    pub fn contains_value(&self, x: f64) -> bool {
        let above_lo = match self.lo_end {
            Endpoint::Closed => x >= self.lo,
            Endpoint::Open => x > self.lo,
        };
        let below_hi = match self.hi_end {
            Endpoint::Closed => x <= self.hi,
            Endpoint::Open => x < self.hi,
        };
        above_lo && below_hi
    }

    /// Do the two intervals share at least one point (respecting topology)?
    pub fn intersects(&self, other: &Interval) -> bool {
        // A nonempty intersection requires lo_max <= hi_min, with strictness
        // when the binding endpoint on either side is open.
        let (lo, lo_open) = if self.lo > other.lo {
            (self.lo, self.lo_end == Endpoint::Open)
        } else if other.lo > self.lo {
            (other.lo, other.lo_end == Endpoint::Open)
        } else {
            (
                self.lo,
                self.lo_end == Endpoint::Open || other.lo_end == Endpoint::Open,
            )
        };
        let (hi, hi_open) = if self.hi < other.hi {
            (self.hi, self.hi_end == Endpoint::Open)
        } else if other.hi < self.hi {
            (other.hi, other.hi_end == Endpoint::Open)
        } else {
            (
                self.hi,
                self.hi_end == Endpoint::Open || other.hi_end == Endpoint::Open,
            )
        };
        if lo < hi {
            true
        } else if lo == hi {
            !lo_open && !hi_open
        } else {
            false
        }
    }

    /// Is `self` a subset of `other` (every point of `self` lies in `other`)?
    pub fn subset_of(&self, other: &Interval) -> bool {
        let lo_ok = if self.lo > other.lo {
            true
        } else if self.lo == other.lo {
            // Equal bound: ok unless self includes the endpoint and other excludes it.
            !(self.lo_end == Endpoint::Closed && other.lo_end == Endpoint::Open)
        } else {
            false
        };
        let hi_ok = if self.hi < other.hi {
            true
        } else if self.hi == other.hi {
            !(self.hi_end == Endpoint::Closed && other.hi_end == Endpoint::Open)
        } else {
            false
        };
        lo_ok && hi_ok
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let l = match self.lo_end {
            Endpoint::Closed => '[',
            Endpoint::Open => '(',
        };
        let r = match self.hi_end {
            Endpoint::Closed => ']',
            Endpoint::Open => ')',
        };
        write!(f, "{l}{}, {}{r}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(lo: f64, hi: f64) -> Interval {
        Interval::open(lo, hi).unwrap()
    }
    fn cl(lo: f64, hi: f64) -> Interval {
        Interval::closed(lo, hi).unwrap()
    }

    #[test]
    fn rejects_inverted_and_nonfinite() {
        assert!(Interval::open(2.0, 1.0).is_err());
        assert!(Interval::closed(f64::NAN, 1.0).is_err());
        assert!(Interval::open(1.0, 1.0).is_err());
        assert!(Interval::closed(1.0, 1.0).is_ok());
    }

    #[test]
    fn paper_example_open_vs_halfopen() {
        // §3: object [1,3) contains the range [1,2] while (1,3) only overlaps it.
        let q = cl(1.0, 2.0);
        let half_open = Interval::new(1.0, 3.0, Endpoint::Closed, Endpoint::Open).unwrap();
        let open = op(1.0, 3.0);
        assert!(q.subset_of(&half_open));
        assert!(!q.subset_of(&open)); // (1,3) does not contain the point 1
        assert!(q.intersects(&open));
    }

    #[test]
    fn contains_value_respects_topology() {
        let i = op(1.0, 3.0);
        assert!(!i.contains_value(1.0));
        assert!(i.contains_value(2.0));
        assert!(!i.contains_value(3.0));
        let c = cl(1.0, 3.0);
        assert!(c.contains_value(1.0));
        assert!(c.contains_value(3.0));
    }

    #[test]
    fn touching_intervals_intersect_only_when_both_closed() {
        assert!(cl(0.0, 1.0).intersects(&cl(1.0, 2.0)));
        assert!(!op(0.0, 1.0).intersects(&cl(1.0, 2.0)));
        assert!(!cl(0.0, 1.0).intersects(&op(1.0, 2.0)));
        assert!(!op(0.0, 1.0).intersects(&op(1.0, 2.0)));
    }

    #[test]
    fn disjoint_intervals_do_not_intersect() {
        assert!(!cl(0.0, 1.0).intersects(&cl(2.0, 3.0)));
        assert!(!cl(2.0, 3.0).intersects(&cl(0.0, 1.0)));
    }

    #[test]
    fn subset_topology_edge_cases() {
        assert!(op(1.0, 2.0).subset_of(&cl(1.0, 2.0)));
        assert!(!cl(1.0, 2.0).subset_of(&op(1.0, 2.0)));
        assert!(op(1.0, 2.0).subset_of(&op(1.0, 2.0)));
        assert!(cl(1.5, 1.5).subset_of(&op(1.0, 2.0)));
        assert!(!cl(1.0, 1.0).subset_of(&op(1.0, 2.0)));
    }

    #[test]
    fn interior_of_degenerate_is_empty() {
        assert!(cl(1.0, 1.0).interior().is_none());
        let i = cl(1.0, 2.0).interior().unwrap();
        assert_eq!(i.lo_end(), Endpoint::Open);
        assert_eq!(i.hi_end(), Endpoint::Open);
    }

    #[test]
    fn display_renders_topology() {
        assert_eq!(
            Interval::new(1.0, 3.0, Endpoint::Closed, Endpoint::Open)
                .unwrap()
                .to_string(),
            "[1, 3)"
        );
    }
}
