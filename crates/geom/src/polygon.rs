//! Simple polygons, the richer object type whose MBR feeds the
//! histograms ("different types of objects can be represented by their
//! Minimal Bounding Rectangles", §2).
//!
//! The browsing pipeline only needs the MBR, but a production ingest path
//! must *compute* it from real geometries and may want exact area and
//! point-in-polygon tests when refining histogram hits; this module
//! provides those without pulling a geometry dependency.

use serde::{Deserialize, Serialize};

use crate::{GeomError, Point, Rect};

/// A simple polygon: ≥ 3 finite vertices in order (either winding), with
/// an implicit closing edge from the last vertex to the first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon, validating vertex count and finiteness.
    /// (Self-intersection is not checked; area/containment semantics below
    /// are those of the even-odd rule.)
    pub fn new(vertices: Vec<Point>) -> Result<Polygon, GeomError> {
        if vertices.len() < 3 {
            return Err(GeomError::InvertedBounds {
                detail: format!("polygon needs >= 3 vertices, got {}", vertices.len()),
            });
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(Polygon { vertices })
    }

    /// An axis-aligned rectangle as a polygon (counter-clockwise).
    pub fn from_rect(r: &Rect) -> Polygon {
        Polygon {
            vertices: vec![
                Point::new(r.xlo(), r.ylo()),
                Point::new(r.xhi(), r.ylo()),
                Point::new(r.xhi(), r.yhi()),
                Point::new(r.xlo(), r.yhi()),
            ],
        }
    }

    /// The vertices, in input order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// The minimal bounding rectangle — the object the histograms index.
    pub fn mbr(&self) -> Rect {
        let mut lo = self.vertices[0];
        let mut hi = self.vertices[0];
        for v in &self.vertices[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Rect::new(lo.x, lo.y, hi.x, hi.y).expect("min <= max")
    }

    /// Signed area via the shoelace formula: positive for
    /// counter-clockwise winding.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Even-odd point-in-polygon test (boundary points may report either
    /// way, like most ray-casting implementations; the histograms' Level 2
    /// semantics never depend on boundary hits after snapping).
    pub fn contains_point(&self, p: &Point) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[j];
            if ((a.y > p.y) != (b.y > p.y)) && (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// How much of the MBR the polygon fills (`area / mbr.area`), in
    /// `(0, 1]`; a refinement heuristic — low coverage means many MBR
    /// hits are false positives. Returns 1.0 for degenerate MBRs.
    pub fn mbr_coverage(&self) -> f64 {
        let mbr_area = self.mbr().area();
        if mbr_area == 0.0 {
            1.0
        } else {
            (self.area() / mbr_area).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triangle() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_err());
        assert!(Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(f64::NAN, 1.0),
            Point::new(1.0, 0.0)
        ])
        .is_err());
    }

    #[test]
    fn triangle_area_and_mbr() {
        let t = triangle();
        assert_eq!(t.area(), 6.0);
        assert_eq!(t.signed_area(), 6.0); // CCW
        assert_eq!(t.mbr(), Rect::new(0.0, 0.0, 4.0, 3.0).unwrap());
        assert!((t.mbr_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn winding_flips_sign_not_area() {
        let mut vs = triangle().vertices().to_vec();
        vs.reverse();
        let t = Polygon::new(vs).unwrap();
        assert_eq!(t.signed_area(), -6.0);
        assert_eq!(t.area(), 6.0);
    }

    #[test]
    fn point_in_polygon() {
        let t = triangle();
        assert!(t.contains_point(&Point::new(1.0, 1.0)));
        assert!(!t.contains_point(&Point::new(3.0, 3.0)));
        assert!(!t.contains_point(&Point::new(-0.1, 0.5)));
        // Concave polygon (an L-shape): the notch is outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        assert!(l.contains_point(&Point::new(0.5, 3.0)));
        assert!(l.contains_point(&Point::new(3.0, 0.5)));
        assert!(!l.contains_point(&Point::new(3.0, 3.0)), "the notch");
        assert_eq!(l.area(), 7.0);
    }

    #[test]
    fn rect_round_trip() {
        let r = Rect::new(1.0, 2.0, 5.0, 7.0).unwrap();
        let p = Polygon::from_rect(&r);
        assert_eq!(p.mbr(), r);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.mbr_coverage(), 1.0);
        assert!(p.contains_point(&Point::new(3.0, 4.0)));
    }

    proptest! {
        /// The MBR always encloses every vertex and the polygon's area
        /// never exceeds the MBR's.
        #[test]
        fn mbr_bounds_polygon(pts in prop::collection::vec(
            (-50.0..50.0f64, -50.0..50.0f64), 3..12)) {
            let poly = Polygon::new(
                pts.iter().map(|&(x, y)| Point::new(x, y)).collect()
            ).unwrap();
            let mbr = poly.mbr();
            for v in poly.vertices() {
                prop_assert!(mbr.contains_point(v));
            }
            prop_assert!(poly.area() <= mbr.area() + 1e-9);
            // Interior sample points (centroid of consecutive triples that
            // fall inside) are inside the MBR too.
            let c = poly.vertices().iter().fold(Point::new(0.0, 0.0), |acc, v| {
                Point::new(acc.x + v.x, acc.y + v.y)
            });
            let c = Point::new(c.x / poly.vertices().len() as f64,
                               c.y / poly.vertices().len() as f64);
            if poly.contains_point(&c) {
                prop_assert!(mbr.contains_point(&c));
            }
        }
    }
}
