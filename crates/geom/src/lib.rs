//! Geometry substrate for the spatial-histograms workspace.
//!
//! This crate provides the geometric vocabulary used throughout the
//! reproduction of *Exploring Spatial Datasets with Histograms* (Sun,
//! Agrawal, El Abbadi — ICDE 2002):
//!
//! * [`Point`] and [`Rect`] — plain 2-D points and axis-aligned rectangles
//!   (MBRs) over `f64` coordinates;
//! * [`Interval`] — 1-D intervals with explicit open/closed endpoint
//!   topology, the building block of the paper's "`[i,j)` vs `(i,j)`"
//!   discussion (§3);
//! * [`Polygon`] — simple polygons with shoelace area, even-odd
//!   containment and MBR extraction (the ingest path for non-rectangular
//!   objects);
//! * the spatial-relation models of §2: the full 9-intersection model
//!   ([`NineIntersection`], Level 3 relations), the interior–exterior
//!   intersection model ([`InteriorExterior`], Level 2 relations) that the
//!   paper introduces, and the Level 1 `disjoint`/`intersect` dichotomy.
//!
//! All relation classification here is *exact* computational geometry on
//! explicit topologies; the histogram crates approximate these counts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod interval;
mod point;
mod polygon;
mod rect;
mod relation;

pub use interval::{Endpoint, Interval};
pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;
pub use relation::{
    classify_level1, classify_level2, classify_level3, level2_of_level3, InteriorExterior,
    Level1Relation, Level2Relation, Level3Relation, NineIntersection,
};

/// Crate-wide error type for invalid geometric constructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// An interval or rectangle was constructed with `lo > hi`.
    InvertedBounds {
        /// Human-readable description of the offending bounds.
        detail: String,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::InvertedBounds { detail } => {
                write!(f, "inverted bounds: {detail}")
            }
            GeomError::NonFiniteCoordinate => write!(f, "coordinate is NaN or infinite"),
        }
    }
}

impl std::error::Error for GeomError {}
