use serde::{Deserialize, Serialize};

/// A 2-D point with `f64` coordinates.
///
/// Points are used for object centers in dataset generation and as the
/// degenerate case of an MBR ("point data" in the ADL dataset, §6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (longitude in the paper's 360×180 space).
    pub x: f64,
    /// Vertical coordinate (latitude in the paper's 360×180 space).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Both coordinates are finite (not NaN, not ±∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn finiteness_detects_nan_and_inf() {
        assert!(Point::new(0.0, 1.0).is_finite());
        assert!(!Point::new(f64::NAN, 1.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.5, -2.5).into();
        assert_eq!(p, Point::new(1.5, -2.5));
    }
}
