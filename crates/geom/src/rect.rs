use serde::{Deserialize, Serialize};

use crate::{GeomError, Point};

/// An axis-aligned rectangle (MBR) with `f64` coordinates.
///
/// `Rect` is a *closed* rectangle `[xlo, xhi] × [ylo, yhi]`; the open/closed
/// endpoint subtleties of the paper are handled by the snapping layer in
/// `euler-grid`, which converts raw MBRs into canonical open rectangles in
/// grid units. Degenerate rectangles (points, horizontal/vertical segments)
/// are valid — real datasets such as ADL and TIGER contain them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    xlo: f64,
    ylo: f64,
    xhi: f64,
    yhi: f64,
}

impl Rect {
    /// Creates a rectangle from its bounds, validating orientation and
    /// finiteness.
    pub fn new(xlo: f64, ylo: f64, xhi: f64, yhi: f64) -> Result<Self, GeomError> {
        if ![xlo, ylo, xhi, yhi].iter().all(|v| v.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        if xlo > xhi || ylo > yhi {
            return Err(GeomError::InvertedBounds {
                detail: format!("rect [{xlo},{xhi}]x[{ylo},{yhi}]"),
            });
        }
        Ok(Rect { xlo, ylo, xhi, yhi })
    }

    /// Rectangle from two opposite corner points (any orientation).
    pub fn from_corners(a: Point, b: Point) -> Result<Self, GeomError> {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Rectangle from a center point and full width/height.
    pub fn from_center(center: Point, width: f64, height: f64) -> Result<Self, GeomError> {
        Rect::new(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )
    }

    /// Degenerate rectangle covering a single point.
    pub fn point(p: Point) -> Result<Self, GeomError> {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// Lower x bound.
    #[inline]
    pub fn xlo(&self) -> f64 {
        self.xlo
    }
    /// Lower y bound.
    #[inline]
    pub fn ylo(&self) -> f64 {
        self.ylo
    }
    /// Upper x bound.
    #[inline]
    pub fn xhi(&self) -> f64 {
        self.xhi
    }
    /// Upper y bound.
    #[inline]
    pub fn yhi(&self) -> f64 {
        self.yhi
    }

    /// Width (`xhi - xlo`).
    #[inline]
    pub fn width(&self) -> f64 {
        self.xhi - self.xlo
    }

    /// Height (`yhi - ylo`).
    #[inline]
    pub fn height(&self) -> f64 {
        self.yhi - self.ylo
    }

    /// Area (`width * height`), zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)
    }

    /// True when the rectangle has zero width or zero height.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.xlo == self.xhi || self.ylo == self.yhi
    }

    /// Do the *closed* rectangles share at least one point?
    #[inline]
    pub fn intersects_closed(&self, other: &Rect) -> bool {
        self.xlo <= other.xhi
            && other.xlo <= self.xhi
            && self.ylo <= other.yhi
            && other.ylo <= self.yhi
    }

    /// Do the *open interiors* share at least one point? Degenerate
    /// rectangles have an empty interior, so they never open-intersect.
    #[inline]
    pub fn intersects_open(&self, other: &Rect) -> bool {
        !self.is_degenerate()
            && !other.is_degenerate()
            && self.xlo < other.xhi
            && other.xlo < self.xhi
            && self.ylo < other.yhi
            && other.ylo < self.yhi
    }

    /// Is `self` contained in `other` (closed ⊆ closed)?
    #[inline]
    pub fn inside_closed(&self, other: &Rect) -> bool {
        self.xlo >= other.xlo
            && self.xhi <= other.xhi
            && self.ylo >= other.ylo
            && self.yhi <= other.yhi
    }

    /// Is `self` strictly inside `other` (closure of `self` inside the open
    /// interior of `other`)?
    #[inline]
    pub fn inside_open(&self, other: &Rect) -> bool {
        self.xlo > other.xlo && self.xhi < other.xhi && self.ylo > other.ylo && self.yhi < other.yhi
    }

    /// Does the closed rectangle contain the point?
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.xlo && p.x <= self.xhi && p.y >= self.ylo && p.y <= self.yhi
    }

    /// Intersection of the closed rectangles, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects_closed(other) {
            return None;
        }
        Some(Rect {
            xlo: self.xlo.max(other.xlo),
            ylo: self.ylo.max(other.ylo),
            xhi: self.xhi.min(other.xhi),
            yhi: self.yhi.min(other.yhi),
        })
    }

    /// Minimal rectangle enclosing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xlo: self.xlo.min(other.xlo),
            ylo: self.ylo.min(other.ylo),
            xhi: self.xhi.max(other.xhi),
            yhi: self.yhi.max(other.yhi),
        }
    }

    /// Margin (half-perimeter), used by R-tree split heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Area added to `self` if it had to enclose `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Uniformly scales the rectangle about the space origin by `(sx, sy)`.
    pub fn scaled(&self, sx: f64, sy: f64) -> Rect {
        Rect {
            xlo: self.xlo * sx,
            ylo: self.ylo * sy,
            xhi: self.xhi * sx,
            yhi: self.yhi * sy,
        }
    }

    /// Translates the rectangle by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            xlo: self.xlo + dx,
            ylo: self.ylo + dy,
            xhi: self.xhi + dx,
            yhi: self.yhi + dy,
        }
    }

    /// Clamps the rectangle into `bounds` (both treated as closed). Returns
    /// `None` when the rectangle lies entirely outside the bounds.
    pub fn clamped_to(&self, bounds: &Rect) -> Option<Rect> {
        self.intersection(bounds)
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}]x[{}, {}]",
            self.xlo, self.xhi, self.ylo, self.yhi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(xlo: f64, ylo: f64, xhi: f64, yhi: f64) -> Rect {
        Rect::new(xlo, ylo, xhi, yhi).unwrap()
    }

    #[test]
    fn rejects_bad_bounds() {
        assert!(Rect::new(1.0, 0.0, 0.0, 1.0).is_err());
        assert!(Rect::new(0.0, 1.0, 1.0, 0.0).is_err());
        assert!(Rect::new(f64::INFINITY, 0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn area_width_height_center() {
        let a = r(1.0, 2.0, 4.0, 8.0);
        assert_eq!(a.width(), 3.0);
        assert_eq!(a.height(), 6.0);
        assert_eq!(a.area(), 18.0);
        assert_eq!(a.center(), Point::new(2.5, 5.0));
        assert_eq!(a.margin(), 9.0);
    }

    #[test]
    fn from_center_roundtrip() {
        let a = Rect::from_center(Point::new(10.0, 20.0), 3.6, 1.8).unwrap();
        assert!((a.width() - 3.6).abs() < 1e-12);
        assert!((a.height() - 1.8).abs() < 1e-12);
        assert_eq!(a.center(), Point::new(10.0, 20.0));
    }

    #[test]
    fn open_vs_closed_intersection_at_touching_edge() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects_closed(&b));
        assert!(!a.intersects_open(&b));
    }

    #[test]
    fn degenerate_rects_never_open_intersect() {
        let seg = r(0.0, 0.5, 1.0, 0.5); // horizontal segment
        let cell = r(0.0, 0.0, 1.0, 1.0);
        assert!(seg.intersects_closed(&cell));
        assert!(!seg.intersects_open(&cell));
        assert!(seg.is_degenerate());
    }

    #[test]
    fn containment_closed_vs_strict() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(0.0, 1.0, 5.0, 5.0);
        assert!(inner.inside_closed(&outer));
        assert!(!inner.inside_open(&outer)); // shares the x=0 edge
        let strict = r(1.0, 1.0, 5.0, 5.0);
        assert!(strict.inside_open(&outer));
    }

    #[test]
    fn intersection_and_union() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.intersection(&b).unwrap(), r(2.0, 2.0, 4.0, 4.0));
        assert_eq!(a.union(&b), r(0.0, 0.0, 6.0, 6.0));
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn enlargement_is_union_growth() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(3.0, 0.0, 4.0, 1.0);
        // union is [0,4]x[0,2] area 8, a.area = 4
        assert_eq!(a.enlargement(&b), 4.0);
        assert_eq!(a.enlargement(&r(1.0, 1.0, 2.0, 2.0)), 0.0);
    }

    proptest! {
        #[test]
        fn union_contains_both(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                               aw in 0.0..50.0f64, ah in 0.0..50.0f64,
                               bx in -100.0..100.0f64, by in -100.0..100.0f64,
                               bw in 0.0..50.0f64, bh in 0.0..50.0f64) {
            let a = r(ax, ay, ax + aw, ay + ah);
            let b = r(bx, by, bx + bw, by + bh);
            let u = a.union(&b);
            prop_assert!(a.inside_closed(&u));
            prop_assert!(b.inside_closed(&u));
        }

        #[test]
        fn intersection_inside_both(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                                    aw in 0.0..50.0f64, ah in 0.0..50.0f64,
                                    bx in -100.0..100.0f64, by in -100.0..100.0f64,
                                    bw in 0.0..50.0f64, bh in 0.0..50.0f64) {
            let a = r(ax, ay, ax + aw, ay + ah);
            let b = r(bx, by, bx + bw, by + bh);
            if let Some(i) = a.intersection(&b) {
                prop_assert!(i.inside_closed(&a));
                prop_assert!(i.inside_closed(&b));
            } else {
                prop_assert!(!a.intersects_closed(&b));
            }
        }

        #[test]
        fn open_intersection_implies_closed(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                                            aw in 0.0..50.0f64, ah in 0.0..50.0f64,
                                            bx in -100.0..100.0f64, by in -100.0..100.0f64,
                                            bw in 0.0..50.0f64, bh in 0.0..50.0f64) {
            let a = r(ax, ay, ax + aw, ay + ah);
            let b = r(bx, by, bx + bw, by + bh);
            if a.intersects_open(&b) {
                prop_assert!(a.intersects_closed(&b));
            }
        }
    }
}
