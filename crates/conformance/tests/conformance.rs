//! The conformance gate CI runs on every PR (`cargo test -p
//! euler-conformance`): the seeded differential suite, the regression
//! corpus, paper-dataset spot checks, and the fault-injection calibration
//! proving the harness catches and shrinks real defects.

use std::sync::Arc;

use euler_baselines::NaiveScan;
use euler_conformance::{
    check_estimate, check_interleaving, check_kill_points, check_torn_tails, default_specs,
    differential_matrix, env_budget, env_seed, replay_corpus, run_case, run_suite, shrink,
    sweep_tilings, CaseOutcome, CaseSpec, Distribution, EstimatorKind, ExactnessClass, Fault,
    FaultyEstimator, Violation,
};
use euler_core::model::count_by_classification;
use euler_core::Level2Estimator;
use euler_datagen::paper_dataset;
use euler_grid::{DataSpace, Grid, GridRect, SnappedRect};

/// The main gate: ≥ 1,000 differential comparisons across all nine
/// estimators (scaled up by `EULER_CONFORMANCE_BUDGET` in the nightly
/// job), zero violations, failures reported shrunk and replayable.
#[test]
fn differential_suite_is_clean() {
    let specs = default_specs(env_seed(), env_budget());
    let summary = run_suite(&specs);
    assert_eq!(summary.cases, specs.len());
    assert!(
        summary.comparisons >= 1_000,
        "suite too small: {} comparisons",
        summary.comparisons
    );
    let reports: Vec<String> = summary.failures.iter().map(|f| f.report()).collect();
    assert!(
        summary.failures.is_empty(),
        "{} failing case(s):\n{}",
        summary.failures.len(),
        reports.join("\n\n")
    );
}

/// Every corpus line must replay cleanly forever.
#[test]
fn corpus_replays_cleanly() {
    let results = replay_corpus();
    assert!(!results.is_empty());
    for (spec, outcome) in results {
        assert!(
            outcome.is_clean(),
            "corpus regression `{}`: {:#?}",
            spec.to_line(),
            outcome.violations
        );
    }
}

/// The nine-estimator matrix also holds on (scaled-down) paper datasets
/// snapped to a coarse paper-world grid.
#[test]
fn paper_datasets_conform() {
    let grid = Grid::new(DataSpace::paper_world(), 18, 9).expect("paper grid");
    // Query plan: reuse the seeded plan for an 18×9 grid (dataset-independent).
    let plan_spec = CaseSpec {
        seed: env_seed(),
        dist: Distribution::Uniform,
        nx: 18,
        ny: 9,
        objects: 0,
    };
    let queries = plan_spec.queries();
    for name in ["sp_skew", "sz_skew"] {
        let dataset = paper_dataset(name, 2000).expect(name);
        let objects = dataset.snap(&grid);
        assert!(!objects.is_empty(), "{name} empty at scale 2000");
        let oracle: Vec<_> = queries
            .iter()
            .map(|q| count_by_classification(&objects, q))
            .collect();
        let mut outcome = CaseOutcome::default();
        differential_matrix(&grid, &objects, &queries, &oracle, &mut outcome);
        assert!(outcome.is_clean(), "{name}: {:#?}", outcome.violations);
    }
}

/// Re-checks a faulty estimator against the exact-oracle laws on one
/// (objects, query) candidate; the shrinker's predicate.
fn faulty_violation(fault: Fault, objects: &[SnappedRect], q: &GridRect) -> Option<Violation> {
    let faulty = FaultyEstimator::new(Arc::new(NaiveScan::new(objects.to_vec())), fault);
    let mut out = Vec::new();
    check_estimate(
        faulty.name(),
        ExactnessClass::ExactLevel2,
        q,
        &faulty.estimate(q),
        &count_by_classification(objects, q),
        objects.len() as i64,
        &mut out,
    );
    out.into_iter().next()
}

/// The acceptance-criteria calibration: a forced mutation must be caught
/// and shrunk to a minimal, seed-replayable report.
#[test]
fn forced_mutation_is_caught_and_shrunk() {
    let spec = CaseSpec {
        seed: 2002,
        dist: Distribution::Mixed,
        nx: 12,
        ny: 9,
        objects: 40,
    };
    let objects = spec.snapped();
    let queries = spec.queries();
    for fault in [
        Fault::BucketShiftX,
        Fault::OverlapOffByOne,
        Fault::DropContained,
    ] {
        // Detection: at least one query in the plan must expose the fault.
        let failing = queries
            .iter()
            .find(|q| faulty_violation(fault, &objects, q).is_some())
            .unwrap_or_else(|| panic!("{fault:?} not detected by the invariant catalogue"));
        // Shrinking: minimize objects and query while the fault shows.
        let repro = shrink(&spec, &objects, failing, |objs, q| {
            faulty_violation(fault, objs, q)
        })
        .expect("failure reproduces at shrink entry");
        assert!(
            repro.object_indices.len() <= 2,
            "{fault:?} shrank only to {} objects",
            repro.object_indices.len()
        );
        // The report is replayable: the line regenerates the dataset and
        // the shrunk subset still fails.
        let replayed = CaseSpec::from_line(&repro.line).expect("replay line parses");
        assert_eq!(replayed, spec);
        let subset: Vec<SnappedRect> = repro
            .object_indices
            .iter()
            .map(|&i| replayed.snapped()[i])
            .collect();
        assert!(
            faulty_violation(fault, &subset, &repro.query).is_some(),
            "{fault:?} reproduction does not replay"
        );
        assert!(repro.report().contains("replay:"));
    }
}

/// An off-by-one planted in a *real* estimator (not just the oracle
/// wrapper) is caught end to end by the same laws the suite applies.
#[test]
fn mutated_s_euler_is_caught() {
    let spec = CaseSpec {
        seed: 99,
        dist: Distribution::Clustered,
        nx: 10,
        ny: 8,
        objects: 40,
    };
    let grid = spec.grid();
    let objects = spec.snapped();
    let faulty = FaultyEstimator::new(
        EstimatorKind::SEuler.build(&grid, &objects),
        Fault::OverlapOffByOne,
    );
    let caught = spec.queries().iter().any(|q| {
        let mut out = Vec::new();
        check_estimate(
            faulty.name(),
            ExactnessClass::ApproxLevel2,
            q,
            &faulty.estimate(q),
            &count_by_classification(&objects, q),
            objects.len() as i64,
            &mut out,
        );
        !out.is_empty()
    });
    assert!(caught, "Euler-family laws missed the planted off-by-one");
}

/// The concurrent-interleaving law for the epoch-snapshot substrate:
/// whatever the scheduler does, every answer a reader extracts from a
/// pinned snapshot is bit-identical to a frozen rebuild of the write-log
/// prefix the snapshot names — checked at 1, 4 and 8 reader threads,
/// racing one writer through seals and refreezes. Honors
/// `EULER_CONFORMANCE_SEED` / `EULER_CONFORMANCE_BUDGET` like the main
/// gate (the nightly stress job raises the budget and thread pressure).
#[test]
fn interleaved_reads_equal_write_log_prefix_rebuilds() {
    let base = env_seed();
    for round in 0..env_budget() as u64 {
        let spec = CaseSpec {
            seed: base.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            dist: Distribution::Mixed,
            nx: 10,
            ny: 8,
            objects: 64,
        };
        for readers in [1, 4, 8] {
            let summary = check_interleaving(&spec, readers);
            if !summary.is_clean() {
                // Failing seeds go to the report artifact (the stress
                // job uploads it) before the assertion fires.
                euler_conformance::append_report_text(&format!(
                    "interleaving law violated at {readers} readers:\n{}\n\n",
                    summary.violations.join("\n")
                ));
            }
            assert!(
                summary.is_clean(),
                "interleaving law violated at {readers} readers:\n{}",
                summary.violations.join("\n")
            );
            assert!(summary.answers_checked > 0);
            assert!(
                summary.versions_observed >= 1,
                "readers observed no version at {readers} readers"
            );
        }
    }
}

/// The crash-recovery law for the durability layer: a seeded write log
/// killed after every acknowledged-op count — and, in a single-segment
/// layout, cut at every byte offset and CRC-flipped at every record
/// boundary — always recovers to exactly the frozen rebuild of the
/// surviving write-log prefix. Seeded via `EULER_CONFORMANCE_SEED` like
/// the main gate; the torn-tail sweep covers every record boundary ± 1
/// byte by covering every offset.
#[test]
fn crash_recovery_equals_prefix_rebuilds() {
    let spec = CaseSpec {
        seed: env_seed(),
        dist: Distribution::Mixed,
        nx: 10,
        ny: 8,
        objects: 32,
    };
    for checkpoint_every in [None, Some(8)] {
        let summary = check_kill_points(&spec, checkpoint_every);
        assert!(
            summary.is_clean(),
            "kill-point law violated (checkpoint_every {checkpoint_every:?}):\n{}",
            summary.violations.join("\n")
        );
        assert!(summary.recoveries_checked > 32);
    }
    let summary = check_torn_tails(&spec);
    assert!(
        summary.is_clean(),
        "torn-tail law violated:\n{}",
        summary.violations.join("\n")
    );
    assert!(summary.recoveries_checked > 1000);
}

/// The suite's own accounting: all nine estimators face every query of
/// every case exactly once.
#[test]
fn comparison_accounting_covers_all_nine() {
    let spec = CaseSpec {
        seed: 1,
        dist: Distribution::Uniform,
        nx: 6,
        ny: 4,
        objects: 10,
    };
    let outcome = run_case(&spec);
    let sweep_tiles: usize = sweep_tilings(&spec.grid()).iter().map(|t| t.len()).sum();
    assert_eq!(
        outcome.comparisons,
        (spec.queries().len() + sweep_tiles) * EstimatorKind::ALL.len()
    );
    assert!(outcome.is_clean(), "{:#?}", outcome.violations);
}
