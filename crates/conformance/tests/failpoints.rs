//! Seeded, replayable fault-injection conformance. Compiled only with
//! the `failpoints` feature (`cargo test -p euler-conformance --features
//! failpoints`): arms the engine's deterministic fail-point plans end to
//! end and holds every run to the resilience laws — `Complete` answers
//! bit-identical to the fault-free run, `Degraded` sweeps equal to the
//! per-tile loop, deadline overruns delivering a clean partial prefix.
//!
//! The base seed comes from `EULER_FAULT_SEED` (decimal or `0x`-hex),
//! mirroring `EULER_CONFORMANCE_SEED`; every test here is written to
//! pass for *any* seed, so the CI faults job can rotate it freely and a
//! failing seed is a complete reproduction recipe.
#![cfg(feature = "failpoints")]

use std::sync::Arc;
use std::time::Duration;

use euler_conformance::{CaseSpec, Distribution, EstimatorKind};
use euler_core::Level2Estimator;
use euler_engine::faults::{self, FaultKind, FaultPlan, FaultSite};
use euler_engine::{BatchOptions, EstimatorEngine, QueryBatch, SharedEstimator};
use euler_grid::GridRect;

/// Fallback seed when `EULER_FAULT_SEED` is unset.
const DEFAULT_FAULT_SEED: u64 = 0xFA17;

/// The active fault plan: env-seeded when `EULER_FAULT_SEED` is set,
/// [`DEFAULT_FAULT_SEED`] otherwise. Unparseable values fall back to the
/// default here (the round-trip test below asserts they error loudly;
/// tolerating them keeps these tests immune to its env churn).
fn env_plan() -> FaultPlan {
    FaultPlan::from_env()
        .ok()
        .flatten()
        .unwrap_or_else(|| FaultPlan::from_seed(DEFAULT_FAULT_SEED))
}

/// A sweep-capable fixture estimator plus a query plan padded to exactly
/// `n` queries (cycling the case plan), so an 8-thread engine fans out
/// into a known chunk layout.
fn fixture(n: usize) -> (SharedEstimator, Vec<GridRect>, CaseSpec) {
    let spec = CaseSpec {
        seed: 2002,
        dist: Distribution::Mixed,
        nx: 12,
        ny: 9,
        objects: 40,
    };
    let est = EstimatorKind::SEuler.build(&spec.grid(), &spec.snapped());
    let queries: Vec<GridRect> = spec.queries().iter().cycle().take(n).copied().collect();
    (est, queries, spec)
}

/// A seeded chunk panic fails exactly its own chunk; every other query
/// stays `Complete` and bit-identical to the fault-free run; disarming
/// restores clean runs; re-arming the same plan replays the same
/// outcome, bit for bit.
#[test]
fn seeded_chunk_panic_is_contained_and_replays() {
    faults::silence_injected_panics();
    let plan = env_plan();
    let chunk_point = plan
        .points
        .iter()
        .find(|p| p.site == FaultSite::Chunk)
        .expect("seeded plans arm a chunk point")
        .index;

    // 40 queries over 8 threads: chunk size 5, exactly 8 chunks, so any
    // seeded chunk index in 0..8 fires.
    let (est, queries, _) = fixture(40);
    let engine = EstimatorEngine::builder(est).threads(8).build();
    let baseline = engine.run_batch(&QueryBatch::new(&queries));
    assert!(baseline.is_complete(), "fault-free baseline must be clean");

    let guard = faults::install(plan.clone());
    let faulted = engine.run_batch(&QueryBatch::new(&queries));
    assert_eq!(faulted.errors.len(), 1, "exactly one chunk fails");
    assert_eq!(faulted.errors[0].chunk, chunk_point);
    for (i, outcome) in faulted.outcomes.iter().enumerate() {
        let in_blast = (chunk_point * 5..(chunk_point + 1) * 5).contains(&i);
        assert_eq!(
            outcome.is_failed(),
            in_blast,
            "query {i}: blast radius must be exactly chunk {chunk_point}"
        );
        if outcome.is_complete() {
            assert_eq!(
                faulted.counts[i], baseline.counts[i],
                "query {i}: Complete answers must match the fault-free run"
            );
        }
    }

    // Replay: the same plan produces the same outcome, bit for bit.
    let replayed = engine.run_batch(&QueryBatch::new(&queries));
    assert_eq!(replayed.counts, faulted.counts);
    assert_eq!(replayed.outcomes, faulted.outcomes);

    // Disarm: dropping the guard restores clean, identical runs.
    drop(guard);
    let clean = engine.run_batch(&QueryBatch::new(&queries));
    assert!(clean.is_complete());
    assert_eq!(clean.counts, baseline.counts);
}

/// A seeded sweep panic hits exactly the seeded dispatch: earlier tiling
/// batches sweep cleanly, the poisoned one degrades to the per-tile loop
/// with bit-identical counts, and later ones sweep cleanly again.
#[test]
fn seeded_sweep_panic_degrades_the_seeded_dispatch() {
    faults::silence_injected_panics();
    let sweep_point = env_plan()
        .points
        .iter()
        .find(|p| p.site == FaultSite::Sweep)
        .expect("seeded plans arm a sweep point")
        .index;
    // Arm only the sweep point: the degraded per-tile fallback must not
    // trip over the plan's unrelated chunk point.
    let plan = FaultPlan::new().with(FaultSite::Sweep, sweep_point, FaultKind::Panic);

    let (est, _, spec) = fixture(8);
    let grid = spec.grid();
    let tiling = euler_grid::Tiling::new(grid.full(), 4, 3).expect("tiling");
    let expected: Vec<_> = tiling.iter().map(|(_, t)| est.estimate(&t)).collect();
    let engine = EstimatorEngine::builder(Arc::clone(&est))
        .threads(1)
        .build();

    let _guard = faults::install(plan);
    for dispatch in 0..=sweep_point {
        let result = engine.run_batch(&QueryBatch::from(&tiling));
        assert_eq!(result.counts, expected, "dispatch {dispatch}");
        if dispatch == sweep_point {
            assert_eq!(result.degraded(), tiling.len(), "dispatch {dispatch}");
            assert_eq!(result.errors.len(), 1);
        } else {
            assert!(result.is_complete(), "dispatch {dispatch}");
        }
    }
}

/// A stall fail-point pushing one chunk past the deadline yields a clean
/// partial result: the stalled chunk fails, the other worker's answers
/// are delivered `Complete` and bit-identical to the fault-free run.
#[test]
fn stall_failpoint_forces_a_deadline_overrun_with_a_clean_prefix() {
    faults::silence_injected_panics();
    let plan = FaultPlan::new().with(FaultSite::Chunk, 0, FaultKind::StallMs(200));

    // 16 queries over 2 threads: chunk 0 covers 0..8 and stalls 200 ms;
    // chunk 1 covers 8..16 and finishes in microseconds, far inside the
    // 25 ms budget.
    let (est, queries, _) = fixture(16);
    let engine = EstimatorEngine::builder(est).threads(2).build();
    let baseline = engine.run_batch(&QueryBatch::new(&queries));
    let opts = BatchOptions::new()
        .deadline(Duration::from_millis(25))
        .check_every(1);

    let _guard = faults::install(plan);
    let result = engine.run_batch_with(&QueryBatch::new(&queries), &opts);
    assert!(!result.is_complete());
    assert_eq!(result.completed(), 8, "the unstalled chunk is delivered");
    for i in 8..16 {
        assert!(result.outcomes[i].is_complete(), "query {i}");
        assert_eq!(result.counts[i], baseline.counts[i], "query {i}");
    }
    for i in 0..8 {
        assert!(result.outcomes[i].is_failed(), "query {i}");
    }
}

/// `EULER_FAULT_SEED` round-trips: decimal and hex parse to the same
/// plans as [`FaultPlan::from_seed`], and a malformed value is a loud
/// error naming the variable.
#[test]
fn fault_seed_env_round_trips() {
    // Serialize against the other fail-point tests (they read the same
    // variable through `env_plan`); the installed guard holds the
    // process-wide fail-point lock. An unarmed empty plan is inert.
    let _guard = faults::install(FaultPlan::new());
    let original = std::env::var(faults::FAULT_SEED_ENV).ok();

    std::env::set_var(faults::FAULT_SEED_ENV, "42");
    assert_eq!(
        FaultPlan::from_env().expect("decimal parses"),
        Some(FaultPlan::from_seed(42))
    );
    std::env::set_var(faults::FAULT_SEED_ENV, "0xFA17");
    assert_eq!(
        FaultPlan::from_env().expect("hex parses"),
        Some(FaultPlan::from_seed(0xFA17))
    );
    std::env::set_var(faults::FAULT_SEED_ENV, "not-a-seed");
    let err = FaultPlan::from_env().expect_err("malformed value is an error");
    assert!(err.contains(faults::FAULT_SEED_ENV), "{err}");

    match original {
        Some(v) => std::env::set_var(faults::FAULT_SEED_ENV, v),
        None => std::env::remove_var(faults::FAULT_SEED_ENV),
    }
}

/// The whole differential battery — including the resilience laws wired
/// into `run_case` — stays clean while an armed stall plan slows (but
/// cannot corrupt) a run: fault handling must never change answers.
#[test]
fn run_case_stays_clean_under_an_armed_stall() {
    faults::silence_injected_panics();
    let _guard = faults::install(FaultPlan::new().with(FaultSite::Chunk, 1, FaultKind::StallMs(1)));
    let spec = CaseSpec {
        seed: 11,
        dist: Distribution::Uniform,
        nx: 6,
        ny: 4,
        objects: 10,
    };
    let outcome = euler_conformance::run_case(&spec);
    assert!(outcome.is_clean(), "{:#?}", outcome.violations);
}
