//! Seeded, deterministic case generation: a [`CaseSpec`] names a grid, an
//! object distribution, a count and a seed, and expands — always to the
//! same bytes — into a dataset plus a query plan. The whole harness is
//! replayable from the one-line form ([`CaseSpec::to_line`] /
//! [`CaseSpec::from_line`]), which is also the corpus entry format.

use euler_geom::Rect;
use euler_grid::{DataSpace, Grid, GridRect, QuerySet, SnappedRect, Snapper};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The object distributions the generator covers. Each targets a failure
/// mode the paper's analysis calls out: clustered data stresses the
/// loophole effect, degenerate points/segments stress the §4.2 shrink
/// rule, and boundary-snapped rectangles stress every `±1` in the
/// Euler-index algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform centers, uniform extents up to ~1/3 of the space.
    Uniform,
    /// A few dense clusters plus background noise — many large/containing
    /// objects per query.
    Clustered,
    /// Degenerate point rectangles (zero width and height before
    /// snapping).
    Points,
    /// Degenerate segments: zero width *or* zero height, often lying
    /// exactly on a grid line.
    Segments,
    /// Rectangles with integer (grid-aligned) corners, including ones
    /// flush with the grid boundary — every edge triggers the shrink
    /// rule.
    Snapped,
    /// A mixture of all of the above.
    Mixed,
}

impl Distribution {
    /// All distributions, in generation order.
    pub const ALL: [Distribution; 6] = [
        Distribution::Uniform,
        Distribution::Clustered,
        Distribution::Points,
        Distribution::Segments,
        Distribution::Snapped,
        Distribution::Mixed,
    ];

    /// Stable name used in replay lines.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Clustered => "clustered",
            Distribution::Points => "points",
            Distribution::Segments => "segments",
            Distribution::Snapped => "snapped",
            Distribution::Mixed => "mixed",
        }
    }

    /// Inverse of [`Distribution::name`].
    pub fn from_name(name: &str) -> Option<Distribution> {
        Distribution::ALL.into_iter().find(|d| d.name() == name)
    }
}

/// One replayable conformance case: grid dimensions, an object
/// distribution, an object count and the seed that makes it
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseSpec {
    /// Seed for the dataset and the random part of the query plan.
    pub seed: u64,
    /// Object distribution.
    pub dist: Distribution,
    /// Grid columns (≥ 2 so the dynamic histogram applies).
    pub nx: usize,
    /// Grid rows (≥ 2).
    pub ny: usize,
    /// Number of objects to generate.
    pub objects: usize,
}

impl CaseSpec {
    /// The grid for this case: an `nx × ny` cell grid over the data space
    /// `[0, nx] × [0, ny]`, so data units and grid units coincide.
    pub fn grid(&self) -> Grid {
        let bounds = Rect::new(0.0, 0.0, self.nx as f64, self.ny as f64).expect("ordered bounds");
        Grid::new(DataSpace::new(bounds), self.nx, self.ny).expect("nonzero dims")
    }

    /// The raw (pre-snap) object MBRs, deterministically from the seed.
    pub fn rects(&self) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (w, h) = (self.nx as f64, self.ny as f64);
        let mut out = Vec::with_capacity(self.objects);
        // Cluster centers are drawn up front so `Mixed` stays deterministic
        // regardless of how many clustered objects it interleaves.
        let centers: Vec<(f64, f64)> = (0..4)
            .map(|_| (rng.gen_range(0.0..w), rng.gen_range(0.0..h)))
            .collect();
        for i in 0..self.objects {
            let dist = match self.dist {
                Distribution::Mixed => Distribution::ALL[i % 5],
                d => d,
            };
            out.push(gen_rect(dist, &mut rng, w, h, &centers));
        }
        out
    }

    /// The snapped dataset.
    pub fn snapped(&self) -> Vec<SnappedRect> {
        let snapper = Snapper::new(self.grid());
        self.rects().iter().map(|r| snapper.snap(r)).collect()
    }

    /// The query plan: the full space, the four corner cells, every `Qₙ`
    /// tiling whose tile size divides both grid dimensions (n = 2…20),
    /// and a seeded batch of random aligned windows. Order is
    /// deterministic.
    pub fn queries(&self) -> Vec<GridRect> {
        let grid = self.grid();
        let (nx, ny) = (self.nx, self.ny);
        let mut out = vec![grid.full()];
        for (cx, cy) in [(0, 0), (nx - 1, 0), (0, ny - 1), (nx - 1, ny - 1)] {
            out.push(GridRect::unchecked(cx, cy, cx + 1, cy + 1));
        }
        for n in 2..=20usize {
            if let Ok(qs) = QuerySet::q_n(&grid, n) {
                out.extend(qs.iter());
            }
        }
        // Random aligned windows, seeded independently of the dataset.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_CA5E);
        for _ in 0..24 {
            let x0 = rng.gen_range(0..nx);
            let y0 = rng.gen_range(0..ny);
            let x1 = rng.gen_range(x0 + 1..=nx);
            let y1 = rng.gen_range(y0 + 1..=ny);
            out.push(GridRect::unchecked(x0, y0, x1, y1));
        }
        out
    }

    /// The one-line replay form, e.g.
    /// `dist=snapped nx=12 ny=9 objects=40 seed=77`.
    pub fn to_line(&self) -> String {
        format!(
            "dist={} nx={} ny={} objects={} seed={}",
            self.dist.name(),
            self.nx,
            self.ny,
            self.objects,
            self.seed
        )
    }

    /// Parses a replay line produced by [`CaseSpec::to_line`]. Unknown
    /// keys are rejected so corpus typos fail loudly.
    pub fn from_line(line: &str) -> Result<CaseSpec, String> {
        let (mut dist, mut nx, mut ny, mut objects, mut seed) = (None, None, None, None, None);
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field `{field}` is not key=value"))?;
            match key {
                "dist" => {
                    dist = Some(
                        Distribution::from_name(value)
                            .ok_or_else(|| format!("unknown distribution `{value}`"))?,
                    )
                }
                "nx" => nx = Some(parse_num(key, value)?),
                "ny" => ny = Some(parse_num(key, value)?),
                "objects" => objects = Some(parse_num(key, value)?),
                "seed" => seed = Some(parse_num(key, value)?),
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        let spec = CaseSpec {
            seed: seed.ok_or("missing seed")?,
            dist: dist.ok_or("missing dist")?,
            nx: nx.ok_or("missing nx")? as usize,
            ny: ny.ok_or("missing ny")? as usize,
            objects: objects.ok_or("missing objects")? as usize,
        };
        if spec.nx < 2 || spec.ny < 2 {
            return Err("grid must be at least 2x2".into());
        }
        Ok(spec)
    }
}

fn parse_num(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("bad number for `{key}`: `{value}`"))
}

fn gen_rect(dist: Distribution, rng: &mut StdRng, w: f64, h: f64, centers: &[(f64, f64)]) -> Rect {
    let clamp = |x0: f64, y0: f64, x1: f64, y1: f64| {
        Rect::new(
            x0.clamp(0.0, w),
            y0.clamp(0.0, h),
            x1.clamp(0.0, w),
            y1.clamp(0.0, h),
        )
        .expect("ordered after clamp")
    };
    match dist {
        Distribution::Uniform => {
            let x = rng.gen_range(0.0..w);
            let y = rng.gen_range(0.0..h);
            let dw = rng.gen_range(0.01..w / 3.0);
            let dh = rng.gen_range(0.01..h / 3.0);
            clamp(x, y, x + dw, y + dh)
        }
        Distribution::Clustered => {
            let (cx, cy) = centers[rng.gen_range(0..centers.len())];
            // Mostly tight satellites, occasionally a huge object that
            // contains or crosses many queries (the loophole population).
            let (dw, dh) = if rng.gen_bool(0.2) {
                (rng.gen_range(w / 2.0..w), rng.gen_range(h / 2.0..h))
            } else {
                (rng.gen_range(0.01..w / 6.0), rng.gen_range(0.01..h / 6.0))
            };
            clamp(cx - dw / 2.0, cy - dh / 2.0, cx + dw / 2.0, cy + dh / 2.0)
        }
        Distribution::Points => {
            // Half the points land exactly on grid vertices.
            let (x, y) = if rng.gen_bool(0.5) {
                (
                    rng.gen_range(0..=w as usize) as f64,
                    rng.gen_range(0..=h as usize) as f64,
                )
            } else {
                (rng.gen_range(0.0..w), rng.gen_range(0.0..h))
            };
            clamp(x, y, x, y)
        }
        Distribution::Segments => {
            let horizontal = rng.gen_bool(0.5);
            let on_line = rng.gen_bool(0.5);
            if horizontal {
                let y = if on_line {
                    rng.gen_range(0..=h as usize) as f64
                } else {
                    rng.gen_range(0.0..h)
                };
                let x = rng.gen_range(0.0..w);
                clamp(x, y, x + rng.gen_range(0.1..w), y)
            } else {
                let x = if on_line {
                    rng.gen_range(0..=w as usize) as f64
                } else {
                    rng.gen_range(0.0..w)
                };
                let y = rng.gen_range(0.0..h);
                clamp(x, y, x, y + rng.gen_range(0.1..h))
            }
        }
        Distribution::Snapped => {
            // Integer corners; a quarter of them flush with the boundary,
            // and some zero-width/zero-height after the clamp.
            let nx = w as usize;
            let ny = h as usize;
            let x0 = if rng.gen_bool(0.25) {
                0
            } else {
                rng.gen_range(0..nx)
            };
            let y0 = if rng.gen_bool(0.25) {
                0
            } else {
                rng.gen_range(0..ny)
            };
            let x1 = if rng.gen_bool(0.25) {
                nx
            } else {
                rng.gen_range(x0..=nx)
            };
            let y1 = if rng.gen_bool(0.25) {
                ny
            } else {
                rng.gen_range(y0..=ny)
            };
            clamp(x0 as f64, y0 as f64, x1 as f64, y1 as f64)
        }
        Distribution::Mixed => unreachable!("Mixed dispatches per object"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(dist: Distribution) -> CaseSpec {
        CaseSpec {
            seed: 7,
            dist,
            nx: 12,
            ny: 9,
            objects: 30,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for dist in Distribution::ALL {
            let a = spec(dist);
            assert_eq!(a.rects(), a.rects(), "{}", dist.name());
            assert_eq!(a.queries(), a.queries(), "{}", dist.name());
        }
    }

    #[test]
    fn snapped_objects_are_valid_for_every_distribution() {
        for dist in Distribution::ALL {
            let s = spec(dist);
            for o in s.snapped() {
                assert!(o.a() > 0.0 && o.b() < 12.0 && o.a() < o.b(), "{o:?}");
                assert!(o.c() > 0.0 && o.d() < 9.0 && o.c() < o.d(), "{o:?}");
            }
        }
    }

    #[test]
    fn query_plan_is_aligned_and_covers_tilings() {
        let s = spec(Distribution::Uniform);
        let qs = s.queries();
        assert!(qs.len() >= 30, "got {}", qs.len());
        assert_eq!(qs[0], s.grid().full());
        for q in &qs {
            assert!(q.x0 < q.x1 && q.x1 <= 12);
            assert!(q.y0 < q.y1 && q.y1 <= 9);
        }
        // Q3 divides 12x9, so its 12 tiles must be present.
        assert!(qs.contains(&GridRect::unchecked(0, 0, 3, 3)));
    }

    #[test]
    fn replay_line_round_trips() {
        for dist in Distribution::ALL {
            let s = spec(dist);
            assert_eq!(CaseSpec::from_line(&s.to_line()), Ok(s));
        }
        assert!(CaseSpec::from_line("dist=nope nx=2 ny=2 objects=1 seed=0").is_err());
        assert!(CaseSpec::from_line("nx=2 ny=2 objects=1 seed=0").is_err());
        assert!(CaseSpec::from_line("dist=uniform nx=1 ny=2 objects=1 seed=0").is_err());
        assert!(CaseSpec::from_line("dist=uniform nx=2 ny=2 objects=1 seed=0 extra=1").is_err());
    }
}
