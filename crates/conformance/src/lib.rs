//! # euler-conformance — the differential conformance harness
//!
//! Continuously validates every `Level2Estimator` in the workspace
//! against the naive-scan oracle on seeded, deterministic random cases,
//! in the spirit of RADON's bulk verification of topological relations:
//! approximations are only trustworthy while an exact join keeps agreeing
//! with them.
//!
//! The harness has six parts:
//!
//! - [`spec`] — seeded generation of datasets (uniform, clustered,
//!   degenerate points/segments, boundary-snapped) and query plans
//!   (`Q₂…Q₂₀` tilings plus random aligned windows), replayable from a
//!   one-line form;
//! - [`invariants`] — the machine-checked law catalogue per estimator
//!   exactness class;
//! - [`harness`] — the differential runner executing all nine estimators
//!   through the [`EstimatorEngine`](euler_engine::EstimatorEngine),
//!   plus the structural checks (dynamic replay, persistence, browse);
//! - [`interleave`] — the concurrent-interleaving law for the
//!   epoch-snapshot substrate: every answer a reader pins equals a frozen
//!   rebuild of some write-log prefix, at any thread count;
//! - [`shrink`] — delta-debugging of failures into minimal, replayable
//!   reproductions;
//! - [`fault`] + [`corpus`] — injected defects proving the harness
//!   catches bugs, and the regression corpus of one-line replays.
//!
//! ## Replaying a failure
//!
//! A failure report prints a `replay:` line. To reproduce locally:
//!
//! ```
//! use euler_conformance::{run_case, CaseSpec};
//!
//! let spec = CaseSpec::from_line("dist=snapped nx=6 ny=6 objects=44 seed=5").unwrap();
//! let outcome = run_case(&spec);
//! assert!(outcome.is_clean(), "{:#?}", outcome.violations);
//! ```
//!
//! CI knobs (environment variables):
//!
//! - `EULER_CONFORMANCE_BUDGET` — case-budget multiplier (default 1; the
//!   nightly job uses 10);
//! - `EULER_CONFORMANCE_SEED` — base seed (default fixed; the nightly job
//!   derives it from the run date);
//! - `EULER_CONFORMANCE_REPORT` — if set, failing reproductions are also
//!   written to this path for artifact upload;
//! - `EULER_FAULT_SEED` — (with the `failpoints` feature) base seed for
//!   the deterministic fail-point plans the fault-injection tests arm
//!   (see `euler_engine::faults`).

pub mod corpus;
pub mod crash;
pub mod fault;
pub mod harness;
pub mod interleave;
pub mod invariants;
pub mod shrink;
pub mod spec;

pub use corpus::{replay_corpus, CORPUS};
pub use crash::{check_kill_points, check_torn_tails, CrashSummary};
pub use fault::{Fault, FaultyEstimator, PanickingEstimator, SweepPanickingEstimator};
pub use harness::{
    check_fault_resilience, differential_matrix, run_case, sweep_tilings, CaseOutcome,
    EstimatorKind,
};
pub use interleave::{check_interleaving, InterleaveSummary};
pub use invariants::{check_estimate, check_sweep_equivalence, ExactnessClass, Violation};
pub use shrink::{shrink, Reproduction};
pub use spec::{CaseSpec, Distribution};

use euler_core::model::count_by_classification;
use euler_grid::{GridRect, SnappedRect};

/// The fixed base seed used when `EULER_CONFORMANCE_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0xE07E12;

/// Case-budget multiplier from `EULER_CONFORMANCE_BUDGET` (default 1).
pub fn env_budget() -> usize {
    std::env::var("EULER_CONFORMANCE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&b| b >= 1)
        .unwrap_or(1)
}

/// Base seed from `EULER_CONFORMANCE_SEED` (default [`DEFAULT_SEED`]).
pub fn env_seed() -> u64 {
    std::env::var("EULER_CONFORMANCE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// The default case matrix: every distribution crossed with four grid
/// shapes (including non-square and non-divisible dimensions), repeated
/// `budget` times with independent seeds.
pub fn default_specs(base_seed: u64, budget: usize) -> Vec<CaseSpec> {
    const SHAPES: [(usize, usize, usize); 4] = [(6, 4, 24), (12, 9, 48), (9, 9, 36), (20, 10, 64)];
    let mut specs = Vec::with_capacity(budget * Distribution::ALL.len() * SHAPES.len());
    for round in 0..budget as u64 {
        for (di, dist) in Distribution::ALL.into_iter().enumerate() {
            for (si, (nx, ny, objects)) in SHAPES.into_iter().enumerate() {
                specs.push(CaseSpec {
                    seed: base_seed
                        .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add((di * SHAPES.len() + si) as u64),
                    dist,
                    nx,
                    ny,
                    objects,
                });
            }
        }
    }
    specs
}

/// Aggregate result of a suite run.
#[derive(Debug, Default)]
pub struct SuiteSummary {
    /// Cases executed.
    pub cases: usize,
    /// Differential estimator×query comparisons performed.
    pub comparisons: usize,
    /// Shrunk reproductions of every failing case.
    pub failures: Vec<Reproduction>,
}

/// Runs the conformance battery over `specs`, shrinking each failing case
/// to a minimal reproduction. If `EULER_CONFORMANCE_REPORT` is set, the
/// reports are also written there (one per failure) for CI artifact
/// upload.
pub fn run_suite(specs: &[CaseSpec]) -> SuiteSummary {
    let mut summary = SuiteSummary::default();
    for spec in specs {
        let outcome = run_case(spec);
        summary.cases += 1;
        summary.comparisons += outcome.comparisons;
        if let Some(first) = outcome.violations.into_iter().next() {
            summary.failures.push(shrink_violation(spec, &first));
        }
    }
    if !summary.failures.is_empty() {
        write_report(&summary.failures);
    }
    summary
}

/// Shrinks one violation from [`run_case`] into a [`Reproduction`].
///
/// Estimator violations re-run the differential check on candidate object
/// subsets; structural violations (dynamic replay, persistence, browse)
/// are reported unshrunk — their failing surface is the whole case.
pub fn shrink_violation(spec: &CaseSpec, violation: &Violation) -> Reproduction {
    let objects = spec.snapped();
    let kind = EstimatorKind::ALL
        .into_iter()
        .find(|k| k.expected_name() == violation.estimator);
    if let Some(kind) = kind {
        let grid = spec.grid();
        let check = |objs: &[SnappedRect], q: &GridRect| -> Option<Violation> {
            let est = kind.build(&grid, objs);
            let oracle = count_by_classification(objs, q);
            let got = est.estimate(q);
            let mut out = Vec::new();
            check_estimate(
                kind.expected_name(),
                kind.class(),
                q,
                &got,
                &oracle,
                objs.len() as i64,
                &mut out,
            );
            if kind == EstimatorKind::SEuler {
                invariants::check_s_euler_conditional(q, &got, &oracle, objs, &mut out);
            }
            out.into_iter().next()
        };
        if let Some(repro) = shrink(spec, &objects, &violation.query, check) {
            return repro;
        }
    }
    Reproduction {
        line: spec.to_line(),
        object_indices: (0..objects.len()).collect(),
        query: violation.query,
        violation: violation.clone(),
    }
}

/// Appends failure reports to the `EULER_CONFORMANCE_REPORT` path, if
/// set. Errors are printed, not propagated — reporting must never mask
/// the underlying failure.
pub fn write_report(failures: &[Reproduction]) {
    let text: String = failures
        .iter()
        .map(|r| format!("{}\n\n", r.report()))
        .collect();
    append_report_text(&text);
}

/// Appends raw failure text to the `EULER_CONFORMANCE_REPORT` path, if
/// set — the shared sink for both shrunk reproductions and structural
/// failures (e.g. interleaving-law violations) whose replay line is
/// already embedded in the text.
pub fn append_report_text(text: &str) {
    let Ok(path) = std::env::var("EULER_CONFORMANCE_REPORT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = f.write_all(text.as_bytes()) {
                eprintln!("conformance: failed writing report to {path}: {e}");
            }
        }
        Err(e) => eprintln!("conformance: cannot open report path {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_specs_scale_with_budget() {
        let one = default_specs(DEFAULT_SEED, 1);
        let ten = default_specs(DEFAULT_SEED, 10);
        assert_eq!(one.len(), 24);
        assert_eq!(ten.len(), 240);
        // Rounds use distinct seeds.
        assert_ne!(one[0].seed, ten[24].seed);
        // All distributions and shapes appear.
        for dist in Distribution::ALL {
            assert!(one.iter().any(|s| s.dist == dist));
        }
    }

    #[test]
    fn env_helpers_have_sane_defaults() {
        // The suite must not depend on ambient env in the common case.
        if std::env::var("EULER_CONFORMANCE_BUDGET").is_err() {
            assert_eq!(env_budget(), 1);
        }
        if std::env::var("EULER_CONFORMANCE_SEED").is_err() {
            assert_eq!(env_seed(), DEFAULT_SEED);
        }
    }
}
