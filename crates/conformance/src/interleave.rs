//! The concurrent-interleaving law for the epoch-snapshot substrate
//! (`euler_core::snapshot`): **every answer a reader extracts from a
//! pinned [`LiveSnapshot`] equals a frozen rebuild of some prefix of the
//! write log** — the prefix named by the snapshot's `version()`.
//!
//! The law is what makes the LSM-style live histogram trustworthy under
//! concurrency: whatever interleaving of writes, seals, refreezes and
//! pins the scheduler produces, a reader can never observe a state that
//! is not a clean write-log prefix (no torn deltas, no half-applied
//! refreezes, no answers mixing two epochs).
//!
//! The check is scheduler-independent by construction: threads record
//! `(version, query, answer)` observations while running, and the
//! verdict is computed *after* all threads join, by rebuilding a frozen
//! histogram at each observed version and comparing bit-for-bit. The
//! same seed therefore passes (or fails) identically at any thread
//! count — the conformance gate runs it at 1, 4 and 8 readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use euler_core::snapshot::DeltaOp;
use euler_core::{s_euler_counts, EulerHistogram, LiveEulerHistogram, RelationCounts};
use euler_grid::{GridRect, SnappedRect};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::spec::CaseSpec;

/// Seal the memtable every this many delta ops — deliberately small so
/// short logs still exercise the sealed-run path.
const SEAL_EVERY: usize = 7;
/// The writer folds the delta and publishes a new epoch every this many
/// ops (plus once at the end), so readers race against refreezes too.
const REFREEZE_EVERY: usize = 13;

/// One reader observation: at write-log prefix `version`, query
/// `query` answered `got` (raw S-Euler algebra, unclamped).
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Write-log prefix length the pinned snapshot claimed.
    pub version: u64,
    /// The aligned query window answered.
    pub query: GridRect,
    /// The answer extracted from the pinned snapshot.
    pub got: RelationCounts,
}

/// Outcome of one interleaving run.
#[derive(Debug, Default)]
pub struct InterleaveSummary {
    /// Reader observations checked against prefix rebuilds.
    pub answers_checked: usize,
    /// Distinct write-log prefixes observed by readers.
    pub versions_observed: usize,
    /// Human-readable law violations (empty on success).
    pub violations: Vec<String>,
}

impl InterleaveSummary {
    /// True when every observation matched its prefix rebuild.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The seeded write log for a case: every generated object is inserted,
/// and ~30% of the time the insert is chased by a delete of a random
/// still-alive object — so prefixes cover empty deltas, delete-heavy
/// deltas and delete-of-same-delta-insert shapes.
pub fn write_log(spec: &CaseSpec) -> Vec<DeltaOp> {
    let objects = spec.snapped();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x11E4_1EAF);
    let mut alive: Vec<SnappedRect> = Vec::new();
    let mut log = Vec::with_capacity(objects.len() * 2);
    for o in objects {
        alive.push(o);
        log.push(DeltaOp::insert(o));
        if rng.gen_bool(0.3) {
            let idx = rng.gen_range(0..alive.len());
            log.push(DeltaOp::delete(alive.swap_remove(idx)));
        }
    }
    log
}

/// Rebuilds the frozen histogram equal to the first `version` entries of
/// `log` — the ground truth a pinned snapshot at that version must match.
fn rebuild_prefix(spec: &CaseSpec, log: &[DeltaOp], version: u64) -> EulerHistogram {
    let mut hist = EulerHistogram::new(spec.grid());
    for op in &log[..version as usize] {
        if op.sign > 0 {
            hist.insert(&op.rect);
        } else {
            hist.remove(&op.rect);
        }
    }
    hist
}

/// Runs one writer against `readers` concurrent reader threads over the
/// case's seeded write log, then verifies every recorded answer against
/// a frozen rebuild of the observed write-log prefix.
///
/// The writer applies the log one op at a time through
/// [`LiveEulerHistogram`] (seal every [`SEAL_EVERY`], explicit refreeze
/// every [`REFREEZE_EVERY`] ops and once at the end). Each reader loops
/// until the writer finishes: pin, answer one seeded query from the
/// case's query plan, record the observation — no locks held while
/// answering. Readers take one final pin after the writer is done, so
/// the complete log is always among the verified prefixes.
pub fn check_interleaving(spec: &CaseSpec, readers: usize) -> InterleaveSummary {
    let log = write_log(spec);
    let queries = spec.queries();
    let live = LiveEulerHistogram::with_config(spec.grid(), SEAL_EVERY, None);
    let done = AtomicBool::new(false);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        s.spawn(|| {
            for (i, op) in log.iter().enumerate() {
                live.apply(*op);
                if (i + 1) % REFREEZE_EVERY == 0 {
                    live.refreeze();
                }
            }
            live.refreeze();
            done.store(true, Ordering::Release);
        });
        for reader in 0..readers {
            let live = &live;
            let done = &done;
            let queries = &queries;
            let observations = &observations;
            let mut rng = StdRng::seed_from_u64(spec.seed ^ (0xC0FFEE + reader as u64));
            s.spawn(move || {
                let mut local = Vec::new();
                let mut finished = false;
                while !finished {
                    // One last pin after the writer signals completion,
                    // so the full-log prefix is always observed.
                    finished = done.load(Ordering::Acquire);
                    let snap = live.pin();
                    let q = queries[rng.gen_range(0..queries.len())];
                    local.push(Observation {
                        version: snap.version(),
                        query: q,
                        got: s_euler_counts(&*snap, &q),
                    });
                }
                observations
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });

    let observations = observations.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut summary = InterleaveSummary::default();
    let mut by_version: Vec<Observation> = observations;
    by_version.sort_by_key(|o| o.version);

    let mut frozen = None;
    let mut frozen_version = u64::MAX;
    for obs in &by_version {
        if obs.version != frozen_version {
            frozen = Some(rebuild_prefix(spec, &log, obs.version).freeze());
            frozen_version = obs.version;
            summary.versions_observed += 1;
        }
        let want = s_euler_counts(frozen.as_ref().expect("just rebuilt"), &obs.query);
        summary.answers_checked += 1;
        if want != obs.got {
            summary.violations.push(format!(
                "version {} query {}: pinned snapshot answered {:?}, \
                 frozen rebuild of the same write-log prefix answers {:?} \
                 (replay: {} readers={readers})",
                obs.version,
                obs.query,
                obs.got,
                want,
                spec.to_line(),
            ));
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Distribution;

    fn spec() -> CaseSpec {
        CaseSpec {
            seed: 7,
            dist: Distribution::Mixed,
            nx: 8,
            ny: 6,
            objects: 48,
        }
    }

    #[test]
    fn write_log_is_deterministic_and_delete_safe() {
        let a = write_log(&spec());
        let b = write_log(&spec());
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        assert!(a.iter().any(|op| op.sign < 0), "log exercises deletes");
        // Every prefix keeps a non-negative live count.
        let mut alive = 0i64;
        for op in &a {
            alive += op.sign;
            assert!(alive >= 0);
        }
    }

    #[test]
    fn single_reader_run_is_clean() {
        let summary = check_interleaving(&spec(), 1);
        assert!(summary.is_clean(), "{:#?}", summary.violations);
        assert!(summary.answers_checked > 0);
        assert!(summary.versions_observed > 0);
    }
}
