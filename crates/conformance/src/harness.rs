//! The differential runner: builds all nine `Level2Estimator`
//! implementations for a case, executes them through the
//! [`EstimatorEngine`], and checks every estimate against the naive-scan
//! oracle under the invariant catalogue. Structural laws that go beyond a
//! single estimate — dynamic insert/delete replay, persistence
//! round-trips, and the browse API — are checked per case as well.

use std::sync::Arc;

use euler_baselines::{BtHistogram, CdHistogram, MinSkew, NaiveScan, RTreeOracle};
use euler_browse::{
    BrowseRequest, BrowseSession, DynamicGeoBrowsingService, GeoBrowsingService, PyramidBrowser,
};
use euler_core::model::count_by_classification;
use euler_core::{
    DynamicEulerHistogram, EulerApprox, EulerHistogram, ExactContains2D, Level2Estimator,
    MEulerApprox, RelationCounts, SEulerApprox,
};
use euler_engine::{EstimatorEngine, QueryBatch, SharedEstimator};
use euler_grid::{Grid, GridRect, SnappedRect, Tiling};

use crate::fault::{PanickingEstimator, SweepPanickingEstimator};
use crate::invariants::{
    check_estimate, check_s_euler_conditional, check_sweep_equivalence, ExactnessClass, Violation,
};
use crate::spec::CaseSpec;

/// Bucket budget handed to Min-skew in conformance builds.
const MINSKEW_BUDGET: usize = 16;

/// Area-class boundaries (in cells) handed to M-EulerApprox.
const MEULER_BOUNDARIES: [f64; 2] = [9.0, 100.0];

/// The nine estimators under conformance, by construction recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// S-EulerApprox over a frozen Euler histogram (§5.2).
    SEuler,
    /// EulerApprox with the interior–exterior equation solver (§5.3).
    Euler,
    /// M-EulerApprox: per-area-class histograms (§5.4).
    MEuler,
    /// The Theorem 3.1 exact-contains structure (four prefix indexes).
    Exact4Idx,
    /// Cumulative Density \[JAS00\] — exact Level 1.
    Cd,
    /// Beigel–Tanin histogram — exact Level 1.
    Bt,
    /// Min-skew \[APR99\] — approximate Level 1.
    MinSkewKind,
    /// Naive scan over the snapped objects (the oracle itself, kept in
    /// the matrix so the oracle is validated against its own laws).
    Naive,
    /// R-tree with exact per-object classification.
    RTree,
}

impl EstimatorKind {
    /// Every estimator in the workspace, in a fixed order.
    pub const ALL: [EstimatorKind; 9] = [
        EstimatorKind::SEuler,
        EstimatorKind::Euler,
        EstimatorKind::MEuler,
        EstimatorKind::Exact4Idx,
        EstimatorKind::Cd,
        EstimatorKind::Bt,
        EstimatorKind::MinSkewKind,
        EstimatorKind::Naive,
        EstimatorKind::RTree,
    ];

    /// The `Level2Estimator::name()` this kind must report — a mismatch is
    /// itself a conformance failure.
    pub fn expected_name(&self) -> &'static str {
        match self {
            EstimatorKind::SEuler => "S-EulerApprox",
            EstimatorKind::Euler => "EulerApprox",
            EstimatorKind::MEuler => "M-EulerApprox",
            EstimatorKind::Exact4Idx => "Exact-4idx",
            EstimatorKind::Cd => "CD",
            EstimatorKind::Bt => "Beigel-Tanin",
            EstimatorKind::MinSkewKind => "Min-skew",
            EstimatorKind::Naive => "NaiveScan",
            EstimatorKind::RTree => "R-tree (exact)",
        }
    }

    /// The guarantee class this estimator is held to.
    pub fn class(&self) -> ExactnessClass {
        match self {
            EstimatorKind::SEuler | EstimatorKind::Euler | EstimatorKind::MEuler => {
                ExactnessClass::ApproxLevel2
            }
            EstimatorKind::Exact4Idx | EstimatorKind::Naive | EstimatorKind::RTree => {
                ExactnessClass::ExactLevel2
            }
            EstimatorKind::Cd | EstimatorKind::Bt => ExactnessClass::ExactLevel1,
            EstimatorKind::MinSkewKind => ExactnessClass::ApproxLevel1,
        }
    }

    /// Builds the estimator for a dataset, type-erased for the engine.
    pub fn build(&self, grid: &Grid, objects: &[SnappedRect]) -> SharedEstimator {
        match self {
            EstimatorKind::SEuler => Arc::new(SEulerApprox::new(
                EulerHistogram::build(*grid, objects).freeze(),
            )),
            EstimatorKind::Euler => Arc::new(EulerApprox::new(
                EulerHistogram::build(*grid, objects).freeze(),
            )),
            EstimatorKind::MEuler => {
                Arc::new(MEulerApprox::build(*grid, objects, &MEULER_BOUNDARIES))
            }
            EstimatorKind::Exact4Idx => Arc::new(ExactContains2D::build(grid, objects)),
            EstimatorKind::Cd => Arc::new(CdHistogram::build(grid, objects)),
            EstimatorKind::Bt => Arc::new(BtHistogram::build(*grid, objects)),
            EstimatorKind::MinSkewKind => Arc::new(MinSkew::build(grid, objects, MINSKEW_BUDGET)),
            EstimatorKind::Naive => Arc::new(NaiveScan::new(objects.to_vec())),
            EstimatorKind::RTree => Arc::new(RTreeOracle::build(objects)),
        }
    }
}

/// The outcome of one case: how many estimator×query comparisons ran and
/// every violated law.
#[derive(Debug, Default)]
pub struct CaseOutcome {
    /// Differential comparisons performed (one per estimator per query).
    pub comparisons: usize,
    /// Violations found, in discovery order.
    pub violations: Vec<Violation>,
}

impl CaseOutcome {
    /// Did every law hold?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the full conformance battery for one case: the nine-estimator
/// differential matrix through the engine (with varying thread counts so
/// the fan-out path is itself under test), the S-EulerApprox conditional
/// exactness law, the engine resilience laws under injected panics
/// ([`check_fault_resilience`]), dynamic replay, persistence round-trips,
/// and the browse API.
pub fn run_case(spec: &CaseSpec) -> CaseOutcome {
    let grid = spec.grid();
    let objects = spec.snapped();
    let queries = spec.queries();
    let oracle: Vec<RelationCounts> = queries
        .iter()
        .map(|q| count_by_classification(&objects, q))
        .collect();
    let mut outcome = CaseOutcome::default();

    differential_matrix(&grid, &objects, &queries, &oracle, &mut outcome);
    check_kernel_tiers(&grid, &objects, &mut outcome.violations);
    check_compressed_tier(&grid, &objects, &mut outcome.violations);
    check_parallel_sweep(&grid, &objects, &mut outcome.violations);
    check_dynamic_replay(spec, &grid, &objects, &queries, &mut outcome.violations);
    check_persist_round_trip(&grid, &objects, &queries, &mut outcome.violations);
    check_browse_api(spec, &grid, &queries, &oracle, &mut outcome.violations);
    check_pyramid_dispatch(spec, &grid, &mut outcome.violations);
    outcome
}

/// The core differential loop shared by [`run_case`] and the
/// fault-injection tests.
pub fn differential_matrix(
    grid: &Grid,
    objects: &[SnappedRect],
    queries: &[GridRect],
    oracle: &[RelationCounts],
    outcome: &mut CaseOutcome,
) {
    let n = objects.len() as i64;
    for (ki, kind) in EstimatorKind::ALL.iter().enumerate() {
        let est = kind.build(grid, objects);
        if est.name() != kind.expected_name() {
            outcome.violations.push(Violation {
                estimator: est.name().to_string(),
                law: "estimator reports its registered name",
                query: grid.full(),
                got: RelationCounts::default(),
                oracle: RelationCounts::default(),
            });
        }
        if est.object_count() != objects.len() as u64 {
            outcome.violations.push(Violation {
                estimator: est.name().to_string(),
                law: "object_count matches dataset size",
                query: grid.full(),
                got: RelationCounts::new(est.object_count() as i64, 0, 0, 0),
                oracle: RelationCounts::new(n, 0, 0, 0),
            });
        }
        // Sweep-equivalence law: estimate_tiling (the amortized sweep
        // evaluator where supported, the default loop elsewhere) must be
        // bit-identical to the per-tile loop on every tiling shape.
        for tiling in sweep_tilings(grid) {
            check_sweep_equivalence(kind.expected_name(), &est, &tiling, &mut outcome.violations);
            outcome.comparisons += tiling.len();
        }
        // Cycle thread counts 1..=3 across estimators so sequential and
        // fan-out engine paths both face the oracle.
        let engine = EstimatorEngine::builder(Arc::clone(&est))
            .threads(ki % 3 + 1)
            .build();
        let result = engine.run_batch(&QueryBatch::new(queries));
        for ((q, got), want) in queries.iter().zip(&result.counts).zip(oracle) {
            outcome.comparisons += 1;
            check_estimate(
                kind.expected_name(),
                kind.class(),
                q,
                got,
                want,
                n,
                &mut outcome.violations,
            );
            if *kind == EstimatorKind::SEuler {
                check_s_euler_conditional(q, got, want, objects, &mut outcome.violations);
            }
        }
        // Resilience laws: the clean batch above is the fault-free
        // baseline (this check adds no differential comparisons — the
        // accounting tests rely on that).
        let tiling = &sweep_tilings(grid)[0];
        check_fault_resilience(
            kind.expected_name(),
            &est,
            queries,
            &result.counts,
            tiling,
            &mut outcome.violations,
        );
    }
}

/// The resilience laws the engine's degradation ladder must satisfy for
/// every estimator, checked with the injected-defect wrappers:
///
/// 1. **Panic isolation.** With one query poisoned to panic the worker,
///    every query the engine still reports [`Complete`] must be
///    bit-identical to the fault-free `baseline`, and the poisoned query
///    must *not* be reported `Complete`.
/// 2. **Lossless degradation.** With the sweep kernel poisoned, a tiling
///    batch must come back [`Degraded`] — not failed — and equal the
///    per-tile loop bit-for-bit (the sweep-equivalence law is exactly
///    what licenses this fallback).
///
/// [`Complete`]: euler_engine::BatchOutcome::Complete
/// [`Degraded`]: euler_engine::BatchOutcome::Degraded
pub fn check_fault_resilience(
    name: &str,
    est: &SharedEstimator,
    queries: &[GridRect],
    baseline: &[RelationCounts],
    tiling: &Tiling,
    out: &mut Vec<Violation>,
) {
    if queries.is_empty() {
        return;
    }
    euler_engine::faults::silence_injected_panics();

    // Law 1: poison one mid-plan query; the blast radius is its chunk.
    let poison = queries[queries.len() / 2];
    let faulty: SharedEstimator = Arc::new(PanickingEstimator::new(Arc::clone(est), poison));
    let engine = EstimatorEngine::builder(faulty).threads(2).build();
    let result = engine.run_batch(&QueryBatch::new(queries));
    for (i, q) in queries.iter().enumerate() {
        if result.outcomes[i].is_complete() {
            if *q == poison {
                out.push(Violation {
                    estimator: format!("{name} (panic-isolation)"),
                    law: "poisoned query is not reported Complete",
                    query: *q,
                    got: result.counts[i],
                    oracle: baseline[i],
                });
            } else if result.counts[i] != baseline[i] {
                out.push(Violation {
                    estimator: format!("{name} (panic-isolation)"),
                    law: "Complete outcome = fault-free run, bit-identical",
                    query: *q,
                    got: result.counts[i],
                    oracle: baseline[i],
                });
            }
        }
    }

    // Law 2: poison the sweep kernel; the tiling batch must degrade to
    // the per-tile loop, bit-for-bit.
    let sweep_faulty: SharedEstimator = Arc::new(SweepPanickingEstimator::new(Arc::clone(est)));
    let engine = EstimatorEngine::builder(sweep_faulty).threads(1).build();
    let result = engine.run_batch(&QueryBatch::from(tiling));
    for (((_, tile), got), o) in tiling.iter().zip(&result.counts).zip(&result.outcomes) {
        if !o.is_degraded() {
            out.push(Violation {
                estimator: format!("{name} (sweep-degradation)"),
                law: "poisoned sweep degrades to the loop, not to failure",
                query: tile,
                got: *got,
                oracle: est.estimate(&tile),
            });
            continue;
        }
        let want = est.estimate(&tile);
        if *got != want {
            out.push(Violation {
                estimator: format!("{name} (sweep-degradation)"),
                law: "Degraded sweep fallback = per-tile loop, bit-identical",
                query: tile,
                got: *got,
                oracle: want,
            });
        }
    }
}

/// The tiling shapes the sweep-equivalence law is checked on: a coarse
/// full-grid browse, a finer full-grid browse, and (when the grid allows)
/// an offset interior subregion — the shape that catches boundary-clamp
/// bugs in the sweep kernels. Public so the suite's accounting tests can
/// predict exactly how many comparisons a case performs.
pub fn sweep_tilings(grid: &Grid) -> Vec<Tiling> {
    let mut tilings = vec![
        Tiling::new(grid.full(), grid.nx().min(4), grid.ny().min(3))
            .expect("coarse tiling within a >=2x2 grid"),
        Tiling::new(grid.full(), grid.nx().min(7), grid.ny().min(5))
            .expect("fine tiling within a >=2x2 grid"),
    ];
    if grid.nx() >= 4 && grid.ny() >= 4 {
        let sub = GridRect::unchecked(1, 1, grid.nx() - 1, grid.ny() - 1);
        tilings.push(
            Tiling::new(sub, (grid.nx() - 2).min(3), (grid.ny() - 2).min(2))
                .expect("subregion tiling within its region"),
        );
    }
    tilings
}

/// Kernel-equivalence law: the lane-packed kernel tier must be
/// bit-identical to the scalar reference on the case's frozen cube —
/// sweep tile sums under every proxy mode plus the batched point kernels
/// (`prefix_many` / `signed_sum4`) on every tile of every sweep-law
/// tiling shape. Both tiers are always compiled, so the law holds the
/// active tier (whichever the `scalar-kernels` feature selected) against
/// the other one in the same binary; the sweep-equivalence and
/// differential laws above then pin every estimator to the active tier.
/// This check adds no differential comparisons (the accounting tests
/// rely on that).
fn check_kernel_tiers(grid: &Grid, objects: &[SnappedRect], out: &mut Vec<Violation>) {
    let hist = EulerHistogram::build(*grid, objects).freeze();
    for tiling in sweep_tilings(grid) {
        if let Err(e) = euler_core::sweep::verify_kernel_tiers(&hist, &tiling) {
            out.push(Violation {
                estimator: format!("kernel-tiers: {e}"),
                law: "packed kernel tier = scalar reference, bit-identical",
                query: grid.full(),
                got: RelationCounts::default(),
                oracle: RelationCounts::default(),
            });
        }
    }
}

/// Compressed-tier law: a histogram frozen onto the run-compressed cube
/// must be **bit-identical** to the dense freeze — per-tile point
/// estimates for both Euler-family estimators and the amortized sweep
/// evaluator, on every sweep-law tiling shape. This is the contract that
/// lets the freeze heuristic pick a tier per dataset without any caller
/// noticing. Adds no differential comparisons (the accounting tests rely
/// on that).
fn check_compressed_tier(grid: &Grid, objects: &[SnappedRect], out: &mut Vec<Violation>) {
    let hist = EulerHistogram::build(*grid, objects);
    let pairs: [(&str, SharedEstimator, SharedEstimator); 2] = [
        (
            "S-EulerApprox",
            Arc::new(SEulerApprox::new(hist.freeze_dense())),
            Arc::new(SEulerApprox::new(hist.freeze_compressed())),
        ),
        (
            "EulerApprox",
            Arc::new(EulerApprox::new(hist.freeze_dense())),
            Arc::new(EulerApprox::new(hist.freeze_compressed())),
        ),
    ];
    for (name, dense, comp) in &pairs {
        for tiling in sweep_tilings(grid) {
            for (_, tile) in tiling.iter() {
                let want = dense.estimate(&tile);
                let got = comp.estimate(&tile);
                if got != want {
                    out.push(Violation {
                        estimator: format!("{name} (compressed-tier)"),
                        law: "compressed tier = dense tier, bit-identical",
                        query: tile,
                        got,
                        oracle: want,
                    });
                }
            }
            let (dense_counts, dense_total) = dense.estimate_tiling_total(&tiling);
            let (comp_counts, comp_total) = comp.estimate_tiling_total(&tiling);
            if dense_counts != comp_counts || dense_total != comp_total {
                out.push(Violation {
                    estimator: format!("{name} (compressed-tier sweep)"),
                    law: "compressed-tier sweep = dense-tier sweep, bit-identical",
                    query: tiling.region(),
                    got: comp_total,
                    oracle: dense_total,
                });
            }
        }
    }
}

/// Parallel-sweep law: a tiling-shaped batch through the engine must be
/// bit-identical to the per-tile loop at every thread width — the band
/// split (whole tile rows, remainder row alone) is exact geometry, not
/// an approximation. Adds no differential comparisons.
fn check_parallel_sweep(grid: &Grid, objects: &[SnappedRect], out: &mut Vec<Violation>) {
    let est: SharedEstimator = Arc::new(SEulerApprox::new(
        EulerHistogram::build(*grid, objects).freeze(),
    ));
    for tiling in sweep_tilings(grid) {
        let baseline: Vec<RelationCounts> = tiling.iter().map(|(_, t)| est.estimate(&t)).collect();
        for threads in [1usize, 2, 4] {
            let engine = EstimatorEngine::builder(Arc::clone(&est))
                .threads(threads)
                .build();
            let result = engine.run_batch(&QueryBatch::from(&tiling));
            for (((_, tile), got), want) in tiling.iter().zip(&result.counts).zip(&baseline) {
                if got != want {
                    out.push(Violation {
                        estimator: format!("parallel-sweep[threads={threads}]"),
                        law: "banded sweep = per-tile loop, bit-identical",
                        query: tile,
                        got: *got,
                        oracle: *want,
                    });
                }
            }
        }
    }
}

/// Dynamic insert/delete replay must agree with a frozen rebuild: insert
/// all objects, remove every third, re-insert them, and compare the
/// dynamic S-Euler estimates against a freshly built frozen histogram on
/// every query.
fn check_dynamic_replay(
    spec: &CaseSpec,
    grid: &Grid,
    objects: &[SnappedRect],
    queries: &[GridRect],
    out: &mut Vec<Violation>,
) {
    if objects.is_empty() {
        return;
    }
    let mut dynamic = DynamicEulerHistogram::new(*grid);
    for o in objects {
        dynamic.insert(o);
    }
    // Churn: remove every third object, then put it back. The end state
    // must be indistinguishable from a cold build.
    for o in objects.iter().step_by(3) {
        dynamic.remove(o);
    }
    for o in objects.iter().step_by(3) {
        dynamic.insert(o);
    }
    let frozen = SEulerApprox::new(EulerHistogram::build(*grid, objects).freeze());
    for q in queries {
        let got = dynamic.s_euler_estimate(q);
        let want = frozen.estimate(q);
        if got != want {
            out.push(Violation {
                estimator: format!("dynamic-replay[{}]", spec.to_line()),
                law: "dynamic insert/delete replay = frozen rebuild",
                query: *q,
                got,
                oracle: want,
            });
        }
    }
}

/// Persisted histograms must round-trip losslessly through both codecs:
/// the revived histogram's estimates must equal the original's on every
/// query.
fn check_persist_round_trip(
    grid: &Grid,
    objects: &[SnappedRect],
    queries: &[GridRect],
    out: &mut Vec<Violation>,
) {
    let hist = EulerHistogram::build(*grid, objects);
    let original = SEulerApprox::new(hist.freeze());
    for (codec, bytes) in [
        ("persist-raw", hist.to_bytes()),
        ("persist-compressed", hist.to_bytes_compressed()),
    ] {
        let revived = match EulerHistogram::from_bytes(bytes) {
            Ok(h) => h,
            Err(e) => {
                out.push(Violation {
                    estimator: format!("{codec}: {e}"),
                    law: "persist round-trip decodes",
                    query: grid.full(),
                    got: RelationCounts::default(),
                    oracle: RelationCounts::default(),
                });
                continue;
            }
        };
        // Tier independence: persistence stores raw buckets, so the
        // revived histogram must freeze onto the identical compressed
        // cube the original does.
        if revived.freeze_compressed() != hist.freeze_compressed() {
            out.push(Violation {
                estimator: format!("{codec} (compressed freeze)"),
                law: "revived buckets freeze to the identical compressed cube",
                query: grid.full(),
                got: RelationCounts::default(),
                oracle: RelationCounts::default(),
            });
        }
        let revived = SEulerApprox::new(revived.freeze());
        for q in queries {
            let got = revived.estimate(q);
            let want = original.estimate(q);
            if got != want {
                out.push(Violation {
                    estimator: codec.to_string(),
                    law: "persist round-trip lossless",
                    query: *q,
                    got,
                    oracle: want,
                });
            }
        }
    }
}

/// The browse API is the user-facing surface: browsing any tiling must
/// return, per tile, the clamped estimate of a pinned view — and
/// therefore satisfy the same Euler-family laws against the oracle
/// (clamped). Written once against [`BrowseSession`], checked for both
/// service profiles (refreeze-on-read and pin-current).
fn check_browse_api(
    spec: &CaseSpec,
    grid: &Grid,
    queries: &[GridRect],
    oracle: &[RelationCounts],
    out: &mut Vec<Violation>,
) {
    let sessions: Vec<Box<dyn BrowseSession>> = vec![
        Box::new(GeoBrowsingService::with_objects(*grid, &spec.rects())),
        Box::new(DynamicGeoBrowsingService::with_objects(
            *grid,
            &spec.rects(),
        )),
    ];
    let tiling = Tiling::new(grid.full(), spec.nx.min(4), spec.ny.min(3))
        .expect("tiling within a >=2x2 grid");
    for session in &sessions {
        let name = session.session_name();
        let pinned = session.pin_session();
        for threads in [1, 3] {
            let result = session.browse(&tiling, &BrowseRequest::new().threads(threads));
            for ((_, tile), got) in tiling.iter().zip(result.counts()) {
                let want = pinned.estimator().estimate(&tile).clamped();
                if *got != want {
                    out.push(Violation {
                        estimator: format!("{name}[threads={threads}]"),
                        law: "browse tile = clamped pinned estimate",
                        query: tile,
                        got: *got,
                        oracle: want,
                    });
                }
            }
        }
        // The pinned estimator itself must satisfy the Euler-family laws
        // on the case's query plan (the service snapped the same raw
        // rects), regardless of read policy.
        let n = session.len() as i64;
        for (q, want) in queries.iter().zip(oracle) {
            check_estimate(
                "browse-session",
                ExactnessClass::ApproxLevel2,
                q,
                &pinned.estimator().estimate(q),
                want,
                n,
                out,
            );
        }
    }
}

/// Pyramid-dispatch law: a browse served from a coarse pyramid level
/// must equal the same tiling answered at the finest level, count for
/// count — every level folds out of one finest-grid lineage, so the
/// dispatch level is unobservable. Skipped when the case grid cannot
/// halve (odd or tiny dims leave a single-level ladder).
fn check_pyramid_dispatch(spec: &CaseSpec, grid: &Grid, out: &mut Vec<Violation>) {
    let (nx, ny) = (grid.nx(), grid.ny());
    if nx < 4 || ny < 4 || nx % 2 != 0 || ny % 2 != 0 {
        return;
    }
    let rects = spec.rects();
    let region = grid.space().bounds();
    let (cols, rows) = (nx / 2, ny / 2);
    let browse = |levels: usize| {
        PyramidBrowser::new(*grid.space(), nx, ny, levels, rects.clone())
            .expect("validated dims")
            .browse(region, cols, rows)
    };
    match (browse(2), browse(1)) {
        (Ok((coarse, coarse_level)), Ok((fine, fine_level))) => {
            if coarse_level == fine_level {
                out.push(Violation {
                    estimator: "pyramid-dispatch".into(),
                    law: "half-resolution tiling dispatches to a coarse level",
                    query: grid.full(),
                    got: RelationCounts::default(),
                    oracle: RelationCounts::default(),
                });
            }
            for col in 0..cols {
                for row in 0..rows {
                    let (got, want) = (*coarse.get(col, row), *fine.get(col, row));
                    if got != want {
                        out.push(Violation {
                            estimator: format!("pyramid-dispatch[tile=({col},{row})]"),
                            law: "coarse-level browse = finest-level browse, bit-identical",
                            query: grid.full(),
                            got,
                            oracle: want,
                        });
                    }
                }
            }
        }
        (coarse, fine) => {
            out.push(Violation {
                estimator: format!(
                    "pyramid-dispatch: coarse={:?} fine={:?}",
                    coarse.as_ref().err(),
                    fine.as_ref().err()
                ),
                law: "full-region half-resolution browse aligns on some level",
                query: grid.full(),
                got: RelationCounts::default(),
                oracle: RelationCounts::default(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Distribution;

    #[test]
    fn all_nine_kinds_build_and_report_their_names() {
        let spec = CaseSpec {
            seed: 1,
            dist: Distribution::Uniform,
            nx: 6,
            ny: 4,
            objects: 12,
        };
        let grid = spec.grid();
        let objects = spec.snapped();
        let names: Vec<&str> = EstimatorKind::ALL
            .iter()
            .map(|k| k.build(&grid, &objects).name())
            .collect();
        assert_eq!(
            names,
            EstimatorKind::ALL
                .iter()
                .map(|k| k.expected_name())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn a_small_case_is_clean() {
        let spec = CaseSpec {
            seed: 42,
            dist: Distribution::Mixed,
            nx: 8,
            ny: 6,
            objects: 25,
        };
        let outcome = run_case(&spec);
        assert!(outcome.comparisons >= 9 * 20);
        assert!(outcome.is_clean(), "violations: {:#?}", outcome.violations);
    }

    #[test]
    fn empty_dataset_is_clean() {
        let spec = CaseSpec {
            seed: 3,
            dist: Distribution::Points,
            nx: 4,
            ny: 4,
            objects: 0,
        };
        let outcome = run_case(&spec);
        assert!(outcome.is_clean(), "{:#?}", outcome.violations);
    }
}
