//! The crash-recovery law for the durability layer (`euler-wal`):
//! **after any kill point — a clean stop after `k` acknowledged ops, or
//! a torn tail cut at any byte offset — recovery rebuilds a state
//! bit-identical to the frozen rebuild of exactly the surviving
//! write-log prefix.** No acknowledged op lost, no phantom op invented,
//! no half-applied record.
//!
//! Two checks share one seeded write log (the interleaving law's
//! generator, so crash cases and concurrency cases draw from the same
//! distribution):
//!
//! - [`check_kill_points`] stops ingest after every `k` in `0..=n`
//!   (dropping the store without a graceful drain, under
//!   `FsyncPolicy::Always`) and requires recovery at exactly version
//!   `k`. Run it both without checkpoints (pure replay) and with a
//!   small `checkpoint_every` (image + suffix).
//! - [`check_torn_tails`] writes the full log into a single segment,
//!   then replays recovery against a copy truncated at **every** byte
//!   offset — every record boundary, boundary ± 1, and all the torn
//!   interiors — requiring the surviving whole-record prefix and
//!   nothing else. A second pass flips the final byte instead of
//!   cutting, covering CRC-failing (rather than short) tails.
//!
//! Both checks are deterministic: same spec, same verdict, any machine.

use std::path::{Path, PathBuf};

use euler_core::snapshot::DeltaOp;
use euler_core::{EulerHistogram, FrozenEulerHistogram};
use euler_wal::{DurableConfig, DurableLive, FsyncPolicy};

use crate::interleave::write_log;
use crate::spec::CaseSpec;

/// Outcome of one crash-recovery sweep.
#[derive(Debug, Default)]
pub struct CrashSummary {
    /// Kill points (or cut offsets) recovered and verified.
    pub recoveries_checked: usize,
    /// Human-readable law violations (empty on success).
    pub violations: Vec<String>,
}

impl CrashSummary {
    /// True when every recovery matched its prefix rebuild.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Frozen rebuilds of every write-log prefix, computed once per sweep.
fn prefix_rebuilds(spec: &CaseSpec, log: &[DeltaOp]) -> Vec<FrozenEulerHistogram> {
    let mut out = Vec::with_capacity(log.len() + 1);
    let mut hist = EulerHistogram::new(spec.grid());
    out.push(hist.clone().freeze());
    for op in log {
        if op.sign > 0 {
            hist.insert(&op.rect);
        } else {
            hist.remove(&op.rect);
        }
        out.push(hist.clone().freeze());
    }
    out
}

fn scratch_dir(tag: &str, seed: u64, k: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "euler-crash-{tag}-{seed:x}-{k}-{}",
        std::process::id()
    ))
}

fn verify_recovery(
    dir: &Path,
    spec: &CaseSpec,
    cfg: DurableConfig,
    expected_version: usize,
    rebuilds: &[FrozenEulerHistogram],
    context: &str,
    summary: &mut CrashSummary,
) {
    summary.recoveries_checked += 1;
    match DurableLive::open(dir, spec.grid(), cfg) {
        Ok((store, report)) => {
            if store.version() as usize != expected_version {
                summary.violations.push(format!(
                    "{context}: recovered version {} (replayed {} from checkpoint {}), \
                     expected {expected_version} (replay: {})",
                    store.version(),
                    report.replayed,
                    report.checkpoint_version,
                    spec.to_line(),
                ));
                return;
            }
            let snap = store.live().refreeze();
            if *snap.frozen().as_ref() != rebuilds[expected_version] {
                summary.violations.push(format!(
                    "{context}: recovered version {expected_version} but the state \
                     differs from the frozen prefix rebuild (replay: {})",
                    spec.to_line(),
                ));
            }
        }
        Err(e) => summary.violations.push(format!(
            "{context}: recovery failed: {e} (replay: {})",
            spec.to_line(),
        )),
    }
}

/// Stops ingest after every acknowledged-op count `k` in `0..=n` and
/// requires recovery at exactly version `k`, state bit-identical to the
/// frozen rebuild of `log[..k]`. `checkpoint_every: None` exercises pure
/// WAL replay; a small `Some(..)` exercises checkpoint-plus-suffix.
pub fn check_kill_points(spec: &CaseSpec, checkpoint_every: Option<u64>) -> CrashSummary {
    let log = write_log(spec);
    let rebuilds = prefix_rebuilds(spec, &log);
    let cfg = DurableConfig {
        checkpoint_every,
        ..DurableConfig::default()
    };
    let mut summary = CrashSummary::default();
    for k in 0..=log.len() {
        let dir = scratch_dir("kill", spec.seed, k);
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (store, _) = match DurableLive::open(&dir, spec.grid(), cfg) {
                Ok(v) => v,
                Err(e) => {
                    summary
                        .violations
                        .push(format!("kill point {k}: open failed: {e}"));
                    continue;
                }
            };
            for op in &log[..k] {
                if let Err(e) = store.apply(*op) {
                    summary
                        .violations
                        .push(format!("kill point {k}: acked apply failed: {e}"));
                }
            }
            // Dropped without sync: the simulated kill. Under
            // `FsyncPolicy::Always` every acked op is already durable.
        }
        verify_recovery(
            &dir,
            spec,
            cfg,
            k,
            &rebuilds,
            &format!("kill point {k} (checkpoint_every {checkpoint_every:?})"),
            &mut summary,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    summary
}

/// Writes the full log into one segment, then recovers from a copy
/// truncated at every byte offset (and, at each whole-frame boundary,
/// from a copy with its final byte flipped): recovery must keep exactly
/// the whole records below the damage and truncate the rest away.
pub fn check_torn_tails(spec: &CaseSpec) -> CrashSummary {
    const HEADER: usize = 24;
    const FRAME: usize = euler_wal::RECORD_PAYLOAD_LEN + 8;
    let log = write_log(spec);
    let rebuilds = prefix_rebuilds(spec, &log);
    let cfg = DurableConfig {
        checkpoint_every: None,
        ..DurableConfig::default()
    }
    .with_fsync(FsyncPolicy::Always);
    let mut summary = CrashSummary::default();

    // One full ingest; keep only the segment bytes.
    let seed_dir = scratch_dir("torn-seed", spec.seed, 0);
    let _ = std::fs::remove_dir_all(&seed_dir);
    {
        let (store, _) = DurableLive::open(&seed_dir, spec.grid(), cfg).expect("seed open");
        for op in &log {
            store.apply(*op).expect("seed ingest");
        }
    }
    let segment = std::fs::read(seed_dir.join("wal-000001.log")).expect("seed segment");
    let _ = std::fs::remove_dir_all(&seed_dir);
    assert_eq!(
        segment.len(),
        HEADER + FRAME * log.len(),
        "single-segment layout assumption"
    );

    let dir = scratch_dir("torn", spec.seed, 1);
    let run = |bytes: &[u8], expected: usize, context: &str, summary: &mut CrashSummary| {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(dir.join("wal-000001.log"), bytes).expect("scratch segment");
        verify_recovery(&dir, spec, cfg, expected, &rebuilds, context, summary);
    };

    for cut in 0..segment.len() {
        let expected = cut.saturating_sub(HEADER) / FRAME;
        run(
            &segment[..cut],
            expected,
            &format!("torn cut at byte {cut}"),
            &mut summary,
        );
    }
    // CRC-failing (rather than short) final record at each boundary.
    for k in 1..=log.len() {
        let end = HEADER + FRAME * k;
        let mut bytes = segment[..end].to_vec();
        *bytes.last_mut().expect("non-empty") ^= 0x01;
        run(
            &bytes,
            k - 1,
            &format!("flipped final byte of record {k}"),
            &mut summary,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Distribution;

    fn spec() -> CaseSpec {
        CaseSpec {
            seed: 19,
            dist: Distribution::Mixed,
            nx: 8,
            ny: 6,
            objects: 24,
        }
    }

    #[test]
    fn kill_points_recover_clean_without_checkpoints() {
        let summary = check_kill_points(&spec(), None);
        assert!(summary.is_clean(), "{:#?}", summary.violations);
        assert!(summary.recoveries_checked > 24);
    }

    #[test]
    fn kill_points_recover_clean_with_checkpoints() {
        let summary = check_kill_points(&spec(), Some(8));
        assert!(summary.is_clean(), "{:#?}", summary.violations);
    }

    #[test]
    fn torn_tails_recover_the_surviving_prefix() {
        let summary = check_torn_tails(&spec());
        assert!(summary.is_clean(), "{:#?}", summary.violations);
        // Every byte offset plus every flipped boundary.
        assert!(summary.recoveries_checked > 1000);
    }
}
