//! Test-only fault injection: wrappers that introduce controlled,
//! realistic defects into an estimator so the harness can prove it
//! *catches* them. A conformance suite that has never seen a failure is
//! untested itself; these mutations are the calibration signal.

use std::panic::panic_any;

use euler_core::{Level2Estimator, RelationCounts};
use euler_engine::faults::{FaultSite, InjectedPanic};
use euler_engine::SharedEstimator;
use euler_grid::{GridRect, Tiling};

/// The injected defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Off-by-one in the bucket index along x: every query is evaluated
    /// one cell-column off — the classic Euler-histogram indexing bug the
    /// `(2n₁−1)(2n₂−1)` addressing invites.
    BucketShiftX,
    /// One intersecting object leaks into `overlaps` that the oracle
    /// counts as disjoint (an `>=` vs `>` slip in a predicate).
    OverlapOffByOne,
    /// `contained` results are silently dropped (the S-Euler `N_cd = 0`
    /// assumption applied where it must not be).
    DropContained,
}

impl Fault {
    /// Name the wrapped estimator reports, to make failure reports honest
    /// about the injection.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::BucketShiftX => "Faulty(bucket-shift-x)",
            Fault::OverlapOffByOne => "Faulty(overlap-off-by-one)",
            Fault::DropContained => "Faulty(drop-contained)",
        }
    }
}

/// An estimator with a [`Fault`] injected between the query and the real
/// implementation.
pub struct FaultyEstimator {
    inner: SharedEstimator,
    fault: Fault,
}

impl FaultyEstimator {
    /// Wraps `inner` with the given fault.
    pub fn new(inner: SharedEstimator, fault: Fault) -> FaultyEstimator {
        FaultyEstimator { inner, fault }
    }
}

impl Level2Estimator for FaultyEstimator {
    fn name(&self) -> &'static str {
        self.fault.label()
    }

    fn estimate(&self, q: &GridRect) -> RelationCounts {
        match self.fault {
            Fault::BucketShiftX => {
                // Shift the queried column range by one, staying in
                // bounds: widen left when possible, else slide right
                // (valid on any grid at least two columns wide).
                let q2 = if q.x0 > 0 {
                    GridRect::unchecked(q.x0 - 1, q.y0, q.x1 - 1, q.y1)
                } else {
                    GridRect::unchecked(q.x0 + 1, q.y0, q.x1 + 1, q.y1)
                };
                self.inner.estimate(&q2)
            }
            Fault::OverlapOffByOne => {
                let mut c = self.inner.estimate(q);
                if c.disjoint > 0 {
                    c.disjoint -= 1;
                    c.overlaps += 1;
                }
                c
            }
            Fault::DropContained => {
                let mut c = self.inner.estimate(q);
                c.disjoint += c.contained;
                c.contained = 0;
                c
            }
        }
    }

    fn object_count(&self) -> u64 {
        self.inner.object_count()
    }

    fn storage_cells(&self) -> u64 {
        self.inner.storage_cells()
    }
}

/// An estimator that panics — with an [`InjectedPanic`] payload, like the
/// engine's own fail-points — on one poisoned query. The conformance
/// stand-in for a defective worker: the resilience law says the engine
/// must contain the blast to the poisoned chunk and answer everything
/// else bit-identically to a fault-free run.
pub struct PanickingEstimator {
    inner: SharedEstimator,
    poison: GridRect,
}

impl PanickingEstimator {
    /// Wraps `inner`, panicking whenever `poison` is queried.
    pub fn new(inner: SharedEstimator, poison: GridRect) -> PanickingEstimator {
        PanickingEstimator { inner, poison }
    }
}

impl Level2Estimator for PanickingEstimator {
    fn name(&self) -> &'static str {
        "Panicking"
    }

    fn estimate(&self, q: &GridRect) -> RelationCounts {
        if *q == self.poison {
            panic_any(InjectedPanic {
                site: FaultSite::Chunk,
                index: 0,
            });
        }
        self.inner.estimate(q)
    }

    fn object_count(&self) -> u64 {
        self.inner.object_count()
    }

    fn storage_cells(&self) -> u64 {
        self.inner.storage_cells()
    }
}

/// A sweep-capable wrapper whose sweep kernel always panics, forcing the
/// engine down the sweep → per-tile-loop degradation rung. Its per-query
/// [`estimate`] delegates untouched, so the fallback answer is exactly
/// the inner estimator's per-tile loop — which is what the resilience
/// law demands of a `Degraded` result.
///
/// [`estimate`]: Level2Estimator::estimate
pub struct SweepPanickingEstimator {
    inner: SharedEstimator,
}

impl SweepPanickingEstimator {
    /// Wraps `inner` with a poisoned sweep kernel.
    pub fn new(inner: SharedEstimator) -> SweepPanickingEstimator {
        SweepPanickingEstimator { inner }
    }
}

impl Level2Estimator for SweepPanickingEstimator {
    fn name(&self) -> &'static str {
        "SweepPanicking"
    }

    fn estimate(&self, q: &GridRect) -> RelationCounts {
        self.inner.estimate(q)
    }

    fn object_count(&self) -> u64 {
        self.inner.object_count()
    }

    fn storage_cells(&self) -> u64 {
        self.inner.storage_cells()
    }

    fn estimate_tiling(&self, _t: &Tiling) -> Vec<RelationCounts> {
        panic_any(InjectedPanic {
            site: FaultSite::Sweep,
            index: 0,
        });
    }

    fn supports_sweep(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_baselines::NaiveScan;
    use std::sync::Arc;

    use crate::spec::{CaseSpec, Distribution};

    #[test]
    fn faults_perturb_estimates() {
        let spec = CaseSpec {
            seed: 5,
            dist: Distribution::Clustered,
            nx: 10,
            ny: 8,
            objects: 40,
        };
        let objects = spec.snapped();
        let clean: SharedEstimator = Arc::new(NaiveScan::new(objects.clone()));
        for fault in [
            Fault::BucketShiftX,
            Fault::OverlapOffByOne,
            Fault::DropContained,
        ] {
            let faulty = FaultyEstimator::new(Arc::clone(&clean), fault);
            assert_eq!(faulty.name(), fault.label());
            assert_eq!(faulty.object_count(), 40);
            // At least one query in the plan must change its answer.
            let perturbed = spec
                .queries()
                .iter()
                .any(|q| faulty.estimate(q) != clean.estimate(q));
            assert!(perturbed, "{fault:?} had no observable effect");
        }
    }

    #[test]
    fn panicking_wrappers_panic_with_injected_payloads() {
        euler_engine::faults::silence_injected_panics();
        let spec = CaseSpec {
            seed: 7,
            dist: Distribution::Uniform,
            nx: 6,
            ny: 4,
            objects: 10,
        };
        let inner: SharedEstimator = Arc::new(NaiveScan::new(spec.snapped()));
        let queries = spec.queries();
        let poison = queries[0];

        let p = PanickingEstimator::new(Arc::clone(&inner), poison);
        assert_eq!(p.object_count(), 10);
        // Non-poisoned queries pass through untouched.
        assert_eq!(p.estimate(&queries[1]), inner.estimate(&queries[1]));
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.estimate(&poison);
        }))
        .expect_err("poisoned query must panic");
        assert!(payload.downcast_ref::<InjectedPanic>().is_some());

        let s = SweepPanickingEstimator::new(Arc::clone(&inner));
        assert!(s.supports_sweep());
        assert_eq!(s.estimate(&queries[2]), inner.estimate(&queries[2]));
        let grid = spec.grid();
        let tiling = euler_grid::Tiling::new(grid.full(), 3, 2).expect("tiling");
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.estimate_tiling(&tiling);
        }))
        .expect_err("sweep kernel must panic");
        let injected = payload
            .downcast_ref::<InjectedPanic>()
            .expect("payload is InjectedPanic");
        assert_eq!(injected.site, FaultSite::Sweep);
    }
}
