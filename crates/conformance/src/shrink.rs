//! Failure minimization: given a failing (dataset, query) pair and a
//! predicate that re-checks the failure, shrink to a minimal reproduction
//! — a delta-debugging pass over the objects followed by greedy query
//! shrinking — and package it with the replayable spec line so the
//! regression lands as a one-line corpus entry.

use euler_grid::{GridRect, SnappedRect};

use crate::invariants::Violation;
use crate::spec::CaseSpec;

/// A minimal, replayable reproduction of a conformance failure.
#[derive(Debug, Clone)]
pub struct Reproduction {
    /// The replay line regenerating the full dataset
    /// ([`CaseSpec::to_line`] format) — paste into the corpus or replay
    /// with `CaseSpec::from_line`.
    pub line: String,
    /// Indices (into the spec's generated dataset) of the minimal object
    /// subset that still fails.
    pub object_indices: Vec<usize>,
    /// The minimal failing query.
    pub query: GridRect,
    /// The violation observed on the minimal reproduction.
    pub violation: Violation,
}

impl Reproduction {
    /// A one-paragraph, actionable failure report.
    pub fn report(&self) -> String {
        format!(
            "CONFORMANCE FAILURE\n  replay:  {}\n  objects: {} of the dataset (indices {:?})\n  query:   {}\n  law:     {}\n  detail:  {}",
            self.line,
            self.object_indices.len(),
            self.object_indices,
            self.query,
            self.violation.law,
            self.violation
        )
    }
}

impl std::fmt::Display for Reproduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.report())
    }
}

/// Shrinks a failing case. `fails` re-runs the check on a candidate
/// object subset and query, returning the violation if it still fails;
/// the minimization keeps only what is needed to preserve *some* failure.
///
/// Objects are minimized first with a delta-debugging sweep (drop chunks,
/// halving the chunk size down to single objects), then the query is
/// greedily narrowed edge by edge.
pub fn shrink<F>(
    spec: &CaseSpec,
    objects: &[SnappedRect],
    query: &GridRect,
    mut fails: F,
) -> Option<Reproduction>
where
    F: FnMut(&[SnappedRect], &GridRect) -> Option<Violation>,
{
    let mut violation = fails(objects, query)?;
    let mut kept: Vec<usize> = (0..objects.len()).collect();
    let subset = |idx: &[usize]| -> Vec<SnappedRect> { idx.iter().map(|&i| objects[i]).collect() };

    // Delta-debugging over objects.
    let mut chunk = kept.len().div_ceil(2).max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start < kept.len() {
            let end = (start + chunk).min(kept.len());
            let candidate: Vec<usize> = kept[..start].iter().chain(&kept[end..]).copied().collect();
            if let Some(v) = fails(&subset(&candidate), query) {
                violation = v;
                kept = candidate;
                // Retry the same window position on the reduced list.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }

    // Greedy query narrowing: pull each edge inward while it still fails.
    let objs = subset(&kept);
    let mut q = *query;
    let mut progress = true;
    while progress {
        progress = false;
        let mut candidates = Vec::new();
        if q.x1 - q.x0 > 1 {
            candidates.push(GridRect::unchecked(q.x0 + 1, q.y0, q.x1, q.y1));
            candidates.push(GridRect::unchecked(q.x0, q.y0, q.x1 - 1, q.y1));
        }
        if q.y1 - q.y0 > 1 {
            candidates.push(GridRect::unchecked(q.x0, q.y0 + 1, q.x1, q.y1));
            candidates.push(GridRect::unchecked(q.x0, q.y0, q.x1, q.y1 - 1));
        }
        for c in candidates {
            if let Some(v) = fails(&objs, &c) {
                violation = v;
                q = c;
                progress = true;
                break;
            }
        }
    }

    Some(Reproduction {
        line: spec.to_line(),
        object_indices: kept,
        query: q,
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Distribution;
    use euler_core::RelationCounts;

    fn spec() -> CaseSpec {
        CaseSpec {
            seed: 11,
            dist: Distribution::Uniform,
            nx: 10,
            ny: 8,
            objects: 40,
        }
    }

    fn violation(q: &GridRect) -> Violation {
        Violation {
            estimator: "test".into(),
            law: "synthetic",
            query: *q,
            got: RelationCounts::default(),
            oracle: RelationCounts::default(),
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit_object() {
        let s = spec();
        let objects = s.snapped();
        // Synthetic failure: the check fails whenever object #17 is in the
        // dataset and the query intersects it.
        let culprit = objects[17];
        let full = s.grid().full();
        let repro = shrink(&s, &objects, &full, |objs, q| {
            objs.iter()
                .any(|o| *o == culprit && o.intersects(q))
                .then(|| violation(q))
        })
        .expect("initial case fails");
        assert_eq!(repro.object_indices, vec![17]);
        // The query shrank to a single cell still hitting the culprit.
        assert_eq!((repro.query.width(), repro.query.height()), (1, 1));
        assert!(culprit.intersects(&repro.query));
        assert_eq!(CaseSpec::from_line(&repro.line), Ok(s));
        assert!(repro.report().contains("replay:"));
    }

    #[test]
    fn returns_none_when_the_case_passes() {
        let s = spec();
        let objects = s.snapped();
        let full = s.grid().full();
        assert!(shrink(&s, &objects, &full, |_, _| None).is_none());
    }

    #[test]
    fn shrinks_pair_failures_to_two_objects() {
        let s = spec();
        let objects = s.snapped();
        let (a, b) = (objects[3], objects[29]);
        let full = s.grid().full();
        let repro = shrink(&s, &objects, &full, |objs, q| {
            (objs.contains(&a) && objs.contains(&b) && q.area() >= 2).then(|| violation(q))
        })
        .expect("initial case fails");
        assert_eq!(repro.object_indices, vec![3, 29]);
        assert_eq!(repro.query.area(), 2);
    }
}
