//! The regression corpus: one replayable line per case the harness must
//! always pass. When a nightly run finds a failure, its shrunk
//! reproduction's `replay:` line is appended here so the defect stays
//! fixed forever at the cost of one line.

use crate::harness::{run_case, CaseOutcome};
use crate::spec::CaseSpec;

/// Replay lines in [`CaseSpec::from_line`] format. Seeded entries cover
/// every distribution on asymmetric grids; historical failures append
/// below the seed block.
pub const CORPUS: &[&str] = &[
    // Seed block: one line per distribution, deliberately awkward grids.
    "dist=uniform nx=7 ny=5 objects=33 seed=1",
    "dist=clustered nx=16 ny=6 objects=48 seed=2",
    "dist=points nx=5 ny=5 objects=40 seed=3",
    "dist=segments nx=12 ny=4 objects=36 seed=4",
    "dist=snapped nx=6 ny=6 objects=44 seed=5",
    "dist=mixed nx=11 ny=7 objects=50 seed=6",
    // Degenerate-scale block: minimum grid, single objects, empty set.
    "dist=snapped nx=2 ny=2 objects=9 seed=7",
    "dist=points nx=2 ny=3 objects=1 seed=8",
    "dist=uniform nx=3 ny=2 objects=0 seed=9",
    // Historical failures land here (replay line from the shrunk report).
];

/// Parses every corpus line (panicking on malformed entries — the corpus
/// is source code) and runs each through the full conformance battery.
pub fn replay_corpus() -> Vec<(CaseSpec, CaseOutcome)> {
    CORPUS
        .iter()
        .map(|line| {
            let spec = CaseSpec::from_line(line)
                .unwrap_or_else(|e| panic!("malformed corpus line `{line}`: {e}"));
            let outcome = run_case(&spec);
            (spec, outcome)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_lines_parse() {
        for line in CORPUS {
            let spec = CaseSpec::from_line(line).expect(line);
            assert_eq!(&spec.to_line(), line, "corpus lines are canonical");
        }
    }
}
