//! The invariant catalogue: for every estimator, the structural laws its
//! estimates must satisfy relative to the naive-scan oracle, stated as
//! machine-checkable predicates.
//!
//! The laws follow the paper's exactness results, not wishful thinking:
//! exact structures must *equal* the oracle; the Euler family has an exact
//! intersect count (`n_ii`, Theorem 3.1's bucket algebra) so `N_d` and the
//! intersecting total are exact even when the Level 2 split is
//! approximate; Level-1-only baselines collapse everything intersecting
//! into `overlaps` — CD and Beigel–Tanin exactly, Min-skew approximately.

use euler_core::{Level2Estimator, RelationCounts};
use euler_grid::{GridRect, Tiling};

/// What an estimator guarantees, per the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactnessClass {
    /// Full Level 2 exactness: must equal the oracle in all four counts
    /// (`Exact-4idx`, `NaiveScan`, `R-tree (exact)`).
    ExactLevel2,
    /// Exact Level 1 collapse: `N_d` exact, everything intersecting in
    /// `overlaps`, `contains = contained = 0` (CD, Beigel–Tanin).
    ExactLevel1,
    /// Approximate Level 1 collapse: same shape, but `overlaps` is only an
    /// estimate bounded by `[0, N]` (Min-skew).
    ApproxLevel1,
    /// Approximate Level 2: `total = N`, `N_d` and the intersecting total
    /// exact (exact `n_ii`), individual Level 2 counts approximate
    /// (S-/Euler-/M-EulerApprox).
    ApproxLevel2,
}

/// One violated law, with everything needed to print an actionable
/// failure: which estimator, which law, on which query, and both sides of
/// the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// `Level2Estimator::name()` of the offender (or a structural check
    /// label such as `"dynamic-replay"`).
    pub estimator: String,
    /// Short name of the violated law.
    pub law: &'static str,
    /// The query on which it failed.
    pub query: GridRect,
    /// What the estimator produced.
    pub got: RelationCounts,
    /// What the oracle says.
    pub oracle: RelationCounts,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated `{}` on {}: got [{}] oracle [{}]",
            self.estimator, self.law, self.query, self.got, self.oracle
        )
    }
}

/// Checks one estimate against the oracle under the laws of `class`,
/// appending any violations to `out`. `n` is the dataset size.
pub fn check_estimate(
    name: &str,
    class: ExactnessClass,
    q: &GridRect,
    got: &RelationCounts,
    oracle: &RelationCounts,
    n: i64,
    out: &mut Vec<Violation>,
) {
    let mut fail = |law: &'static str| {
        out.push(Violation {
            estimator: name.to_string(),
            law,
            query: *q,
            got: *got,
            oracle: *oracle,
        });
    };
    // Universal law: the four relations partition the dataset.
    if got.total() != n {
        fail("counts sum to N");
    }
    match class {
        ExactnessClass::ExactLevel2 => {
            if got != oracle {
                fail("exact estimator matches oracle");
            }
        }
        ExactnessClass::ExactLevel1 => {
            if got.contains != 0 || got.contained != 0 {
                fail("Level 1 collapse: contains = contained = 0");
            }
            if got.overlaps != oracle.intersecting() {
                fail("Level 1 collapse: overlaps = exact intersect count");
            }
            if got.disjoint != oracle.disjoint {
                fail("disjoint = N - intersecting, exactly");
            }
        }
        ExactnessClass::ApproxLevel1 => {
            if got.contains != 0 || got.contained != 0 {
                fail("Level 1 collapse: contains = contained = 0");
            }
            if got.overlaps < 0 || got.overlaps > n {
                fail("estimated intersect count within [0, N]");
            }
        }
        ExactnessClass::ApproxLevel2 => {
            // The Euler histogram's intersect count is exact, so both N_d
            // and the intersecting total must match the oracle even though
            // the contains/contained/overlap split is approximate.
            if got.disjoint != oracle.disjoint {
                fail("Euler family: disjoint exact (n_ii exact)");
            }
            if got.intersecting() != oracle.intersecting() {
                fail("Euler family: intersecting total exact");
            }
        }
    }
}

/// The sweep-equivalence structural law: for any tiling,
/// [`Level2Estimator::estimate_tiling`] — whether the amortized sweep
/// evaluator or the default loop — must be **bit-identical**, tile for
/// tile, to calling [`Level2Estimator::estimate`] on each tile. The sweep
/// path is a pure evaluation-order optimization; any divergence is a bug,
/// not an approximation.
pub fn check_sweep_equivalence<E: Level2Estimator + ?Sized>(
    name: &str,
    est: &E,
    tiling: &Tiling,
    out: &mut Vec<Violation>,
) {
    let swept = est.estimate_tiling(tiling);
    if swept.len() != tiling.len() {
        out.push(Violation {
            estimator: name.to_string(),
            law: "estimate_tiling yields one estimate per tile",
            query: tiling.region(),
            got: RelationCounts::new(swept.len() as i64, 0, 0, 0),
            oracle: RelationCounts::new(tiling.len() as i64, 0, 0, 0),
        });
        return;
    }
    for ((_, tile), got) in tiling.iter().zip(&swept) {
        let want = est.estimate(&tile);
        if *got != want {
            out.push(Violation {
                estimator: name.to_string(),
                law: "sweep estimate_tiling = per-tile loop, bit-identical",
                query: tile,
                got: *got,
                oracle: want,
            });
        }
    }
}

/// The S-EulerApprox conditional exactness law (§5.2): when no object
/// contains the query and no object crosses it, Equations 14–17 are exact.
/// Returns a violation if the precondition holds but the estimate differs
/// from the oracle.
pub fn check_s_euler_conditional(
    q: &GridRect,
    got: &RelationCounts,
    oracle: &RelationCounts,
    objects: &[euler_grid::SnappedRect],
    out: &mut Vec<Violation>,
) {
    let precondition = objects
        .iter()
        .all(|o| !o.contains_query(q) && !o.crosses(q));
    if precondition && got != oracle {
        out.push(Violation {
            estimator: "S-EulerApprox".to_string(),
            law: "exact when no containing/crossing object (§5.2)",
            query: *q,
            got: *got,
            oracle: *oracle,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> GridRect {
        GridRect::unchecked(1, 1, 3, 3)
    }

    #[test]
    fn exact_class_flags_any_difference() {
        let oracle = RelationCounts::new(5, 2, 1, 2);
        let mut out = Vec::new();
        check_estimate(
            "NaiveScan",
            ExactnessClass::ExactLevel2,
            &q(),
            &oracle,
            &oracle,
            10,
            &mut out,
        );
        assert!(out.is_empty());
        let off = RelationCounts::new(5, 3, 1, 1);
        check_estimate(
            "NaiveScan",
            ExactnessClass::ExactLevel2,
            &q(),
            &off,
            &oracle,
            10,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].to_string().contains("matches oracle"));
    }

    #[test]
    fn level1_collapse_shape_is_enforced() {
        let oracle = RelationCounts::new(5, 2, 1, 2);
        let collapsed = RelationCounts::new(5, 0, 0, 5);
        let mut out = Vec::new();
        check_estimate(
            "CD",
            ExactnessClass::ExactLevel1,
            &q(),
            &collapsed,
            &oracle,
            10,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // A CD answer leaking a nonzero contains is a violation.
        let leaky = RelationCounts::new(5, 1, 0, 4);
        check_estimate(
            "CD",
            ExactnessClass::ExactLevel1,
            &q(),
            &leaky,
            &oracle,
            10,
            &mut out,
        );
        assert!(!out.is_empty());
    }

    #[test]
    fn euler_family_requires_exact_disjoint() {
        let oracle = RelationCounts::new(5, 2, 1, 2);
        // Approximate split of the intersecting 5 is fine...
        let approx = RelationCounts::new(5, 3, 0, 2);
        let mut out = Vec::new();
        check_estimate(
            "S-EulerApprox",
            ExactnessClass::ApproxLevel2,
            &q(),
            &approx,
            &oracle,
            10,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // ...but a wrong disjoint count is not.
        let wrong = RelationCounts::new(6, 2, 0, 2);
        check_estimate(
            "S-EulerApprox",
            ExactnessClass::ApproxLevel2,
            &q(),
            &wrong,
            &oracle,
            10,
            &mut out,
        );
        assert_eq!(out.len(), 2, "{out:?}"); // sum-to-N + disjoint-exact
    }

    /// A mock whose `estimate_tiling` can be made to disagree with its
    /// per-tile `estimate` — the exact bug class the sweep law exists to
    /// catch.
    struct MockSweep {
        skew_first_tile: bool,
    }

    impl Level2Estimator for MockSweep {
        fn name(&self) -> &'static str {
            "MockSweep"
        }

        fn estimate(&self, _q: &GridRect) -> RelationCounts {
            RelationCounts::new(3, 1, 0, 1)
        }

        fn object_count(&self) -> u64 {
            5
        }

        fn storage_cells(&self) -> u64 {
            0
        }

        fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
            let mut v: Vec<RelationCounts> =
                t.iter().map(|(_, tile)| self.estimate(&tile)).collect();
            if self.skew_first_tile {
                v[0] = RelationCounts::new(2, 2, 0, 1);
            }
            v
        }
    }

    #[test]
    fn sweep_equivalence_accepts_faithful_and_flags_skewed_tilings() {
        let tiling = Tiling::new(GridRect::unchecked(0, 0, 8, 6), 4, 3).unwrap();
        let mut out = Vec::new();
        check_sweep_equivalence(
            "MockSweep",
            &MockSweep {
                skew_first_tile: false,
            },
            &tiling,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        check_sweep_equivalence(
            "MockSweep",
            &MockSweep {
                skew_first_tile: true,
            },
            &tiling,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].law.contains("bit-identical"));
        assert_eq!(out[0].query, tiling.iter().next().unwrap().1);
    }

    #[test]
    fn universal_sum_law_applies_to_everyone() {
        let oracle = RelationCounts::new(5, 2, 1, 2);
        let short = RelationCounts::new(4, 2, 1, 2);
        let mut out = Vec::new();
        check_estimate(
            "Min-skew",
            ExactnessClass::ApproxLevel1,
            &q(),
            &short,
            &oracle,
            10,
            &mut out,
        );
        assert!(out.iter().any(|v| v.law == "counts sum to N"));
    }
}
