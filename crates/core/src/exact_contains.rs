//! The exact structures of §3: histograms that answer Level 2 relation
//! queries *exactly* at grid resolution, at the `O(N²)` storage cost of
//! Theorem 3.1.
//!
//! Objects are discretized to their enclosing grid-line pair per axis:
//! a snapped open extent `(a, b)` becomes `(i, j) = (⌊a⌋, ⌈b⌉)`, the
//! paper's "starts after `i` and ends before `j`" encoding. Because
//! snapped endpoints are non-integer, every Level 2 predicate against an
//! aligned query reduces *losslessly* to inequalities on `(i, j)`:
//!
//! ```text
//! object ⊂ [m, n]        ⇔  m ≤ i  ∧  j ≤ n
//! object ⊃ [m, n]        ⇔  i < m  ∧  n < j
//! object ∩ (m, n) ≠ ∅    ⇔  i < n  ∧  m < j
//! ```
//!
//! so a histogram over `(i, j)` pairs — `n(n+1)/2` effective buckets per
//! axis — answers `contains`, `contained`, `overlap` and `disjoint`
//! exactly. These structures serve as oracles in tests and as the
//! storage-bound exhibits of the `table_storage_bounds` experiment;
//! [`crate::storage`] computes the bounds without allocating.

use euler_cube::{Dense2D, DenseNd, PrefixSum2D, PrefixSumNd};
use euler_grid::{Grid, GridRect, SnappedRect, Tiling};

use crate::sweep::TilingPlan;
use crate::RelationCounts;

/// Exact Level 2 counts for 1-D range data (the §3 construction of
/// Figure 4, with the histogram of all `(i, j)` interval types).
#[derive(Debug, Clone)]
pub struct ExactContains1D {
    n: usize,
    cum: PrefixSum2D,
    size: i64,
}

impl ExactContains1D {
    /// Builds from snapped open intervals `(a, b)` with `0 < a < b < n`
    /// and non-integer endpoints.
    pub fn build(n: usize, objects: &[(f64, f64)]) -> ExactContains1D {
        assert!(n >= 1);
        // H[i][j] = number of objects with (⌊a⌋, ⌈b⌉) = (i, j).
        let mut h = Dense2D::zeros(n + 1, n + 1);
        for &(a, b) in objects {
            assert!(
                a > 0.0 && b < n as f64 && a < b,
                "object ({a}, {b}) must be snapped inside (0, {n})"
            );
            let i = a.floor() as usize;
            let j = b.ceil() as usize;
            h.add(i, j, 1);
        }
        ExactContains1D {
            n,
            cum: PrefixSum2D::build(&h),
            size: objects.len() as i64,
        }
    }

    /// Segment count of the grid.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of objects.
    pub fn size(&self) -> i64 {
        self.size
    }

    /// Exact number of objects contained in the aligned range `[m, k]`.
    pub fn contains(&self, m: usize, k: usize) -> i64 {
        assert!(m < k && k <= self.n);
        self.cum.range_sum(m, m, k, k)
    }

    /// Exact number of objects containing the aligned range `[m, k]`.
    pub fn contained(&self, m: usize, k: usize) -> i64 {
        assert!(m < k && k <= self.n);
        if m == 0 || k == self.n {
            return 0; // nothing extends beyond the snapped data space
        }
        self.cum.range_sum(0, k + 1, m - 1, self.n)
    }

    /// Exact number of objects intersecting the open range `(m, k)`.
    pub fn intersect(&self, m: usize, k: usize) -> i64 {
        assert!(m < k && k <= self.n);
        // i < k  ∧  j > m.
        self.cum
            .range_sum_clipped(0, m as i64 + 1, k as i64 - 1, self.n as i64)
    }

    /// Exact number of overlapping objects (intersect, neither contains
    /// nor contained).
    pub fn overlap(&self, m: usize, k: usize) -> i64 {
        self.intersect(m, k) - self.contains(m, k) - self.contained(m, k)
    }

    /// Effective bucket count `n(n+1)/2` (Theorem 3.1's per-axis bound).
    pub fn effective_buckets(&self) -> u128 {
        (self.n as u128) * (self.n as u128 + 1) / 2
    }

    /// Bucket count `H(i, j)` — the number of objects discretizing to the
    /// interval pair `(i, j)` (tests and [`invert_contains_oracle`]).
    pub fn bucket(&self, i: usize, j: usize) -> i64 {
        assert!(i < j && j <= self.n);
        self.cum.range_sum(i, j, i, j)
    }
}

/// The constructive heart of Theorem 3.1: any oracle answering exact
/// `contains(m, k)` for all aligned ranges determines the **entire**
/// triangular histogram `H(i, j)` — `n(n+1)/2` independent values — via
/// 2-D inclusion–exclusion (the paper's Equation 3). Since the `H(i, j)`
/// are independent, no structure answering `contains` exactly can store
/// fewer values: storage `Ω(N²)`.
///
/// Returns `H` as a vector of `(i, j, count)` with `count > 0`.
pub fn invert_contains_oracle(
    n: usize,
    contains: impl Fn(usize, usize) -> i64,
) -> Vec<(usize, usize, i64)> {
    // contains(m, k) = Σ_{m ≤ i < j ≤ k} H(i, j), with empty ranges = 0.
    let c = |m: i64, k: i64| -> i64 {
        if m < 0 || k > n as i64 || k - m < 1 {
            0
        } else {
            contains(m as usize, k as usize)
        }
    };
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..=n {
            let (im, jm) = (i as i64, j as i64);
            let h = c(im, jm) - c(im + 1, jm) - c(im, jm - 1) + c(im + 1, jm - 1);
            if h != 0 {
                out.push((i, j, h));
            }
        }
    }
    out
}

/// Exact Level 2 counts for 2-D rectangles: the 4-index histogram
/// `H[i][j][k][l]` whose existence (at `O(N²)` storage) Theorem 3.1 proves
/// necessary. Feasible only for modest grids — `storage_bytes` on the
/// paper's 360×180 grid is ≈ 4 GB, which is the paper's point.
#[derive(Debug, Clone)]
pub struct ExactContains2D {
    nx: usize,
    ny: usize,
    cum: PrefixSumNd,
    size: i64,
}

impl ExactContains2D {
    /// Builds from snapped objects over `grid`.
    pub fn build(grid: &Grid, objects: &[SnappedRect]) -> ExactContains2D {
        let (nx, ny) = (grid.nx(), grid.ny());
        let mut h = DenseNd::zeros(&[nx + 1, nx + 1, ny + 1, ny + 1]);
        for o in objects {
            let i = o.a().floor() as usize;
            let j = o.b().ceil() as usize;
            let k = o.c().floor() as usize;
            let l = o.d().ceil() as usize;
            h.add(&[i, j, k, l], 1);
        }
        ExactContains2D {
            nx,
            ny,
            cum: PrefixSumNd::build(&h),
            size: objects.len() as i64,
        }
    }

    /// Number of objects.
    pub fn size(&self) -> i64 {
        self.size
    }

    /// Exact number of objects contained in the query.
    pub fn contains(&self, q: &GridRect) -> i64 {
        self.cum
            .range_sum(&[q.x0, q.x0, q.y0, q.y0], &[q.x1, q.x1, q.y1, q.y1])
    }

    /// Exact number of objects containing the query.
    pub fn contained(&self, q: &GridRect) -> i64 {
        if q.x0 == 0 || q.y0 == 0 || q.x1 == self.nx || q.y1 == self.ny {
            return 0;
        }
        self.cum.range_sum(
            &[0, q.x1 + 1, 0, q.y1 + 1],
            &[q.x0 - 1, self.nx, q.y0 - 1, self.ny],
        )
    }

    /// Exact number of objects intersecting the query's open interior.
    pub fn intersect(&self, q: &GridRect) -> i64 {
        self.cum.range_sum_clipped(
            &[0, q.x0 as i64 + 1, 0, q.y0 as i64 + 1],
            &[
                q.x1 as i64 - 1,
                self.nx as i64,
                q.y1 as i64 - 1,
                self.ny as i64,
            ],
        )
    }

    /// Exact Level 2 relation counts for the query.
    pub fn counts(&self, q: &GridRect) -> RelationCounts {
        let intersect = self.intersect(q);
        let contains = self.contains(q);
        let contained = self.contained(q);
        RelationCounts {
            disjoint: self.size - intersect,
            contains,
            contained,
            overlaps: intersect - contains - contained,
        }
    }

    /// Allocated bucket count `(nx+1)² (ny+1)²` (the dense superset of the
    /// `Θ(N²)` effective buckets).
    pub fn allocated_buckets(&self) -> u128 {
        let x = (self.nx as u128 + 1) * (self.nx as u128 + 1);
        let y = (self.ny as u128 + 1) * (self.ny as u128 + 1);
        x * y
    }
}

/// Signed `(offset, sign)` pairs for one axis pair of a 4-D corner sum:
/// the cartesian product of each axis's `(hi, lo − 1)` prefix choices,
/// resolved to flattened offsets via
/// [`PrefixSumNd::axis_offset_clipped`]. A negative index (the zero
/// guard plane) drops its combinations; an index clamped onto its twin
/// cancels pairwise — together reproducing [`ExactContains2D::counts`]'s
/// boundary guards without per-tile branching.
fn corner_pairs(
    cum: &PrefixSumNd,
    axes: (usize, usize),
    first: [i64; 2],
    second: [i64; 2],
) -> Vec<(usize, i64)> {
    let mut out = Vec::with_capacity(4);
    for (ka, &ia) in first.iter().enumerate() {
        let Some(oa) = cum.axis_offset_clipped(axes.0, ia) else {
            continue;
        };
        for (kb, &ib) in second.iter().enumerate() {
            let Some(ob) = cum.axis_offset_clipped(axes.1, ib) else {
                continue;
            };
            let sign = if (ka + kb) % 2 == 0 { 1 } else { -1 };
            out.push((oa + ob, sign));
        }
    }
    out
}

impl crate::Level2Estimator for ExactContains2D {
    fn name(&self) -> &'static str {
        "Exact-4idx"
    }

    fn estimate(&self, q: &GridRect) -> RelationCounts {
        self.counts(q)
    }

    fn object_count(&self) -> u64 {
        self.size as u64
    }

    fn storage_cells(&self) -> u64 {
        // The dense 4-index cube can exceed u64 on absurd grids; saturate.
        u64::try_from(self.allocated_buckets()).unwrap_or(u64::MAX)
    }

    fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
        // The 4-D sweep: each predicate's 16-corner inclusion–exclusion
        // splits into an x-axis pair (i, j) and a y-axis pair (k, l).
        // Tiles in a column share the x-pair offsets, tiles in a row the
        // y-pair offsets, so the row-major pass precomputes both tables
        // once and evaluates every tile as a fused sum of at most 4×4
        // cube reads with the clamp/stride arithmetic hoisted out.
        struct Tables {
            contains: Vec<(usize, i64)>,
            contained: Vec<(usize, i64)>,
            intersect: Vec<(usize, i64)>,
        }
        let plan = TilingPlan::new(t);
        let cum = &self.cum;
        let (nx, ny) = (self.nx as i64, self.ny as i64);
        let x_tables: Vec<Tables> = plan
            .x_bounds()
            .windows(2)
            .map(|w| {
                let (x0, x1) = (w[0] as i64, w[1] as i64);
                Tables {
                    contains: corner_pairs(cum, (0, 1), [x1, x0 - 1], [x1, x0 - 1]),
                    contained: corner_pairs(cum, (0, 1), [x0 - 1, -1], [nx, x1]),
                    intersect: corner_pairs(cum, (0, 1), [x1 - 1, -1], [nx, x0]),
                }
            })
            .collect();
        let y_tables: Vec<Tables> = plan
            .y_bounds()
            .windows(2)
            .map(|w| {
                let (y0, y1) = (w[0] as i64, w[1] as i64);
                Tables {
                    contains: corner_pairs(cum, (2, 3), [y1, y0 - 1], [y1, y0 - 1]),
                    contained: corner_pairs(cum, (2, 3), [y0 - 1, -1], [ny, y1]),
                    intersect: corner_pairs(cum, (2, 3), [y1 - 1, -1], [ny, y0]),
                }
            })
            .collect();
        let dot = |xs: &[(usize, i64)], ys: &[(usize, i64)]| -> i64 {
            let mut s = 0i64;
            for &(ox, sx) in xs {
                for &(oy, sy) in ys {
                    s += sx * sy * cum.value_at_offset(ox + oy);
                }
            }
            s
        };
        let mut out = Vec::with_capacity(plan.len());
        for yt in &y_tables {
            for xt in &x_tables {
                let intersect = dot(&xt.intersect, &yt.intersect);
                let contains = dot(&xt.contains, &yt.contains);
                let contained = dot(&xt.contained, &yt.contained);
                out.push(RelationCounts {
                    disjoint: self.size - intersect,
                    contains,
                    contained,
                    overlaps: intersect - contains - contained,
                });
            }
        }
        out
    }

    fn supports_sweep(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::count_by_classification;
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Snapper};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn one_dimensional_paper_example() {
        // Figure 4(a): both a shrunk "[1,3)" object and an interior (1,3)
        // object discretize to the pair (1,3): contained in [1,3], but in
        // no smaller aligned range.
        let half_open = (1.0 + 1e-6, 3.0 - 1e-6); // "shrunk" [1,3)
        let open = (1.5, 2.5); // strictly inside (1,3)
        let e = ExactContains1D::build(4, &[half_open, open]);
        assert_eq!(e.contains(1, 3), 2);
        assert_eq!(e.contains(1, 2), 0);
        assert_eq!(e.contains(0, 4), 2);
        assert_eq!(e.intersect(1, 2), 2);
        // Neither snapped object strictly contains the open range (1,2):
        // the shrink rule demotes the paper's "[1,3) contains [1,2]" case
        // to overlap, which is exactly the N_eq-style boundary information
        // the Level 2 model discards.
        assert_eq!(e.contained(1, 2), 0);
        // A genuinely containing object is counted.
        let e2 = ExactContains1D::build(4, &[(0.5, 2.5)]);
        assert_eq!(e2.contained(1, 2), 1);
    }

    #[test]
    fn one_dimensional_counts() {
        let objects = [
            (0.5, 1.5),  // (0,2)
            (1.2, 1.8),  // (1,2)
            (2.1, 3.9),  // (2,4)
            (0.1, 3.95), // (0,4)
        ];
        let e = ExactContains1D::build(4, &objects);
        assert_eq!(e.size(), 4);
        // [0,2] contains objects 1 and 2.
        assert_eq!(e.contains(0, 2), 2);
        // [1,2] contains object 2 only.
        assert_eq!(e.contains(1, 2), 1);
        // Objects containing [1,2]: object 4 (0.1, 3.95). Object 1 ends at
        // 1.5 < 2 → no.
        assert_eq!(e.contained(1, 2), 1);
        // Intersecting (1,2): objects 1, 2, 4.
        assert_eq!(e.intersect(1, 2), 3);
        assert_eq!(e.overlap(1, 2), 3 - 1 - 1);
        // Whole-space queries.
        assert_eq!(e.contains(0, 4), 4);
        assert_eq!(e.contained(0, 4), 0);
        assert_eq!(e.intersect(0, 4), 4);
        // Theorem 3.1 effective buckets for n=4: 10.
        assert_eq!(e.effective_buckets(), 10);
    }

    #[test]
    fn theorem_3_1_inversion_reconstructs_the_histogram() {
        // Build a dataset, expose ONLY its contains oracle, and recover
        // every bucket of the triangular histogram — Equation 3 in code.
        let objects = [
            (0.5, 1.5),
            (1.2, 1.8),
            (1.3, 1.9),
            (2.1, 3.9),
            (0.1, 3.95),
            (3.2, 3.8),
        ];
        let e = ExactContains1D::build(4, &objects);
        let reconstructed = invert_contains_oracle(4, |m, k| e.contains(m, k));
        // Expected buckets from the discretization (floor(a), ceil(b)).
        let mut expected = std::collections::BTreeMap::new();
        for &(a, b) in &objects {
            *expected
                .entry((a.floor() as usize, b.ceil() as usize))
                .or_insert(0i64) += 1;
        }
        let got: std::collections::BTreeMap<(usize, usize), i64> = reconstructed
            .into_iter()
            .map(|(i, j, h)| ((i, j), h))
            .collect();
        assert_eq!(got, expected);
        // Cross-check against direct bucket reads.
        for (&(i, j), &h) in &expected {
            assert_eq!(e.bucket(i, j), h);
        }
    }

    fn grid(nx: usize, ny: usize) -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    #[test]
    fn two_dimensional_matches_brute_force() {
        let g = grid(10, 8);
        let s = Snapper::new(g);
        let mut rng = StdRng::seed_from_u64(42);
        let objs: Vec<SnappedRect> = (0..200)
            .map(|_| {
                let x = rng.gen_range(0.0..9.0);
                let y = rng.gen_range(0.0..7.0);
                let w = rng.gen_range(0.1..6.0);
                let h = rng.gen_range(0.1..5.0);
                s.snap(&Rect::new(x, y, (x + w).min(10.0), (y + h).min(8.0)).unwrap())
            })
            .collect();
        let e = ExactContains2D::build(&g, &objs);
        for qx0 in [0usize, 2, 5] {
            for qy0 in [0usize, 1, 4] {
                for (qw, qh) in [(1, 1), (3, 2), (5, 4), (10, 8)] {
                    let (x1, y1) = ((qx0 + qw).min(10), (qy0 + qh).min(8));
                    if qx0 >= x1 || qy0 >= y1 {
                        continue;
                    }
                    let q = GridRect::unchecked(qx0, qy0, x1, y1);
                    assert_eq!(e.counts(&q), count_by_classification(&objs, &q), "{q}");
                }
            }
        }
    }

    #[test]
    fn storage_is_quadratic_in_cells() {
        let g = grid(10, 8);
        let e = ExactContains2D::build(&g, &[]);
        assert_eq!(e.allocated_buckets(), 121 * 81);
    }

    proptest! {
        /// The 2-D exact structure agrees with per-object classification
        /// on random datasets and queries — it is a true oracle.
        #[test]
        fn oracle_property(seed in 0u64..30,
                           qx in 0usize..9, qy in 0usize..7,
                           qw in 1usize..10, qh in 1usize..8) {
            let g = grid(9, 7);
            let s = Snapper::new(g);
            let mut rng = StdRng::seed_from_u64(seed);
            let objs: Vec<SnappedRect> = (0..60)
                .map(|_| {
                    let x = rng.gen_range(0.0..8.5);
                    let y = rng.gen_range(0.0..6.5);
                    let w = rng.gen_range(0.05..8.0);
                    let h = rng.gen_range(0.05..6.0);
                    s.snap(&Rect::new(x, y, (x + w).min(9.0), (y + h).min(7.0)).unwrap())
                })
                .collect();
            let e = ExactContains2D::build(&g, &objs);
            let q = GridRect::unchecked(qx, qy, (qx + qw).min(9), (qy + qh).min(7));
            prop_assert_eq!(e.counts(&q), count_by_classification(&objs, &q));
        }
    }
}
