//! The interior–exterior intersection model of §4.2: the linear system
//! relating the relation counts `N_d, N_cs, N_cd, N_eq, N_o` to the
//! aggregate intersection tallies `n_ii, n_ie, n_ei, n_ee`.
//!
//! Equation 8 of the paper, entry by entry:
//!
//! ```text
//! n_ii = N_cs + N_cd + N_eq + N_o          (interiors meet)
//! n_ie = N_d  + N_cs + N_o                 (query interior meets object exterior)
//! n_ei = N_d  + N_cd + N_o                 (object interior meets query exterior)
//! n_ee = N_d + N_cs + N_cd + N_eq + N_o = |S|
//! ```
//!
//! With `N_eq = 0` (snapping) this is Equation 10; the solver here inverts
//! it. The estimators feed it measured/approximated tallies — the model
//! itself is exact algebra and is tested against brute-force relation
//! classification.

use crate::RelationCounts;
use euler_grid::{GridRect, SnappedRect};

/// Aggregate interior–exterior tallies for one query (Equation 10's right-
/// hand side, with `n_ee` replaced by the dataset size `|S|`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tallies {
    /// Number of objects whose interior meets the query interior.
    pub n_ii: i64,
    /// Number of objects whose exterior meets the query interior.
    pub n_ie: i64,
    /// Number of objects whose interior meets the query exterior.
    pub n_ei: i64,
    /// Dataset size `|S|`.
    pub size: i64,
}

impl Tallies {
    /// Measures the exact tallies for a query by classifying every object
    /// — the brute-force reference used in tests and small-scale oracles.
    pub fn measure(objects: &[SnappedRect], q: &GridRect) -> Tallies {
        let mut n_ii = 0;
        let mut n_ie = 0;
        let mut n_ei = 0;
        for o in objects {
            let intersects = o.intersects(q);
            let obj_in_query = o.contained_in_query(q);
            let query_in_obj = o.contains_query(q);
            if intersects {
                n_ii += 1;
            }
            // Query interior meets object exterior unless the object
            // contains the query.
            if !query_in_obj {
                n_ie += 1;
            }
            // Object interior meets query exterior unless the object is
            // contained in the query.
            if !obj_in_query {
                n_ei += 1;
            }
        }
        Tallies {
            n_ii,
            n_ie,
            n_ei,
            size: objects.len() as i64,
        }
    }

    /// Solves Equation 10 (the `N_eq = 0` system) for the four relation
    /// counts:
    ///
    /// ```text
    /// N_d  = |S| − n_ii
    /// N_cd = |S| − n_ie
    /// N_cs = |S| − n_ei
    /// N_o  = n_ii + n_ie + n_ei − 2|S|
    /// ```
    pub fn solve(&self) -> RelationCounts {
        let disjoint = self.size - self.n_ii;
        let contained = self.size - self.n_ie;
        let contains = self.size - self.n_ei;
        let overlaps = self.n_ii + self.n_ie + self.n_ei - 2 * self.size;
        RelationCounts {
            disjoint,
            contains,
            contained,
            overlaps,
        }
    }

    /// Solves the reduced Equation 11 (additionally assumes `N_cd = 0`,
    /// S-EulerApprox's assumption):
    ///
    /// ```text
    /// N_d  = |S| − n_ii
    /// N_cs = |S| − n_ei
    /// N_o  = n_ei − N_d
    /// ```
    pub fn solve_assuming_no_contained(&self) -> RelationCounts {
        let disjoint = self.size - self.n_ii;
        let contains = self.size - self.n_ei;
        let overlaps = self.n_ei - disjoint;
        RelationCounts {
            disjoint,
            contains,
            contained: 0,
            overlaps,
        }
    }
}

/// Brute-force Level 2 relation counting by classifying every object —
/// the semantic ground truth for tests (datasets use the difference-array
/// counter in `euler-datagen` instead, which is equivalent but scales).
pub fn count_by_classification(objects: &[SnappedRect], q: &GridRect) -> RelationCounts {
    use euler_geom::Level2Relation as L2;
    let mut c = RelationCounts::default();
    for o in objects {
        match o.level2(q) {
            L2::Disjoint => c.disjoint += 1,
            L2::Contains => c.contains += 1,
            L2::Contained => c.contained += 1,
            L2::Overlap => c.overlaps += 1,
            L2::Equals => unreachable!("snapping eliminates equals"),
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid, Snapper};
    use proptest::prelude::*;

    fn grid() -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, 12.0, 10.0).unwrap()),
            12,
            10,
        )
        .unwrap()
    }

    fn snap_many(rects: &[(f64, f64, f64, f64)]) -> Vec<SnappedRect> {
        let s = Snapper::new(grid());
        rects
            .iter()
            .map(|&(a, b, c, d)| s.snap(&Rect::new(a, b, c, d).unwrap()))
            .collect()
    }

    #[test]
    fn exact_tallies_solve_to_exact_counts() {
        let objs = snap_many(&[
            (1.2, 1.2, 2.8, 2.8),   // small
            (0.5, 0.5, 9.5, 9.5),   // big, contains mid queries
            (3.0, 3.0, 5.0, 5.0),   // aligned, shrinks
            (6.1, 0.2, 6.2, 9.8),   // tall sliver
            (10.1, 8.1, 11.9, 9.9), // corner
        ]);
        for (x0, y0, x1, y1) in [(2, 2, 7, 7), (0, 0, 12, 10), (3, 3, 4, 4), (9, 7, 12, 10)] {
            let q = GridRect::unchecked(x0, y0, x1, y1);
            let solved = Tallies::measure(&objs, &q).solve();
            let brute = count_by_classification(&objs, &q);
            assert_eq!(solved, brute, "query {q}");
        }
    }

    #[test]
    fn reduced_system_matches_when_no_contained() {
        let objs = snap_many(&[(1.2, 1.2, 2.8, 2.8), (5.5, 5.5, 6.5, 6.5)]);
        let q = GridRect::unchecked(0, 0, 8, 8);
        let t = Tallies::measure(&objs, &q);
        assert_eq!(t.solve(), t.solve_assuming_no_contained());
    }

    proptest! {
        /// For any random dataset and aligned query, inverting the
        /// interior-exterior system from exact tallies reproduces the
        /// brute-force relation counts — Equation 10 is consistent.
        #[test]
        fn equation_10_is_invertible(
            objs in prop::collection::vec(
                (0.0..11.0f64, 0.0..9.0f64, 0.1..8.0f64, 0.1..8.0f64), 1..60),
            qx in 0usize..11, qy in 0usize..9,
            qw in 1usize..12, qh in 1usize..10,
        ) {
            let rects: Vec<(f64, f64, f64, f64)> = objs
                .into_iter()
                .map(|(x, y, w, h)| (x, y, (x + w).min(12.0), (y + h).min(10.0)))
                .collect();
            let snapped = snap_many(&rects);
            let q = GridRect::unchecked(qx, qy, (qx + qw).min(12), (qy + qh).min(10));
            let t = Tallies::measure(&snapped, &q);
            let solved = t.solve();
            let brute = count_by_classification(&snapped, &q);
            prop_assert_eq!(solved, brute);
            // Sanity: totals match |S| (Equation 9's n_ee row).
            prop_assert_eq!(solved.total(), snapped.len() as i64);
        }
    }
}
