//! The Euler histogram `H` of §5.1 and its cumulative (frozen) form.
//!
//! ## Layout
//!
//! For a grid with `n` cells along an axis there are `2n − 1` Euler slots:
//! even slot `2i` is cell `i`, odd slot `2i + 1` is the interior grid line
//! `i + 1`. In 2-D a bucket `(ex, ey)` is a *face* (even, even), an *edge*
//! (mixed parity) or a *vertex* (odd, odd). The §5.1 construction
//! increments every vertex/edge/cell whose locus intersects the object's
//! open interior and then negates edge buckets; equivalently, each snapped
//! object covering cells `[cx0, cx1] × [cy0, cy1]` adds
//! `sign(ex, ey) = (−1)^{parity(ex)+parity(ey)}` over the *contiguous*
//! Euler index rectangle `[2cx0, 2cx1] × [2cy0, 2cy1]` — which is why bulk
//! construction is a 2-D difference array (4 updates per object).
//!
//! ## Query algebra (on the frozen form)
//!
//! For an aligned query `q = [qx0, qx1] × [qy0, qy1]` (grid lines):
//!
//! * the buckets strictly *inside* `q` occupy `[2qx0, 2qx1−2] × [2qy0, 2qy1−2]`;
//!   their signed sum is `n_ii`, the exact number of intersecting objects,
//!   because each intersecting region contributes `V_i − E_i + F_i = 1`
//!   (Corollary 4.1);
//! * the buckets *on* the query boundary are the odd slots `2qx0−1` /
//!   `2qx1−1` (and y analogues); the *closed* region
//!   `[2qx0−1, 2qx1−1] × [2qy0−1, 2qy1−1]` therefore separates inside from
//!   outside, and `n'_ei = total − closed_sum` is the §5.3 outside sum,
//!   which misses query-containing objects (the *loophole effect*,
//!   Corollary 4.2 with `k = 2` exterior faces).

use euler_cube::{CompressedPrefix2D, CubeTier, Dense2D, Diff2D, PrefixSum2D};
use euler_grid::{Grid, GridRect, SnappedRect};
use serde::{Deserialize, Serialize};

use crate::EulerSource;

/// Below this projected dense-cube size the freeze heuristic does not
/// even attempt compression: a couple of MiB of prefix rows is already
/// cache-resident and the dense tier's pure loads are unbeatable there.
const COMPRESS_MIN_DENSE_BYTES: usize = 2 << 20;

/// The compressed tier is kept only when it undercuts the dense
/// projection by this factor; the encoder aborts as soon as it can no
/// longer win, so an incompressible freeze pays one early-exit scan,
/// not a full doomed encode.
const COMPRESS_KEEP_DIVISOR: usize = 4;

/// Fine Euler-slot span that folds into coarse slot `s` under one 2×2
/// cell fold: coarse cell `i` is fine cells `{2i, 2i+1}` and coarse grid
/// line `i` is fine grid line `2i`, so an even (cell/face) slot absorbs
/// fine slots `2s..=2s+2` — its two cells plus the interior line — and
/// an odd (line) slot keeps exactly fine slot `2s + 1`. Per axis the
/// signed sum over this span equals the directly built coarse bucket's
/// ±1 indicator, which is what makes [`EulerHistogram::fold2x2`] exact.
#[inline]
fn fold_span(s: usize) -> (usize, usize) {
    if s.is_multiple_of(2) {
        (2 * s, 2 * s + 2)
    } else {
        (2 * s + 1, 2 * s + 1)
    }
}

/// The halved grid of a 2×2 fold, when both dimensions allow one.
fn folded_grid(grid: &Grid) -> Option<Grid> {
    let (nx, ny) = (grid.nx(), grid.ny());
    if nx < 2 || ny < 2 || !nx.is_multiple_of(2) || !ny.is_multiple_of(2) {
        return None;
    }
    Some(Grid::new(*grid.space(), nx / 2, ny / 2).expect("halved dims stay valid"))
}

/// Sign of an Euler bucket: `+1` for faces and vertices, `−1` for edges.
#[inline]
fn bucket_sign(ex: usize, ey: usize) -> i64 {
    if (ex + ey).is_multiple_of(2) {
        1
    } else {
        -1
    }
}

/// A mutable Euler histogram. Supports bulk construction, incremental
/// insertion and removal; freeze it into a [`FrozenEulerHistogram`] for
/// constant-time queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EulerHistogram {
    grid: Grid,
    buckets: Dense2D,
    object_count: u64,
}

impl EulerHistogram {
    /// An empty histogram over `grid`.
    pub fn new(grid: Grid) -> EulerHistogram {
        let (ew, eh) = grid.euler_dims();
        EulerHistogram {
            grid,
            buckets: Dense2D::zeros(ew, eh),
            object_count: 0,
        }
    }

    /// Reassembles a histogram from its stored parts (used by the binary
    /// codec in [`crate::persist`]). The caller guarantees the bucket
    /// array matches the grid's Euler dimensions.
    pub(crate) fn from_parts(grid: Grid, buckets: Dense2D, object_count: u64) -> EulerHistogram {
        debug_assert_eq!(
            (buckets.width(), buckets.height()),
            grid.euler_dims(),
            "bucket array shape"
        );
        EulerHistogram {
            grid,
            buckets,
            object_count,
        }
    }

    /// Bulk-builds the histogram from snapped objects using a difference
    /// array: `O(|S| + buckets)` regardless of object sizes.
    pub fn build(grid: Grid, objects: &[SnappedRect]) -> EulerHistogram {
        let (ew, eh) = grid.euler_dims();
        let mut diff = Diff2D::zeros(ew, eh);
        for o in objects {
            let (ex0, ex1) = (2 * o.cx0(), 2 * o.cx1());
            let (ey0, ey1) = (2 * o.cy0(), 2 * o.cy1());
            diff.add_rect(ex0, ey0, ex1, ey1, 1);
        }
        let mut buckets = diff.build();
        // Apply the §5.1 edge negation (and vertex/face signs) once.
        buckets.map_in_place(|x, y, v| v * bucket_sign(x, y));
        EulerHistogram {
            grid,
            buckets,
            object_count: objects.len() as u64,
        }
    }

    /// The grid this histogram summarizes.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of objects inserted.
    #[inline]
    pub fn object_count(&self) -> u64 {
        self.object_count
    }

    /// Inserts one object: `O(footprint)` bucket updates.
    pub fn insert(&mut self, o: &SnappedRect) {
        self.apply(o, 1);
        self.object_count += 1;
    }

    /// Removes one previously inserted object. The histogram is a linear
    /// sketch, so removal is exact; the caller is responsible for only
    /// removing objects that were inserted.
    pub fn remove(&mut self, o: &SnappedRect) {
        assert!(self.object_count > 0, "remove from empty histogram");
        self.apply(o, -1);
        self.object_count -= 1;
    }

    fn apply(&mut self, o: &SnappedRect, delta: i64) {
        for ey in 2 * o.cy0()..=2 * o.cy1() {
            for ex in 2 * o.cx0()..=2 * o.cx1() {
                self.buckets.add(ex, ey, delta * bucket_sign(ex, ey));
            }
        }
    }

    /// Folds a batch of signed footprints (`+1` insert, `−1` delete) into
    /// the histogram via one difference array: `O(|ops| + buckets)`
    /// regardless of object sizes, the refreeze fold of the epoch-snapshot
    /// substrate ([`crate::snapshot`]).
    ///
    /// Equivalent to the matching sequence of [`insert`] / [`remove`]
    /// calls. The net count must not drive the object count negative.
    ///
    /// [`insert`]: EulerHistogram::insert
    /// [`remove`]: EulerHistogram::remove
    pub fn apply_signed_batch<'a, I>(&mut self, ops: I)
    where
        I: IntoIterator<Item = (&'a SnappedRect, i64)>,
    {
        let (ew, eh) = self.grid.euler_dims();
        let mut diff = Diff2D::zeros(ew, eh);
        let mut net = 0i64;
        for (o, sign) in ops {
            let (ex0, ex1) = (2 * o.cx0(), 2 * o.cx1());
            let (ey0, ey1) = (2 * o.cy0(), 2 * o.cy1());
            diff.add_rect(ex0, ey0, ex1, ey1, sign);
            net += sign;
        }
        let built = diff.build();
        for ey in 0..eh {
            for ex in 0..ew {
                let v = built.get(ex, ey);
                if v != 0 {
                    self.buckets.add(ex, ey, v * bucket_sign(ex, ey));
                }
            }
        }
        let count = self.object_count as i64 + net;
        assert!(count >= 0, "signed batch drives object count negative");
        self.object_count = count as u64;
    }

    /// Signed bucket value at Euler index `(ex, ey)` (for tests and the
    /// worked examples of Figures 6–10).
    #[inline]
    pub fn bucket(&self, ex: usize, ey: usize) -> i64 {
        self.buckets.get(ex, ey)
    }

    /// Bytes of storage held by the bucket array.
    pub fn storage_bytes(&self) -> usize {
        self.buckets.storage_bytes()
    }

    /// Builds the cumulative (prefix-sum) form for constant-time queries,
    /// picking a storage tier by the size heuristic: small cubes freeze
    /// dense unconditionally; past [`COMPRESS_MIN_DENSE_BYTES`] the
    /// run-compressed tier is tried first (straight from the buckets, so
    /// the dense cube is never allocated) and kept only when it beats
    /// the dense projection by [`COMPRESS_KEEP_DIVISOR`]×. Both tiers
    /// answer bit-identically, and the choice is deterministic in the
    /// bucket contents — freezing equal histograms yields equal frozen
    /// values.
    pub fn freeze(&self) -> FrozenEulerHistogram {
        let dense_bytes = PrefixSum2D::projected_bytes(self.buckets.width(), self.buckets.height());
        if dense_bytes >= COMPRESS_MIN_DENSE_BYTES {
            if let Some(c) =
                CompressedPrefix2D::build_capped(&self.buckets, dense_bytes / COMPRESS_KEEP_DIVISOR)
            {
                return self.frozen_with(CubeTier::Compressed(c));
            }
        }
        self.freeze_dense()
    }

    /// Freezes onto the dense tier unconditionally — the reference side
    /// of the compressed-tier law, and the right call when the caller
    /// knows the cube stays hot (benchmarks, tiny grids).
    pub fn freeze_dense(&self) -> FrozenEulerHistogram {
        self.frozen_with(CubeTier::Dense(PrefixSum2D::build(&self.buckets)))
    }

    /// Freezes onto the compressed tier unconditionally, regardless of
    /// whether it wins — the differential side of the compressed-tier
    /// law and the footprint axis of the `hugegrid` bench.
    pub fn freeze_compressed(&self) -> FrozenEulerHistogram {
        self.frozen_with(CubeTier::Compressed(CompressedPrefix2D::build(
            &self.buckets,
        )))
    }

    fn frozen_with(&self, cum: CubeTier) -> FrozenEulerHistogram {
        FrozenEulerHistogram {
            grid: self.grid,
            cum,
            object_count: self.object_count,
        }
    }

    /// Folds this histogram onto the half-resolution grid — the pyramid
    /// builds coarse levels from fine ones with this instead of
    /// re-ingesting objects. Each coarse bucket is the signed sum of its
    /// [`fold_span`] fine slots, which equals the bucket a direct build
    /// at the coarse grid would produce (the per-axis span sums are
    /// exactly the coarse ±1 coverage indicators). `None` when either
    /// dimension is odd or below 2.
    pub fn fold2x2(&self) -> Option<EulerHistogram> {
        let grid = folded_grid(&self.grid)?;
        let (ew, eh) = grid.euler_dims();
        let mut buckets = Dense2D::zeros(ew, eh);
        buckets.map_in_place(|ex, ey, _| {
            let (x0, x1) = fold_span(ex);
            let (y0, y1) = fold_span(ey);
            self.buckets.range_sum_naive(x0, y0, x1, y1)
        });
        Some(EulerHistogram {
            grid,
            buckets,
            object_count: self.object_count,
        })
    }
}

/// The cumulative Euler histogram `H_c` of §5.2: all estimator quantities
/// are O(1) signed range sums on this structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrozenEulerHistogram {
    grid: Grid,
    cum: CubeTier,
    object_count: u64,
}

impl FrozenEulerHistogram {
    /// The grid this histogram summarizes.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of objects summarized (`|S|`).
    #[inline]
    pub fn object_count(&self) -> u64 {
        self.object_count
    }

    /// Signed sum over a clipped Euler-index rectangle (`ex0 ≤ ex1`,
    /// `ey0 ≤ ey1`; bounds may hang off the bucket array on any side).
    ///
    /// Evaluated as the four-corner combination of
    /// [`PrefixSum2D::prefix_clipped`] — the one shared, inlined clamp —
    /// instead of re-deriving per-call window clamps: boundary-touching
    /// regions (e.g. a closed region whose upper index is the
    /// out-of-range `2n − 1`) clamp high losslessly because the prefix
    /// function is constant past the last bucket row/column.
    #[inline]
    pub fn signed_sum(&self, ex0: i64, ey0: i64, ex1: i64, ey1: i64) -> i64 {
        debug_assert!(ex0 <= ex1 && ey0 <= ey1);
        self.cum.prefix_clipped(ex1, ey1)
            - self.cum.prefix_clipped(ex0 - 1, ey1)
            - self.cum.prefix_clipped(ex1, ey0 - 1)
            + self.cum.prefix_clipped(ex0 - 1, ey0 - 1)
    }

    /// The underlying prefix-sum cube tier, for the sweep kernels in
    /// [`crate::sweep`] that materialize whole strips of clipped
    /// prefixes (dense rows or compressed run walks, per variant).
    #[inline]
    pub(crate) fn cum(&self) -> &CubeTier {
        &self.cum
    }

    /// True when the freeze heuristic (or a forced
    /// [`EulerHistogram::freeze_compressed`]) put this histogram on the
    /// run-compressed cube tier.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        self.cum.is_compressed()
    }

    /// Bytes of storage held by the cube on its current tier.
    pub fn storage_bytes(&self) -> usize {
        self.cum.storage_bytes()
    }

    /// Folds onto the half-resolution grid without the bucket array:
    /// each coarse bucket's [`fold_span`] window is contiguous per axis,
    /// so it is **one** clipped range sum on the cube — this works on
    /// either tier and is how the pyramid derives a coarser level from
    /// an already-frozen finer one. Returns the mutable coarse
    /// histogram (freeze it to serve); `None` when either dimension is
    /// odd or below 2.
    pub fn fold2x2(&self) -> Option<EulerHistogram> {
        let grid = folded_grid(&self.grid)?;
        let (ew, eh) = grid.euler_dims();
        let mut buckets = Dense2D::zeros(ew, eh);
        buckets.map_in_place(|ex, ey, _| {
            let (x0, x1) = fold_span(ex);
            let (y0, y1) = fold_span(ey);
            self.cum
                .range_sum_clipped(x0 as i64, y0 as i64, x1 as i64, y1 as i64)
        });
        Some(EulerHistogram {
            grid,
            buckets,
            object_count: self.object_count,
        })
    }

    /// Both per-query estimator sums — the inside sum (`n_ii`) and the
    /// closed sum — in one batched kernel call:
    /// [`PrefixSum2D::range_sum_pair`] lane-clips the four x and four y
    /// corner planes of the two Euler windows together and gathers the
    /// eight prefixes with no redundant work. Bit-identical to
    /// [`Self::inside_sum`] + [`Self::closed_sum`].
    #[inline]
    pub fn inside_closed_sums(&self, q: &GridRect) -> (i64, i64) {
        debug_assert!(q.x0 < q.x1 && q.y0 < q.y1);
        let (x0, y0) = (q.x0 as i64, q.y0 as i64);
        let (x1, y1) = (q.x1 as i64, q.y1 as i64);
        self.cum.range_sum_pair(
            (2 * x0, 2 * y0, 2 * x1 - 2, 2 * y1 - 2),
            (2 * x0 - 1, 2 * y0 - 1, 2 * x1 - 1, 2 * y1 - 1),
        )
    }

    /// Sum of all buckets; equals `|S|` (every object's full footprint has
    /// Euler characteristic 1).
    #[inline]
    pub fn total(&self) -> i64 {
        self.cum.total()
    }

    /// `n_ii` — the exact number of objects whose interior intersects the
    /// open query (Equation 12 / \[BT98\]): signed sum of the buckets
    /// strictly inside the query.
    #[inline]
    pub fn intersect_count(&self, q: &GridRect) -> i64 {
        self.inside_sum(q.x0, q.y0, q.x1, q.y1)
    }

    /// Signed sum of buckets strictly inside the aligned region
    /// `[x0, x1] × [y0, y1]` (grid-line coordinates). Used directly for
    /// `n_ii` and for Region A of EulerApprox.
    #[inline]
    pub fn inside_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 < x1 && y0 < y1);
        self.signed_sum(
            2 * x0 as i64,
            2 * y0 as i64,
            2 * x1 as i64 - 2,
            2 * y1 as i64 - 2,
        )
    }

    /// Signed sum of the *closed* Euler region of an aligned region: the
    /// inside buckets plus the buckets on its boundary grid lines.
    ///
    /// For a full-width (or full-height) slab this equals the number of
    /// objects *contained* in the slab — the quantity `N_cs(B)` of §5.3 —
    /// because a slab admits neither crossover nor containing objects.
    #[inline]
    pub fn closed_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 < x1 && y0 < y1);
        self.signed_sum(
            2 * x0 as i64 - 1,
            2 * y0 as i64 - 1,
            2 * x1 as i64 - 1,
            2 * y1 as i64 - 1,
        )
    }

    /// `n'_ei` — Equation 15/19: the signed sum of all buckets strictly
    /// *outside* the query. Equals `N_d + N_o` plus crossover error; query-
    /// containing objects are invisible here (the loophole effect of §5.3).
    #[inline]
    pub fn outside_sum(&self, q: &GridRect) -> i64 {
        self.total() - self.closed_sum(q.x0, q.y0, q.x1, q.y1)
    }
}

impl EulerSource for FrozenEulerHistogram {
    fn grid(&self) -> &Grid {
        FrozenEulerHistogram::grid(self)
    }
    fn object_count(&self) -> u64 {
        FrozenEulerHistogram::object_count(self)
    }
    fn inside_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        FrozenEulerHistogram::inside_sum(self, x0, y0, x1, y1)
    }
    fn closed_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        FrozenEulerHistogram::closed_sum(self, x0, y0, x1, y1)
    }
    fn total(&self) -> i64 {
        FrozenEulerHistogram::total(self)
    }
    fn intersect_count(&self, q: &GridRect) -> i64 {
        FrozenEulerHistogram::intersect_count(self, q)
    }
    fn outside_sum(&self, q: &GridRect) -> i64 {
        FrozenEulerHistogram::outside_sum(self, q)
    }
    fn as_frozen(&self) -> Option<&FrozenEulerHistogram> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Snapper};

    fn grid(nx: usize, ny: usize) -> Grid {
        // 1 data unit = 1 cell, for readable coordinates.
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    fn snap(g: &Grid, xlo: f64, ylo: f64, xhi: f64, yhi: f64) -> SnappedRect {
        Snapper::new(*g).snap(&Rect::new(xlo, ylo, xhi, yhi).unwrap())
    }

    fn q(x0: usize, y0: usize, x1: usize, y1: usize) -> GridRect {
        GridRect::unchecked(x0, y0, x1, y1)
    }

    #[test]
    fn empty_histogram_is_zero() {
        let g = grid(4, 4);
        let h = EulerHistogram::new(g).freeze();
        assert_eq!(h.total(), 0);
        assert_eq!(h.intersect_count(&q(0, 0, 4, 4)), 0);
    }

    #[test]
    fn single_cell_object_histogram_shape() {
        // Figure 6(c)/(d) right case: an object inside one cell touches
        // only that cell's face bucket.
        let g = grid(3, 3);
        let o = snap(&g, 1.2, 1.2, 1.8, 1.8);
        let mut h = EulerHistogram::new(g);
        h.insert(&o);
        for ey in 0..5 {
            for ex in 0..5 {
                let expect = if ex == 2 && ey == 2 { 1 } else { 0 };
                assert_eq!(h.bucket(ex, ey), expect, "bucket ({ex},{ey})");
            }
        }
        assert_eq!(h.freeze().total(), 1);
    }

    #[test]
    fn spanning_object_histogram_shape() {
        // Figure 6: an object spanning 2x2 cells covers 4 faces, 4 edges
        // (negated) and 1 vertex.
        let g = grid(3, 3);
        let o = snap(&g, 0.5, 0.5, 1.5, 1.5); // spans cells (0,0)..(1,1)
        let mut h = EulerHistogram::new(g);
        h.insert(&o);
        let expected = [
            // (ex, ey, value): faces +1 at (0,0),(2,0),(0,2),(2,2);
            // edges -1 at (1,0),(0,1),(2,1),(1,2); vertex +1 at (1,1).
            (0, 0, 1),
            (2, 0, 1),
            (0, 2, 1),
            (2, 2, 1),
            (1, 0, -1),
            (0, 1, -1),
            (2, 1, -1),
            (1, 2, -1),
            (1, 1, 1),
        ];
        let mut sum = 0;
        for (ex, ey, v) in expected {
            assert_eq!(h.bucket(ex, ey), v, "bucket ({ex},{ey})");
            sum += v;
        }
        assert_eq!(sum, 1, "footprint Euler characteristic");
    }

    #[test]
    fn bulk_equals_incremental() {
        let g = grid(8, 6);
        let objs = vec![
            snap(&g, 0.3, 0.3, 2.7, 1.9),
            snap(&g, 4.0, 2.0, 7.0, 5.0), // aligned, will shrink
            snap(&g, 1.5, 1.5, 1.5, 1.5), // point
            snap(&g, 0.1, 5.2, 7.9, 5.8), // wide bar
        ];
        let bulk = EulerHistogram::build(g, &objs);
        let mut inc = EulerHistogram::new(g);
        for o in &objs {
            inc.insert(o);
        }
        assert_eq!(bulk, inc);
        assert_eq!(bulk.object_count(), 4);
        assert_eq!(bulk.freeze().total(), 4);
    }

    #[test]
    fn remove_restores_previous_state() {
        let g = grid(8, 6);
        let a = snap(&g, 0.3, 0.3, 2.7, 1.9);
        let b = snap(&g, 4.2, 2.2, 6.8, 4.8);
        let mut h = EulerHistogram::new(g);
        h.insert(&a);
        let snapshot = h.clone();
        h.insert(&b);
        h.remove(&b);
        assert_eq!(h, snapshot);
    }

    #[test]
    fn intersect_count_figure_7() {
        // Figure 7: two objects, query covering part of the grid; both
        // intersect the query.
        let g = grid(4, 3);
        // Object 1 overlaps the query's top-left; object 2 crosses the
        // query's right column.
        let o1 = snap(&g, 0.5, 1.5, 1.5, 2.5);
        let o2 = snap(&g, 2.3, 0.5, 2.7, 2.5);
        let h = EulerHistogram::build(g, &[o1, o2]).freeze();
        let query = q(0, 0, 3, 3);
        assert_eq!(h.intersect_count(&query), 2);
        // And a query that misses both.
        assert_eq!(h.intersect_count(&q(3, 0, 4, 1)), 0);
    }

    #[test]
    fn intersect_count_is_exact_vs_classification() {
        let g = grid(10, 8);
        let objs: Vec<SnappedRect> = (0..40)
            .map(|i| {
                let x = (i * 7 % 50) as f64 / 5.0;
                let y = (i * 13 % 40) as f64 / 5.0;
                snap(&g, x, y, (x + 1.7).min(10.0), (y + 2.3).min(8.0))
            })
            .collect();
        let h = EulerHistogram::build(g, &objs).freeze();
        for (qx, qy, qw, qh) in [(0, 0, 10, 8), (2, 1, 3, 4), (5, 5, 2, 2), (0, 0, 1, 1)] {
            let query = q(qx, qy, qx + qw, qy + qh);
            let expect = objs.iter().filter(|o| o.intersects(&query)).count() as i64;
            assert_eq!(h.intersect_count(&query), expect, "query {query}");
        }
    }

    #[test]
    fn outside_sum_counts_disjoint_plus_overlap() {
        // Figure 9(a): an object overlapping the query from outside
        // contributes 1 to the outside sum.
        let g = grid(4, 4);
        let o = snap(&g, 0.5, 0.5, 2.5, 2.5);
        let h = EulerHistogram::build(g, &[o]).freeze();
        let query = q(0, 0, 2, 2);
        assert_eq!(h.outside_sum(&query), 1);
        // Fully contained object: invisible outside.
        let inner = snap(&g, 0.3, 0.3, 1.7, 1.7);
        let h2 = EulerHistogram::build(g, &[inner]).freeze();
        assert_eq!(h2.outside_sum(&query), 0);
    }

    #[test]
    fn loophole_effect_figure_10() {
        // An object that CONTAINS the query vanishes from the outside sum:
        // its intersection with the query exterior is an annulus, whose
        // Euler characteristic is 0 (Corollary 4.2, k = 2).
        let g = grid(6, 6);
        let big = snap(&g, 0.5, 0.5, 5.5, 5.5);
        let h = EulerHistogram::build(g, &[big]).freeze();
        let query = q(2, 2, 4, 4);
        assert!(big.contains_query(&query));
        assert_eq!(h.intersect_count(&query), 1);
        assert_eq!(
            h.outside_sum(&query),
            0,
            "loophole: containing object unseen"
        );
    }

    #[test]
    fn crossover_double_counts_in_outside_sum() {
        // Figure 9(b): a crossover object splits into two exterior
        // components and is counted twice by the outside sum.
        let g = grid(6, 6);
        let bar = snap(&g, 0.5, 2.3, 5.5, 3.7); // crosses the middle
        let h = EulerHistogram::build(g, &[bar]).freeze();
        let query = q(2, 0, 4, 6); // vertical slab query
        assert!(bar.crosses(&query));
        assert_eq!(h.outside_sum(&query), 2);
    }

    #[test]
    fn closed_sum_of_slab_counts_contained_objects() {
        let g = grid(6, 6);
        let objs = vec![
            snap(&g, 0.5, 4.2, 2.5, 5.5), // inside top slab y in (4,6)
            snap(&g, 3.0, 4.5, 5.5, 5.9), // inside top slab
            snap(&g, 1.0, 3.2, 2.0, 4.8), // straddles y = 4
            snap(&g, 1.0, 0.5, 2.0, 2.5), // below
        ];
        let h = EulerHistogram::build(g, &objs).freeze();
        // Top slab [0,6] x [4,6].
        assert_eq!(h.closed_sum(0, 4, 6, 6), 2);
        // Whole space contains everything.
        assert_eq!(h.closed_sum(0, 0, 6, 6), 4);
    }

    #[test]
    fn signed_sum_matches_bucket_reference_on_2n_minus_1_boundary() {
        // Regression for the shared clamp helper: closed regions of
        // queries reaching the data-space edge ask for Euler index
        // 2n − 1, one past the last bucket (2n − 2). The clamped corner
        // lookups must agree with a naive clipped bucket scan on every
        // such window, and outside_sum must stay loophole-consistent.
        let g = grid(5, 5);
        let (ew, eh) = (9usize, 9usize);
        let objs = vec![
            snap(&g, 0.0, 0.0, 5.0, 5.0), // full-space object
            snap(&g, 0.2, 0.2, 4.9, 4.9),
            snap(&g, 3.1, 3.1, 5.0, 5.0), // touches the far corner
            snap(&g, 0.0, 2.1, 5.0, 2.9), // full-width bar
        ];
        let unfrozen = EulerHistogram::build(g, &objs);
        let h = unfrozen.freeze();
        let naive = |ex0: i64, ey0: i64, ex1: i64, ey1: i64| -> i64 {
            let mut s = 0;
            for ey in ey0.max(0)..=ey1.min(eh as i64 - 1) {
                for ex in ex0.max(0)..=ex1.min(ew as i64 - 1) {
                    s += unfrozen.bucket(ex as usize, ey as usize);
                }
            }
            s
        };
        // Closed regions of boundary-touching queries: upper index 2n−1.
        for (x0, y0, x1, y1) in [(0, 0, 5, 5), (2, 2, 5, 5), (4, 0, 5, 5), (0, 4, 5, 5)] {
            let (ex0, ey0) = (2 * x0 - 1, 2 * y0 - 1);
            let (ex1, ey1) = (2 * x1 - 1, 2 * y1 - 1);
            assert_eq!(ex1.max(ey1), 9, "window must reach index 2n-1");
            assert_eq!(
                h.signed_sum(ex0, ey0, ex1, ey1),
                naive(ex0, ey0, ex1, ey1),
                "closed window of [{x0},{x1}]x[{y0},{y1}]"
            );
            let query = q(x0 as usize, y0 as usize, x1 as usize, y1 as usize);
            assert_eq!(
                h.outside_sum(&query),
                h.total() - naive(ex0, ey0, ex1, ey1),
                "outside sum of {query}"
            );
        }
        // Windows hanging off both sides at once clamp to the full array.
        assert_eq!(h.signed_sum(-3, -3, 20, 20), h.total());
    }

    fn dataset(g: &Grid, n: usize) -> Vec<SnappedRect> {
        (0..n)
            .map(|i| {
                let x = (i * 7 % 50) as f64 / 5.0 % g.nx() as f64;
                let y = (i * 13 % 40) as f64 / 5.0 % g.ny() as f64;
                snap(
                    g,
                    x,
                    y,
                    (x + 1.7).min(g.nx() as f64),
                    (y + 2.3).min(g.ny() as f64),
                )
            })
            .collect()
    }

    #[test]
    fn compressed_tier_answers_bit_identically() {
        let g = grid(10, 8);
        let hist = EulerHistogram::build(g, &dataset(&g, 40));
        let dense = hist.freeze_dense();
        let comp = hist.freeze_compressed();
        assert!(!dense.is_compressed());
        assert!(comp.is_compressed());
        assert_eq!(dense.total(), comp.total());
        for qx0 in 0..10 {
            for qy0 in 0..8 {
                for qx1 in qx0 + 1..=10 {
                    for qy1 in qy0 + 1..=8 {
                        let query = q(qx0, qy0, qx1, qy1);
                        assert_eq!(
                            dense.intersect_count(&query),
                            comp.intersect_count(&query),
                            "n_ii at {query}"
                        );
                        assert_eq!(
                            dense.inside_closed_sums(&query),
                            comp.inside_closed_sums(&query),
                            "pair at {query}"
                        );
                        assert_eq!(
                            dense.outside_sum(&query),
                            comp.outside_sum(&query),
                            "outside at {query}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn freeze_heuristic_stays_dense_on_small_grids() {
        // The paper grid's cube is well under the compression floor.
        let g = grid(10, 8);
        assert!(!EulerHistogram::build(g, &dataset(&g, 40))
            .freeze()
            .is_compressed());
    }

    #[test]
    fn fold2x2_equals_direct_coarse_build() {
        let g = grid(12, 8);
        let objs = dataset(&g, 60);
        let fine = EulerHistogram::build(g, &objs);
        // Coarsened spans: a fine snapped object occupying cells
        // [cx0, cx1] occupies coarse cells [cx0/2, cx1/2].
        let coarse_objs: Vec<SnappedRect> = objs.iter().map(|o| o.coarsen(2)).collect();
        let coarse_grid = Grid::new(*g.space(), 6, 4).unwrap();
        let direct = EulerHistogram::build(coarse_grid, &coarse_objs);
        let folded = fine.fold2x2().expect("even dims fold");
        assert_eq!(folded, direct, "mutable fold == direct build");
        // The frozen fold (range sums on the cube) agrees, on both tiers.
        assert_eq!(fine.freeze_dense().fold2x2().unwrap(), direct);
        assert_eq!(fine.freeze_compressed().fold2x2().unwrap(), direct);
        // Chained fold reaches the quarter grid.
        let folded2 = folded.fold2x2().expect("still even");
        let direct2 = EulerHistogram::build(
            Grid::new(*g.space(), 3, 2).unwrap(),
            &objs.iter().map(|o| o.coarsen(4)).collect::<Vec<_>>(),
        );
        assert_eq!(folded2, direct2);
        // Odd dimensions refuse to fold.
        assert!(direct2.fold2x2().is_none());
    }

    #[test]
    fn boundary_touching_queries_clip_safely() {
        let g = grid(5, 5);
        let o = snap(&g, 1.2, 1.2, 3.8, 3.8);
        let h = EulerHistogram::build(g, &[o]).freeze();
        for query in [q(0, 0, 5, 5), q(0, 0, 1, 1), q(4, 4, 5, 5), q(0, 2, 5, 3)] {
            let n_ii = h.intersect_count(&query);
            let expect = i64::from(o.intersects(&query));
            assert_eq!(n_ii, expect, "query {query}");
        }
        assert_eq!(h.outside_sum(&q(0, 0, 5, 5)), 0);
    }
}
