//! **euler-core** — the primary contribution of *Exploring Spatial Datasets
//! with Histograms* (Sun, Agrawal, El Abbadi — ICDE 2002).
//!
//! Given a gridded data space, the crate builds an **Euler histogram**
//! ([`EulerHistogram`]): one bucket per vertex, edge and cell of the grid
//! (`(2n₁−1)(2n₂−1)` buckets), with edge buckets negated so that, by
//! Euler's formula, every object–region intersection contributes exactly
//! `+1` to any signed bucket sum (§5.1). On top of the histogram sit three
//! constant-time estimators for the **Level 2 spatial relations**
//! `disjoint / contains / contained / overlap`:
//!
//! * [`SEulerApprox`] — assumes `N_cd = 0` (Equation 11; §5.2), ideal for
//!   datasets of small objects;
//! * [`EulerApprox`] — additionally estimates `N_cd` by offsetting the
//!   *loophole effect* with the Region A/B construction of Figure 11
//!   (§5.3);
//! * [`MEulerApprox`] — partitions objects by area into `m` histograms and
//!   dispatches per query size (§5.4), trading storage for accuracy.
//!
//! The crate also contains:
//!
//! * [`RelationCounts`] and the interior–exterior equation solver of §4.2
//!   ([`model`]);
//! * Euler-characteristic utilities verifying Corollaries 4.1/4.2
//!   ([`formula`]);
//! * the **exact** `contains` structures of §3 ([`ExactContains1D`],
//!   [`ExactContains2D`]) realizing the `O(N²)` storage lower bound of
//!   Theorem 3.1, plus storage-bound calculators ([`storage`]).
//!
//! ## Quick example
//!
//! ```
//! use euler_core::{EulerHistogram, Level2Estimator, SEulerApprox};
//! use euler_grid::{DataSpace, Grid, GridRect, Snapper};
//! use euler_geom::Rect;
//!
//! let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
//! let snapper = Snapper::new(grid);
//! let objects: Vec<_> = (0..10)
//!     .map(|i| {
//!         let x = 20.0 + 30.0 * i as f64;
//!         snapper.snap(&Rect::new(x, 40.0, x + 5.0, 45.0).unwrap())
//!     })
//!     .collect();
//! let hist = EulerHistogram::build(grid, &objects).freeze();
//! let est = SEulerApprox::new(hist);
//! let q = GridRect::new(0, 0, 18, 9, &grid).unwrap();
//! let counts = est.estimate(&q);
//! assert_eq!(counts.contains + counts.overlaps + counts.disjoint, 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dynamic;
mod estimator;
mod euler_approx;
mod exact_contains;
pub mod formula;
mod histogram;
mod m_euler;
pub mod model;
mod ndim_hist;
pub mod persist;
mod s_euler;
pub mod snapshot;
mod source;
pub mod storage;
pub mod sweep;

pub use dynamic::DynamicEulerHistogram;
pub use estimator::{Level2Estimator, RelationCounts};
pub use euler_approx::{EulerApprox, RegionSplit};
pub use exact_contains::{invert_contains_oracle, ExactContains1D, ExactContains2D};
pub use histogram::{EulerHistogram, FrozenEulerHistogram};
pub use m_euler::{MEulerApprox, TuneReport};
pub use ndim_hist::{BoxQuery, EulerHistogramNd, FrozenEulerHistogramNd, SEulerApproxNd};
pub use s_euler::SEulerApprox;
pub use snapshot::{CheckpointImage, DeltaOp, LiveEulerHistogram, LiveSEuler, LiveSnapshot};
pub use source::{s_euler_counts, EulerSource};
pub use sweep::TilingPlan;
