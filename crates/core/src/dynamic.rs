//! The dynamic Euler histogram: Level 2 browsing queries stay available
//! **while** objects stream in and out, with no refreeze.
//!
//! The static pipeline (mutable [`crate::EulerHistogram`] →
//! [`crate::EulerHistogram::freeze`] → O(1) queries) pays O(buckets) per
//! snapshot, which a write-heavy service amortizes awkwardly. This
//! structure instead keeps the signed bucket array in **four
//! range-update/range-query Fenwick trees** — one per Euler index parity
//! class (faces, vertical edges, horizontal edges, vertices). An object's
//! footprint is a constant ±1 over a contiguous Euler rectangle, i.e. one
//! clipped rectangle-add per class, so:
//!
//! * insert / remove: `O(log² n)`;
//! * any signed region sum (hence every estimator quantity): `O(log² n)`.
//!
//! This realizes, for Euler histograms, the update-efficient-cube
//! trade-off the paper points to in §2 (\[GRAE99\], \[RAE00\]): the
//! static cube is faster to read, the dynamic one never blocks on
//! rebuilds. `benches/dynamic_updates.rs` measures the crossover.

use euler_cube::RangeFenwick2D;
use euler_grid::{Grid, GridRect, SnappedRect};

use crate::EulerSource;

/// A dynamic (incrementally updatable) Euler histogram.
#[derive(Debug, Clone)]
pub struct DynamicEulerHistogram {
    grid: Grid,
    /// Parity classes indexed by `(px, py)`: `class[py][px]`, where the
    /// Euler index is `(2i + px, 2j + py)`.
    classes: [[RangeFenwick2D; 2]; 2],
    object_count: u64,
}

/// Per-axis class extents: even slots = `n`, odd slots = `n − 1`.
fn class_len(cells: usize, parity: usize) -> usize {
    if parity == 0 {
        cells
    } else {
        cells - 1
    }
}

/// Class-coordinate range covering Euler indices `[e0, e1]` for a given
/// parity, or `None` when empty. Inputs may exceed the valid Euler range;
/// callers clip afterwards via the Fenwick's clipped sum.
fn class_range(e0: i64, e1: i64, parity: i64) -> Option<(i64, i64)> {
    // Smallest i with 2i + parity >= e0, largest with 2i + parity <= e1.
    let lo = (e0 - parity).div_euclid(2) + i64::from((e0 - parity).rem_euclid(2) != 0);
    let hi = (e1 - parity).div_euclid(2);
    (lo <= hi).then_some((lo, hi))
}

impl DynamicEulerHistogram {
    /// An empty dynamic histogram over `grid`. Grids must be at least
    /// 2×2 cells (a 1-cell axis has no odd Euler slots).
    pub fn new(grid: Grid) -> DynamicEulerHistogram {
        assert!(
            grid.nx() >= 2 && grid.ny() >= 2,
            "dynamic histogram needs at least a 2x2 grid"
        );
        let make = |px: usize, py: usize| {
            RangeFenwick2D::new(class_len(grid.nx(), px), class_len(grid.ny(), py))
        };
        DynamicEulerHistogram {
            grid,
            classes: [[make(0, 0), make(1, 0)], [make(0, 1), make(1, 1)]],
            object_count: 0,
        }
    }

    /// Builds from a batch of snapped objects (sequence of inserts).
    pub fn build(grid: Grid, objects: &[SnappedRect]) -> DynamicEulerHistogram {
        let mut h = DynamicEulerHistogram::new(grid);
        for o in objects {
            h.insert(o);
        }
        h
    }

    /// Inserts one object: four clipped rectangle updates.
    pub fn insert(&mut self, o: &SnappedRect) {
        self.apply(o, 1);
        self.object_count += 1;
    }

    /// Removes a previously inserted object (linear sketch).
    pub fn remove(&mut self, o: &SnappedRect) {
        assert!(self.object_count > 0, "remove from empty histogram");
        self.apply(o, -1);
        self.object_count -= 1;
    }

    /// Applies one signed footprint (`+1` insert, `−1` delete) **without**
    /// touching the object count.
    ///
    /// This is the memtable entry point of the epoch-snapshot substrate
    /// ([`crate::snapshot`]): a delta records inserts *and* deletes of
    /// objects that may live in the frozen base, so deletes can locally
    /// outnumber inserts and the structure's own count is meaningless —
    /// the substrate tracks the net count across `frozen + delta` itself.
    pub fn apply_signed(&mut self, o: &SnappedRect, sign: i64) {
        self.apply(o, sign);
    }

    fn apply(&mut self, o: &SnappedRect, delta: i64) {
        let (ex0, ex1) = (2 * o.cx0() as i64, 2 * o.cx1() as i64);
        let (ey0, ey1) = (2 * o.cy0() as i64, 2 * o.cy1() as i64);
        for py in 0..2usize {
            for px in 0..2usize {
                let Some((x0, x1)) = class_range(ex0, ex1, px as i64) else {
                    continue;
                };
                let Some((y0, y1)) = class_range(ey0, ey1, py as i64) else {
                    continue;
                };
                // Footprints are always in range; add directly.
                self.classes[py][px].add_rect(
                    x0 as usize,
                    y0 as usize,
                    x1 as usize,
                    y1 as usize,
                    delta,
                );
            }
        }
    }

    /// Signed sum over a clipped Euler-index rectangle: the parity-class
    /// decomposition of the frozen histogram's `signed_sum`.
    pub fn signed_sum(&self, ex0: i64, ey0: i64, ex1: i64, ey1: i64) -> i64 {
        if ex0 > ex1 || ey0 > ey1 {
            return 0;
        }
        let mut sum = 0;
        for py in 0..2usize {
            for px in 0..2usize {
                let Some((x0, x1)) = class_range(ex0, ex1, px as i64) else {
                    continue;
                };
                let Some((y0, y1)) = class_range(ey0, ey1, py as i64) else {
                    continue;
                };
                let sign = if (px + py) % 2 == 0 { 1 } else { -1 };
                sum += sign * self.classes[py][px].range_sum_clipped(x0, y0, x1, y1);
            }
        }
        sum
    }
}

impl EulerSource for DynamicEulerHistogram {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn object_count(&self) -> u64 {
        self.object_count
    }

    fn inside_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 < x1 && y0 < y1);
        self.signed_sum(
            2 * x0 as i64,
            2 * y0 as i64,
            2 * x1 as i64 - 2,
            2 * y1 as i64 - 2,
        )
    }

    fn closed_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 < x1 && y0 < y1);
        self.signed_sum(
            2 * x0 as i64 - 1,
            2 * y0 as i64 - 1,
            2 * x1 as i64 - 1,
            2 * y1 as i64 - 1,
        )
    }
}

/// Convenience: S-EulerApprox counts straight off the dynamic histogram.
impl DynamicEulerHistogram {
    /// Estimates Level 2 counts with the S-EulerApprox algebra.
    pub fn s_euler_estimate(&self, q: &GridRect) -> crate::RelationCounts {
        crate::s_euler_counts(self, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EulerHistogram, EulerSource};
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Snapper};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid(nx: usize, ny: usize) -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    fn random_objects(g: &Grid, n: usize, seed: u64) -> Vec<SnappedRect> {
        let s = Snapper::new(*g);
        let mut rng = StdRng::seed_from_u64(seed);
        let (w, h) = (g.nx() as f64, g.ny() as f64);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..w);
                let y = rng.gen_range(0.0..h);
                let ww = rng.gen_range(0.0..w);
                let hh = rng.gen_range(0.0..h);
                s.snap(&Rect::new(x, y, (x + ww).min(w), (y + hh).min(h)).unwrap())
            })
            .collect()
    }

    #[test]
    fn matches_frozen_on_all_query_quantities() {
        let g = grid(14, 11);
        let objects = random_objects(&g, 200, 1);
        let frozen = EulerHistogram::build(g, &objects).freeze();
        let dynamic = DynamicEulerHistogram::build(g, &objects);
        for (x0, y0, x1, y1) in [
            (0usize, 0usize, 14usize, 11usize),
            (3, 2, 9, 8),
            (0, 0, 1, 1),
            (13, 10, 14, 11),
            (5, 0, 6, 11),
        ] {
            let q = GridRect::unchecked(x0, y0, x1, y1);
            assert_eq!(
                dynamic.intersect_count(&q),
                frozen.intersect_count(&q),
                "n_ii {q}"
            );
            assert_eq!(dynamic.outside_sum(&q), frozen.outside_sum(&q), "n'_ei {q}");
            assert_eq!(
                dynamic.closed_sum(x0, y0, x1, y1),
                frozen.closed_sum(x0, y0, x1, y1),
                "closed {q}"
            );
        }
        assert_eq!(dynamic.total(), frozen.total());
    }

    #[test]
    fn estimates_match_static_s_euler() {
        let g = grid(12, 12);
        let objects = random_objects(&g, 150, 2);
        let frozen = crate::SEulerApprox::new(EulerHistogram::build(g, &objects).freeze());
        let dynamic = DynamicEulerHistogram::build(g, &objects);
        use crate::Level2Estimator;
        for (x0, y0, x1, y1) in [(2, 2, 7, 7), (0, 0, 12, 12), (10, 10, 12, 12)] {
            let q = GridRect::unchecked(x0, y0, x1, y1);
            assert_eq!(dynamic.s_euler_estimate(&q), frozen.estimate(&q), "{q}");
        }
    }

    #[test]
    fn remove_is_exact() {
        let g = grid(10, 10);
        let objects = random_objects(&g, 80, 3);
        let mut dynamic = DynamicEulerHistogram::build(g, &objects);
        // Remove the odd-indexed half.
        let kept: Vec<SnappedRect> = objects.iter().step_by(2).copied().collect();
        for o in objects.iter().skip(1).step_by(2) {
            dynamic.remove(o);
        }
        let frozen = EulerHistogram::build(g, &kept).freeze();
        for (x0, y0, x1, y1) in [(0, 0, 10, 10), (3, 3, 6, 6)] {
            let q = GridRect::unchecked(x0, y0, x1, y1);
            assert_eq!(dynamic.intersect_count(&q), frozen.intersect_count(&q));
            assert_eq!(dynamic.outside_sum(&q), frozen.outside_sum(&q));
        }
    }

    proptest! {
        /// Dynamic and frozen histograms agree on every signed sum for
        /// random datasets and random Euler-index rectangles.
        #[test]
        fn signed_sums_agree(seed in 0u64..20,
                             ex0 in -2i64..28, ey0 in -2i64..22,
                             w in 0i64..30, h in 0i64..24) {
            let g = grid(13, 10);
            let objects = random_objects(&g, 60, seed);
            let frozen = EulerHistogram::build(g, &objects).freeze();
            let dynamic = DynamicEulerHistogram::build(g, &objects);
            let (ex1, ey1) = (ex0 + w, ey0 + h);
            prop_assert_eq!(
                dynamic.signed_sum(ex0, ey0, ex1, ey1),
                frozen.signed_sum(ex0, ey0, ex1, ey1)
            );
        }
    }
}
