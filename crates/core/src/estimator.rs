use euler_grid::{GridRect, Tiling};
use serde::{Deserialize, Serialize};

/// The four Level 2 result counts of a browsing query (with `N_eq ≡ 0`
/// after snapping; §4.2).
///
/// Estimates are kept as signed integers: the approximation algebra can
/// produce small negative values (e.g. `N_cd` from Equation 21); use
/// [`RelationCounts::clamped`] when reporting to users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RelationCounts {
    /// `N_d` — objects disjoint from the query.
    pub disjoint: i64,
    /// `N_cs` — objects contained in the query ("contains" results).
    pub contains: i64,
    /// `N_cd` — objects containing the query ("contained" results).
    pub contained: i64,
    /// `N_o` — objects overlapping the query.
    pub overlaps: i64,
}

impl RelationCounts {
    /// Creates counts from the four relation tallies.
    pub fn new(disjoint: i64, contains: i64, contained: i64, overlaps: i64) -> RelationCounts {
        RelationCounts {
            disjoint,
            contains,
            contained,
            overlaps,
        }
    }

    /// Total number of objects accounted for.
    pub fn total(&self) -> i64 {
        self.disjoint + self.contains + self.contained + self.overlaps
    }

    /// Number of objects intersecting the query (`n_ii = N_cs + N_cd + N_o`).
    pub fn intersecting(&self) -> i64 {
        self.contains + self.contained + self.overlaps
    }

    /// Component-wise sum (used by M-EulerApprox to merge per-histogram
    /// partial results).
    pub fn add(&self, other: &RelationCounts) -> RelationCounts {
        RelationCounts {
            disjoint: self.disjoint + other.disjoint,
            contains: self.contains + other.contains,
            contained: self.contained + other.contained,
            overlaps: self.overlaps + other.overlaps,
        }
    }

    /// Counts with negative estimates clamped to zero, for presentation.
    pub fn clamped(&self) -> RelationCounts {
        RelationCounts {
            disjoint: self.disjoint.max(0),
            contains: self.contains.max(0),
            contained: self.contained.max(0),
            overlaps: self.overlaps.max(0),
        }
    }
}

impl std::fmt::Display for RelationCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N_d={} N_cs={} N_cd={} N_o={}",
            self.disjoint, self.contains, self.contained, self.overlaps
        )
    }
}

/// An estimator of Level 2 relation counts for grid-aligned queries —
/// the single interface every summary in the workspace implements: the
/// Euler family (S-/Euler-/M-EulerApprox), the exact structures
/// (`ExactContains2D`, the R-tree oracle) and the Level 1 baselines
/// (CD, Beigel–Tanin, Min-skew, naive scan).
///
/// The trait is object-safe: batch machinery (`euler-engine`, the
/// benches) holds `Arc<dyn Level2Estimator + Send + Sync>` and dispatches
/// uniformly. Level-1-only baselines implement [`estimate`] by collapsing
/// every intersecting object into `overlaps` — the capability gap the
/// paper's §2 describes, made visible through the shared interface.
///
/// [`estimate`]: Level2Estimator::estimate
pub trait Level2Estimator {
    /// Short name used in result tables ("S-EulerApprox", …).
    fn name(&self) -> &'static str;

    /// Estimates the Level 2 relation counts for an aligned query.
    fn estimate(&self, q: &GridRect) -> RelationCounts;

    /// Number of objects summarized.
    fn object_count(&self) -> u64;

    /// Auxiliary storage in scalar cells (bucket entries, prefix-sum
    /// entries, tree records…) — the space axis of the paper's
    /// accuracy/storage trade-off tables. Zero for summaries that keep no
    /// structure beyond the raw objects.
    fn storage_cells(&self) -> u64;

    /// Estimates every tile of a browsing query (a [`Tiling`]), in the
    /// tiling's row-major iteration order.
    ///
    /// The default is the per-tile loop — one [`estimate`] call per tile.
    /// Sweep-capable estimators override this with a tiling-aware kernel
    /// (see `sweep::TilingPlan` in this crate) that amortizes prefix-sum
    /// corner lookups across the whole query set; any override must
    /// return **bit-identical** counts to the default loop (a law the
    /// conformance harness enforces for every estimator).
    ///
    /// **Error surface.** An override has no `Result` channel: its only
    /// failure mode is a panic, and callers that must not die treat the
    /// per-tile loop as the recovery path. `euler-engine` runs overrides
    /// under `catch_unwind` and falls back to this default on panic —
    /// the bit-identity law above is exactly what makes that fallback
    /// lossless (a degraded path, not a different answer).
    ///
    /// [`estimate`]: Level2Estimator::estimate
    fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
        t.iter().map(|(_, tile)| self.estimate(&tile)).collect()
    }

    /// [`estimate_tiling`] plus the element-wise sum of every tile's
    /// counts. Batch machinery reports the per-relation total alongside
    /// the per-tile counts; sweep-capable estimators override this to
    /// accumulate the total during emission instead of paying a second
    /// pass over the (potentially large) output vector. Must equal
    /// folding [`RelationCounts::add`] over [`estimate_tiling`].
    ///
    /// [`estimate_tiling`]: Level2Estimator::estimate_tiling
    fn estimate_tiling_total(&self, t: &Tiling) -> (Vec<RelationCounts>, RelationCounts) {
        let counts = self.estimate_tiling(t);
        let mut total = RelationCounts::default();
        for c in &counts {
            total = total.add(c);
        }
        (counts, total)
    }

    /// Whether [`estimate_tiling`] is backed by a tiling-aware sweep
    /// kernel (rather than the default per-tile loop). Batch machinery
    /// uses this to decide when dispatching a whole tiling to the
    /// estimator beats fanning tiles across workers — and, because the
    /// kernel is a single uninterruptible pass, to skip it for the
    /// cancellable per-tile loop when a deadline or cancellation token
    /// is in play.
    ///
    /// [`estimate_tiling`]: Level2Estimator::estimate_tiling
    fn supports_sweep(&self) -> bool {
        false
    }

    /// The ingest epoch the estimator's backing snapshot belongs to, when
    /// it reads from the epoch-snapshot substrate (`euler-core`'s
    /// `snapshot` module); `None` for estimators over plain summaries.
    ///
    /// Batch machinery uses this to tag results: an estimator pinned to
    /// one snapshot answers every query of a batch from the same epoch,
    /// and the engine records that epoch in its telemetry.
    fn epoch(&self) -> Option<u64> {
        None
    }
}

impl<T: Level2Estimator + ?Sized> Level2Estimator for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn estimate(&self, q: &GridRect) -> RelationCounts {
        (**self).estimate(q)
    }
    fn object_count(&self) -> u64 {
        (**self).object_count()
    }
    fn storage_cells(&self) -> u64 {
        (**self).storage_cells()
    }
    fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
        (**self).estimate_tiling(t)
    }
    fn estimate_tiling_total(&self, t: &Tiling) -> (Vec<RelationCounts>, RelationCounts) {
        (**self).estimate_tiling_total(t)
    }
    fn supports_sweep(&self) -> bool {
        (**self).supports_sweep()
    }
    fn epoch(&self) -> Option<u64> {
        (**self).epoch()
    }
}

impl<T: Level2Estimator + ?Sized> Level2Estimator for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn estimate(&self, q: &GridRect) -> RelationCounts {
        (**self).estimate(q)
    }
    fn object_count(&self) -> u64 {
        (**self).object_count()
    }
    fn storage_cells(&self) -> u64 {
        (**self).storage_cells()
    }
    fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
        (**self).estimate_tiling(t)
    }
    fn estimate_tiling_total(&self, t: &Tiling) -> (Vec<RelationCounts>, RelationCounts) {
        (**self).estimate_tiling_total(t)
    }
    fn supports_sweep(&self) -> bool {
        (**self).supports_sweep()
    }
    fn epoch(&self) -> Option<u64> {
        (**self).epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_sums() {
        let c = RelationCounts::new(10, 3, 1, 2);
        assert_eq!(c.total(), 16);
        assert_eq!(c.intersecting(), 6);
        let d = c.add(&RelationCounts::new(1, 1, 1, 1));
        assert_eq!(d.total(), 20);
    }

    #[test]
    fn clamping() {
        let c = RelationCounts::new(5, -2, 3, -1);
        let k = c.clamped();
        assert_eq!(k, RelationCounts::new(5, 0, 3, 0));
    }

    #[test]
    fn display_is_compact() {
        let c = RelationCounts::new(1, 2, 3, 4);
        assert_eq!(c.to_string(), "N_d=1 N_cs=2 N_cd=3 N_o=4");
    }
}
