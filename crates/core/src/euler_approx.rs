//! EulerApprox (§5.3): estimating `N_cd` despite the loophole effect.
//!
//! `n'_ei` (the outside bucket sum) misses every object that *contains*
//! the query — its intersection with the query exterior is an annulus with
//! Euler characteristic `2 − k = 0` (Corollary 4.2, Figure 10). EulerApprox
//! recovers a fourth equation by approximating the *true* `n_ei`
//! (`N_d + N_o + N_cd`) from two auxiliary regions (Figure 11):
//!
//! * **Region A** — the two side slabs of the query exterior inside the
//!   query's y-band, `[0, qx0] × [qy0, qy1]` and `[qx1, nx] × [qy0, qy1]`.
//!   `N_i(A)` is the (per-component exact) count of objects intersecting
//!   them, obtained by interior bucket sums.
//! * **Region B** — the full-width slabs above and below the band,
//!   `[0, nx] × [qy1, ny]` and `[0, nx] × [0, qy0]`. Because every object
//!   lies strictly inside the data space, nothing can contain or cross a
//!   full-width slab, so S-EulerApprox's contains-count is *exact* there;
//!   it reduces to the closed bucket sum of the slab.
//!
//! `N_i(A) + N_cs(B)` approximates `n_ei`; the residual error is `+1` for
//! each object containing a horizontal query edge (O1 — it meets both A
//! slabs) and `−1` for each object poking through a horizontal edge within
//! the query's x-span (O2 — it is in neither A nor contained in B). The
//! two populations shrink/grow oppositely with query size, which is
//! exactly the large-query failure mode that motivates M-EulerApprox
//! (§5.4).

use euler_grid::{GridRect, Tiling};
use serde::{Deserialize, Serialize};

use crate::sweep::{sweep_euler_approx, TilingPlan};
use crate::{EulerSource, FrozenEulerHistogram, Level2Estimator, RelationCounts};

/// Orientation of the Region A/B split of Figure 11.
///
/// The paper draws one orientation; both are valid and differ only in
/// which query edges generate O1/O2 error, so the choice is exposed for
/// the `ablation_regions` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RegionSplit {
    /// Region A = left/right slabs inside the query's **y-band**;
    /// Region B = full-width top/bottom slabs. (Figure 11's layout.)
    #[default]
    YBandSides,
    /// The transpose: Region A = bottom/top slabs inside the query's
    /// x-band; Region B = full-height left/right slabs.
    XBandSides,
    /// Evaluate both orientations and average the two `n_ie` proxies —
    /// halves the orientation-specific O1/O2 bias on anisotropic data.
    Average,
}

/// The EulerApprox estimator: Equations 18–22 on any Euler-histogram
/// backend (static frozen by default).
#[derive(Debug, Clone)]
pub struct EulerApprox<H: EulerSource = FrozenEulerHistogram> {
    hist: H,
    split: RegionSplit,
}

impl<H: EulerSource> EulerApprox<H> {
    /// Wraps a histogram backend with the default (paper) region split.
    pub fn new(hist: H) -> EulerApprox<H> {
        EulerApprox {
            hist,
            split: RegionSplit::default(),
        }
    }

    /// Wraps a histogram backend with an explicit region split.
    pub fn with_split(hist: H, split: RegionSplit) -> EulerApprox<H> {
        EulerApprox { hist, split }
    }

    /// The underlying histogram backend.
    pub fn histogram(&self) -> &H {
        &self.hist
    }

    /// The configured region split.
    pub fn split(&self) -> RegionSplit {
        self.split
    }
}

/// `N_i(A) + N_cs(B)` — the Figure 11 proxy for the true `n_ei`, doubled
/// to stay integral when averaging both orientations. Shared by
/// EulerApprox and M-EulerApprox's per-group dispatch.
pub(crate) fn n_ei_proxy_x2<H: EulerSource + ?Sized>(
    hist: &H,
    q: &GridRect,
    split: RegionSplit,
) -> i64 {
    // A frozen backend evaluates each orientation's four windows as one
    // lane-packed `signed_sum4`; the dynamic backend keeps the guarded
    // per-window path.
    if let Some(f) = hist.as_frozen() {
        return match split {
            RegionSplit::YBandSides => 2 * proxy_y_band_frozen(f, q),
            RegionSplit::XBandSides => 2 * proxy_x_band_frozen(f, q),
            RegionSplit::Average => proxy_y_band_frozen(f, q) + proxy_x_band_frozen(f, q),
        };
    }
    match split {
        RegionSplit::YBandSides => 2 * proxy_y_band(hist, q),
        RegionSplit::XBandSides => 2 * proxy_x_band(hist, q),
        RegionSplit::Average => proxy_y_band(hist, q) + proxy_x_band(hist, q),
    }
}

/// [`proxy_y_band`] with all four windows in one lane-packed call.
///
/// The `q.x0 > 0`-style guards vanish: a window that the guarded path
/// skips is empty after Euler-index clipping, and its lane's four-corner
/// combination collapses onto shared clamped planes summing to exactly 0
/// (guard column for a left/bottom edge, repeated last plane for a
/// right/top edge).
fn proxy_y_band_frozen(f: &FrozenEulerHistogram, q: &GridRect) -> i64 {
    let nx = f.grid().nx() as i64;
    let ny = f.grid().ny() as i64;
    let (x0, y0) = (q.x0 as i64, q.y0 as i64);
    let (x1, y1) = (q.x1 as i64, q.y1 as i64);
    // Lanes: A left inside, A right inside, B top closed, B bottom closed.
    let s = f.cum().signed_sum4(
        [0, 2 * x1, -1, -1],
        [2 * y0, 2 * y0, 2 * y1 - 1, -1],
        [2 * x0 - 2, 2 * nx - 2, 2 * nx - 1, 2 * nx - 1],
        [2 * y1 - 2, 2 * y1 - 2, 2 * ny - 1, 2 * y0 - 1],
    );
    s[0] + s[1] + s[2] + s[3]
}

/// The transposed split, lane-packed like [`proxy_y_band_frozen`].
fn proxy_x_band_frozen(f: &FrozenEulerHistogram, q: &GridRect) -> i64 {
    let nx = f.grid().nx() as i64;
    let ny = f.grid().ny() as i64;
    let (x0, y0) = (q.x0 as i64, q.y0 as i64);
    let (x1, y1) = (q.x1 as i64, q.y1 as i64);
    // Lanes: A bottom inside, A top inside, B left closed, B right closed.
    let s = f.cum().signed_sum4(
        [2 * x0, 2 * x0, -1, 2 * x1 - 1],
        [0, 2 * y1, -1, -1],
        [2 * x1 - 2, 2 * x1 - 2, 2 * x0 - 1, 2 * nx - 1],
        [2 * y0 - 2, 2 * ny - 2, 2 * ny - 1, 2 * ny - 1],
    );
    s[0] + s[1] + s[2] + s[3]
}

/// A = side slabs in the y-band, B = full-width top/bottom slabs.
fn proxy_y_band<H: EulerSource + ?Sized>(h: &H, q: &GridRect) -> i64 {
    let nx = h.grid().nx();
    let ny = h.grid().ny();
    let mut n = 0;
    if q.x0 > 0 {
        n += h.inside_sum(0, q.y0, q.x0, q.y1); // A left
    }
    if q.x1 < nx {
        n += h.inside_sum(q.x1, q.y0, nx, q.y1); // A right
    }
    if q.y1 < ny {
        n += h.closed_sum(0, q.y1, nx, ny); // B top (contained count)
    }
    if q.y0 > 0 {
        n += h.closed_sum(0, 0, nx, q.y0); // B bottom
    }
    n
}

/// The transposed split.
fn proxy_x_band<H: EulerSource + ?Sized>(h: &H, q: &GridRect) -> i64 {
    let nx = h.grid().nx();
    let ny = h.grid().ny();
    let mut n = 0;
    if q.y0 > 0 {
        n += h.inside_sum(q.x0, 0, q.x1, q.y0); // A bottom
    }
    if q.y1 < ny {
        n += h.inside_sum(q.x0, q.y1, q.x1, ny); // A top
    }
    if q.x0 > 0 {
        n += h.closed_sum(0, 0, q.x0, ny); // B left
    }
    if q.x1 < nx {
        n += h.closed_sum(q.x1, 0, nx, ny); // B right
    }
    n
}

impl<H: EulerSource> Level2Estimator for EulerApprox<H> {
    fn name(&self) -> &'static str {
        "EulerApprox"
    }

    fn estimate(&self, q: &GridRect) -> RelationCounts {
        let size = self.hist.object_count() as i64;
        // Eq. 18/19, through the batched kernel lane when frozen.
        let (n_ii, n_ei_prime) = match self.hist.as_frozen() {
            Some(f) => {
                let (n_ii, closed) = f.inside_closed_sums(q);
                (n_ii, f.total() - closed)
            }
            None => (self.hist.intersect_count(q), self.hist.outside_sum(q)),
        };
        let disjoint = size - n_ii;
        let overlaps = n_ei_prime - disjoint; // Eq. 20
                                              // Eq. 21, rounding the (possibly half-integral under Average)
                                              // proxy to the nearest integer.
        let contained = (n_ei_proxy_x2(&self.hist, q, self.split) - 2 * n_ei_prime).div_euclid(2);
        let contains = size - contained - disjoint - overlaps; // Eq. 22
        RelationCounts {
            disjoint,
            contains,
            contained,
            overlaps,
        }
    }

    fn object_count(&self) -> u64 {
        self.hist.object_count()
    }

    fn storage_cells(&self) -> u64 {
        let (ew, eh) = self.hist.grid().euler_dims();
        (ew * eh) as u64
    }

    fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
        match self.hist.as_frozen() {
            Some(frozen) => sweep_euler_approx(frozen, &TilingPlan::new(t), self.split),
            None => t.iter().map(|(_, tile)| self.estimate(&tile)).collect(),
        }
    }

    fn supports_sweep(&self) -> bool {
        self.hist.as_frozen().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::count_by_classification;
    use crate::EulerHistogram;
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid, SnappedRect, Snapper};
    use proptest::prelude::*;

    fn grid(nx: usize, ny: usize) -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    fn snap(g: &Grid, r: (f64, f64, f64, f64)) -> SnappedRect {
        Snapper::new(*g).snap(&Rect::new(r.0, r.1, r.2, r.3).unwrap())
    }

    fn estimator(g: Grid, objs: &[SnappedRect]) -> EulerApprox {
        EulerApprox::new(EulerHistogram::build(g, objs).freeze())
    }

    #[test]
    fn recovers_a_single_containing_object_modulo_o1_bias() {
        // One object containing the query: the loophole hides it from
        // n'_ei; the Region A proxy sees it in both side slabs, so the
        // known O1 bias yields N_cd = 2 for the isolated case.
        let g = grid(10, 10);
        let objs = vec![snap(&g, (0.5, 0.5, 9.5, 9.5))];
        let q = GridRect::unchecked(4, 4, 6, 6);
        let est = estimator(g, &objs);
        let e = est.estimate(&q);
        assert!(e.contained >= 1, "containing object detected: {e}");
        // S-EulerApprox would have said N_cd = 0.
    }

    #[test]
    fn exact_for_clean_configurations() {
        // No O1, no O2, no crossover, no containing objects: EulerApprox
        // degenerates to exact results.
        let g = grid(12, 12);
        let objs = vec![
            snap(&g, (1.2, 1.2, 2.8, 2.8)),   // disjoint (in B bottom... left)
            snap(&g, (5.2, 5.2, 6.8, 6.8)),   // contained in query
            snap(&g, (3.5, 5.0, 5.5, 6.0)),   // overlaps from the left (A)
            snap(&g, (9.2, 9.4, 10.8, 11.0)), // disjoint top-right
        ];
        let q = GridRect::unchecked(4, 4, 8, 8);
        let est = estimator(g, &objs);
        let exact = count_by_classification(&objs, &q);
        assert_eq!(est.estimate(&q), exact);
    }

    #[test]
    fn o1_and_o2_cancel_pairwise() {
        // One O1 (contains the top edge) + one O2 (pokes through the top
        // edge within the x-span): their ±1 errors cancel and the
        // aggregate counts come out exact.
        let g = grid(12, 12);
        let objs = vec![
            snap(&g, (2.5, 6.5, 11.5, 8.5)), // O1: spans [4,8] x-range at top edge y=8
            snap(&g, (5.2, 7.2, 6.8, 9.5)),  // O2: pokes through top edge inside span
        ];
        let q = GridRect::unchecked(4, 4, 8, 8);
        let exact = count_by_classification(&objs, &q);
        assert_eq!(exact, RelationCounts::new(0, 0, 0, 2));
        let est = estimator(g, &objs);
        assert_eq!(est.estimate(&q), exact);
    }

    #[test]
    fn split_orientations_differ_on_anisotropic_objects() {
        // A wide flat object containing only horizontal edges is an O1 for
        // the y-band split but perfectly handled by the x-band split.
        let g = grid(12, 12);
        let objs = vec![snap(&g, (2.5, 5.5, 11.5, 6.5))]; // overlaps via left&right
        let q = GridRect::unchecked(4, 4, 8, 8);
        let exact = count_by_classification(&objs, &q);
        let y_est = EulerApprox::with_split(
            EulerHistogram::build(g, &objs).freeze(),
            RegionSplit::YBandSides,
        );
        let x_est = EulerApprox::with_split(
            EulerHistogram::build(g, &objs).freeze(),
            RegionSplit::XBandSides,
        );
        // The bar crosses the query (left+right): n'_ei double counts it;
        // but for the y-band split it is also double counted in A, so the
        // N_cd error cancels; for the x-band split it is contained in
        // neither B slab and intersects neither A slab.
        let ye = y_est.estimate(&q);
        let xe = x_est.estimate(&q);
        assert_eq!(
            ye.contained, 0,
            "y-band: A double-count cancels n'_ei double-count"
        );
        assert_eq!(xe.contained - exact.contained, -2);
    }

    #[test]
    fn average_split_halves_orientation_bias() {
        let g = grid(12, 12);
        let objs = vec![snap(&g, (2.5, 5.5, 11.5, 6.5))];
        let q = GridRect::unchecked(4, 4, 8, 8);
        let avg = EulerApprox::with_split(
            EulerHistogram::build(g, &objs).freeze(),
            RegionSplit::Average,
        );
        let e = avg.estimate(&q);
        // y-band error 0, x-band error -2 → averaged error -1.
        assert_eq!(e.contained, -1);
    }

    proptest! {
        /// The error-decomposition theorem behind EXPERIMENTS.md's sz_skew
        /// analysis: for the y-band split, the Region A/B proxy equals the
        /// true n_ei plus #O1 (objects containing a horizontal query edge,
        /// including query containers) minus #O2 (objects poking through a
        /// horizontal edge within the query's x-span) plus #horizontal
        /// crossovers (they meet both A slabs, like O1 — but unlike O1
        /// this surplus cancels in N_cd, because n'_ei double-counts the
        /// same objects). Exact, per query.
        #[test]
        fn proxy_error_is_o1_minus_o2(
            objs in prop::collection::vec(
                (0.0..15.0f64, 0.0..11.0f64, 0.05..14.0f64, 0.05..10.0f64), 0..60),
            qx in 0usize..15, qy in 0usize..11,
            qw in 1usize..16, qh in 1usize..12,
        ) {
            let g = grid(16, 12);
            let snapped: Vec<SnappedRect> = objs
                .iter()
                .map(|&(x, y, w, h)| snap(&g, (x, y, (x + w).min(16.0), (y + h).min(12.0))))
                .collect();
            let q = GridRect::unchecked(qx, qy, (qx + qw).min(16), (qy + qh).min(12));
            let hist = EulerHistogram::build(g, &snapped).freeze();
            let proxy = super::n_ei_proxy_x2(&hist, &q, RegionSplit::YBandSides) / 2;

            let (qx0, qy0, qx1, qy1) =
                (q.x0 as f64, q.y0 as f64, q.x1 as f64, q.y1 as f64);
            let mut true_n_ei = 0i64; // objects whose interior meets the query exterior
            let mut o1 = 0i64;
            let mut o2 = 0i64;
            let mut crossovers = 0i64;
            for o in &snapped {
                if !o.contained_in_query(&q) {
                    true_n_ei += 1;
                }
                let spans_x = o.a() < qx0 && o.b() > qx1;
                let within_x = o.a() > qx0 && o.b() < qx1;
                let within_y = o.c() > qy0 && o.d() < qy1;
                let crosses_top = o.c() < qy1 && o.d() > qy1;
                let crosses_bottom = o.c() < qy0 && o.d() > qy0;
                if spans_x && (crosses_top || crosses_bottom) {
                    // One +1 per crossed horizontal edge, but a query
                    // container (crossing both) is double-counted only
                    // once (it meets each A slab exactly once).
                    o1 += i64::from(crosses_top) + i64::from(crosses_bottom)
                        - i64::from(crosses_top && crosses_bottom);
                }
                if spans_x && within_y {
                    crossovers += 1;
                }
                if within_x && o.intersects(&q) && (crosses_top || crosses_bottom) {
                    o2 += 1;
                }
            }
            prop_assert_eq!(proxy, true_n_ei + o1 - o2 + crossovers);
        }

        /// Totals are preserved and N_d / N_o match S-EulerApprox exactly
        /// (§6.3: all three algorithms share the N_o estimator).
        #[test]
        fn shares_no_and_nd_with_s_euler(
            objs in prop::collection::vec(
                (0.0..15.0f64, 0.0..11.0f64, 0.05..14.0f64, 0.05..10.0f64), 0..50),
            qx in 0usize..15, qy in 0usize..11,
            qw in 1usize..16, qh in 1usize..12,
        ) {
            let g = grid(16, 12);
            let snapped: Vec<SnappedRect> = objs
                .iter()
                .map(|&(x, y, w, h)| snap(&g, (x, y, (x + w).min(16.0), (y + h).min(12.0))))
                .collect();
            let q = GridRect::unchecked(qx, qy, (qx + qw).min(16), (qy + qh).min(12));
            let hist = EulerHistogram::build(g, &snapped).freeze();
            let e = EulerApprox::new(hist.clone()).estimate(&q);
            let s = crate::SEulerApprox::new(hist).estimate(&q);
            prop_assert_eq!(e.disjoint, s.disjoint);
            prop_assert_eq!(e.overlaps, s.overlaps);
            prop_assert_eq!(e.total(), snapped.len() as i64);
        }

        /// Without containing, crossover, O1 or O2 objects, EulerApprox is
        /// exact.
        #[test]
        fn exact_in_clean_configurations_prop(
            objs in prop::collection::vec(
                (0.0..15.0f64, 0.0..11.0f64, 0.05..3.0f64, 0.05..3.0f64), 0..40),
            qx in 2usize..12, qy in 2usize..8,
        ) {
            let g = grid(16, 12);
            let (qx1, qy1) = (qx + 4, qy + 4);
            let q = GridRect::unchecked(qx, qy, qx1.min(16), qy1.min(12));
            let snapped: Vec<SnappedRect> = objs
                .iter()
                .map(|&(x, y, w, h)| snap(&g, (x, y, (x + w).min(16.0), (y + h).min(12.0))))
                .collect();
            // Filter to a "clean" configuration: nothing touches the
            // horizontal edges of the query from outside the corners...
            // conservatively: no object intersects the query's horizontal
            // boundary lines.
            let clean = snapped.iter().all(|o| {
                let crosses_top = o.c() < q.y1 as f64 && o.d() > q.y1 as f64
                    && o.a() < q.x1 as f64 && o.b() > q.x0 as f64;
                let crosses_bottom = o.c() < q.y0 as f64 && o.d() > q.y0 as f64
                    && o.a() < q.x1 as f64 && o.b() > q.x0 as f64;
                !crosses_top && !crosses_bottom && !o.crosses(&q) && !o.contains_query(&q)
            });
            prop_assume!(clean);
            let est = estimator(g, &snapped);
            let exact = count_by_classification(&snapped, &q);
            prop_assert_eq!(est.estimate(&q), exact);
        }
    }
}
