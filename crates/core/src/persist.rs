//! Binary persistence for Euler histograms.
//!
//! Building a histogram over millions of objects takes a dataset scan;
//! serving it needs only the bucket array. This module provides a small
//! versioned little-endian codec so a built histogram can be stored next
//! to the dataset (or shipped to a query front end) and reloaded without
//! re-scanning — the deployment shape of the GeoBrowsing service.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "EULH" | version u32 | space bounds 4×f64 | nx u64 | ny u64
//! | object_count u64 | bucket_count u64 | buckets i64 × bucket_count
//! | checksum u64 (FNV-1a chain seeded with the header words)
//! ```
//!
//! The checksum is seeded with a mix of every header word (bounds bits,
//! dims, object count, bucket count) and then chains an FNV-1a step per
//! bucket value — position-sensitive, unlike a plain sum, so reshuffles
//! like `(−1, +1) → (0, 0)` that a flipped varint byte can produce are
//! caught too: a single flipped byte *anywhere* in the file — header or
//! payload — fails the decode. The decoder additionally caps the
//! attacker-controlled dimension fields ([`MAX_DECODE_BUCKETS`]) and
//! validates payload length *before* allocating, so adversarial input
//! can never force an over-allocation or a panic: `from_bytes` on
//! arbitrary bytes always returns `Ok` or a [`PersistError`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use euler_cube::Dense2D;
use euler_geom::Rect;
use euler_grid::{DataSpace, Grid};

use crate::EulerHistogram;

const MAGIC: &[u8; 4] = b"EULH";
const VERSION: u32 = 1;
const VERSION_COMPRESSED: u32 = 2;

/// Decode-side cap on the declared bucket count and grid dimensions:
/// 2²⁸ ≈ 2.68×10⁸ buckets (2 GiB of raw i64s) — just above the 8192²
/// finest supported grid, whose Euler array is 16383² ≈ 2.68×10⁸. A
/// header declaring more than this is rejected before any allocation.
pub const MAX_DECODE_BUCKETS: u64 = 1 << 28;

/// FNV-1a prime for the bucket-value checksum chain.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// One checksum step: FNV-1a over a bucket value. A run of `r` zeros
/// reduces to `r` multiplications by [`FNV_PRIME`] (xor with 0 is the
/// identity), which [`zero_run_checksum`] folds in `O(log r)`.
fn checksum_step(c: u64, v: i64) -> u64 {
    (c ^ v as u64).wrapping_mul(FNV_PRIME)
}

/// Folds a run of `r` zero buckets into the checksum chain without
/// touching each one: `c · FNV_PRIME^r (mod 2⁶⁴)`.
fn zero_run_checksum(c: u64, r: u64) -> u64 {
    debug_assert!(r <= u32::MAX as u64);
    c.wrapping_mul(FNV_PRIME.wrapping_pow(r as u32))
}

/// The checksum seed mixed from every header word, so header corruption
/// is caught by the same trailing checksum that guards the buckets. Each
/// word gets a distinct rotation so swapped fields don't cancel.
fn header_checksum(
    bounds: [f64; 4],
    nx: u64,
    ny: u64,
    object_count: u64,
    bucket_count: u64,
) -> u64 {
    let words = [
        bounds[0].to_bits(),
        bounds[1].to_bits(),
        bounds[2].to_bits(),
        bounds[3].to_bits(),
        nx,
        ny,
        object_count,
        bucket_count,
    ];
    let mut c = 0xE01E_5EED_0BAD_F00Du64;
    for (i, w) in words.into_iter().enumerate() {
        c = c.wrapping_add(w.rotate_left(i as u32 * 7 + 1));
    }
    c
}

/// Zigzag-encodes a signed value for varint packing.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(data: &mut Bytes) -> Result<u64, PersistError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if data.remaining() == 0 {
            return Err(PersistError::Truncated);
        }
        let byte = data.get_u8();
        if shift >= 64 {
            return Err(PersistError::Corrupt("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Errors from decoding a persisted histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Wrong magic bytes — not a persisted Euler histogram.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u32),
    /// The payload ended early or has trailing garbage.
    Truncated,
    /// Header fields are inconsistent (e.g. bucket count ≠ (2nx−1)(2ny−1)).
    Corrupt(&'static str),
    /// The checksum did not match.
    ChecksumMismatch,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an Euler histogram file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::Truncated => write!(f, "payload truncated or has trailing bytes"),
            PersistError::Corrupt(what) => write!(f, "corrupt header: {what}"),
            PersistError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for PersistError {}

impl EulerHistogram {
    /// Encodes the histogram (buckets + grid) into a portable byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        let grid = self.grid();
        let (ew, eh) = grid.euler_dims();
        let mut buf = BytesMut::with_capacity(4 + 4 + 32 + 8 * 4 + 8 * ew * eh + 8);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        let b = grid.space().bounds();
        buf.put_f64_le(b.xlo());
        buf.put_f64_le(b.ylo());
        buf.put_f64_le(b.xhi());
        buf.put_f64_le(b.yhi());
        buf.put_u64_le(grid.nx() as u64);
        buf.put_u64_le(grid.ny() as u64);
        buf.put_u64_le(self.object_count());
        buf.put_u64_le((ew * eh) as u64);
        let mut checksum = header_checksum(
            [b.xlo(), b.ylo(), b.xhi(), b.yhi()],
            grid.nx() as u64,
            grid.ny() as u64,
            self.object_count(),
            (ew * eh) as u64,
        );
        for ey in 0..eh {
            for ex in 0..ew {
                let v = self.bucket(ex, ey);
                checksum = checksum_step(checksum, v);
                buf.put_i64_le(v);
            }
        }
        buf.put_u64_le(checksum);
        buf.freeze()
    }

    /// Encodes the histogram with zero-run + zigzag-varint compression
    /// (format version 2). Sparse datasets — which most geographic
    /// collections are at fine resolutions — shrink dramatically; the
    /// tests measure a ≥ 4× reduction on a clustered example. Decode with
    /// the same [`EulerHistogram::from_bytes`].
    pub fn to_bytes_compressed(&self) -> Bytes {
        let grid = self.grid();
        let (ew, eh) = grid.euler_dims();
        let mut buf = BytesMut::with_capacity(4 + 4 + 32 + 8 * 4);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_COMPRESSED);
        let b = grid.space().bounds();
        buf.put_f64_le(b.xlo());
        buf.put_f64_le(b.ylo());
        buf.put_f64_le(b.xhi());
        buf.put_f64_le(b.yhi());
        buf.put_u64_le(grid.nx() as u64);
        buf.put_u64_le(grid.ny() as u64);
        buf.put_u64_le(self.object_count());
        buf.put_u64_le((ew * eh) as u64);
        let mut checksum = header_checksum(
            [b.xlo(), b.ylo(), b.xhi(), b.yhi()],
            grid.nx() as u64,
            grid.ny() as u64,
            self.object_count(),
            (ew * eh) as u64,
        );
        let mut zero_run = 0u64;
        for ey in 0..eh {
            for ex in 0..ew {
                let v = self.bucket(ex, ey);
                checksum = checksum_step(checksum, v);
                if v == 0 {
                    zero_run += 1;
                    continue;
                }
                if zero_run > 0 {
                    buf.put_u8(0); // zero-run marker (zigzag(v) = 0 ⇔ v = 0)
                    put_varint(&mut buf, zero_run);
                    zero_run = 0;
                }
                put_varint(&mut buf, zigzag(v));
            }
        }
        if zero_run > 0 {
            buf.put_u8(0);
            put_varint(&mut buf, zero_run);
        }
        buf.put_u64_le(checksum);
        buf.freeze()
    }

    /// Decodes a histogram previously produced by
    /// [`EulerHistogram::to_bytes`] or
    /// [`EulerHistogram::to_bytes_compressed`].
    pub fn from_bytes(mut data: Bytes) -> Result<EulerHistogram, PersistError> {
        if data.remaining() < 8 {
            return Err(PersistError::Truncated);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = data.get_u32_le();
        if version != VERSION && version != VERSION_COMPRESSED {
            return Err(PersistError::UnsupportedVersion(version));
        }
        if data.remaining() < 32 + 8 * 4 {
            return Err(PersistError::Truncated);
        }
        let xlo = data.get_f64_le();
        let ylo = data.get_f64_le();
        let xhi = data.get_f64_le();
        let yhi = data.get_f64_le();
        let nx64 = data.get_u64_le();
        let ny64 = data.get_u64_le();
        let object_count = data.get_u64_le();
        let bucket_count64 = data.get_u64_le();
        // Cap the attacker-controlled dimension fields *before* any
        // arithmetic on them (2·nx−1 would overflow for huge nx) and
        // before any allocation sized from them.
        if nx64 == 0 || ny64 == 0 || nx64 > MAX_DECODE_BUCKETS || ny64 > MAX_DECODE_BUCKETS {
            return Err(PersistError::Corrupt("grid dims"));
        }
        let (ew64, eh64) = (2 * nx64 - 1, 2 * ny64 - 1);
        if ew64 * eh64 > MAX_DECODE_BUCKETS || bucket_count64 > MAX_DECODE_BUCKETS {
            return Err(PersistError::Corrupt("grid exceeds decode cap"));
        }
        if bucket_count64 != ew64 * eh64 {
            return Err(PersistError::Corrupt("bucket count"));
        }
        let bucket_count = bucket_count64 as usize;
        let bounds =
            Rect::new(xlo, ylo, xhi, yhi).map_err(|_| PersistError::Corrupt("space bounds"))?;
        let grid = Grid::new(DataSpace::new(bounds), nx64 as usize, ny64 as usize)
            .map_err(|_| PersistError::Corrupt("grid dims"))?;
        let (ew, eh) = grid.euler_dims();
        debug_assert_eq!(bucket_count, ew * eh);
        let mut checksum = header_checksum(
            [xlo, ylo, xhi, yhi],
            nx64,
            ny64,
            object_count,
            bucket_count64,
        );
        let mut raw;
        if version == VERSION {
            // Length check first: the allocation below must never be
            // larger than the payload that was actually supplied.
            if data.remaining() != 8 * bucket_count + 8 {
                return Err(PersistError::Truncated);
            }
            raw = Vec::with_capacity(bucket_count);
            for _ in 0..bucket_count {
                let v = data.get_i64_le();
                checksum = checksum_step(checksum, v);
                raw.push(v);
            }
        } else {
            // The compressed payload legitimately expands (zero runs), so
            // the *initial* reservation is bounded by the input size; the
            // validated runs below grow it at most to `bucket_count`,
            // which the decode cap already bounds.
            raw = Vec::with_capacity(bucket_count.min(data.remaining()));
            while raw.len() < bucket_count {
                let token = get_varint(&mut data)?;
                if token == 0 {
                    let run = get_varint(&mut data)? as usize;
                    if run == 0 || raw.len() + run > bucket_count {
                        return Err(PersistError::Corrupt("zero run length"));
                    }
                    raw.resize(raw.len() + run, 0);
                    checksum = zero_run_checksum(checksum, run as u64);
                } else {
                    let v = unzigzag(token);
                    checksum = checksum_step(checksum, v);
                    raw.push(v);
                }
            }
            if data.remaining() != 8 {
                return Err(PersistError::Truncated);
            }
        }
        if data.get_u64_le() != checksum {
            return Err(PersistError::ChecksumMismatch);
        }
        Ok(EulerHistogram::from_parts(
            grid,
            Dense2D::from_vec(ew, eh, raw),
            object_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_grid::Snapper;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sample() -> EulerHistogram {
        let grid = Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, 40.0, 30.0).unwrap()),
            40,
            30,
        )
        .unwrap();
        let s = Snapper::new(grid);
        let mut rng = StdRng::seed_from_u64(9);
        let objects: Vec<_> = (0..500)
            .map(|_| {
                let x = rng.gen_range(0.0..38.0);
                let y = rng.gen_range(0.0..28.0);
                s.snap(&Rect::new(x, y, x + 1.5, y + 1.2).unwrap())
            })
            .collect();
        EulerHistogram::build(grid, &objects)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let h = sample();
        let bytes = h.to_bytes();
        let back = EulerHistogram::from_bytes(bytes).unwrap();
        assert_eq!(h, back);
        // And the frozen queries agree.
        let q = euler_grid::GridRect::unchecked(5, 5, 20, 15);
        assert_eq!(
            h.freeze().intersect_count(&q),
            back.freeze().intersect_count(&q)
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut raw = sample().to_bytes().to_vec();
        raw[0] = b'X';
        assert_eq!(
            EulerHistogram::from_bytes(Bytes::from(raw.clone())),
            Err(PersistError::BadMagic)
        );
        let mut raw = sample().to_bytes().to_vec();
        raw[4] = 99;
        assert_eq!(
            EulerHistogram::from_bytes(Bytes::from(raw)),
            Err(PersistError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let raw = sample().to_bytes();
        let truncated = raw.slice(0..raw.len() - 5);
        assert_eq!(
            EulerHistogram::from_bytes(truncated),
            Err(PersistError::Truncated)
        );
        // Flip one bucket word: checksum must catch it.
        let mut v = raw.to_vec();
        let idx = 4 + 4 + 32 + 32 + 16; // somewhere inside the buckets
        v[idx] ^= 0xFF;
        assert_eq!(
            EulerHistogram::from_bytes(Bytes::from(v)),
            Err(PersistError::ChecksumMismatch)
        );
    }

    #[test]
    fn compressed_round_trip_and_ratio() {
        let h = sample();
        let plain = h.to_bytes();
        let packed = h.to_bytes_compressed();
        let back = EulerHistogram::from_bytes(packed.clone()).unwrap();
        assert_eq!(h, back);
        // The 40x30 sample is sparse-ish; compression must win clearly.
        assert!(
            packed.len() * 4 < plain.len(),
            "compressed {} vs plain {}",
            packed.len(),
            plain.len()
        );
    }

    #[test]
    fn compressed_rejects_corruption() {
        let h = sample();
        let packed = h.to_bytes_compressed();
        // Truncate inside the varint stream.
        let truncated = packed.slice(0..packed.len() - 12);
        assert!(EulerHistogram::from_bytes(truncated).is_err());
        // Flip a payload byte: either the varint structure breaks or the
        // checksum catches it.
        let mut v = packed.to_vec();
        let idx = v.len() / 2;
        v[idx] ^= 0x2A;
        assert!(EulerHistogram::from_bytes(Bytes::from(v)).is_err());
    }

    /// A small seeded histogram for the exhaustive-mutation test: both
    /// encodings stay a few KiB, so flipping every byte is cheap.
    fn small_sample() -> EulerHistogram {
        let grid = Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, 12.0, 9.0).unwrap()),
            12,
            9,
        )
        .unwrap();
        let s = Snapper::new(grid);
        let mut rng = StdRng::seed_from_u64(0xADE5);
        let objects: Vec<_> = (0..120)
            .map(|_| {
                let x = rng.gen_range(0.0..11.0);
                let y = rng.gen_range(0.0..8.0);
                s.snap(&Rect::new(x, y, x + 0.9, y + 0.8).unwrap())
            })
            .collect();
        EulerHistogram::build(grid, &objects)
    }

    #[test]
    fn adversarial_mutations_always_err_and_never_panic() {
        // Every single-byte flip, every truncation length, and trailing
        // extension must yield a PersistError — the header-seeded
        // checksum means no field is silently mutable. (A panic or an
        // over-allocation would fail/kill this test.)
        let h = small_sample();
        for original in [h.to_bytes(), h.to_bytes_compressed()] {
            let bytes = original.to_vec();
            for i in 0..bytes.len() {
                for pat in [0xFFu8, 0x01] {
                    let mut m = bytes.clone();
                    m[i] ^= pat;
                    assert!(
                        EulerHistogram::from_bytes(Bytes::from(m)).is_err(),
                        "flip {pat:#04x} at offset {i} decoded successfully"
                    );
                }
            }
            for len in 0..bytes.len() {
                assert!(
                    EulerHistogram::from_bytes(Bytes::from(bytes[..len].to_vec())).is_err(),
                    "truncation to {len} bytes decoded successfully"
                );
            }
            for extra in 1..16 {
                let mut m = bytes.clone();
                m.extend((0..extra).map(|k| (k * 37 + 11) as u8));
                assert!(
                    EulerHistogram::from_bytes(Bytes::from(m)).is_err(),
                    "extension by {extra} bytes decoded successfully"
                );
            }
        }
    }

    #[test]
    fn adversarial_headers_are_capped_before_allocation() {
        // A handcrafted header declaring absurd dims must be rejected up
        // front — no multi-GiB reservation, no arithmetic overflow.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        for b in [0.0f64, 0.0, 360.0, 180.0] {
            buf.put_f64_le(b);
        }
        buf.put_u64_le(u64::MAX); // nx
        buf.put_u64_le(u64::MAX); // ny
        buf.put_u64_le(0); // object_count
        buf.put_u64_le(u64::MAX); // bucket_count
        assert_eq!(
            EulerHistogram::from_bytes(buf.freeze()),
            Err(PersistError::Corrupt("grid dims"))
        );
        // Dims just over the cap (but individually plausible) also fail.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_COMPRESSED);
        for b in [0.0f64, 0.0, 360.0, 180.0] {
            buf.put_f64_le(b);
        }
        buf.put_u64_le(1 << 20);
        buf.put_u64_le(1 << 20);
        buf.put_u64_le(0);
        buf.put_u64_le((1 << 20) * (1 << 20));
        assert_eq!(
            EulerHistogram::from_bytes(buf.freeze()),
            Err(PersistError::Corrupt("grid exceeds decode cap"))
        );
    }

    #[test]
    fn zigzag_varint_primitives() {
        for v in [0i64, 1, -1, 2, -2, 1000, -1000, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut data = buf.freeze();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(get_varint(&mut data).unwrap(), v);
        }
    }

    #[test]
    fn round_trip_preserves_compressed_freezes() {
        // Persistence stores raw buckets, so it is tier-independent: a
        // revived histogram must freeze to the same compressed cube —
        // and answer identically — as the original.
        let h = sample();
        for bytes in [h.to_bytes(), h.to_bytes_compressed()] {
            let back = EulerHistogram::from_bytes(bytes).unwrap();
            let fa = h.freeze_compressed();
            let fb = back.freeze_compressed();
            assert_eq!(fa, fb);
            assert!(fa.is_compressed() && fb.is_compressed());
            let q = euler_grid::GridRect::unchecked(3, 2, 31, 24);
            assert_eq!(
                fa.intersect_count(&q),
                back.freeze_dense().intersect_count(&q)
            );
        }
    }

    #[test]
    fn empty_histogram_round_trips() {
        let grid = Grid::new(DataSpace::new(Rect::new(0.0, 0.0, 4.0, 4.0).unwrap()), 4, 4).unwrap();
        let h = EulerHistogram::new(grid);
        let back = EulerHistogram::from_bytes(h.to_bytes()).unwrap();
        assert_eq!(h, back);
    }
}
