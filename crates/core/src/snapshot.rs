//! The epoch-snapshot ingest substrate: an LSM-style two-tier live Euler
//! histogram unifying the frozen and dynamic read paths.
//!
//! ## Why
//!
//! The workspace has two write paths with opposite trade-offs: the static
//! pipeline ([`crate::EulerHistogram`] → [`crate::EulerHistogram::freeze`])
//! pays `O(buckets)` per snapshot but answers in O(1), while
//! [`DynamicEulerHistogram`] absorbs updates in `O(log² n)` but must be
//! guarded by a lock whenever it is shared — and a lock held across a
//! whole tiling stalls writers on every browse. This module keeps both
//! strengths: reads are served from an immutable [`LiveSnapshot`] (no lock
//! held while answering), writes go to a small mutable delta, and a
//! periodic **refreeze** folds the delta back into a fresh frozen cube.
//!
//! ## Structure
//!
//! ```text
//!            writers (mutex-serialized)               readers
//!   insert/remove ──► memtable (DynamicEulerHistogram)
//!                     │ every `seal_every` ops            pin() ──► Arc<LiveSnapshot>
//!                     ▼                                      epoch e, version v
//!                  sealed runs [run₀, run₁, …]               ├─ frozen prefix cube
//!                     │ every `refreeze_every` ops           ├─ sealed runs (shared)
//!                     ▼                                      └─ tail ops (persistent list)
//!                  refreeze: fold delta into base,
//!                  freeze, publish epoch e+1
//! ```
//!
//! Every write publishes a fresh [`LiveSnapshot`] (version `v+1`) that
//! shares all heavy state with its predecessor: the frozen cube and the
//! sealed runs by `Arc`, the unsealed tail as a persistent cons list
//! (O(1) push). A reader [`LiveEulerHistogram::pin`]s the current snapshot
//! — one brief read-lock acquisition — and then answers any number of
//! `signed_sum`s, estimates and tilings without further synchronization,
//! as `frozen + Σ runs + Σ tail`. A refreeze never blocks readers: they
//! keep their pinned snapshot; only the *next* pin sees the new epoch.
//!
//! ## Consistency guarantee
//!
//! Writes are serialized, so the write log has a single total order, and
//! snapshot `version` counts applied writes. Every quantity a snapshot
//! answers is **bit-identical** to a frozen histogram rebuilt from the
//! first `version` write-log entries — the concurrent-interleaving law
//! the conformance suite enforces at several thread counts. Epoch bumps
//! (refreezes) change the representation, never the answer.
use std::sync::{Arc, Mutex, RwLock};

use euler_cube::Diff2D;
use euler_grid::{Grid, GridRect, SnappedRect, Tiling};

use crate::sweep::{sweep_tile_sums, TilingPlan};
use crate::{
    s_euler_counts, DynamicEulerHistogram, EulerHistogram, EulerSource, FrozenEulerHistogram,
    Level2Estimator, RelationCounts,
};

/// Default number of unsealed tail ops before the memtable is sealed into
/// a run (keeps per-query tail scans short).
pub const DEFAULT_SEAL_EVERY: usize = 64;

/// Default number of delta ops before an automatic refreeze folds the
/// delta into a fresh frozen cube.
pub const DEFAULT_REFREEZE_EVERY: usize = 1024;

/// A consistent checkpoint of a [`LiveEulerHistogram`]: the frozen base
/// serialized with [`crate::EulerHistogram::to_bytes_compressed`] plus
/// the exact `(epoch, version)` write-log position it captures. Produced
/// by [`LiveEulerHistogram::checkpoint_image`]; consumed by the
/// durability layer, which pairs it with a WAL suffix and restores via
/// [`LiveEulerHistogram::restore`].
#[derive(Debug, Clone)]
pub struct CheckpointImage {
    /// Epoch at the moment of the checkpoint (after folding the delta).
    pub epoch: u64,
    /// Write-log prefix length the image covers.
    pub version: u64,
    /// The compressed persist-codec encoding of the frozen base.
    pub bytes: bytes::Bytes,
}

/// One write-log entry: a snapped footprint with its sign (`+1` insert,
/// `−1` delete).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaOp {
    /// The snapped object footprint.
    pub rect: SnappedRect,
    /// `+1` for an insert, `−1` for a delete.
    pub sign: i64,
}

impl DeltaOp {
    /// An insert op.
    pub fn insert(rect: SnappedRect) -> DeltaOp {
        DeltaOp { rect, sign: 1 }
    }

    /// A delete op.
    pub fn delete(rect: SnappedRect) -> DeltaOp {
        DeltaOp { rect, sign: -1 }
    }
}

/// Persistent cons list of unsealed tail ops: every write pushes one node
/// in O(1); snapshots share suffixes structurally.
#[derive(Debug)]
struct TailNode {
    op: DeltaOp,
    rest: Option<Arc<TailNode>>,
}

/// A sealed memtable: an immutable [`DynamicEulerHistogram`] holding the
/// signed footprints of `ops`, serving `O(log² n)` signed sums. The op
/// list is kept alongside for the tiling scatter path.
#[derive(Debug)]
struct SealedRun {
    hist: DynamicEulerHistogram,
    ops: Vec<DeltaOp>,
}

/// `alt(a, b)`: the signed-bucket sum `Σ_{i=a..=b} (−1)^i` of a run of
/// alternating Euler signs — `0` on an empty or even/odd-mismatched run,
/// else `(−1)^a`. With `a = max(window_lo, 2·c0)` and
/// `b = min(window_hi, 2·c1)` this is the per-axis factor of one object
/// footprint's contribution to a signed window sum (the footprint's
/// per-axis profile is exactly `(−1)^i` over `[2c0, 2c1]`).
#[inline]
fn alt(a: i64, b: i64) -> i64 {
    if a > b || (b - a).rem_euclid(2) != 0 {
        0
    } else if a.rem_euclid(2) == 0 {
        1
    } else {
        -1
    }
}

/// One op's exact contribution to `signed_sum(ex0..ex1, ey0..ey1)`,
/// in closed form (the footprint is a rank-1 sign pattern, so the 2-D sum
/// factors per axis).
#[inline]
fn op_signed_sum(op: &DeltaOp, ex0: i64, ey0: i64, ex1: i64, ey1: i64) -> i64 {
    let fx = alt(
        ex0.max(2 * op.rect.cx0() as i64),
        ex1.min(2 * op.rect.cx1() as i64),
    );
    if fx == 0 {
        return 0;
    }
    let fy = alt(
        ey0.max(2 * op.rect.cy0() as i64),
        ey1.min(2 * op.rect.cy1() as i64),
    );
    op.sign * fx * fy
}

/// An immutable point-in-time view of a [`LiveEulerHistogram`]: the
/// frozen prefix cube of the last refreeze plus the delta accumulated
/// since, queryable lock-free through [`EulerSource`].
///
/// Cloning the `Arc` a reader holds is the only way snapshots move;
/// nothing in here is ever mutated after publication.
#[derive(Debug)]
pub struct LiveSnapshot {
    epoch: u64,
    version: u64,
    frozen: Arc<FrozenEulerHistogram>,
    runs: Arc<Vec<Arc<SealedRun>>>,
    tail: Option<Arc<TailNode>>,
    /// Net object count of the delta (Σ signs over runs + tail).
    delta_count: i64,
    /// Total number of delta ops (runs + tail).
    delta_ops: usize,
}

impl LiveSnapshot {
    /// The refreeze generation this snapshot belongs to. Bumped by every
    /// refreeze (including empty-delta no-ops); starts at 1.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of write-log entries applied: this snapshot answers every
    /// query exactly as a frozen rebuild of the first `version()` writes.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of delta ops not yet folded into the frozen cube.
    #[inline]
    pub fn delta_len(&self) -> usize {
        self.delta_ops
    }

    /// The frozen prefix cube of the last refreeze.
    #[inline]
    pub fn frozen(&self) -> &Arc<FrozenEulerHistogram> {
        &self.frozen
    }

    /// Signed sum over a clipped Euler-index rectangle: the frozen cube's
    /// O(1) prefix lookup plus `O(runs · log² n + tail)` delta terms.
    pub fn signed_sum(&self, ex0: i64, ey0: i64, ex1: i64, ey1: i64) -> i64 {
        if ex0 > ex1 || ey0 > ey1 {
            return 0;
        }
        let mut sum = self.frozen.signed_sum(ex0, ey0, ex1, ey1);
        for run in self.runs.iter() {
            sum += run.hist.signed_sum(ex0, ey0, ex1, ey1);
        }
        let mut node = self.tail.as_deref();
        while let Some(n) = node {
            sum += op_signed_sum(&n.op, ex0, ey0, ex1, ey1);
            node = n.rest.as_deref();
        }
        sum
    }

    /// Every delta op (sealed runs first, then the tail; order is
    /// irrelevant to the linear sums the callers compute).
    fn for_each_delta_op(&self, mut f: impl FnMut(&DeltaOp)) {
        for run in self.runs.iter() {
            for op in &run.ops {
                f(op);
            }
        }
        let mut node = self.tail.as_deref();
        while let Some(n) = node {
            f(&n.op);
            node = n.rest.as_deref();
        }
    }
}

impl EulerSource for LiveSnapshot {
    fn grid(&self) -> &Grid {
        self.frozen.grid()
    }

    fn object_count(&self) -> u64 {
        (self.frozen.object_count() as i64 + self.delta_count) as u64
    }

    fn inside_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 < x1 && y0 < y1);
        self.signed_sum(
            2 * x0 as i64,
            2 * y0 as i64,
            2 * x1 as i64 - 2,
            2 * y1 as i64 - 2,
        )
    }

    fn closed_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 < x1 && y0 < y1);
        self.signed_sum(
            2 * x0 as i64 - 1,
            2 * y0 as i64 - 1,
            2 * x1 as i64 - 1,
            2 * y1 as i64 - 1,
        )
    }

    fn total(&self) -> i64 {
        self.frozen.total() + self.delta_count
    }

    fn as_frozen(&self) -> Option<&FrozenEulerHistogram> {
        // With an empty delta the snapshot *is* its frozen cube, so the
        // uninterruptible sweep kernels may run directly on it.
        if self.delta_ops == 0 {
            Some(&self.frozen)
        } else {
            None
        }
    }

    fn inside_closed_sums(&self, q: &GridRect) -> (i64, i64) {
        // Frozen half of both estimator windows in one batched
        // eight-corner gather, then a single delta walk adding each
        // op's contribution to both windows — instead of two full
        // `signed_sum` passes over runs and tail.
        let (mut n_ii, mut closed) = self.frozen.inside_closed_sums(q);
        if self.delta_ops == 0 {
            return (n_ii, closed);
        }
        let (ix0, iy0) = (2 * q.x0 as i64, 2 * q.y0 as i64);
        let (ix1, iy1) = (2 * q.x1 as i64 - 2, 2 * q.y1 as i64 - 2);
        let (cx0, cy0) = (ix0 - 1, iy0 - 1);
        let (cx1, cy1) = (ix1 + 1, iy1 + 1);
        for run in self.runs.iter() {
            n_ii += run.hist.signed_sum(ix0, iy0, ix1, iy1);
            closed += run.hist.signed_sum(cx0, cy0, cx1, cy1);
        }
        let mut node = self.tail.as_deref();
        while let Some(n) = node {
            n_ii += op_signed_sum(&n.op, ix0, iy0, ix1, iy1);
            closed += op_signed_sum(&n.op, cx0, cy0, cx1, cy1);
            node = n.rest.as_deref();
        }
        (n_ii, closed)
    }
}

/// Writer-side state, serialized under one mutex. Readers never take it.
#[derive(Debug)]
struct WriterState {
    /// Mutable bucket array holding everything folded so far; refreeze
    /// folds `pending` into it and freezes a new prefix cube.
    base: EulerHistogram,
    /// All delta ops since the last refreeze (the fold source).
    pending: Vec<DeltaOp>,
    /// The live memtable: unsealed ops applied incrementally.
    memtable: DynamicEulerHistogram,
    memtable_ops: Vec<DeltaOp>,
    runs: Arc<Vec<Arc<SealedRun>>>,
    tail: Option<Arc<TailNode>>,
    frozen: Arc<FrozenEulerHistogram>,
    epoch: u64,
    version: u64,
    delta_count: i64,
}

impl WriterState {
    fn snapshot(&self) -> Arc<LiveSnapshot> {
        Arc::new(LiveSnapshot {
            epoch: self.epoch,
            version: self.version,
            frozen: Arc::clone(&self.frozen),
            runs: Arc::clone(&self.runs),
            tail: self.tail.clone(),
            delta_count: self.delta_count,
            delta_ops: self.pending.len(),
        })
    }
}

/// The live histogram: a [`LiveEulerHistogram`] accepts `O(log² n)`
/// inserts/deletes from any thread, serves lock-free reads through pinned
/// [`LiveSnapshot`]s, and periodically refreezes the accumulated delta
/// into a fresh frozen prefix cube, publishing a new epoch without ever
/// blocking readers.
///
/// ```
/// use euler_core::{LiveEulerHistogram, EulerSource};
/// use euler_geom::Rect;
/// use euler_grid::{DataSpace, Grid, GridRect, Snapper};
///
/// let grid = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
/// let live = LiveEulerHistogram::new(grid);
/// let snapper = Snapper::new(grid);
/// live.insert(&snapper.snap(&Rect::new(10.0, 10.0, 20.0, 20.0).unwrap()));
/// let snap = live.pin(); // immutable view; later writes don't affect it
/// live.insert(&snapper.snap(&Rect::new(200.0, 90.0, 210.0, 95.0).unwrap()));
/// assert_eq!(snap.object_count(), 1);
/// assert_eq!(live.pin().object_count(), 2);
/// let refrozen = live.refreeze(); // fold the delta; epoch 2
/// assert_eq!(refrozen.epoch(), 2);
/// assert_eq!(refrozen.delta_len(), 0);
/// ```
#[derive(Debug)]
pub struct LiveEulerHistogram {
    writer: Mutex<WriterState>,
    /// The published snapshot. Writers replace the `Arc` under a brief
    /// write lock; readers clone it under a brief read lock — no lock is
    /// ever held while *answering* queries.
    current: RwLock<Arc<LiveSnapshot>>,
    seal_every: usize,
    refreeze_every: Option<usize>,
}

impl LiveEulerHistogram {
    /// An empty live histogram with default seal/refreeze thresholds.
    /// Grids must be at least 2×2 cells (the memtable's requirement).
    pub fn new(grid: Grid) -> LiveEulerHistogram {
        LiveEulerHistogram::with_config(grid, DEFAULT_SEAL_EVERY, Some(DEFAULT_REFREEZE_EVERY))
    }

    /// An empty live histogram with explicit thresholds: the memtable is
    /// sealed into a run every `seal_every` ops, and the delta is folded
    /// into a fresh frozen cube every `refreeze_every` ops (`None`
    /// disables automatic refreeze — callers drive it explicitly).
    pub fn with_config(
        grid: Grid,
        seal_every: usize,
        refreeze_every: Option<usize>,
    ) -> LiveEulerHistogram {
        LiveEulerHistogram::from_base(EulerHistogram::new(grid), seal_every, refreeze_every)
    }

    /// Bulk-builds from snapped objects (epoch 1 holds them all frozen).
    pub fn with_objects(grid: Grid, objects: &[SnappedRect]) -> LiveEulerHistogram {
        LiveEulerHistogram::from_base(
            EulerHistogram::build(grid, objects),
            DEFAULT_SEAL_EVERY,
            Some(DEFAULT_REFREEZE_EVERY),
        )
    }

    /// Wraps an already-built mutable histogram as epoch 1's frozen base.
    pub fn from_base(
        base: EulerHistogram,
        seal_every: usize,
        refreeze_every: Option<usize>,
    ) -> LiveEulerHistogram {
        assert!(seal_every > 0, "seal_every must be positive");
        let grid = *base.grid();
        let frozen = Arc::new(base.freeze());
        let state = WriterState {
            base,
            pending: Vec::new(),
            memtable: DynamicEulerHistogram::new(grid),
            memtable_ops: Vec::new(),
            runs: Arc::new(Vec::new()),
            tail: None,
            frozen,
            epoch: 1,
            version: 0,
            delta_count: 0,
        };
        let current = RwLock::new(state.snapshot());
        LiveEulerHistogram {
            writer: Mutex::new(state),
            current,
            seal_every,
            refreeze_every,
        }
    }

    /// The grid summarized.
    pub fn grid(&self) -> Grid {
        *self.pin().grid()
    }

    /// Live object count (frozen + delta).
    pub fn len(&self) -> u64 {
        self.pin().object_count()
    }

    /// Whether the live count is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current epoch (bumped by every refreeze; starts at 1).
    pub fn epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// Number of writes applied so far.
    pub fn version(&self) -> u64 {
        self.pin().version()
    }

    /// Pins the current snapshot: one brief read-lock acquisition, then
    /// the returned view answers queries with no synchronization at all.
    pub fn pin(&self) -> Arc<LiveSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Inserts a snapped object: `O(log² n)` memtable work plus an O(1)
    /// snapshot publication.
    pub fn insert(&self, o: &SnappedRect) {
        self.apply(DeltaOp::insert(*o));
    }

    /// Removes a previously inserted object (the histogram is a linear
    /// sketch, so removal is exact). Panics if the live count is zero.
    pub fn remove(&self, o: &SnappedRect) {
        self.apply(DeltaOp::delete(*o));
    }

    /// Applies one signed write-log entry.
    pub fn apply(&self, op: DeltaOp) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if op.sign < 0 {
            let live = w.frozen.object_count() as i64 + w.delta_count;
            assert!(live > 0, "remove from empty live histogram");
        }
        w.memtable.apply_signed(&op.rect, op.sign);
        w.memtable_ops.push(op);
        w.tail = Some(Arc::new(TailNode {
            op,
            rest: w.tail.take(),
        }));
        w.pending.push(op);
        w.delta_count += op.sign;
        w.version += 1;
        if w.memtable_ops.len() >= self.seal_every {
            Self::seal(&mut w);
        }
        match self.refreeze_every {
            Some(limit) if w.pending.len() >= limit => Self::refreeze_locked(&mut w),
            _ => {}
        }
        self.publish(&w);
    }

    /// Moves the memtable into an immutable sealed run.
    fn seal(w: &mut WriterState) {
        let grid = *w.base.grid();
        let hist = std::mem::replace(&mut w.memtable, DynamicEulerHistogram::new(grid));
        let ops = std::mem::take(&mut w.memtable_ops);
        let mut runs: Vec<Arc<SealedRun>> = w.runs.as_ref().clone();
        runs.push(Arc::new(SealedRun { hist, ops }));
        w.runs = Arc::new(runs);
        w.tail = None;
    }

    /// Folds the entire delta into the frozen base and bumps the epoch.
    /// An empty delta reuses the previous frozen cube (a pure epoch bump).
    fn refreeze_locked(w: &mut WriterState) {
        if !w.pending.is_empty() {
            let pending = std::mem::take(&mut w.pending);
            w.base
                .apply_signed_batch(pending.iter().map(|op| (&op.rect, op.sign)));
            w.frozen = Arc::new(w.base.freeze());
            let grid = *w.base.grid();
            w.memtable = DynamicEulerHistogram::new(grid);
            w.memtable_ops.clear();
            w.runs = Arc::new(Vec::new());
            w.tail = None;
            w.delta_count = 0;
        }
        w.epoch += 1;
    }

    /// Folds the current delta into a fresh frozen cube and publishes the
    /// next epoch. Pinned readers are untouched; they keep their snapshot.
    /// Returns the newly published snapshot.
    pub fn refreeze(&self) -> Arc<LiveSnapshot> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        Self::refreeze_locked(&mut w);
        let snap = w.snapshot();
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&snap);
        snap
    }

    /// Takes a consistent durability checkpoint: folds any pending delta
    /// (bumping the epoch, exactly like [`LiveEulerHistogram::refreeze`])
    /// and serializes the frozen base with the compressed persist codec,
    /// all under the writer lock so the image names one exact write-log
    /// prefix. Restoring the image via [`LiveEulerHistogram::restore`]
    /// and replaying write-log entries `> version` reproduces the live
    /// state bit-for-bit. An already-clean delta produces no epoch bump.
    pub fn checkpoint_image(&self) -> CheckpointImage {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if !w.pending.is_empty() {
            Self::refreeze_locked(&mut w);
            let snap = w.snapshot();
            *self.current.write().unwrap_or_else(|e| e.into_inner()) = snap;
        }
        CheckpointImage {
            epoch: w.epoch,
            version: w.version,
            bytes: w.base.to_bytes_compressed(),
        }
    }

    /// Restores a live histogram from a durability checkpoint: like
    /// [`LiveEulerHistogram::from_base`], but resuming the `epoch` and
    /// `version` counters the checkpoint recorded instead of restarting
    /// at epoch 1 / version 0 — so a write-ahead log replayed on top
    /// stays version-aligned (log record N ↔ write-log version N).
    pub fn restore(
        base: EulerHistogram,
        seal_every: usize,
        refreeze_every: Option<usize>,
        epoch: u64,
        version: u64,
    ) -> LiveEulerHistogram {
        let live = LiveEulerHistogram::from_base(base, seal_every, refreeze_every);
        {
            let mut w = live.writer.lock().unwrap_or_else(|e| e.into_inner());
            w.epoch = epoch.max(1);
            w.version = version;
            live.publish(&w);
        }
        live
    }

    /// Refreezes only if the delta is nonempty, returning the (then
    /// delta-free) current snapshot — the freeze-on-read entry point.
    pub fn refreeze_if_stale(&self) -> Arc<LiveSnapshot> {
        let snap = self.pin();
        if snap.delta_len() == 0 {
            return snap;
        }
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the writer lock: a racing refreeze may have won.
        if w.pending.is_empty() {
            drop(w);
            return self.pin();
        }
        Self::refreeze_locked(&mut w);
        let snap = w.snapshot();
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&snap);
        snap
    }

    fn publish(&self, w: &WriterState) {
        let snap = w.snapshot();
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = snap;
    }
}

/// Per-axis delta profile of one op over a tiling's closed windows: the
/// closed window of a tile column `[x0, x1]` sees per-axis factor `+1`
/// when the op's cells are contained in the column's cells, `−1` when the
/// op spans strictly across both column boundaries, else `0` — so the
/// nonzero tiles form either one `+1` tile or one contiguous `−1` run.
///
/// `bounds` are the `k + 1` tile-boundary grid lines; returns
/// `(factor, first_tile, last_tile)`.
fn closed_span(bounds: &[usize], c0: usize, c1: usize) -> Option<(i64, usize, usize)> {
    let k = bounds.len() - 1;
    // Contained: the unique tile t with bounds[t] <= c0 and c1 < bounds[t+1].
    let p = bounds[..k].partition_point(|&b| b <= c0);
    if p > 0 {
        let t = p - 1;
        if c1 < bounds[t + 1] {
            return Some((1, t, t));
        }
    }
    // Spanning: tiles with bounds[t] > c0 and bounds[t+1] <= c1.
    let lo = bounds[..k].partition_point(|&b| b <= c0);
    let hi = bounds[1..].partition_point(|&b| b <= c1);
    if lo < hi {
        return Some((-1, lo, hi - 1));
    }
    None
}

/// Per-axis delta profile over a tiling's inside windows: factor `+1` on
/// every tile column whose cells intersect the op's cells (a contiguous
/// run), else `0`.
fn inside_span(bounds: &[usize], c0: usize, c1: usize) -> Option<(usize, usize)> {
    let k = bounds.len() - 1;
    let lo = bounds[1..].partition_point(|&b| b <= c0);
    let hi = bounds[..k].partition_point(|&b| b <= c1);
    if lo < hi {
        Some((lo, hi - 1))
    } else {
        None
    }
}

/// S-EulerApprox over a pinned [`LiveSnapshot`]: the estimator the browse
/// services hand to the batch engine. Holding it pins the snapshot — all
/// answers come from one epoch, which [`Level2Estimator::epoch`] reports.
///
/// `estimate_tiling` runs the frozen sweep kernel and then *scatters* the
/// delta over the tile grid in `O(delta + tiles)` — each op's per-tile
/// contribution factors into contiguous per-axis runs (see
/// [`closed_span`]/[`inside_span`] internals), so one difference-array
/// rectangle add per op per window kind replaces a per-(tile, op) loop.
/// The result is bit-identical to the per-tile estimate loop, preserving
/// the workspace's sweep-equivalence law.
#[derive(Debug, Clone)]
pub struct LiveSEuler {
    snap: Arc<LiveSnapshot>,
}

impl LiveSEuler {
    /// Wraps a pinned snapshot.
    pub fn new(snap: Arc<LiveSnapshot>) -> LiveSEuler {
        LiveSEuler { snap }
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<LiveSnapshot> {
        &self.snap
    }
}

impl Level2Estimator for LiveSEuler {
    fn name(&self) -> &'static str {
        // Same algebra as `SEulerApprox`, and result tables key on the
        // estimator name — keep them unified.
        "S-EulerApprox"
    }

    fn estimate(&self, q: &GridRect) -> RelationCounts {
        s_euler_counts(&*self.snap, q)
    }

    fn object_count(&self) -> u64 {
        self.snap.object_count()
    }

    fn storage_cells(&self) -> u64 {
        let (ew, eh) = self.snap.grid().euler_dims();
        (ew * eh) as u64
    }

    fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
        let plan = TilingPlan::new(t);
        let sums = sweep_tile_sums(self.snap.frozen(), &plan, None);
        let (cols, rows) = (plan.cols(), plan.rows());
        // Scatter the delta over the tile grid: one rectangle add per op
        // per window kind, then a single difference-array build.
        let (d_inside, d_closed) = if self.snap.delta_len() == 0 {
            (None, None)
        } else {
            let mut d_in = Diff2D::zeros(cols, rows);
            let mut d_cl = Diff2D::zeros(cols, rows);
            let (xs, ys) = (plan.x_bounds(), plan.y_bounds());
            self.snap.for_each_delta_op(|op| {
                let (cx0, cx1) = (op.rect.cx0(), op.rect.cx1());
                let (cy0, cy1) = (op.rect.cy0(), op.rect.cy1());
                if let (Some((x0, x1)), Some((y0, y1))) =
                    (inside_span(xs, cx0, cx1), inside_span(ys, cy0, cy1))
                {
                    d_in.add_rect(x0, y0, x1, y1, op.sign);
                }
                if let (Some((vx, x0, x1)), Some((vy, y0, y1))) =
                    (closed_span(xs, cx0, cx1), closed_span(ys, cy0, cy1))
                {
                    d_cl.add_rect(x0, y0, x1, y1, op.sign * vx * vy);
                }
            });
            (Some(d_in.build()), Some(d_cl.build()))
        };
        let size = self.snap.object_count() as i64;
        let total = self.snap.total();
        let mut out = Vec::with_capacity(plan.len());
        for r in 0..rows {
            for c in 0..cols {
                let ts = &sums[r * cols + c];
                let n_ii = ts.n_ii + d_inside.as_ref().map_or(0, |d| d.get(c, r));
                let closed = ts.closed + d_closed.as_ref().map_or(0, |d| d.get(c, r));
                let n_ei = total - closed;
                let disjoint = size - n_ii;
                out.push(RelationCounts {
                    disjoint,
                    contains: size - n_ei,
                    contained: 0,
                    overlaps: n_ei - disjoint,
                });
            }
        }
        out
    }

    fn supports_sweep(&self) -> bool {
        true
    }

    fn epoch(&self) -> Option<u64> {
        Some(self.snap.epoch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Snapper};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid(nx: usize, ny: usize) -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    fn random_objects(g: &Grid, n: usize, seed: u64) -> Vec<SnappedRect> {
        let s = Snapper::new(*g);
        let mut rng = StdRng::seed_from_u64(seed);
        let (w, h) = (g.nx() as f64, g.ny() as f64);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..w - 0.05);
                let y = rng.gen_range(0.0..h - 0.05);
                let ww = rng.gen_range(0.05..w);
                let hh = rng.gen_range(0.05..h);
                s.snap(&Rect::new(x, y, (x + ww).min(w), (y + hh).min(h)).unwrap())
            })
            .collect()
    }

    /// A seeded write log: inserts and (valid) deletes of earlier inserts.
    fn write_log(g: &Grid, n: usize, seed: u64) -> Vec<DeltaOp> {
        let pool = random_objects(g, n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut alive: Vec<SnappedRect> = Vec::new();
        let mut log = Vec::with_capacity(n);
        for o in pool {
            if !alive.is_empty() && rng.gen_bool(0.3) {
                let i = rng.gen_range(0..alive.len());
                log.push(DeltaOp::delete(alive.swap_remove(i)));
            } else {
                alive.push(o);
                log.push(DeltaOp::insert(o));
            }
        }
        log
    }

    /// Frozen rebuild of a write-log prefix.
    fn rebuild(g: Grid, log: &[DeltaOp]) -> FrozenEulerHistogram {
        let mut h = EulerHistogram::new(g);
        h.apply_signed_batch(log.iter().map(|op| (&op.rect, op.sign)));
        h.freeze()
    }

    fn windows() -> Vec<(i64, i64, i64, i64)> {
        vec![
            (0, 0, 30, 22),
            (-1, -1, 9, 9),
            (4, 3, 4, 3),
            (3, 1, 17, 13),
            (-2, 5, 40, 5),
            (1, 1, 25, 19),
        ]
    }

    #[test]
    fn live_signed_sums_match_frozen_rebuild_at_every_version() {
        let g = grid(16, 12);
        let log = write_log(&g, 120, 1);
        // Tiny thresholds so the test crosses seal and refreeze boundaries.
        let live = LiveEulerHistogram::with_config(g, 5, Some(23));
        for (i, op) in log.iter().enumerate() {
            live.apply(*op);
            let snap = live.pin();
            assert_eq!(snap.version(), i as u64 + 1);
            let reference = rebuild(g, &log[..=i]);
            for (ex0, ey0, ex1, ey1) in windows() {
                assert_eq!(
                    snap.signed_sum(ex0, ey0, ex1, ey1),
                    reference.signed_sum(ex0, ey0, ex1, ey1),
                    "window ({ex0},{ey0})..({ex1},{ey1}) at version {}",
                    i + 1
                );
            }
            assert_eq!(snap.object_count(), reference.object_count());
            assert_eq!(snap.total(), reference.total());
        }
    }

    #[test]
    fn estimates_match_frozen_s_euler() {
        let g = grid(14, 10);
        let log = write_log(&g, 90, 2);
        let live = LiveEulerHistogram::with_config(g, 7, None);
        for op in &log {
            live.apply(*op);
        }
        let snap = live.pin();
        let reference = crate::SEulerApprox::new(rebuild(g, &log));
        for (x0, y0, x1, y1) in [(0, 0, 14, 10), (3, 2, 9, 8), (13, 9, 14, 10)] {
            let q = GridRect::unchecked(x0, y0, x1, y1);
            let est = LiveSEuler::new(Arc::clone(&snap));
            assert_eq!(est.estimate(&q), reference.estimate(&q), "{q}");
        }
    }

    #[test]
    fn pinned_snapshot_is_isolated_from_later_writes() {
        let g = grid(8, 8);
        let s = Snapper::new(g);
        let live = LiveEulerHistogram::new(g);
        live.insert(&s.snap(&Rect::new(1.0, 1.0, 3.0, 3.0).unwrap()));
        let pinned = live.pin();
        live.insert(&s.snap(&Rect::new(4.0, 4.0, 6.0, 6.0).unwrap()));
        live.refreeze();
        live.remove(&s.snap(&Rect::new(1.0, 1.0, 3.0, 3.0).unwrap()));
        assert_eq!(pinned.object_count(), 1);
        assert_eq!(pinned.version(), 1);
        assert_eq!(live.pin().object_count(), 1);
        assert_eq!(live.pin().version(), 3);
    }

    #[test]
    fn empty_delta_refreeze_is_a_pure_epoch_bump() {
        let g = grid(6, 6);
        let s = Snapper::new(g);
        let live = LiveEulerHistogram::new(g);
        live.insert(&s.snap(&Rect::new(0.5, 0.5, 2.5, 2.5).unwrap()));
        let first = live.refreeze();
        assert_eq!(first.epoch(), 2);
        assert_eq!(first.delta_len(), 0);
        let second = live.refreeze();
        assert_eq!(second.epoch(), 3);
        assert_eq!(second.version(), first.version());
        // The frozen cube is literally reused, not rebuilt.
        assert!(Arc::ptr_eq(first.frozen(), second.frozen()));
        // refreeze_if_stale sees no delta and leaves the epoch alone.
        let third = live.refreeze_if_stale();
        assert_eq!(third.epoch(), 3);
    }

    #[test]
    fn insert_then_delete_in_one_delta_refreezes_to_the_base() {
        let g = grid(10, 10);
        let s = Snapper::new(g);
        let base = random_objects(&g, 40, 3);
        let live = LiveEulerHistogram::with_objects(g, &base);
        let ghost = s.snap(&Rect::new(2.2, 2.2, 7.7, 7.7).unwrap());
        live.insert(&ghost);
        live.remove(&ghost);
        let snap = live.refreeze();
        assert_eq!(snap.epoch(), 2);
        let reference = EulerHistogram::build(g, &base).freeze();
        assert_eq!(*snap.frozen().as_ref(), reference);
        assert_eq!(snap.object_count(), 40);
    }

    #[test]
    fn back_to_back_refreezes_under_concurrent_readers() {
        // Seeded and replayable: EULER_SNAPSHOT_SEED overrides the seed.
        let seed = std::env::var("EULER_SNAPSHOT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xEF0C);
        let g = grid(12, 12);
        let log = write_log(&g, 400, seed);
        let live = Arc::new(LiveEulerHistogram::with_config(g, 8, None));
        let full = GridRect::unchecked(0, 0, 12, 12);
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..4 {
                let live = Arc::clone(&live);
                readers.push(scope.spawn(move || {
                    let mut checks = 0u64;
                    loop {
                        let snap = live.pin();
                        // Internal consistency: the estimate algebra must
                        // balance no matter which epoch/version we caught.
                        let e = s_euler_counts(&*snap, &full);
                        assert_eq!(e.total(), snap.object_count() as i64);
                        assert_eq!(e.disjoint, 0);
                        checks += 1;
                        if snap.version() >= 400 {
                            return checks;
                        }
                        std::thread::yield_now();
                    }
                }));
            }
            for (i, op) in log.iter().enumerate() {
                live.apply(*op);
                if i % 16 == 0 {
                    // Back-to-back refreezes while readers are pinning.
                    live.refreeze();
                    live.refreeze();
                }
            }
            for r in readers {
                assert!(r.join().unwrap() > 0);
            }
        });
        let reference = rebuild(g, &log);
        let snap = live.pin();
        assert_eq!(snap.object_count(), reference.object_count());
        for (ex0, ey0, ex1, ey1) in windows() {
            assert_eq!(
                snap.signed_sum(ex0, ey0, ex1, ey1),
                reference.signed_sum(ex0, ey0, ex1, ey1)
            );
        }
    }

    #[test]
    fn pin_never_blocks_writes_on_the_same_thread() {
        // The defining difference from a read-guard design: holding a
        // pinned snapshot cannot deadlock or delay a writer, even from
        // the very same thread.
        let g = grid(6, 6);
        let s = Snapper::new(g);
        let live = LiveEulerHistogram::new(g);
        let pinned = live.pin();
        live.insert(&s.snap(&Rect::new(1.0, 1.0, 2.0, 2.0).unwrap()));
        live.refreeze();
        assert_eq!(pinned.object_count(), 0);
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn sweep_tiling_is_bit_identical_to_per_tile_loop() {
        let g = grid(16, 12);
        let log = write_log(&g, 150, 4);
        let live = LiveEulerHistogram::with_config(g, 6, Some(50));
        for op in &log {
            live.apply(*op);
        }
        let est = LiveSEuler::new(live.pin());
        let tilings = vec![
            Tiling::new(g.full(), 1, 1).unwrap(),
            Tiling::new(g.full(), 4, 4).unwrap(),
            Tiling::new(g.full(), 16, 12).unwrap(),
            Tiling::new(g.full(), 3, 5).unwrap(),
            Tiling::new(GridRect::unchecked(2, 3, 13, 11), 4, 3).unwrap(),
            Tiling::new(GridRect::unchecked(1, 1, 16, 12), 5, 11).unwrap(),
        ];
        for t in tilings {
            let swept = est.estimate_tiling(&t);
            let looped: Vec<_> = t.iter().map(|(_, tile)| est.estimate(&tile)).collect();
            assert_eq!(swept, looped, "{t:?}");
        }
    }

    #[test]
    fn checkpoint_image_then_restore_resumes_counters_and_state() {
        let g = grid(20, 14);
        let live = LiveEulerHistogram::with_config(g, 5, None);
        let log = write_log(&g, 37, 0xC4EC);
        for op in &log {
            live.apply(*op);
        }
        let image = live.checkpoint_image();
        assert_eq!(image.version, 37);
        // The image folds the delta, so a second checkpoint without new
        // writes is clean: same version, same epoch, same bytes.
        let again = live.checkpoint_image();
        assert_eq!(again.epoch, image.epoch);
        assert_eq!(again.version, image.version);
        assert_eq!(again.bytes, image.bytes);

        let base = EulerHistogram::from_bytes(image.bytes.clone()).unwrap();
        let restored = LiveEulerHistogram::restore(base, 5, None, image.epoch, image.version);
        assert_eq!(restored.epoch(), image.epoch);
        assert_eq!(restored.version(), image.version);
        // Replaying a suffix on the restored side tracks the original.
        let suffix = write_log(&g, 11, 0xC4ED);
        for op in &suffix {
            live.apply(*op);
            restored.apply(*op);
        }
        let mut full = log.clone();
        full.extend_from_slice(&suffix);
        let reference = rebuild(g, &full);
        assert_eq!(*live.refreeze().frozen().as_ref(), reference);
        assert_eq!(*restored.refreeze().frozen().as_ref(), reference);
        assert_eq!(restored.version(), live.version());
    }

    proptest! {
        /// The scatter path agrees with the per-tile loop for arbitrary
        /// write logs, thresholds and tiling shapes (including sub-region
        /// tilings with uneven remainders and ops outside the region).
        #[test]
        fn scatter_equals_loop_on_random_tilings(
            seed in 0u64..10,
            n_ops in 0usize..120,
            seal in 1usize..20,
            rx0 in 0usize..8, ry0 in 0usize..6,
            rw in 2usize..16, rh in 2usize..12,
            cols in 1usize..7, rows in 1usize..7,
        ) {
            let g = grid(16, 12);
            let log = write_log(&g, n_ops, seed);
            let live = LiveEulerHistogram::with_config(g, seal, None);
            for op in &log {
                live.apply(*op);
            }
            let region = GridRect::unchecked(
                rx0, ry0, (rx0 + rw).min(16), (ry0 + rh).min(12));
            let t = Tiling::new(
                region,
                cols.min(region.width()),
                rows.min(region.height()),
            ).unwrap();
            let est = LiveSEuler::new(live.pin());
            prop_assert_eq!(
                est.estimate_tiling(&t),
                t.iter().map(|(_, q)| est.estimate(&q)).collect::<Vec<_>>());
        }

        /// Live snapshots match frozen rebuilds on arbitrary prefixes.
        #[test]
        fn any_prefix_matches_rebuild(
            seed in 0u64..8,
            n_ops in 1usize..100,
            seal in 1usize..12,
            refreeze in 1usize..40,
        ) {
            let g = grid(13, 10);
            let log = write_log(&g, n_ops, seed);
            let live = LiveEulerHistogram::with_config(g, seal, Some(refreeze));
            for op in &log {
                live.apply(*op);
            }
            let snap = live.pin();
            let reference = rebuild(g, &log);
            prop_assert_eq!(snap.object_count(), reference.object_count());
            for (ex0, ey0, ex1, ey1) in windows() {
                prop_assert_eq!(
                    snap.signed_sum(ex0, ey0, ex1, ey1),
                    reference.signed_sum(ex0, ey0, ex1, ey1));
            }
        }
    }
}
