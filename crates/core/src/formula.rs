//! Euler's formula and its corollaries (§4.1), as executable mathematics.
//!
//! The estimators rely on two facts about grid subregions:
//!
//! * **Corollary 4.1** (Beigel–Tanin): a simply connected union of grid
//!   cells has `V_i − E_i + F_i = 1` when counting *interior* vertices,
//!   edges and faces;
//! * **Corollary 4.2** (this paper): with `k` exterior faces (i.e.
//!   `k − 1` holes), `V_i − E_i + F_i = 2 − k`.
//!
//! [`euler_characteristic`] computes `V_i − E_i + F_i` for an arbitrary
//! union of cells; the tests verify both corollaries, reproduce the
//! worked examples of Figure 5, and cross-check against an independent
//! flood-fill computation of `#components − #holes`.

/// A boolean mask over the cells of a `width × height` grid, representing
/// a union-of-cells region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMask {
    width: usize,
    height: usize,
    cells: Vec<bool>,
}

impl CellMask {
    /// An empty mask.
    pub fn new(width: usize, height: usize) -> CellMask {
        assert!(width > 0 && height > 0);
        CellMask {
            width,
            height,
            cells: vec![false; width * height],
        }
    }

    /// Mask width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Is cell `(x, y)` in the region?
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.cells[y * self.width + x]
    }

    /// Adds or removes cell `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: bool) {
        self.cells[y * self.width + x] = v;
    }

    /// Marks the inclusive cell rectangle `[x0, x1] × [y0, y1]`.
    pub fn fill_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize) {
        for y in y0..=y1 {
            for x in x0..=x1 {
                self.set(x, y, true);
            }
        }
    }

    /// Number of cells in the region (`F_i`).
    pub fn faces(&self) -> i64 {
        self.cells.iter().filter(|&&c| c).count() as i64
    }

    /// Number of interior edges (`E_i`): grid edges shared by two region
    /// cells.
    pub fn interior_edges(&self) -> i64 {
        let mut e = 0i64;
        for y in 0..self.height {
            for x in 0..self.width {
                if !self.get(x, y) {
                    continue;
                }
                if x + 1 < self.width && self.get(x + 1, y) {
                    e += 1;
                }
                if y + 1 < self.height && self.get(x, y + 1) {
                    e += 1;
                }
            }
        }
        e
    }

    /// Number of interior vertices (`V_i`): grid vertices whose four
    /// incident cells are all in the region.
    pub fn interior_vertices(&self) -> i64 {
        let mut v = 0i64;
        for y in 0..self.height.saturating_sub(1) {
            for x in 0..self.width.saturating_sub(1) {
                if self.get(x, y)
                    && self.get(x + 1, y)
                    && self.get(x, y + 1)
                    && self.get(x + 1, y + 1)
                {
                    v += 1;
                }
            }
        }
        v
    }
}

/// `V_i − E_i + F_i` of a union-of-cells region — the quantity every
/// object–region intersection contributes to a signed Euler-histogram
/// bucket sum. Equals `#components − #holes`.
pub fn euler_characteristic(mask: &CellMask) -> i64 {
    mask.interior_vertices() - mask.interior_edges() + mask.faces()
}

/// Number of exterior faces `k` of a *connected* region per Corollary 4.2:
/// `k = 2 − (V_i − E_i + F_i)`. (For a region with `h` holes, `k = h + 1`.)
pub fn exterior_faces_of_connected(mask: &CellMask) -> i64 {
    2 - euler_characteristic(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Independent ground truth: components minus holes via flood fill.
    fn components_minus_holes(mask: &CellMask) -> i64 {
        let (w, h) = (mask.width(), mask.height());
        let idx = |x: usize, y: usize| y * w + x;
        // Components of the region (4-connectivity).
        let mut seen = vec![false; w * h];
        let mut components = 0i64;
        for y in 0..h {
            for x in 0..w {
                if mask.get(x, y) && !seen[idx(x, y)] {
                    components += 1;
                    let mut stack = vec![(x, y)];
                    seen[idx(x, y)] = true;
                    while let Some((cx, cy)) = stack.pop() {
                        let mut push = |nx: usize, ny: usize, stack: &mut Vec<(usize, usize)>| {
                            if mask.get(nx, ny) && !seen[idx(nx, ny)] {
                                seen[idx(nx, ny)] = true;
                                stack.push((nx, ny));
                            }
                        };
                        if cx > 0 {
                            push(cx - 1, cy, &mut stack);
                        }
                        if cx + 1 < w {
                            push(cx + 1, cy, &mut stack);
                        }
                        if cy > 0 {
                            push(cx, cy - 1, &mut stack);
                        }
                        if cy + 1 < h {
                            push(cx, cy + 1, &mut stack);
                        }
                    }
                }
            }
        }
        // Holes: components of the complement that do not touch the
        // border. NOTE: complement connectivity must be 8-connected for
        // cubical-complex Euler characteristic consistency (a diagonal gap
        // does not disconnect the exterior because interior vertices
        // require all four incident cells).
        let mut cseen = vec![false; w * h];
        let mut holes = 0i64;
        for y in 0..h {
            for x in 0..w {
                if !mask.get(x, y) && !cseen[idx(x, y)] {
                    let mut touches_border = false;
                    let mut stack = vec![(x, y)];
                    cseen[idx(x, y)] = true;
                    while let Some((cx, cy)) = stack.pop() {
                        if cx == 0 || cy == 0 || cx == w - 1 || cy == h - 1 {
                            touches_border = true;
                        }
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                if dx == 0 && dy == 0 {
                                    continue;
                                }
                                let nx = cx as i64 + dx;
                                let ny = cy as i64 + dy;
                                if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                                    continue;
                                }
                                let (nx, ny) = (nx as usize, ny as usize);
                                if !mask.get(nx, ny) && !cseen[idx(nx, ny)] {
                                    cseen[idx(nx, ny)] = true;
                                    stack.push((nx, ny));
                                }
                            }
                        }
                    }
                    if !touches_border {
                        holes += 1;
                    }
                }
            }
        }
        components - holes
    }

    #[test]
    fn figure_5b_interior_counts_of_3x3_grid() {
        // Corollary 4.1's example: the full 3×3 grid has 4 interior
        // vertices, 12 interior edges, 9 interior faces → χ = 1.
        let mut m = CellMask::new(3, 3);
        m.fill_rect(0, 0, 2, 2);
        assert_eq!(m.interior_vertices(), 4);
        assert_eq!(m.interior_edges(), 12);
        assert_eq!(m.faces(), 9);
        assert_eq!(euler_characteristic(&m), 1);
    }

    #[test]
    fn figure_5c_grid_with_hole() {
        // Corollary 4.2's example: 3×3 grid with the center removed →
        // 0 interior vertices, 8 interior edges, 8 faces → χ = 0 (k = 2).
        let mut m = CellMask::new(3, 3);
        m.fill_rect(0, 0, 2, 2);
        m.set(1, 1, false);
        assert_eq!(m.interior_vertices(), 0);
        assert_eq!(m.interior_edges(), 8);
        assert_eq!(m.faces(), 8);
        assert_eq!(euler_characteristic(&m), 0);
        assert_eq!(exterior_faces_of_connected(&m), 2);
    }

    #[test]
    fn single_cell_and_rectangles() {
        let mut m = CellMask::new(5, 4);
        m.set(2, 2, true);
        assert_eq!(euler_characteristic(&m), 1);
        let mut r = CellMask::new(5, 4);
        r.fill_rect(1, 0, 4, 2);
        assert_eq!(euler_characteristic(&r), 1);
    }

    #[test]
    fn two_components() {
        let mut m = CellMask::new(6, 4);
        m.fill_rect(0, 0, 1, 1);
        m.fill_rect(4, 2, 5, 3);
        assert_eq!(euler_characteristic(&m), 2);
    }

    #[test]
    fn two_holes_gives_minus_one() {
        // A 5×3 frame around two separate holes: χ = 2 − k = 2 − 3 = −1.
        let mut m = CellMask::new(5, 3);
        m.fill_rect(0, 0, 4, 2);
        m.set(1, 1, false);
        m.set(3, 1, false);
        assert_eq!(euler_characteristic(&m), -1);
    }

    proptest! {
        /// χ(V−E+F) agrees with an independent flood-fill count of
        /// components minus holes, for arbitrary random regions.
        #[test]
        fn characteristic_equals_components_minus_holes(
            bits in prop::collection::vec(prop::bool::ANY, 64)
        ) {
            let mut m = CellMask::new(8, 8);
            for (i, b) in bits.iter().enumerate() {
                if *b {
                    m.set(i % 8, i / 8, true);
                }
            }
            prop_assert_eq!(euler_characteristic(&m), components_minus_holes(&m));
        }

        /// Unions of random rectangles (the shapes arising as object ∩
        /// query-exterior) satisfy the same identity.
        #[test]
        fn rect_unions(rects in prop::collection::vec(
            (0usize..10, 0usize..8, 0usize..10, 0usize..8), 1..6)) {
            let mut m = CellMask::new(10, 8);
            for (x0, y0, x1, y1) in rects {
                m.fill_rect(x0.min(x1), y0.min(y1), x0.max(x1), y0.max(y1));
            }
            prop_assert_eq!(euler_characteristic(&m), components_minus_holes(&m));
        }
    }
}
