//! The d-dimensional Euler histogram.
//!
//! Both pillars of the paper generalize beyond the plane: Beigel & Tanin
//! proved their corollary of Euler's formula for d dimensions, and
//! Theorem 3.1's `Π nᵢ(nᵢ+1)/2` lower bound is d-dimensional. This module
//! provides the general structure — `Π (2nᵢ − 1)` signed buckets over the
//! faces of every dimension of the grid complex, bucket sign
//! `(−1)^{codimension}` — with the same query algebra as the 2-D
//! [`crate::EulerHistogram`]:
//!
//! * the signed sum strictly inside an aligned box is the exact number of
//!   intersecting objects (each object∩box intersection is a box, and an
//!   axis-aligned box complex has Euler characteristic 1);
//! * the signed sum outside the closed box is exact in the absence of
//!   containing and crossover objects — but the 2-D *loophole effect*
//!   (containing objects contributing 0) is a parity accident of the
//!   plane: the outside contribution of a containing object is
//!   `(−1)^d · χ_c(shell) = 2 − χ(S^{d−1})`, i.e. **0 in even dimensions
//!   but +2 in odd ones** (two components in 1-D, a spherical shell in
//!   3-D). [`SEulerApproxNd`] therefore carries the `N_cd = 0` assumption
//!   to d dimensions (e.g. 3-D spatio-temporal browsing, §7's future
//!   work) with a dimension-dependent bias signature, demonstrated in the
//!   tests.
//!
//! Objects are supplied as per-axis *cell spans* (the inclusive range of
//! cells whose open interior the snapped object meets); producing spans
//! from raw coordinates is the caller's (or a per-axis `Snapper`'s) job.

use euler_cube::{DenseNd, PrefixSumNd};

use crate::RelationCounts;

/// An aligned d-dimensional query: per-axis grid-line ranges
/// `[lo, hi)` with `lo < hi ≤ nᵢ`.
pub type BoxQuery = Vec<(usize, usize)>;

/// A mutable d-dimensional Euler histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct EulerHistogramNd {
    cells: Vec<usize>,
    buckets: DenseNd,
    object_count: u64,
}

fn euler_dims(cells: &[usize]) -> Vec<usize> {
    cells.iter().map(|&n| 2 * n - 1).collect()
}

impl EulerHistogramNd {
    /// An empty histogram over a grid with `cells[i]` cells per axis.
    pub fn new(cells: &[usize]) -> EulerHistogramNd {
        assert!(!cells.is_empty() && cells.iter().all(|&n| n > 0));
        EulerHistogramNd {
            cells: cells.to_vec(),
            buckets: DenseNd::zeros(&euler_dims(cells)),
            object_count: 0,
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.cells.len()
    }

    /// Cells per axis.
    pub fn cells(&self) -> &[usize] {
        &self.cells
    }

    /// Number of objects inserted.
    pub fn object_count(&self) -> u64 {
        self.object_count
    }

    /// Inserts an object given its inclusive per-axis cell spans.
    pub fn insert(&mut self, spans: &[(usize, usize)]) {
        self.apply(spans, 1);
        self.object_count += 1;
    }

    /// Removes a previously inserted object (linear sketch).
    pub fn remove(&mut self, spans: &[(usize, usize)]) {
        assert!(self.object_count > 0);
        self.apply(spans, -1);
        self.object_count -= 1;
    }

    fn apply(&mut self, spans: &[(usize, usize)], delta: i64) {
        assert_eq!(spans.len(), self.ndim(), "span per dimension");
        for (d, &(lo, hi)) in spans.iter().enumerate() {
            assert!(lo <= hi && hi < self.cells[d], "span {lo}..={hi} dim {d}");
        }
        // Walk the Euler-index box [2·lo, 2·hi] per axis with an odometer.
        let mut idx: Vec<usize> = spans.iter().map(|&(lo, _)| 2 * lo).collect();
        loop {
            let parity: usize = idx.iter().map(|&i| i % 2).sum();
            let sign = if parity.is_multiple_of(2) { 1 } else { -1 };
            self.buckets.add(&idx, delta * sign);
            // Increment.
            let mut d = 0;
            loop {
                if d == idx.len() {
                    return;
                }
                if idx[d] < 2 * spans[d].1 {
                    idx[d] += 1;
                    break;
                }
                idx[d] = 2 * spans[d].0;
                d += 1;
            }
        }
    }

    /// Builds the cumulative form for O(2ᵈ)-lookup queries.
    pub fn freeze(&self) -> FrozenEulerHistogramNd {
        FrozenEulerHistogramNd {
            cells: self.cells.clone(),
            cum: PrefixSumNd::build(&self.buckets),
            object_count: self.object_count,
        }
    }

    /// Bucket storage in entries: `Π (2nᵢ − 1)`.
    pub fn storage_buckets(&self) -> usize {
        self.buckets.len()
    }
}

/// The frozen (prefix-summed) d-dimensional Euler histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenEulerHistogramNd {
    cells: Vec<usize>,
    cum: PrefixSumNd,
    object_count: u64,
}

impl FrozenEulerHistogramNd {
    /// Number of objects summarized.
    pub fn object_count(&self) -> u64 {
        self.object_count
    }

    fn check_query(&self, q: &[(usize, usize)]) {
        assert_eq!(q.len(), self.cells.len(), "query dims");
        for (d, &(lo, hi)) in q.iter().enumerate() {
            assert!(lo < hi && hi <= self.cells[d], "query {lo}..{hi} dim {d}");
        }
    }

    /// Sum of all buckets (= `|S|`).
    pub fn total(&self) -> i64 {
        self.cum.total()
    }

    /// Exact number of objects intersecting the open query box.
    pub fn intersect_count(&self, q: &[(usize, usize)]) -> i64 {
        self.check_query(q);
        let lo: Vec<i64> = q.iter().map(|&(l, _)| 2 * l as i64).collect();
        let hi: Vec<i64> = q.iter().map(|&(_, h)| 2 * h as i64 - 2).collect();
        self.cum.range_sum_clipped(&lo, &hi)
    }

    /// Signed sum over the closed Euler region of the query.
    pub fn closed_sum(&self, q: &[(usize, usize)]) -> i64 {
        self.check_query(q);
        let lo: Vec<i64> = q.iter().map(|&(l, _)| 2 * l as i64 - 1).collect();
        let hi: Vec<i64> = q.iter().map(|&(_, h)| 2 * h as i64 - 1).collect();
        self.cum.range_sum_clipped(&lo, &hi)
    }

    /// `n'_ei` — the outside sum, with the d-dimensional loophole.
    pub fn outside_sum(&self, q: &[(usize, usize)]) -> i64 {
        self.total() - self.closed_sum(q)
    }
}

/// S-EulerApprox in d dimensions: Equation 11 on a frozen d-dimensional
/// histogram (assumes `N_cd = 0`).
#[derive(Debug, Clone)]
pub struct SEulerApproxNd {
    hist: FrozenEulerHistogramNd,
}

impl SEulerApproxNd {
    /// Wraps a frozen histogram.
    pub fn new(hist: FrozenEulerHistogramNd) -> SEulerApproxNd {
        SEulerApproxNd { hist }
    }

    /// Estimates the Level 2 counts for an aligned box query.
    pub fn estimate(&self, q: &[(usize, usize)]) -> RelationCounts {
        let size = self.hist.object_count() as i64;
        let n_ii = self.hist.intersect_count(q);
        let n_ei = self.hist.outside_sum(q);
        let disjoint = size - n_ii;
        RelationCounts {
            disjoint,
            contains: size - n_ei,
            contained: 0,
            overlaps: n_ei - disjoint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// A snapped d-dim object for brute-force tests: open box given by
    /// per-axis (lo, hi) floats with non-integer bounds.
    #[derive(Clone, Debug)]
    struct Obj(Vec<(f64, f64)>);

    impl Obj {
        fn spans(&self) -> Vec<(usize, usize)> {
            self.0
                .iter()
                .map(|&(a, b)| (a as usize, b as usize))
                .collect()
        }
        fn intersects(&self, q: &[(usize, usize)]) -> bool {
            self.0
                .iter()
                .zip(q)
                .all(|(&(a, b), &(l, h))| a < h as f64 && b > l as f64)
        }
        fn inside(&self, q: &[(usize, usize)]) -> bool {
            self.0
                .iter()
                .zip(q)
                .all(|(&(a, b), &(l, h))| a > l as f64 && b < h as f64)
        }
        fn contains_q(&self, q: &[(usize, usize)]) -> bool {
            self.0
                .iter()
                .zip(q)
                .all(|(&(a, b), &(l, h))| a < l as f64 && b > h as f64)
        }
        fn crosses(&self, q: &[(usize, usize)]) -> bool {
            // Some dimensions span, the others strictly inside, at least
            // one of each — the d-dim crossover condition.
            let mut spans = 0;
            let mut within = 0;
            for (&(a, b), &(l, h)) in self.0.iter().zip(q) {
                if a < l as f64 && b > h as f64 {
                    spans += 1;
                } else if a > l as f64 && b < h as f64 {
                    within += 1;
                }
            }
            spans > 0 && spans + within == self.0.len() && within > 0
        }
    }

    fn random_objects(cells: &[usize], n: usize, seed: u64, max_frac: f64) -> Vec<Obj> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Obj(cells
                    .iter()
                    .map(|&c| {
                        let cf = c as f64;
                        let a = rng.gen_range(0.0..cf - 0.01);
                        let b = (a + rng.gen_range(0.01..cf * max_frac)).min(cf - 0.005);
                        // Nudge off integers.
                        let a = if a.fract() == 0.0 { a + 1e-6 } else { a };
                        let b = if b.fract() == 0.0 { b - 1e-6 } else { b };
                        (a, b.max(a + 1e-7))
                    })
                    .collect())
            })
            .collect()
    }

    fn random_query(cells: &[usize], rng: &mut StdRng) -> Vec<(usize, usize)> {
        cells
            .iter()
            .map(|&c| {
                let lo = rng.gen_range(0..c);
                let hi = rng.gen_range(lo + 1..=c);
                (lo, hi)
            })
            .collect()
    }

    #[test]
    fn one_dim_matches_interval_counts() {
        let mut h = EulerHistogramNd::new(&[8]);
        let objs = random_objects(&[8], 60, 1, 0.8);
        for o in &objs {
            h.insert(&o.spans());
        }
        let f = h.freeze();
        for q in [(0usize, 8usize), (2, 5), (7, 8), (0, 1)] {
            let expect = objs.iter().filter(|o| o.intersects(&[q])).count() as i64;
            assert_eq!(f.intersect_count(&[q]), expect, "{q:?}");
        }
        assert_eq!(f.total(), 60);
    }

    #[test]
    fn three_dim_intersect_counts_are_exact() {
        let cells = [6usize, 5, 4];
        let objs = random_objects(&cells, 120, 2, 0.9);
        let mut h = EulerHistogramNd::new(&cells);
        for o in &objs {
            h.insert(&o.spans());
        }
        let f = h.freeze();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let q = random_query(&cells, &mut rng);
            let expect = objs.iter().filter(|o| o.intersects(&q)).count() as i64;
            assert_eq!(f.intersect_count(&q), expect, "{q:?}");
        }
    }

    #[test]
    fn loophole_is_a_planar_parity_accident() {
        // 2-D: a containing object's exterior intersection is an annulus,
        // compact Euler characteristic 0 -> invisible (the paper's
        // loophole). 3-D: the shell deformation-retracts to S², so the
        // signed outside contribution is (−1)³·χ_c = +2; 1-D: two exterior
        // segments -> +2 as well. Only EVEN dimensions hide containers.
        let mut h1 = EulerHistogramNd::new(&[8]);
        h1.insert(&[(0, 7)]);
        assert_eq!(h1.freeze().outside_sum(&[(3, 5)]), 2, "1-d: two pieces");

        let mut h2 = EulerHistogramNd::new(&[8, 8]);
        h2.insert(&[(0, 7), (0, 7)]);
        assert_eq!(
            h2.freeze().outside_sum(&[(3, 5), (3, 5)]),
            0,
            "2-d: the paper's loophole"
        );

        let mut h3 = EulerHistogramNd::new(&[6, 6, 6]);
        h3.insert(&[(0, 5), (0, 5), (0, 5)]);
        let f = h3.freeze();
        let q = vec![(2usize, 4usize); 3];
        assert_eq!(f.intersect_count(&q), 1);
        assert_eq!(f.outside_sum(&q), 2, "3-d: spherical shell, +2");

        let mut h4 = EulerHistogramNd::new(&[4, 4, 4, 4]);
        h4.insert(&[(0, 3); 4]);
        assert_eq!(
            h4.freeze().outside_sum([(1, 3); 4].as_ref()),
            0,
            "4-d: hidden again"
        );
    }

    #[test]
    fn s_euler_nd_exact_without_contained_or_crossover() {
        let cells = [7usize, 6, 5];
        let objs = random_objects(&cells, 80, 4, 0.5);
        let mut h = EulerHistogramNd::new(&cells);
        for o in &objs {
            h.insert(&o.spans());
        }
        let est = SEulerApproxNd::new(h.freeze());
        let mut rng = StdRng::seed_from_u64(5);
        let mut tested = 0;
        for _ in 0..200 {
            let q = random_query(&cells, &mut rng);
            if objs.iter().any(|o| o.contains_q(&q) || o.crosses(&q)) {
                continue;
            }
            tested += 1;
            let e = est.estimate(&q);
            let exact_in = objs.iter().filter(|o| o.inside(&q)).count() as i64;
            let exact_int = objs.iter().filter(|o| o.intersects(&q)).count() as i64;
            assert_eq!(e.contains, exact_in, "{q:?}");
            assert_eq!(e.disjoint, 80 - exact_int, "{q:?}");
            assert_eq!(e.overlaps, exact_int - exact_in, "{q:?}");
        }
        assert!(tested > 20, "only {tested} clean queries sampled");
    }

    #[test]
    fn insert_remove_roundtrip_nd() {
        let cells = [5usize, 5, 5, 3];
        let mut h = EulerHistogramNd::new(&cells);
        let a = [(1usize, 3usize), (0, 2), (2, 4), (0, 1)];
        let b = [(0usize, 4usize), (1, 1), (0, 0), (2, 2)];
        h.insert(&a);
        let snapshot = h.clone();
        h.insert(&b);
        h.remove(&b);
        assert_eq!(h, snapshot);
        assert_eq!(h.storage_buckets(), 9 * 9 * 9 * 5);
    }
}
