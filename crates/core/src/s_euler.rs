//! S-EulerApprox (§5.2): the simple Euler approximation, assuming
//! `N_cd = 0` (no object contains the query).
//!
//! Exactness characterization (borne out by §6.2's experiments and the
//! property tests below): when no object **contains** the query and no
//! object **crosses** it, S-EulerApprox is *exact* at the grid resolution.
//! Each crossover inflates `n_ei` by one (Figure 9(b)); each containing
//! object is misattributed from `N_cd` to overlap/contains error.

use std::sync::{Arc, Mutex};

use euler_grid::{GridRect, Tiling};

use crate::sweep::{sweep_s_euler, TilingPlan};
use crate::{s_euler_counts, EulerSource, FrozenEulerHistogram, Level2Estimator, RelationCounts};

/// The S-EulerApprox estimator: Equations 14–17 on any Euler-histogram
/// backend (static frozen by default; the dynamic histogram also works).
#[derive(Debug)]
pub struct SEulerApprox<H: EulerSource = FrozenEulerHistogram> {
    hist: H,
    /// Most recent [`TilingPlan`], keyed by its [`Tiling`]. Browsing
    /// workloads re-answer the same tiling against evolving data, so the
    /// plan build would otherwise recur on every call; the lock is held
    /// only to clone the `Arc`, never across a sweep.
    plan_cache: Mutex<Option<Arc<TilingPlan>>>,
}

impl<H: EulerSource + Clone> Clone for SEulerApprox<H> {
    fn clone(&self) -> SEulerApprox<H> {
        SEulerApprox {
            hist: self.hist.clone(),
            plan_cache: Mutex::new(self.plan_cache.lock().unwrap().clone()),
        }
    }
}

impl<H: EulerSource> SEulerApprox<H> {
    /// Wraps a histogram backend.
    pub fn new(hist: H) -> SEulerApprox<H> {
        SEulerApprox {
            hist,
            plan_cache: Mutex::new(None),
        }
    }

    /// The underlying histogram backend.
    pub fn histogram(&self) -> &H {
        &self.hist
    }

    /// The cached plan for `t`, building and stashing one on miss.
    fn plan_for(&self, t: &Tiling) -> Arc<TilingPlan> {
        let mut cache = self.plan_cache.lock().unwrap();
        if let Some(plan) = cache.as_ref() {
            if plan.tiling() == t {
                return Arc::clone(plan);
            }
        }
        let plan = Arc::new(TilingPlan::new(t));
        *cache = Some(Arc::clone(&plan));
        plan
    }
}

impl<H: EulerSource> Level2Estimator for SEulerApprox<H> {
    fn name(&self) -> &'static str {
        "S-EulerApprox"
    }

    fn estimate(&self, q: &GridRect) -> RelationCounts {
        // Equations 14-17.
        s_euler_counts(&self.hist, q)
    }

    fn object_count(&self) -> u64 {
        self.hist.object_count()
    }

    fn storage_cells(&self) -> u64 {
        let (ew, eh) = self.hist.grid().euler_dims();
        (ew * eh) as u64
    }

    fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
        match self.hist.as_frozen() {
            Some(frozen) => sweep_s_euler(frozen, &self.plan_for(t)).0,
            None => t.iter().map(|(_, tile)| self.estimate(&tile)).collect(),
        }
    }

    fn estimate_tiling_total(&self, t: &Tiling) -> (Vec<RelationCounts>, RelationCounts) {
        match self.hist.as_frozen() {
            // The sweep core accumulates the total during emission — no
            // second pass over the per-tile output.
            Some(frozen) => sweep_s_euler(frozen, &self.plan_for(t)),
            None => {
                let counts = self.estimate_tiling(t);
                let mut total = RelationCounts::default();
                for c in &counts {
                    total = total.add(c);
                }
                (counts, total)
            }
        }
    }

    fn supports_sweep(&self) -> bool {
        self.hist.as_frozen().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::count_by_classification;
    use crate::EulerHistogram;
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid, SnappedRect, Snapper};
    use proptest::prelude::*;

    fn grid(nx: usize, ny: usize) -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    fn snap(g: &Grid, r: (f64, f64, f64, f64)) -> SnappedRect {
        Snapper::new(*g).snap(&Rect::new(r.0, r.1, r.2, r.3).unwrap())
    }

    #[test]
    fn exact_for_small_objects_large_query() {
        let g = grid(10, 10);
        let objs: Vec<SnappedRect> = [
            (1.2, 1.2, 2.1, 1.9),
            (4.5, 4.5, 5.2, 5.1),
            (7.3, 2.2, 8.0, 3.0),
            (2.5, 7.5, 3.4, 8.2),
            (8.6, 8.6, 9.4, 9.4),
        ]
        .iter()
        .map(|&r| snap(&g, r))
        .collect();
        let est = SEulerApprox::new(EulerHistogram::build(g, &objs).freeze());
        for q in [
            GridRect::unchecked(0, 0, 5, 5),
            GridRect::unchecked(3, 3, 9, 9),
            GridRect::unchecked(0, 0, 10, 10),
        ] {
            let exact = count_by_classification(&objs, &q);
            assert_eq!(est.estimate(&q), exact, "query {q}");
        }
    }

    #[test]
    fn containing_object_breaks_the_assumption() {
        // §6.2: when N_cd > 0 the N_cs estimate degrades. An object that
        // contains the query is invisible in n'_ei (loophole), so it is
        // wrongly credited to N_cs.
        let g = grid(10, 10);
        let objs = vec![snap(&g, (0.5, 0.5, 9.5, 9.5))];
        let est = SEulerApprox::new(EulerHistogram::build(g, &objs).freeze());
        let q = GridRect::unchecked(4, 4, 6, 6);
        let e = est.estimate(&q);
        let exact = count_by_classification(&objs, &q);
        assert_eq!(exact.contained, 1);
        assert_eq!(e.contained, 0);
        assert_eq!(e.contains, 1, "containing object misattributed to N_cs");
    }

    #[test]
    fn crossover_inflates_overlap_and_deflates_contains() {
        // Figure 9(b): crossover double-counts in n_ei, so N_cs drops by 1
        // and N_o rises by 1 per crossover.
        let g = grid(10, 10);
        let objs = vec![
            snap(&g, (0.5, 4.2, 9.5, 5.8)), // horizontal bar crossing
            snap(&g, (3.2, 3.2, 4.8, 6.8)), // contained in the query
        ];
        let est = SEulerApprox::new(EulerHistogram::build(g, &objs).freeze());
        let q = GridRect::unchecked(3, 0, 7, 10); // tall slab query
        let exact = count_by_classification(&objs, &q);
        assert_eq!(exact, RelationCounts::new(0, 1, 0, 1));
        let e = est.estimate(&q);
        assert_eq!(e.contains, 0, "crossover steals one from N_cs");
        assert_eq!(e.overlaps, 2, "crossover adds one to N_o");
        assert_eq!(e.total(), 2, "totals still consistent");
    }

    proptest! {
        /// When no object contains or crosses the query, S-EulerApprox is
        /// exact at the grid resolution.
        #[test]
        fn exact_without_contained_or_crossover(
            objs in prop::collection::vec(
                (0.0..15.0f64, 0.0..11.0f64, 0.05..6.0f64, 0.05..6.0f64), 0..50),
            qx in 0usize..15, qy in 0usize..11,
            qw in 1usize..16, qh in 1usize..12,
        ) {
            let g = grid(16, 12);
            let snapped: Vec<SnappedRect> = objs
                .iter()
                .map(|&(x, y, w, h)| snap(&g, (x, y, (x + w).min(16.0), (y + h).min(12.0))))
                .collect();
            let q = GridRect::unchecked(qx, qy, (qx + qw).min(16), (qy + qh).min(12));
            prop_assume!(snapped.iter().all(|o| !o.contains_query(&q) && !o.crosses(&q)));
            let est = SEulerApprox::new(EulerHistogram::build(g, &snapped).freeze());
            let exact = count_by_classification(&snapped, &q);
            prop_assert_eq!(est.estimate(&q), exact);
        }

        /// Estimates always sum to |S| and N_d is always exact (n_ii is
        /// exact regardless of dataset shape).
        #[test]
        fn invariants_hold_for_any_dataset(
            objs in prop::collection::vec(
                (0.0..15.0f64, 0.0..11.0f64, 0.05..14.0f64, 0.05..10.0f64), 0..50),
            qx in 0usize..15, qy in 0usize..11,
            qw in 1usize..16, qh in 1usize..12,
        ) {
            let g = grid(16, 12);
            let snapped: Vec<SnappedRect> = objs
                .iter()
                .map(|&(x, y, w, h)| snap(&g, (x, y, (x + w).min(16.0), (y + h).min(12.0))))
                .collect();
            let q = GridRect::unchecked(qx, qy, (qx + qw).min(16), (qy + qh).min(12));
            let est = SEulerApprox::new(EulerHistogram::build(g, &snapped).freeze());
            let e = est.estimate(&q);
            let exact = count_by_classification(&snapped, &q);
            prop_assert_eq!(e.total(), snapped.len() as i64);
            prop_assert_eq!(e.disjoint, exact.disjoint, "N_d is exact");
        }
    }
}
