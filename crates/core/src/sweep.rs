//! Tiling-aware sweep evaluation: amortizing prefix-sum corner lookups
//! across a whole browsing query set.
//!
//! A browsing query (§1, §6.1.2) is a [`Tiling`] — a `cols × rows`
//! partition of an aligned region. Answering it tile by tile costs four
//! scattered [`euler_cube::PrefixSum2D`] corner reads per signed sum, and
//! each estimator needs two to six signed sums per tile; worse, every
//! read re-derives the same clamped Euler indices, because adjacent tiles
//! share boundary grid lines.
//!
//! The sweep path exploits that sharing. A [`TilingPlan`] precomputes the
//! tiling's **corner lattice**: for each tile-boundary grid line `x` the
//! two Euler columns that every estimator quantity reads (`2x − 2` for
//! open/inside corners, `2x − 1` for closed corners), and likewise per
//! horizontal boundary. The kernels then make one row-major pass,
//! materializing per boundary row a **strip** of clipped prefix values —
//! one pair per vertical boundary — and evaluating every tile in the row
//! as O(1) lookups into four strips:
//!
//! ```text
//!   row r+1  ─ SA_hi (2·y−2) ── SB_hi (2·y−1) ─   ← filled this row,
//!      ┌────┬────┬────┐                             reused as the next
//!      │ t₀ │ t₁ │ t₂ │   tile row r                row's lo strips
//!      └────┴────┴────┘
//!   row r    ─ SA_lo ──────── SB_lo ──────────   ← swapped from above
//! ```
//!
//! Each strip is filled once and serves both the tile row above and below
//! it (the `lo`/`hi` swap), so a `C × R` tiling costs `O(R·C)` strip
//! entries instead of `4·(signed sums)·R·C` independent clamped corner
//! reads. Clipping does the boundary case analysis for free: a boundary
//! at grid line 0 yields Euler columns `−2`/`−1` whose prefix reads are
//! zero, and a boundary at `n` clamps onto the last prefix column so
//! edge-difference terms vanish — exactly reproducing the `q.x0 > 0`-style
//! guards of the per-tile estimators, bit for bit.
//!
//! The kernels serve [`crate::SEulerApprox`], [`crate::EulerApprox`] and
//! [`crate::MEulerApprox`] via their `estimate_tiling` overrides;
//! [`crate::ExactContains2D`] has its own 4-D analogue built on
//! [`euler_cube::PrefixSumNd::axis_offset_clipped`]. All overrides are
//! bit-identical to the default per-tile loop — a law the conformance
//! suite enforces.

use euler_cube::PrefixSum2D;
use euler_grid::Tiling;

use crate::{FrozenEulerHistogram, RegionSplit, RelationCounts};

/// The precomputed corner lattice of a [`Tiling`]: tile-boundary grid
/// lines on both axes and, per vertical boundary, the pair of Euler
/// bucket columns every estimator quantity reads. Build one per tiling
/// and evaluate any number of histograms against it.
#[derive(Debug, Clone)]
pub struct TilingPlan {
    tiling: Tiling,
    /// `cols + 1` vertical tile-boundary grid lines; `xs[c]` is the left
    /// edge of tile column `c`, `xs[cols]` the region's right edge.
    xs: Vec<usize>,
    /// `rows + 1` horizontal tile-boundary grid lines.
    ys: Vec<usize>,
    /// Euler column `2·xs[k] − 2` per boundary (inside/open corners).
    ca: Vec<i64>,
    /// Euler column `2·xs[k] − 1` per boundary (closed corners).
    cb: Vec<i64>,
}

impl TilingPlan {
    /// Precomputes the corner lattice for a tiling.
    pub fn new(t: &Tiling) -> TilingPlan {
        let region = t.region();
        let (cols, rows) = (t.cols(), t.rows());
        let w = region.width() / cols;
        let h = region.height() / rows;
        let mut xs = Vec::with_capacity(cols + 1);
        for c in 0..cols {
            xs.push(region.x0 + c * w);
        }
        xs.push(region.x1);
        let mut ys = Vec::with_capacity(rows + 1);
        for r in 0..rows {
            ys.push(region.y0 + r * h);
        }
        ys.push(region.y1);
        let ca = xs.iter().map(|&x| 2 * x as i64 - 2).collect();
        let cb = xs.iter().map(|&x| 2 * x as i64 - 1).collect();
        TilingPlan {
            tiling: *t,
            xs,
            ys,
            ca,
            cb,
        }
    }

    /// The tiling this plan was built for.
    #[inline]
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// Number of tile columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.tiling.cols()
    }

    /// Number of tile rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.tiling.rows()
    }

    /// Total number of tiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.tiling.len()
    }

    /// Always false — tilings are validated nonempty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `cols + 1` vertical tile-boundary grid lines (`xs[c]` /
    /// `xs[c + 1]` are tile column `c`'s edges).
    #[inline]
    pub fn x_bounds(&self) -> &[usize] {
        &self.xs
    }

    /// The `rows + 1` horizontal tile-boundary grid lines.
    #[inline]
    pub fn y_bounds(&self) -> &[usize] {
        &self.ys
    }

    /// Length of one corner strip: a clipped-prefix pair per vertical
    /// boundary plus the final full-width entry.
    #[inline]
    pub(crate) fn strip_len(&self) -> usize {
        2 * self.xs.len() + 1
    }

    /// Euler row `2·ys[k] − 2` (inside/open corners) of boundary `k`.
    #[inline]
    pub(crate) fn row_a(&self, k: usize) -> i64 {
        2 * self.ys[k] as i64 - 2
    }

    /// Euler row `2·ys[k] − 1` (closed corners) of boundary `k`.
    #[inline]
    pub(crate) fn row_b(&self, k: usize) -> i64 {
        2 * self.ys[k] as i64 - 1
    }

    /// Materializes the corner strip at Euler row `er`: for each vertical
    /// boundary `k`, `out[2k] = P(ca[k], er)` and `out[2k+1] = P(cb[k],
    /// er)` (clipped prefixes), and finally the full-width prefix
    /// `P(ew − 1, er)`. One strip serves every tile whose evaluation
    /// touches that row — the whole tile row above it and below it.
    pub(crate) fn fill_strip(&self, cum: &PrefixSum2D, er: i64, out: &mut [i64]) {
        debug_assert_eq!(out.len(), self.strip_len());
        for (k, (&a, &b)) in self.ca.iter().zip(&self.cb).enumerate() {
            out[2 * k] = cum.prefix_clipped(a, er);
            out[2 * k + 1] = cum.prefix_clipped(b, er);
        }
        out[2 * self.xs.len()] = cum.prefix_clipped(cum.width() as i64 - 1, er);
    }
}

/// The per-tile signed sums every Euler estimator consumes: the inside
/// sum (`n_ii`), the closed sum (`total − n'_ei`), and — when requested —
/// the doubled Region A/B proxy of Figure 11.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileSums {
    pub n_ii: i64,
    pub closed: i64,
    pub proxy_x2: i64,
}

/// The sweep kernel: one row-major pass over the frozen histogram's
/// prefix cube emitting [`TileSums`] for every tile of the plan, in the
/// tiling's row-major order. `proxy` selects which Region A/B orientation
/// (if any) to evaluate alongside; `None` skips the proxy work entirely
/// (the S-EulerApprox browse path).
pub(crate) fn sweep_tile_sums(
    hist: &FrozenEulerHistogram,
    plan: &TilingPlan,
    proxy: Option<RegionSplit>,
) -> Vec<TileSums> {
    let cum = hist.cum();
    let (cols, rows) = (plan.cols(), plan.rows());
    let (nx, ny) = (hist.grid().nx(), hist.grid().ny());
    let (need_y, need_x) = match proxy {
        None => (false, false),
        Some(RegionSplit::YBandSides) => (true, false),
        Some(RegionSplit::XBandSides) => (false, true),
        Some(RegionSplit::Average) => (true, true),
    };

    // Region B slabs are shared by every tile in a row (resp. column):
    // O(rows + cols) closed sums total, versus one per tile in the
    // per-tile loop.
    let ys = plan.y_bounds();
    let xs = plan.x_bounds();
    let (mut slab_above, mut slab_below) = (Vec::new(), Vec::new());
    if need_y {
        slab_above = ys
            .iter()
            .map(|&y| {
                if y < ny {
                    hist.closed_sum(0, y, nx, ny)
                } else {
                    0
                }
            })
            .collect();
        slab_below = ys
            .iter()
            .map(|&y| {
                if y > 0 {
                    hist.closed_sum(0, 0, nx, y)
                } else {
                    0
                }
            })
            .collect();
    }
    let (mut slab_left, mut slab_right) = (Vec::new(), Vec::new());
    if need_x {
        slab_left = xs
            .iter()
            .map(|&x| {
                if x > 0 {
                    hist.closed_sum(0, 0, x, ny)
                } else {
                    0
                }
            })
            .collect();
        slab_right = xs
            .iter()
            .map(|&x| {
                if x < nx {
                    hist.closed_sum(x, 0, nx, ny)
                } else {
                    0
                }
            })
            .collect();
    }

    let sl = plan.strip_len();
    let last = sl - 1;
    let mut sa_lo = vec![0i64; sl];
    let mut sb_lo = vec![0i64; sl];
    let mut sa_hi = vec![0i64; sl];
    let mut sb_hi = vec![0i64; sl];
    // The top strip (highest Euler row) backs the x-band proxy's "A top"
    // term for every tile; it never changes across rows.
    let mut top = Vec::new();
    if need_x {
        top = vec![0i64; sl];
        plan.fill_strip(cum, cum.height() as i64 - 1, &mut top);
    }
    plan.fill_strip(cum, plan.row_a(0), &mut sa_lo);
    plan.fill_strip(cum, plan.row_b(0), &mut sb_lo);

    let mut out = Vec::with_capacity(plan.len());
    for r in 0..rows {
        plan.fill_strip(cum, plan.row_a(r + 1), &mut sa_hi);
        plan.fill_strip(cum, plan.row_b(r + 1), &mut sb_hi);
        for c in 0..cols {
            let (ia, ib, ja, jb) = (2 * c, 2 * c + 1, 2 * c + 2, 2 * c + 3);
            // inside_sum over the tile: four corners across two strips.
            let n_ii = sa_hi[ja] - sa_hi[ib] - sb_lo[ja] + sb_lo[ib];
            // closed_sum over the tile: the complementary corner pairs.
            let closed = sb_hi[jb] - sb_hi[ia] - sa_lo[jb] + sa_lo[ia];
            let proxy_y = if need_y {
                // A left/right side slabs in the tile's y-band; a boundary
                // at grid line 0 (resp. nx) zeroes its term via clipping.
                let a_left = sa_hi[ia] - sb_lo[ia];
                let a_right = (sa_hi[last] - sa_hi[jb]) - (sb_lo[last] - sb_lo[jb]);
                a_left + a_right + slab_above[r + 1] + slab_below[r]
            } else {
                0
            };
            let proxy_x = if need_x {
                let a_bottom = sa_lo[ja] - sa_lo[ib];
                let a_top = (top[ja] - top[ib]) - (sb_hi[ja] - sb_hi[ib]);
                a_bottom + a_top + slab_left[c] + slab_right[c + 1]
            } else {
                0
            };
            let proxy_x2 = match proxy {
                None => 0,
                Some(RegionSplit::YBandSides) => 2 * proxy_y,
                Some(RegionSplit::XBandSides) => 2 * proxy_x,
                Some(RegionSplit::Average) => proxy_y + proxy_x,
            };
            out.push(TileSums {
                n_ii,
                closed,
                proxy_x2,
            });
        }
        // The hi strips of this row are the lo strips of the next: reuse
        // instead of refilling.
        std::mem::swap(&mut sa_lo, &mut sa_hi);
        std::mem::swap(&mut sb_lo, &mut sb_hi);
    }
    out
}

/// S-EulerApprox (Equations 14–17) over every tile of a plan.
pub(crate) fn sweep_s_euler(hist: &FrozenEulerHistogram, plan: &TilingPlan) -> Vec<RelationCounts> {
    let size = hist.object_count() as i64;
    let total = hist.total();
    sweep_tile_sums(hist, plan, None)
        .into_iter()
        .map(|ts| {
            let n_ei = total - ts.closed;
            let disjoint = size - ts.n_ii;
            RelationCounts {
                disjoint,
                contains: size - n_ei,
                contained: 0,
                overlaps: n_ei - disjoint,
            }
        })
        .collect()
}

/// EulerApprox (Equations 18–22) over every tile of a plan.
pub(crate) fn sweep_euler_approx(
    hist: &FrozenEulerHistogram,
    plan: &TilingPlan,
    split: RegionSplit,
) -> Vec<RelationCounts> {
    let size = hist.object_count() as i64;
    let total = hist.total();
    sweep_tile_sums(hist, plan, Some(split))
        .into_iter()
        .map(|ts| {
            let n_ei_prime = total - ts.closed;
            let disjoint = size - ts.n_ii;
            let overlaps = n_ei_prime - disjoint;
            let contained = (ts.proxy_x2 - 2 * n_ei_prime).div_euclid(2);
            let contains = size - contained - disjoint - overlaps;
            RelationCounts {
                disjoint,
                contains,
                contained,
                overlaps,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler_approx::n_ei_proxy_x2;
    use crate::{
        EulerApprox, EulerHistogram, ExactContains2D, Level2Estimator, MEulerApprox, SEulerApprox,
    };
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid, GridRect, SnappedRect, Snapper};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid(nx: usize, ny: usize) -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    fn random_objects(g: &Grid, n: usize, seed: u64) -> Vec<SnappedRect> {
        let s = Snapper::new(*g);
        let mut rng = StdRng::seed_from_u64(seed);
        let (w, h) = (g.nx() as f64, g.ny() as f64);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..w - 0.1);
                let y = rng.gen_range(0.0..h - 0.1);
                let ow = rng.gen_range(0.05..w);
                let oh = rng.gen_range(0.05..h);
                s.snap(&Rect::new(x, y, (x + ow).min(w), (y + oh).min(h)).unwrap())
            })
            .collect()
    }

    /// Tilings that exercise every boundary case: full space, single
    /// tile, per-cell tiles, uneven remainders, and interior sub-regions.
    fn tilings(g: &Grid) -> Vec<Tiling> {
        vec![
            Tiling::new(g.full(), 1, 1).unwrap(),
            Tiling::new(g.full(), 4, 4).unwrap(),
            Tiling::new(g.full(), g.nx(), g.ny()).unwrap(),
            Tiling::new(g.full(), 3, 5).unwrap(),
            Tiling::new(GridRect::unchecked(2, 3, 13, 11), 4, 3).unwrap(),
            Tiling::new(GridRect::unchecked(1, 1, 16, 12), 5, 11).unwrap(),
        ]
    }

    #[test]
    fn plan_boundaries_match_tile_corners() {
        let g = grid(16, 12);
        for t in tilings(&g) {
            let plan = TilingPlan::new(&t);
            assert_eq!(plan.len(), t.len());
            for ((c, r), tile) in t.iter() {
                assert_eq!(plan.x_bounds()[c], tile.x0, "{t:?} col {c}");
                assert_eq!(plan.x_bounds()[c + 1], tile.x1, "{t:?} col {c}");
                assert_eq!(plan.y_bounds()[r], tile.y0, "{t:?} row {r}");
                assert_eq!(plan.y_bounds()[r + 1], tile.y1, "{t:?} row {r}");
            }
        }
    }

    #[test]
    fn tile_sums_match_direct_prefix_queries() {
        let g = grid(16, 12);
        let hist = EulerHistogram::build(g, &random_objects(&g, 120, 7)).freeze();
        for t in tilings(&g) {
            let plan = TilingPlan::new(&t);
            for proxy in [
                None,
                Some(RegionSplit::YBandSides),
                Some(RegionSplit::XBandSides),
                Some(RegionSplit::Average),
            ] {
                let sums = sweep_tile_sums(&hist, &plan, proxy);
                for (((_, _), tile), ts) in t.iter().zip(&sums) {
                    assert_eq!(
                        ts.n_ii,
                        hist.inside_sum(tile.x0, tile.y0, tile.x1, tile.y1),
                        "n_ii at {tile} of {t:?}"
                    );
                    assert_eq!(
                        ts.closed,
                        hist.closed_sum(tile.x0, tile.y0, tile.x1, tile.y1),
                        "closed at {tile} of {t:?}"
                    );
                    if let Some(split) = proxy {
                        assert_eq!(
                            ts.proxy_x2,
                            n_ei_proxy_x2(&hist, &tile, split),
                            "proxy at {tile} of {t:?} under {split:?}"
                        );
                    }
                }
            }
        }
    }

    /// The structural law of this PR: every sweep-capable estimator's
    /// `estimate_tiling` is bit-identical to the default per-tile loop.
    fn assert_sweep_equals_loop<E: Level2Estimator>(est: &E, t: &Tiling) {
        let swept = est.estimate_tiling(t);
        let looped: Vec<_> = t.iter().map(|(_, tile)| est.estimate(&tile)).collect();
        assert_eq!(swept, looped, "{} on {t:?}", est.name());
    }

    #[test]
    fn estimators_sweep_equals_per_tile_loop() {
        let g = grid(16, 12);
        let objs = random_objects(&g, 150, 11);
        let hist = EulerHistogram::build(g, &objs).freeze();
        for t in tilings(&g) {
            assert_sweep_equals_loop(&SEulerApprox::new(hist.clone()), &t);
            for split in [
                RegionSplit::YBandSides,
                RegionSplit::XBandSides,
                RegionSplit::Average,
            ] {
                assert_sweep_equals_loop(&EulerApprox::with_split(hist.clone(), split), &t);
                assert_sweep_equals_loop(
                    &MEulerApprox::build_with_split(g, &objs, &[9.0, 100.0], split),
                    &t,
                );
            }
            assert_sweep_equals_loop(&ExactContains2D::build(&g, &objs), &t);
        }
    }

    #[test]
    fn empty_dataset_sweeps_to_zero_counts() {
        let g = grid(10, 8);
        let hist = EulerHistogram::build(g, &[]).freeze();
        let t = Tiling::new(g.full(), 5, 4).unwrap();
        for c in SEulerApprox::new(hist).estimate_tiling(&t) {
            assert_eq!(c, RelationCounts::default());
        }
    }

    proptest! {
        /// Sweep/loop agreement holds for arbitrary datasets and tiling
        /// shapes, including sub-region tilings with uneven remainders.
        #[test]
        fn sweep_equals_loop_on_random_tilings(
            seed in 0u64..12,
            n_objs in 0usize..80,
            rx0 in 0usize..8, ry0 in 0usize..6,
            rw in 2usize..16, rh in 2usize..12,
            cols in 1usize..7, rows in 1usize..7,
        ) {
            let g = grid(16, 12);
            let objs = random_objects(&g, n_objs, seed);
            let region = GridRect::unchecked(
                rx0, ry0, (rx0 + rw).min(16), (ry0 + rh).min(12));
            let t = Tiling::new(
                region,
                cols.min(region.width()),
                rows.min(region.height()),
            ).unwrap();
            let hist = EulerHistogram::build(g, &objs).freeze();

            let s = SEulerApprox::new(hist.clone());
            prop_assert_eq!(
                s.estimate_tiling(&t),
                t.iter().map(|(_, q)| s.estimate(&q)).collect::<Vec<_>>());

            let e = EulerApprox::with_split(hist, RegionSplit::Average);
            prop_assert_eq!(
                e.estimate_tiling(&t),
                t.iter().map(|(_, q)| e.estimate(&q)).collect::<Vec<_>>());

            let m = MEulerApprox::build(g, &objs, &[9.0, 100.0]);
            prop_assert_eq!(
                m.estimate_tiling(&t),
                t.iter().map(|(_, q)| m.estimate(&q)).collect::<Vec<_>>());

            let x = ExactContains2D::build(&g, &objs);
            prop_assert_eq!(
                x.estimate_tiling(&t),
                t.iter().map(|(_, q)| x.estimate(&q)).collect::<Vec<_>>());
        }
    }
}
