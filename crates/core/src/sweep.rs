//! Tiling-aware sweep evaluation: amortizing prefix-sum corner lookups
//! across a whole browsing query set.
//!
//! A browsing query (§1, §6.1.2) is a [`Tiling`] — a `cols × rows`
//! partition of an aligned region. Answering it tile by tile costs four
//! scattered [`euler_cube::PrefixSum2D`] corner reads per signed sum, and
//! each estimator needs two to six signed sums per tile; worse, every
//! read re-derives the same clamped Euler indices, because adjacent tiles
//! share boundary grid lines.
//!
//! The sweep path exploits that sharing. A [`TilingPlan`] precomputes the
//! tiling's **corner lattice**: for each tile-boundary grid line `x` the
//! two Euler columns that every estimator quantity reads (`2x − 2` for
//! open/inside corners, `2x − 1` for closed corners) — resolved down to
//! *internal cube indices* once, since the cube's guard layout makes the
//! low-edge clamp row-independent. The kernels then make one row-major
//! pass, materializing per boundary row a structure-of-arrays **strip**
//! of clipped prefix values — an `a` (open) and a `b` (closed) array,
//! one entry per vertical boundary — and combining four strips into a
//! whole row of tile sums with the lane-packed
//! [`euler_cube::kernels::KernelTier::strip_combine`] family:
//!
//! ```text
//!   row r+1  ─ SA_hi (2·y−2) ── SB_hi (2·y−1) ─   ← filled this row,
//!      ┌────┬────┬────┐                             reused as the next
//!      │ t₀ │ t₁ │ t₂ │   tile row r                row's lo strips
//!      └────┴────┴────┘
//!   row r    ─ SA_lo ──────── SB_lo ──────────   ← swapped from above
//! ```
//!
//! Each strip is filled once (a [`euler_cube::PrefixSum2D::row_clipped`]
//! row slice plus one dual gather through the precomputed index arrays)
//! and serves both the tile row above and below it (the `lo`/`hi` swap),
//! so a `C × R` tiling costs `O(R·C)` unit-stride strip entries instead
//! of `4·(signed sums)·R·C` independent clamped corner reads. Clipping
//! does the boundary case analysis for free: a boundary at grid line 0
//! yields Euler columns `−2`/`−1` whose gathers land on the zero guard
//! column, and a boundary at `n` clamps onto the last prefix column so
//! edge-difference terms vanish — exactly reproducing the `q.x0 > 0`-style
//! guards of the per-tile estimators, bit for bit.
//!
//! The kernels serve [`crate::SEulerApprox`], [`crate::EulerApprox`] and
//! [`crate::MEulerApprox`] via their `estimate_tiling` overrides;
//! [`crate::ExactContains2D`] has its own 4-D analogue built on
//! [`euler_cube::PrefixSumNd::axis_offset_clipped`]. All overrides are
//! bit-identical to the default per-tile loop — a law the conformance
//! suite enforces — and [`verify_kernel_tiers`] additionally checks the
//! packed kernel tier against the scalar reference on every plan.

use euler_cube::kernels::{Active, KernelTier, PackedTier, ScalarTier};
use euler_cube::CubeTier;
use euler_grid::Tiling;

use crate::{FrozenEulerHistogram, RegionSplit, RelationCounts};

/// The precomputed corner lattice of a [`Tiling`]: tile-boundary grid
/// lines on both axes and, per vertical boundary, the pair of internal
/// cube column indices every estimator quantity gathers. Build one per
/// tiling and evaluate any number of histograms against it.
#[derive(Debug, Clone)]
pub struct TilingPlan {
    tiling: Tiling,
    /// `cols + 1` vertical tile-boundary grid lines; `xs[c]` is the left
    /// edge of tile column `c`, `xs[cols]` the region's right edge.
    xs: Vec<usize>,
    /// `rows + 1` horizontal tile-boundary grid lines.
    ys: Vec<usize>,
    /// Internal cube index of Euler column `2·xs[k] − 2` (inside/open
    /// corners): `max(2·xs[k] − 1, 0)` — the low clamp resolved once, 0
    /// being the cube's zero guard column.
    ia: Vec<usize>,
    /// Internal cube index of Euler column `2·xs[k] − 1` (closed
    /// corners): `2·xs[k]`. The final entry can exceed the cube width by
    /// one when the region touches the grid's right edge; strip fills
    /// clamp it (losslessly) against the concrete cube.
    ib: Vec<usize>,
    /// Distance between consecutive interior boundary columns in internal
    /// cube indices: `2·(region.width() / cols)`. Together with
    /// `affine_from` this certifies the affine structure of the lattice —
    /// `ia[k] = ia[affine_from] + (k − affine_from)·stride` and `ib[k] =
    /// ia[k] + 1` for `affine_from ≤ k < cols` — which lets strip fills
    /// run as strided pair copies instead of index-array gathers.
    stride: usize,
    /// First index of the affine run: 0, or 1 when the region's left edge
    /// sits on grid line 0 (whose open corner clamps onto the zero guard
    /// column, breaking `ib = ia + 1`).
    affine_from: usize,
}

impl TilingPlan {
    /// Precomputes the corner lattice for a tiling.
    pub fn new(t: &Tiling) -> TilingPlan {
        let region = t.region();
        let (cols, rows) = (t.cols(), t.rows());
        let w = region.width() / cols;
        let h = region.height() / rows;
        let mut xs = Vec::with_capacity(cols + 1);
        for c in 0..cols {
            xs.push(region.x0 + c * w);
        }
        xs.push(region.x1);
        let mut ys = Vec::with_capacity(rows + 1);
        for r in 0..rows {
            ys.push(region.y0 + r * h);
        }
        ys.push(region.y1);
        let ia = xs.iter().map(|&x| (2 * x).saturating_sub(1)).collect();
        let ib = xs.iter().map(|&x| 2 * x).collect();
        TilingPlan {
            tiling: *t,
            xs,
            ys,
            ia,
            ib,
            stride: 2 * w,
            affine_from: usize::from(region.x0 == 0),
        }
    }

    /// The tiling this plan was built for.
    #[inline]
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// Number of tile columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.tiling.cols()
    }

    /// Number of tile rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.tiling.rows()
    }

    /// Total number of tiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.tiling.len()
    }

    /// Always false — tilings are validated nonempty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `cols + 1` vertical tile-boundary grid lines (`xs[c]` /
    /// `xs[c + 1]` are tile column `c`'s edges).
    #[inline]
    pub fn x_bounds(&self) -> &[usize] {
        &self.xs
    }

    /// The `rows + 1` horizontal tile-boundary grid lines.
    #[inline]
    pub fn y_bounds(&self) -> &[usize] {
        &self.ys
    }

    /// Euler row `2·ys[k] − 2` (inside/open corners) of boundary `k`.
    #[inline]
    pub(crate) fn row_a(&self, k: usize) -> i64 {
        2 * self.ys[k] as i64 - 2
    }

    /// Euler row `2·ys[k] − 1` (closed corners) of boundary `k`.
    #[inline]
    pub(crate) fn row_b(&self, k: usize) -> i64 {
        2 * self.ys[k] as i64 - 1
    }
}

thread_local! {
    /// Per-thread scratch pool for the sweep cores. Browsing workloads
    /// answer tiling after tiling back to back, so the strip/row buffer
    /// (a few KiB) is allocated once per thread instead of once per
    /// sweep; on dense tilings the allocation and zero-fill would
    /// otherwise be a measurable slice of the whole sweep.
    static SWEEP_SCRATCH: std::cell::RefCell<Vec<i64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Borrows the thread's sweep scratch, grown to at least `need` entries.
/// Contents beyond first use are unspecified — every sweep fully writes
/// the strip and row regions before reading them. Hand the buffer back
/// with [`put_scratch`] so the next sweep on this thread skips the
/// allocation entirely.
fn take_scratch(need: usize) -> Vec<i64> {
    let mut buf = SWEEP_SCRATCH.take();
    if buf.len() < need {
        buf.resize(need, 0);
    }
    buf
}

/// Returns a buffer from [`take_scratch`] to the thread's pool.
fn put_scratch(buf: Vec<i64>) {
    SWEEP_SCRATCH.set(buf);
}

/// One structure-of-arrays corner strip: per vertical boundary `k` the
/// clipped prefixes `a[k] = P(2·xs[k] − 2, er)` (open corner) and
/// `b[k] = P(2·xs[k] − 1, er)` (closed corner), plus the full-width
/// prefix `last = P(ew − 1, er)`. Splitting the pairs into two arrays is
/// what makes every per-row combine unit-stride. The arrays borrow from
/// the sweep's single pooled scratch buffer — a plan evaluation costs
/// one heap allocation (the output) regardless of shape, which keeps
/// small tilings from being dominated by allocator traffic.
struct CornerStrip<'s> {
    a: &'s mut [i64],
    b: &'s mut [i64],
    last: i64,
}

impl CornerStrip<'_> {
    /// Materializes the strip at Euler row `er`, per cube tier: on the
    /// dense tier one clipped row slice, one dual gather through the
    /// plan's precomputed indices, and a right-edge clamp for the final
    /// boundary pair; on the compressed tier one monotone run walk
    /// (the plan's interleaved indices are non-decreasing, which is
    /// exactly what [`euler_cube::CompressedPrefix2D::gather_row2_clipped`]
    /// needs to fill both arrays in `O(runs + cols)`).
    fn fill<K: KernelTier>(&mut self, plan: &TilingPlan, cum: &CubeTier, er: i64) {
        match cum {
            CubeTier::Dense(cum) => {
                let row = cum.row_clipped(er);
                let w = row.len() - 1;
                let n = plan.ia.len();
                K::gather2(
                    row,
                    &plan.ia[..n - 1],
                    &plan.ib[..n - 1],
                    &mut self.a[..n - 1],
                    &mut self.b[..n - 1],
                );
                // Only the region's right edge can reach past the cube
                // width (Euler column 2n − 1 ↦ internal 2n = w + 1);
                // clamping onto the last prefix column is lossless.
                self.a[n - 1] = row[plan.ia[n - 1].min(w)];
                self.b[n - 1] = row[plan.ib[n - 1].min(w)];
                self.last = row[w];
            }
            CubeTier::Compressed(c) => {
                self.last = c.gather_row2_clipped(er, &plan.ia, &plan.ib, self.a, self.b);
            }
        }
    }
}

/// Materializes both strips of a boundary row — the open-corner strip at
/// Euler row `er_a` and the closed-corner strip at `er_b` — in one fused
/// pass: the two rows share the plan's index lattice, so the quad gather
/// reads each index pair once and feeds all four strip arrays.
fn fill_pair<K: KernelTier>(
    sa: &mut CornerStrip,
    sb: &mut CornerStrip,
    plan: &TilingPlan,
    cum: &CubeTier,
    er_a: i64,
    er_b: i64,
) {
    let cum = match cum {
        CubeTier::Dense(cum) => cum,
        CubeTier::Compressed(c) => {
            // The fused quad gather is a dense-layout trick (both rows
            // share one stride); on runs the two rows walk separately.
            sa.last = c.gather_row2_clipped(er_a, &plan.ia, &plan.ib, sa.a, sa.b);
            sb.last = c.gather_row2_clipped(er_b, &plan.ia, &plan.ib, sb.a, sb.b);
            return;
        }
    };
    let row_a = cum.row_clipped(er_a);
    let row_b = cum.row_clipped(er_b);
    let w = row_a.len() - 1;
    let n = plan.ia.len();
    // Entry 0 when the left edge clamps onto the zero guard column: the
    // only interior boundary outside the plan's affine run.
    let f = plan.affine_from.min(n - 1);
    if f > 0 {
        sa.a[0] = row_a[plan.ia[0]];
        sa.b[0] = row_a[plan.ib[0]];
        sb.a[0] = row_b[plan.ia[0]];
        sb.b[0] = row_b[plan.ib[0]];
    }
    K::gather_pairs2(
        row_a,
        row_b,
        plan.ia[f],
        plan.stride,
        &mut sa.a[f..n - 1],
        &mut sa.b[f..n - 1],
        &mut sb.a[f..n - 1],
        &mut sb.b[f..n - 1],
    );
    sa.a[n - 1] = row_a[plan.ia[n - 1].min(w)];
    sa.b[n - 1] = row_a[plan.ib[n - 1].min(w)];
    sb.a[n - 1] = row_b[plan.ia[n - 1].min(w)];
    sb.b[n - 1] = row_b[plan.ib[n - 1].min(w)];
    sa.last = row_a[w];
    sb.last = row_b[w];
}

/// The per-tile signed sums every Euler estimator consumes: the inside
/// sum (`n_ii`), the closed sum (`total − n'_ei`), and — when requested —
/// the doubled Region A/B proxy of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TileSums {
    pub n_ii: i64,
    pub closed: i64,
    pub proxy_x2: i64,
}

/// The row-major sweep core, generic over the kernel tier: fills corner
/// strips once per boundary row and hands the callback one whole tile
/// row at a time as unit-stride slices (`n_ii`, `closed`, `proxy_x2` —
/// the last is all zeros unless a proxy was requested).
fn sweep_rows_in<K: KernelTier>(
    hist: &FrozenEulerHistogram,
    plan: &TilingPlan,
    proxy: Option<RegionSplit>,
    mut emit: impl FnMut(&[i64], &[i64], &[i64]),
) {
    let cum = hist.cum();
    let (cols, rows) = (plan.cols(), plan.rows());
    let (nx, ny) = (hist.grid().nx(), hist.grid().ny());
    let (need_y, need_x) = match proxy {
        None => (false, false),
        Some(RegionSplit::YBandSides) => (true, false),
        Some(RegionSplit::XBandSides) => (false, true),
        Some(RegionSplit::Average) => (true, true),
    };

    // Region B slabs are shared by every tile in a row (resp. column):
    // O(rows + cols) closed sums total, versus one per tile in the
    // per-tile loop.
    let ys = plan.y_bounds();
    let xs = plan.x_bounds();
    let (mut slab_above, mut slab_below) = (Vec::new(), Vec::new());
    if need_y {
        slab_above = ys
            .iter()
            .map(|&y| {
                if y < ny {
                    hist.closed_sum(0, y, nx, ny)
                } else {
                    0
                }
            })
            .collect();
        slab_below = ys
            .iter()
            .map(|&y| {
                if y > 0 {
                    hist.closed_sum(0, 0, nx, y)
                } else {
                    0
                }
            })
            .collect();
    }

    let bounds = cols + 1;
    // One scratch buffer for the whole sweep — reused across calls via
    // the thread-local pool — carved into eight strip arrays plus five
    // row buffers by `split_at_mut`.
    let mut scratch_buf = take_scratch(8 * bounds + 5 * cols);
    let scratch = &mut scratch_buf[..8 * bounds + 5 * cols];
    let (strip_buf, row_buf) = scratch.split_at_mut(8 * bounds);
    let (s0, strip_buf) = strip_buf.split_at_mut(bounds);
    let (s1, strip_buf) = strip_buf.split_at_mut(bounds);
    let (s2, strip_buf) = strip_buf.split_at_mut(bounds);
    let (s3, strip_buf) = strip_buf.split_at_mut(bounds);
    let (s4, strip_buf) = strip_buf.split_at_mut(bounds);
    let (s5, strip_buf) = strip_buf.split_at_mut(bounds);
    let (s6, s7) = strip_buf.split_at_mut(bounds);
    let mut sa_lo = CornerStrip {
        a: s0,
        b: s1,
        last: 0,
    };
    let mut sb_lo = CornerStrip {
        a: s2,
        b: s3,
        last: 0,
    };
    let mut sa_hi = CornerStrip {
        a: s4,
        b: s5,
        last: 0,
    };
    let mut sb_hi = CornerStrip {
        a: s6,
        b: s7,
        last: 0,
    };
    let (n_ii_row, row_buf) = row_buf.split_at_mut(cols);
    let (closed_row, row_buf) = row_buf.split_at_mut(cols);
    let (proxy_y_row, row_buf) = row_buf.split_at_mut(cols);
    let (proxy_x_row, proxy_row) = row_buf.split_at_mut(cols);
    if proxy.is_none() {
        // The pooled scratch carries stale values from earlier sweeps;
        // the proxy-free emit path still hands `proxy_row` out, so it
        // must read as zeros.
        proxy_row.fill(0);
    }
    // The x-band proxy's row-independent half: the top strip (highest
    // Euler row) and the per-column Region B slabs, folded into one
    // addend array — `xadd[c] = A_top's top term + B_left + B_right`.
    // `sa_hi` is free until the main loop starts, so it hosts the top
    // strip while the addend is assembled.
    let mut xadd = Vec::new();
    if need_x {
        sa_hi.fill::<K>(plan, cum, cum.height() as i64 - 1);
        let top = &sa_hi;
        xadd = (0..cols)
            .map(|c| {
                let x_lo = xs[c];
                let x_hi = xs[c + 1];
                let left = if x_lo > 0 {
                    hist.closed_sum(0, 0, x_lo, ny)
                } else {
                    0
                };
                let right = if x_hi < nx {
                    hist.closed_sum(x_hi, 0, nx, ny)
                } else {
                    0
                };
                top.a[c + 1] - top.b[c] + left + right
            })
            .collect();
    }

    fill_pair::<K>(
        &mut sa_lo,
        &mut sb_lo,
        plan,
        cum,
        plan.row_a(0),
        plan.row_b(0),
    );

    for r in 0..rows {
        fill_pair::<K>(
            &mut sa_hi,
            &mut sb_hi,
            plan,
            cum,
            plan.row_a(r + 1),
            plan.row_b(r + 1),
        );
        // inside_sum over each tile (four corners across two strips) and
        // closed_sum (the complementary corner pairs), in one fused pass.
        K::strip_combine2(
            sa_hi.a, sa_hi.b, sb_lo.a, sb_lo.b, sb_hi.b, sb_hi.a, sa_lo.b, sa_lo.a, n_ii_row,
            closed_row,
        );
        if need_y {
            // A left/right side slabs in the tile's y-band; the per-row
            // constant carries the full-width terms and Region B slabs.
            let k = sa_hi.last - sb_lo.last + slab_above[r + 1] + slab_below[r];
            K::strip_combine_k(sb_lo.b, sb_lo.a, sa_hi.b, sa_hi.a, k, proxy_y_row);
        }
        if need_x {
            K::strip_combine_add(sa_lo.a, sa_lo.b, sb_hi.a, sb_hi.b, &xadd, proxy_x_row);
        }
        let proxy_slice: &[i64] = match proxy {
            None => proxy_row,
            Some(RegionSplit::YBandSides) => {
                for c in 0..cols {
                    proxy_row[c] = 2 * proxy_y_row[c];
                }
                proxy_row
            }
            Some(RegionSplit::XBandSides) => {
                for c in 0..cols {
                    proxy_row[c] = 2 * proxy_x_row[c];
                }
                proxy_row
            }
            Some(RegionSplit::Average) => {
                for c in 0..cols {
                    proxy_row[c] = proxy_y_row[c] + proxy_x_row[c];
                }
                proxy_row
            }
        };
        emit(n_ii_row, closed_row, proxy_slice);
        // The hi strips of this row are the lo strips of the next: reuse
        // instead of refilling.
        std::mem::swap(&mut sa_lo, &mut sa_hi);
        std::mem::swap(&mut sb_lo, &mut sb_hi);
    }
    put_scratch(scratch_buf);
}

/// The sweep kernel: one row-major pass over the frozen histogram's
/// prefix cube emitting [`TileSums`] for every tile of the plan, in the
/// tiling's row-major order. `proxy` selects which Region A/B orientation
/// (if any) to evaluate alongside; `None` skips the proxy work entirely
/// (the S-EulerApprox browse path).
pub(crate) fn sweep_tile_sums(
    hist: &FrozenEulerHistogram,
    plan: &TilingPlan,
    proxy: Option<RegionSplit>,
) -> Vec<TileSums> {
    sweep_tile_sums_in::<Active>(hist, plan, proxy)
}

/// [`sweep_tile_sums`] through an explicit kernel tier.
fn sweep_tile_sums_in<K: KernelTier>(
    hist: &FrozenEulerHistogram,
    plan: &TilingPlan,
    proxy: Option<RegionSplit>,
) -> Vec<TileSums> {
    let mut out = Vec::with_capacity(plan.len());
    sweep_rows_in::<K>(hist, plan, proxy, |n_ii, closed, proxy_x2| {
        out.extend(
            n_ii.iter()
                .zip(closed)
                .zip(proxy_x2)
                .map(|((&n_ii, &closed), &proxy_x2)| TileSums {
                    n_ii,
                    closed,
                    proxy_x2,
                }),
        );
    });
    out
}

/// S-EulerApprox (Equations 14–17) over every tile of a plan, plus the
/// element-wise total across all tiles. This is the browse hot path, so
/// it gets its own proxy-free core: no Region B slabs, no proxy rows,
/// and the relation counts are assembled straight from the four corner
/// strips in a single pass per tile row — the inside/closed combines
/// never materialize as intermediate buffers, and the batch total rides
/// along in registers instead of costing a second pass over the output.
pub(crate) fn sweep_s_euler(
    hist: &FrozenEulerHistogram,
    plan: &TilingPlan,
) -> (Vec<RelationCounts>, RelationCounts) {
    sweep_s_euler_in::<Active>(hist, plan)
}

/// [`sweep_s_euler`] through an explicit kernel tier.
fn sweep_s_euler_in<K: KernelTier>(
    hist: &FrozenEulerHistogram,
    plan: &TilingPlan,
) -> (Vec<RelationCounts>, RelationCounts) {
    let size = hist.object_count() as i64;
    let total = hist.total();
    let cum = hist.cum();
    let (cols, rows) = (plan.cols(), plan.rows());
    let bounds = cols + 1;
    let mut scratch_buf = take_scratch(8 * bounds + 2 * cols);
    let (scratch, rows_buf) = scratch_buf[..8 * bounds + 2 * cols].split_at_mut(8 * bounds);
    let (n_ii_row, closed_row) = rows_buf.split_at_mut(cols);
    let (s0, rest) = scratch.split_at_mut(bounds);
    let (s1, rest) = rest.split_at_mut(bounds);
    let (s2, rest) = rest.split_at_mut(bounds);
    let (s3, rest) = rest.split_at_mut(bounds);
    let (s4, rest) = rest.split_at_mut(bounds);
    let (s5, rest) = rest.split_at_mut(bounds);
    let (s6, s7) = rest.split_at_mut(bounds);
    let mut sa_lo = CornerStrip {
        a: s0,
        b: s1,
        last: 0,
    };
    let mut sb_lo = CornerStrip {
        a: s2,
        b: s3,
        last: 0,
    };
    let mut sa_hi = CornerStrip {
        a: s4,
        b: s5,
        last: 0,
    };
    let mut sb_hi = CornerStrip {
        a: s6,
        b: s7,
        last: 0,
    };

    fill_pair::<K>(
        &mut sa_lo,
        &mut sb_lo,
        plan,
        cum,
        plan.row_a(0),
        plan.row_b(0),
    );

    let mut out = Vec::with_capacity(plan.len());
    for r in 0..rows {
        fill_pair::<K>(
            &mut sa_hi,
            &mut sb_hi,
            plan,
            cum,
            plan.row_a(r + 1),
            plan.row_b(r + 1),
        );
        // Per tile `c`: `n_ii = SA_hi.a[c+1] − SA_hi.b[c] − SB_lo.a[c+1]
        // + SB_lo.b[c]` and `closed = SB_hi.b[c+1] − SB_hi.a[c] −
        // SA_lo.b[c+1] + SA_lo.a[c]`: one fused `strip_combine2` pass
        // writes both rows with lane arithmetic. The row totals are
        // separate vectorized slice sums and the emission is a pure map —
        // keeping loop-carried accumulators out of every per-tile loop is
        // what lets all three stages vectorize (measured ~25% faster than
        // fusing the sums into either neighboring loop).
        K::strip_combine2(
            sa_hi.a, sa_hi.b, sb_lo.a, sb_lo.b, sb_hi.b, sb_hi.a, sa_lo.b, sa_lo.a, n_ii_row,
            closed_row,
        );
        out.extend(
            n_ii_row
                .iter()
                .zip(closed_row.iter())
                .map(|(&n_ii, &closed)| {
                    let n_ei = total - closed;
                    let disjoint = size - n_ii;
                    RelationCounts {
                        disjoint,
                        contains: size - n_ei,
                        contained: 0,
                        overlaps: n_ei - disjoint,
                    }
                }),
        );
        std::mem::swap(&mut sa_lo, &mut sa_hi);
        std::mem::swap(&mut sb_lo, &mut sb_hi);
    }
    put_scratch(scratch_buf);
    // The grand total is one pass over the output: `RelationCounts` is
    // four contiguous `i64`s, so four independent field accumulators
    // vectorize to a single 4-lane running sum with no horizontal step —
    // cheaper than per-row reductions, whose loop prologues dominate at
    // browse-tile widths.
    let mut grand = RelationCounts::default();
    for c in &out {
        grand.disjoint += c.disjoint;
        grand.contains += c.contains;
        grand.contained += c.contained;
        grand.overlaps += c.overlaps;
    }
    (out, grand)
}

/// EulerApprox (Equations 18–22) over every tile of a plan, fused like
/// [`sweep_s_euler`].
pub(crate) fn sweep_euler_approx(
    hist: &FrozenEulerHistogram,
    plan: &TilingPlan,
    split: RegionSplit,
) -> Vec<RelationCounts> {
    let size = hist.object_count() as i64;
    let total = hist.total();
    let mut out = Vec::with_capacity(plan.len());
    sweep_rows_in::<Active>(hist, plan, Some(split), |n_ii, closed, proxy_x2| {
        out.extend(
            n_ii.iter()
                .zip(closed)
                .zip(proxy_x2)
                .map(|((&n_ii, &closed), &proxy_x2)| {
                    let n_ei_prime = total - closed;
                    let disjoint = size - n_ii;
                    let overlaps = n_ei_prime - disjoint;
                    let contained = (proxy_x2 - 2 * n_ei_prime).div_euclid(2);
                    let contains = size - contained - disjoint - overlaps;
                    RelationCounts {
                        disjoint,
                        contains,
                        contained,
                        overlaps,
                    }
                }),
        );
    });
    out
}

/// The kernel-equivalence law, as a checkable hook for the conformance
/// suite: evaluates the tiling through **both** kernel tiers — the
/// packed production tier and the scalar reference — for every proxy
/// mode, plus the lane-packed point kernels (`signed_sum4`,
/// `prefix_many`) on every tile window, and requires bit-identical
/// results. Returns a description of the first divergence.
pub fn verify_kernel_tiers(hist: &FrozenEulerHistogram, t: &Tiling) -> Result<(), String> {
    let plan = TilingPlan::new(t);
    for proxy in [
        None,
        Some(RegionSplit::YBandSides),
        Some(RegionSplit::XBandSides),
        Some(RegionSplit::Average),
    ] {
        let scalar = sweep_tile_sums_in::<ScalarTier>(hist, &plan, proxy);
        let packed = sweep_tile_sums_in::<PackedTier>(hist, &plan, proxy);
        for (i, (s, p)) in scalar.iter().zip(&packed).enumerate() {
            if s != p {
                return Err(format!(
                    "sweep tiers diverge at tile {i} under {proxy:?}: scalar {s:?} vs packed {p:?}"
                ));
            }
        }
    }
    // The batched point kernels (`signed_sum4_in`, `prefix_many_in`)
    // are dense-layout entry points; on the compressed tier the sweep
    // comparison above is the whole tier surface.
    let Some(cum) = hist.cum().as_dense() else {
        return Ok(());
    };
    for ((c, r), tile) in t.iter() {
        // The two estimator windows of the tile (inside / closed), lane-
        // packed twice over, through both tiers and against the strip
        // pipeline's answer for the same tile.
        let (x0, y0) = (tile.x0 as i64, tile.y0 as i64);
        let (x1, y1) = (tile.x1 as i64, tile.y1 as i64);
        let ex0 = [2 * x0, 2 * x0 - 1, 2 * x0, 2 * x0 - 1];
        let ey0 = [2 * y0, 2 * y0 - 1, 2 * y0, 2 * y0 - 1];
        let ex1 = [2 * x1 - 2, 2 * x1 - 1, 2 * x1 - 2, 2 * x1 - 1];
        let ey1 = [2 * y1 - 2, 2 * y1 - 1, 2 * y1 - 2, 2 * y1 - 1];
        let s = cum.signed_sum4_in::<ScalarTier>(ex0, ey0, ex1, ey1);
        let p = cum.signed_sum4_in::<PackedTier>(ex0, ey0, ex1, ey1);
        if s != p {
            return Err(format!(
                "signed_sum4 tiers diverge at tile ({c},{r}): scalar {s:?} vs packed {p:?}"
            ));
        }
        let want = (
            hist.inside_sum(tile.x0, tile.y0, tile.x1, tile.y1),
            hist.closed_sum(tile.x0, tile.y0, tile.x1, tile.y1),
        );
        if (p[0], p[1]) != want {
            return Err(format!(
                "signed_sum4 disagrees with point path at tile ({c},{r}): {:?} vs {want:?}",
                (p[0], p[1])
            ));
        }
        // The corner lookups behind those windows, batched.
        let xs = [ex0[0] - 1, ex1[0], ex0[1] - 1, ex1[1]];
        let ys = [ey0[0] - 1, ey1[0], ey0[1] - 1, ey1[1]];
        let mut s_pts = [0i64; 4];
        let mut p_pts = [0i64; 4];
        cum.prefix_many_in::<ScalarTier>(&xs, &ys, &mut s_pts);
        cum.prefix_many_in::<PackedTier>(&xs, &ys, &mut p_pts);
        if s_pts != p_pts {
            return Err(format!(
                "prefix_many tiers diverge at tile ({c},{r}): scalar {s_pts:?} vs packed {p_pts:?}"
            ));
        }
        for l in 0..4 {
            if p_pts[l] != cum.prefix_clipped(xs[l], ys[l]) {
                return Err(format!(
                    "prefix_many disagrees with prefix_clipped at tile ({c},{r}) lane {l}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler_approx::n_ei_proxy_x2;
    use crate::{
        EulerApprox, EulerHistogram, ExactContains2D, Level2Estimator, MEulerApprox, SEulerApprox,
    };
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid, GridRect, SnappedRect, Snapper};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid(nx: usize, ny: usize) -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    fn random_objects(g: &Grid, n: usize, seed: u64) -> Vec<SnappedRect> {
        let s = Snapper::new(*g);
        let mut rng = StdRng::seed_from_u64(seed);
        let (w, h) = (g.nx() as f64, g.ny() as f64);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..w - 0.1);
                let y = rng.gen_range(0.0..h - 0.1);
                let ow = rng.gen_range(0.05..w);
                let oh = rng.gen_range(0.05..h);
                s.snap(&Rect::new(x, y, (x + ow).min(w), (y + oh).min(h)).unwrap())
            })
            .collect()
    }

    /// Tilings that exercise every boundary case: full space, single
    /// tile, per-cell tiles, uneven remainders, and interior sub-regions.
    fn tilings(g: &Grid) -> Vec<Tiling> {
        vec![
            Tiling::new(g.full(), 1, 1).unwrap(),
            Tiling::new(g.full(), 4, 4).unwrap(),
            Tiling::new(g.full(), g.nx(), g.ny()).unwrap(),
            Tiling::new(g.full(), 3, 5).unwrap(),
            Tiling::new(GridRect::unchecked(2, 3, 13, 11), 4, 3).unwrap(),
            Tiling::new(GridRect::unchecked(1, 1, 16, 12), 5, 11).unwrap(),
        ]
    }

    #[test]
    fn plan_boundaries_match_tile_corners() {
        let g = grid(16, 12);
        for t in tilings(&g) {
            let plan = TilingPlan::new(&t);
            assert_eq!(plan.len(), t.len());
            for ((c, r), tile) in t.iter() {
                assert_eq!(plan.x_bounds()[c], tile.x0, "{t:?} col {c}");
                assert_eq!(plan.x_bounds()[c + 1], tile.x1, "{t:?} col {c}");
                assert_eq!(plan.y_bounds()[r], tile.y0, "{t:?} row {r}");
                assert_eq!(plan.y_bounds()[r + 1], tile.y1, "{t:?} row {r}");
            }
        }
    }

    #[test]
    fn tile_sums_match_direct_prefix_queries() {
        let g = grid(16, 12);
        let hist = EulerHistogram::build(g, &random_objects(&g, 120, 7)).freeze();
        for t in tilings(&g) {
            let plan = TilingPlan::new(&t);
            for proxy in [
                None,
                Some(RegionSplit::YBandSides),
                Some(RegionSplit::XBandSides),
                Some(RegionSplit::Average),
            ] {
                let sums = sweep_tile_sums(&hist, &plan, proxy);
                for (((_, _), tile), ts) in t.iter().zip(&sums) {
                    assert_eq!(
                        ts.n_ii,
                        hist.inside_sum(tile.x0, tile.y0, tile.x1, tile.y1),
                        "n_ii at {tile} of {t:?}"
                    );
                    assert_eq!(
                        ts.closed,
                        hist.closed_sum(tile.x0, tile.y0, tile.x1, tile.y1),
                        "closed at {tile} of {t:?}"
                    );
                    if let Some(split) = proxy {
                        assert_eq!(
                            ts.proxy_x2,
                            n_ei_proxy_x2(&hist, &tile, split),
                            "proxy at {tile} of {t:?} under {split:?}"
                        );
                    }
                }
            }
        }
    }

    /// The kernel-equivalence law on the boundary-case tiling corpus:
    /// scalar and packed tiers are bit-identical everywhere.
    #[test]
    fn kernel_tiers_agree_on_boundary_tilings() {
        let g = grid(16, 12);
        let hist = EulerHistogram::build(g, &random_objects(&g, 140, 23)).freeze();
        for t in tilings(&g) {
            verify_kernel_tiers(&hist, &t).unwrap();
        }
        let empty = EulerHistogram::build(g, &[]).freeze();
        for t in tilings(&g) {
            verify_kernel_tiers(&empty, &t).unwrap();
        }
    }

    /// The compressed-tier law at the sweep level: every strip-filled
    /// sweep output on the compressed cube is bit-identical to the dense
    /// cube, for every proxy mode and boundary tiling — including the
    /// run walk's clamped right edge and guard rows.
    #[test]
    fn compressed_tier_sweeps_bit_identically() {
        let g = grid(16, 12);
        let built = EulerHistogram::build(g, &random_objects(&g, 140, 23));
        let dense = built.freeze_dense();
        let comp = built.freeze_compressed();
        assert!(comp.is_compressed());
        for t in tilings(&g) {
            let plan = TilingPlan::new(&t);
            for proxy in [
                None,
                Some(RegionSplit::YBandSides),
                Some(RegionSplit::XBandSides),
                Some(RegionSplit::Average),
            ] {
                assert_eq!(
                    sweep_tile_sums(&dense, &plan, proxy),
                    sweep_tile_sums(&comp, &plan, proxy),
                    "{t:?} under {proxy:?}"
                );
            }
            assert_eq!(
                sweep_s_euler(&dense, &plan),
                sweep_s_euler(&comp, &plan),
                "{t:?} s-euler"
            );
            verify_kernel_tiers(&comp, &t).unwrap();
        }
    }

    /// Lane-ragged tiling shapes: tile-column counts around the kernel
    /// lane width (1..=LANES+2) sweep correctly, including single-column
    /// and single-row tilings.
    #[test]
    fn ragged_column_counts_match_loop() {
        use euler_cube::kernels::LANES;
        let g = grid(16, 12);
        let objs = random_objects(&g, 90, 31);
        let hist = EulerHistogram::build(g, &objs).freeze();
        let est = SEulerApprox::new(hist);
        for cols in 1..=(LANES + 2) {
            for rows in [1usize, 2, 5] {
                let t = Tiling::new(g.full(), cols, rows).unwrap();
                assert_sweep_equals_loop(&est, &t);
            }
        }
    }

    /// The structural law of this PR: every sweep-capable estimator's
    /// `estimate_tiling` is bit-identical to the default per-tile loop.
    fn assert_sweep_equals_loop<E: Level2Estimator>(est: &E, t: &Tiling) {
        let swept = est.estimate_tiling(t);
        let looped: Vec<_> = t.iter().map(|(_, tile)| est.estimate(&tile)).collect();
        assert_eq!(swept, looped, "{} on {t:?}", est.name());
    }

    /// The fused batch total equals folding the per-tile counts — for
    /// the sweep override and the default-trait fold alike.
    #[test]
    fn tiling_total_equals_folded_counts() {
        let g = grid(16, 12);
        let objs = random_objects(&g, 130, 17);
        let hist = EulerHistogram::build(g, &objs).freeze();
        let est = SEulerApprox::new(hist);
        for t in tilings(&g) {
            let (counts, total) = est.estimate_tiling_total(&t);
            assert_eq!(counts, est.estimate_tiling(&t), "{t:?}");
            let folded = counts
                .iter()
                .fold(RelationCounts::default(), |acc, c| acc.add(c));
            assert_eq!(total, folded, "{t:?}");
        }
    }

    #[test]
    fn estimators_sweep_equals_per_tile_loop() {
        let g = grid(16, 12);
        let objs = random_objects(&g, 150, 11);
        let hist = EulerHistogram::build(g, &objs).freeze();
        for t in tilings(&g) {
            assert_sweep_equals_loop(&SEulerApprox::new(hist.clone()), &t);
            for split in [
                RegionSplit::YBandSides,
                RegionSplit::XBandSides,
                RegionSplit::Average,
            ] {
                assert_sweep_equals_loop(&EulerApprox::with_split(hist.clone(), split), &t);
                assert_sweep_equals_loop(
                    &MEulerApprox::build_with_split(g, &objs, &[9.0, 100.0], split),
                    &t,
                );
            }
            assert_sweep_equals_loop(&ExactContains2D::build(&g, &objs), &t);
        }
    }

    #[test]
    fn empty_dataset_sweeps_to_zero_counts() {
        let g = grid(10, 8);
        let hist = EulerHistogram::build(g, &[]).freeze();
        let t = Tiling::new(g.full(), 5, 4).unwrap();
        for c in SEulerApprox::new(hist).estimate_tiling(&t) {
            assert_eq!(c, RelationCounts::default());
        }
    }

    proptest! {
        /// Sweep/loop agreement holds for arbitrary datasets and tiling
        /// shapes, including sub-region tilings with uneven remainders.
        #[test]
        fn sweep_equals_loop_on_random_tilings(
            seed in 0u64..12,
            n_objs in 0usize..80,
            rx0 in 0usize..8, ry0 in 0usize..6,
            rw in 2usize..16, rh in 2usize..12,
            cols in 1usize..7, rows in 1usize..7,
        ) {
            let g = grid(16, 12);
            let objs = random_objects(&g, n_objs, seed);
            let region = GridRect::unchecked(
                rx0, ry0, (rx0 + rw).min(16), (ry0 + rh).min(12));
            let t = Tiling::new(
                region,
                cols.min(region.width()),
                rows.min(region.height()),
            ).unwrap();
            let hist = EulerHistogram::build(g, &objs).freeze();

            let s = SEulerApprox::new(hist.clone());
            prop_assert_eq!(
                s.estimate_tiling(&t),
                t.iter().map(|(_, q)| s.estimate(&q)).collect::<Vec<_>>());

            let e = EulerApprox::with_split(hist.clone(), RegionSplit::Average);
            prop_assert_eq!(
                e.estimate_tiling(&t),
                t.iter().map(|(_, q)| e.estimate(&q)).collect::<Vec<_>>());

            let m = MEulerApprox::build(g, &objs, &[9.0, 100.0]);
            prop_assert_eq!(
                m.estimate_tiling(&t),
                t.iter().map(|(_, q)| m.estimate(&q)).collect::<Vec<_>>());

            let x = ExactContains2D::build(&g, &objs);
            prop_assert_eq!(
                x.estimate_tiling(&t),
                t.iter().map(|(_, q)| x.estimate(&q)).collect::<Vec<_>>());

            // And the kernel tiers agree on the same random instance.
            prop_assert_eq!(verify_kernel_tiers(&hist, &t), Ok(()));
        }
    }
}
