//! The query interface shared by Euler-histogram backends.
//!
//! Estimators only need four signed-sum primitives; abstracting them lets
//! the same S-EulerApprox / EulerApprox algebra run on either the static
//! O(1)-query [`crate::FrozenEulerHistogram`] or the dynamic
//! O(log²n)-query [`crate::DynamicEulerHistogram`].

use euler_grid::{Grid, GridRect};

use crate::{FrozenEulerHistogram, RelationCounts};

/// A queryable Euler histogram backend.
pub trait EulerSource {
    /// The grid summarized.
    fn grid(&self) -> &Grid;

    /// Number of objects summarized (`|S|`).
    fn object_count(&self) -> u64;

    /// Signed sum of buckets strictly inside the aligned region
    /// `[x0, x1] × [y0, y1]` (grid-line coordinates).
    fn inside_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64;

    /// Signed sum over the closed Euler region of an aligned region
    /// (inside buckets plus its boundary-line buckets).
    fn closed_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64;

    /// Sum of all buckets. Every object's footprint has Euler
    /// characteristic 1, so this equals `|S|`.
    fn total(&self) -> i64 {
        self.object_count() as i64
    }

    /// `n_ii` — exact intersect count (Equation 12).
    fn intersect_count(&self, q: &GridRect) -> i64 {
        self.inside_sum(q.x0, q.y0, q.x1, q.y1)
    }

    /// `n'_ei` — the outside sum (Equation 15/19, loophole included).
    fn outside_sum(&self, q: &GridRect) -> i64 {
        self.total() - self.closed_sum(q.x0, q.y0, q.x1, q.y1)
    }

    /// The static prefix-sum backend, when this source is one.
    ///
    /// The sweep kernels in [`crate::sweep`] need direct access to the
    /// cumulative bucket array to materialize corner strips; backends
    /// without one (e.g. the dynamic Fenwick-tree histogram) return
    /// `None` and estimators fall back to the per-tile loop.
    fn as_frozen(&self) -> Option<&FrozenEulerHistogram> {
        None
    }
}

/// The S-EulerApprox algebra (Equations 14–17) on any backend.
pub fn s_euler_counts<H: EulerSource + ?Sized>(h: &H, q: &GridRect) -> RelationCounts {
    let size = h.object_count() as i64;
    let n_ii = h.intersect_count(q);
    let n_ei = h.outside_sum(q);
    let disjoint = size - n_ii;
    RelationCounts {
        disjoint,
        contains: size - n_ei,
        contained: 0,
        overlaps: n_ei - disjoint,
    }
}
