//! The query interface shared by Euler-histogram backends.
//!
//! Estimators only need four signed-sum primitives; abstracting them lets
//! the same S-EulerApprox / EulerApprox algebra run on either the static
//! O(1)-query [`crate::FrozenEulerHistogram`] or the dynamic
//! O(log²n)-query [`crate::DynamicEulerHistogram`].

use euler_grid::{Grid, GridRect};

use crate::{FrozenEulerHistogram, RelationCounts};

/// A queryable Euler histogram backend.
pub trait EulerSource {
    /// The grid summarized.
    fn grid(&self) -> &Grid;

    /// Number of objects summarized (`|S|`).
    fn object_count(&self) -> u64;

    /// Signed sum of buckets strictly inside the aligned region
    /// `[x0, x1] × [y0, y1]` (grid-line coordinates).
    fn inside_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64;

    /// Signed sum over the closed Euler region of an aligned region
    /// (inside buckets plus its boundary-line buckets).
    fn closed_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64;

    /// Sum of all buckets. Every object's footprint has Euler
    /// characteristic 1, so this equals `|S|`.
    fn total(&self) -> i64 {
        self.object_count() as i64
    }

    /// `n_ii` — exact intersect count (Equation 12).
    fn intersect_count(&self, q: &GridRect) -> i64 {
        self.inside_sum(q.x0, q.y0, q.x1, q.y1)
    }

    /// `n'_ei` — the outside sum (Equation 15/19, loophole included).
    fn outside_sum(&self, q: &GridRect) -> i64 {
        self.total() - self.closed_sum(q.x0, q.y0, q.x1, q.y1)
    }

    /// The static prefix-sum backend, when this source is one.
    ///
    /// The sweep kernels in [`crate::sweep`] need direct access to the
    /// cumulative bucket array to materialize corner strips; backends
    /// without one (e.g. the dynamic Fenwick-tree histogram) return
    /// `None` and estimators fall back to the per-tile loop.
    fn as_frozen(&self) -> Option<&FrozenEulerHistogram> {
        None
    }

    /// `(n_ii, closed_sum)` of one aligned region: both estimator windows
    /// in a single call so backends can batch the corner lookups. A
    /// frozen backend resolves all eight corners through one
    /// [`FrozenEulerHistogram::inside_closed_sums`] gather; composite
    /// backends (e.g. [`crate::LiveSnapshot`]) override this to also
    /// share one delta walk between the two windows.
    fn inside_closed_sums(&self, q: &GridRect) -> (i64, i64) {
        match self.as_frozen() {
            Some(f) => f.inside_closed_sums(q),
            None => (
                self.inside_sum(q.x0, q.y0, q.x1, q.y1),
                self.closed_sum(q.x0, q.y0, q.x1, q.y1),
            ),
        }
    }
}

/// The S-EulerApprox algebra (Equations 14–17) on any backend.
///
/// A frozen backend takes the batched-kernel lane: both estimator
/// windows resolve through one
/// [`FrozenEulerHistogram::inside_closed_sums`] call instead of two
/// independent four-corner lookups.
pub fn s_euler_counts<H: EulerSource + ?Sized>(h: &H, q: &GridRect) -> RelationCounts {
    let size = h.object_count() as i64;
    let (n_ii, closed) = h.inside_closed_sums(q);
    let n_ei = h.total() - closed;
    let disjoint = size - n_ii;
    RelationCounts {
        disjoint,
        contains: size - n_ei,
        contained: 0,
        overlaps: n_ei - disjoint,
    }
}
