//! M-EulerApprox (§5.4): the multi-resolution Euler approximation.
//!
//! Objects are partitioned by **area** (in cell units) into `m` groups,
//! one Euler histogram per group. A query of area `a(q)` is answered by
//! dispatching per group `i` with bounds `[t_i, t_{i+1})`:
//!
//! * `a(q) ≤ t_i` — no group-`i` object can be contained in the query
//!   (strict containment needs strictly smaller area), so only the shared
//!   overlap estimator runs and `N_cs^i = 0`;
//! * `a(q) ≥ t_{i+1}` — no group-`i` object can contain the query, so
//!   S-EulerApprox is sound: `N_cs^i = |S_i| − n'^i_ei`;
//! * otherwise (including the unbounded last group) — containment is
//!   possible, so the EulerApprox Region-A/B machinery estimates `N^i_cd`
//!   and `N_cs^i` follows from Equation 22.
//!
//! Partial results sum; finally `N_cd = |S| − N_d − N_o − N_cs`. (The
//! paper prints `N_cd = |S| − N_o − N_cs`, omitting `N_d` — an obvious
//! typo, since the four relation counts partition `S`; we keep the
//! partition identity.)
//!
//! Group 0 is special: the paper assigns it `area(H_0) = 1×1` but stores
//! objects with areas from 0 upward, so *sub-cell objects can be contained
//! in even the smallest query*. We therefore treat group 0's lower bound
//! as 0 for dispatch, which routes small queries to the (strictly more
//! general) EulerApprox branch instead of wrongly forcing `N_cs^0 = 0`.

use euler_grid::{Grid, GridRect, SnappedRect, Tiling};

use crate::euler_approx::n_ei_proxy_x2;
use crate::sweep::{sweep_tile_sums, TilingPlan};
use crate::{EulerHistogram, FrozenEulerHistogram, Level2Estimator, RegionSplit, RelationCounts};

/// One area group: its histogram and dispatch bounds.
#[derive(Debug, Clone)]
struct Group {
    hist: FrozenEulerHistogram,
    /// Dispatch lower bound `t_i` (0 for the first group).
    area_lo: f64,
    /// Dispatch upper bound `t_{i+1}` (`None` for the last group).
    area_hi: Option<f64>,
}

/// The M-EulerApprox estimator of §5.4.
#[derive(Debug, Clone)]
pub struct MEulerApprox {
    groups: Vec<Group>,
    total_objects: u64,
    split: RegionSplit,
    boundaries: Vec<f64>,
}

impl MEulerApprox {
    /// Builds `boundaries.len() + 1` histograms over `grid`, partitioning
    /// `objects` by area at the given boundaries (cell-area units,
    /// strictly increasing, all > 1). For the paper's "3-histogram case"
    /// with `area(H_i) = 1×1, 3×3, 10×10`, pass `&[9.0, 100.0]` or use
    /// [`MEulerApprox::boundaries_from_sides`]`(&[3, 10])`.
    pub fn build(grid: Grid, objects: &[SnappedRect], boundaries: &[f64]) -> MEulerApprox {
        Self::build_with_split(grid, objects, boundaries, RegionSplit::default())
    }

    /// [`MEulerApprox::build`] with an explicit Region A/B split.
    pub fn build_with_split(
        grid: Grid,
        objects: &[SnappedRect],
        boundaries: &[f64],
        split: RegionSplit,
    ) -> MEulerApprox {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "area boundaries must be strictly increasing"
        );
        assert!(
            boundaries.iter().all(|&b| b > 1.0),
            "area boundaries must exceed the unit cell"
        );
        let m = boundaries.len() + 1;
        let mut buckets: Vec<Vec<SnappedRect>> = vec![Vec::new(); m];
        for o in objects {
            let area = o.area_cells();
            let gi = boundaries.partition_point(|&b| b <= area);
            buckets[gi].push(*o);
        }
        let groups = buckets
            .into_iter()
            .enumerate()
            .map(|(i, objs)| Group {
                hist: EulerHistogram::build(grid, &objs).freeze(),
                area_lo: if i == 0 { 0.0 } else { boundaries[i - 1] },
                area_hi: boundaries.get(i).copied(),
            })
            .collect();
        MEulerApprox {
            groups,
            total_objects: objects.len() as u64,
            split,
            boundaries: boundaries.to_vec(),
        }
    }

    /// Converts the paper's `k×k` area notation into boundaries:
    /// `&[3, 10]` → `[9.0, 100.0]`.
    pub fn boundaries_from_sides(sides: &[usize]) -> Vec<f64> {
        sides.iter().map(|&s| (s * s) as f64).collect()
    }

    /// Number of histograms `m`.
    pub fn histogram_count(&self) -> usize {
        self.groups.len()
    }

    /// The area boundaries between groups.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Per-group object counts (diagnostics for the tuning loop).
    pub fn group_sizes(&self) -> Vec<u64> {
        self.groups.iter().map(|g| g.hist.object_count()).collect()
    }

    /// Total bucket storage across all histograms, in entries — the
    /// "slightly increased space complexity" of §7.
    pub fn storage_buckets(&self) -> usize {
        let (ew, eh) = match self.groups.first() {
            Some(g) => g.hist.grid().euler_dims(),
            None => return 0,
        };
        self.groups.len() * ew * eh
    }
}

impl Level2Estimator for MEulerApprox {
    fn name(&self) -> &'static str {
        "M-EulerApprox"
    }

    fn estimate(&self, q: &GridRect) -> RelationCounts {
        let aq = q.area() as f64;
        let size = self.total_objects as i64;
        let mut n_ii_total = 0i64;
        let mut n_o = 0i64;
        let mut n_cs = 0i64;
        for g in &self.groups {
            let s_i = g.hist.object_count() as i64;
            if s_i == 0 {
                continue;
            }
            // Both per-group windows through one batched kernel call.
            let (n_ii, closed) = g.hist.inside_closed_sums(q);
            let n_ei_prime = g.hist.total() - closed;
            let n_d = s_i - n_ii;
            n_ii_total += n_ii;
            // The shared overlap estimator (loophole-immune, §5.4).
            n_o += n_ei_prime - n_d;
            if aq <= g.area_lo {
                // Case 1: nothing in this group fits inside the query.
            } else if g.area_hi.is_some_and(|hi| aq >= hi) {
                // Case 2.1: nothing in this group can contain the query —
                // S-EulerApprox's contains estimate is sound.
                n_cs += s_i - n_ei_prime;
            } else {
                // Case 2.2: containment possible — EulerApprox.
                let n_cd = (n_ei_proxy_x2(&g.hist, q, self.split) - 2 * n_ei_prime).div_euclid(2);
                n_cs += s_i - n_cd - n_d - (n_ei_prime - n_d);
            }
        }
        let disjoint = size - n_ii_total;
        let contained = size - disjoint - n_o - n_cs;
        RelationCounts {
            disjoint,
            contains: n_cs,
            contained,
            overlaps: n_o,
        }
    }

    fn object_count(&self) -> u64 {
        self.total_objects
    }

    fn storage_cells(&self) -> u64 {
        self.storage_buckets() as u64
    }

    fn estimate_tiling(&self, t: &Tiling) -> Vec<RelationCounts> {
        let plan = TilingPlan::new(t);
        let n = plan.len();
        let size = self.total_objects as i64;
        // Tile areas drive the per-group dispatch; with remainder
        // absorption they can differ between the last row/column and the
        // interior, so keep them per tile.
        let areas: Vec<f64> = t.iter().map(|(_, tile)| tile.area() as f64).collect();
        let mut n_ii_total = vec![0i64; n];
        let mut n_o = vec![0i64; n];
        let mut n_cs = vec![0i64; n];
        for g in &self.groups {
            let s_i = g.hist.object_count() as i64;
            if s_i == 0 {
                continue;
            }
            // One sweep pass per group; the Region A/B proxy is only
            // materialized if some tile lands in the Case 2.2 window.
            let case_2_2 =
                |aq: f64| -> bool { aq > g.area_lo && !g.area_hi.is_some_and(|hi| aq >= hi) };
            let proxy = if areas.iter().any(|&aq| case_2_2(aq)) {
                Some(self.split)
            } else {
                None
            };
            let total = g.hist.total();
            let sums = sweep_tile_sums(&g.hist, &plan, proxy);
            for (i, ts) in sums.iter().enumerate() {
                let n_ei_prime = total - ts.closed;
                let n_d = s_i - ts.n_ii;
                n_ii_total[i] += ts.n_ii;
                n_o[i] += n_ei_prime - n_d;
                let aq = areas[i];
                if aq <= g.area_lo {
                    // Case 1: nothing in this group fits inside the tile.
                } else if g.area_hi.is_some_and(|hi| aq >= hi) {
                    // Case 2.1: S-EulerApprox's contains estimate is sound.
                    n_cs[i] += s_i - n_ei_prime;
                } else {
                    // Case 2.2: containment possible — EulerApprox.
                    let n_cd = (ts.proxy_x2 - 2 * n_ei_prime).div_euclid(2);
                    n_cs[i] += s_i - n_cd - n_d - (n_ei_prime - n_d);
                }
            }
        }
        (0..n)
            .map(|i| {
                let disjoint = size - n_ii_total[i];
                let contained = size - disjoint - n_o[i] - n_cs[i];
                RelationCounts {
                    disjoint,
                    contains: n_cs[i],
                    contained,
                    overlaps: n_o[i],
                }
            })
            .collect()
    }

    fn supports_sweep(&self) -> bool {
        true
    }
}

/// Outcome of the pragmatic tuning loop of §6.4.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Boundaries chosen, innermost first.
    pub boundaries: Vec<f64>,
    /// Worst per-query-set average relative error of `N_cs` after tuning.
    pub worst_contains_are: f64,
    /// Number of evaluation rounds performed.
    pub rounds: usize,
}

impl MEulerApprox {
    /// The pragmatic threshold-selection loop of §6.4: starting from two
    /// histograms split at a quarter of the largest test-query area, keep
    /// inserting a boundary at the geometric midpoint of the group whose
    /// queries show the worst `N_cs` error, until the target average
    /// relative error is met, adding stops helping, or `max_m` is reached.
    ///
    /// `test_queries` pairs each aligned query with its exact counts
    /// (produced by the ground-truth counter in `euler-datagen`).
    pub fn tune(
        grid: Grid,
        objects: &[SnappedRect],
        test_queries: &[(GridRect, RelationCounts)],
        target_are: f64,
        max_m: usize,
    ) -> (MEulerApprox, TuneReport) {
        assert!(max_m >= 2, "tuning needs room for at least two histograms");
        assert!(!test_queries.is_empty(), "tuning needs test queries");
        let max_q_area = test_queries
            .iter()
            .map(|(q, _)| q.area())
            .max()
            .unwrap_or(4) as f64;
        let mut boundaries = vec![(max_q_area / 4.0).max(2.0)];
        let mut rounds = 0usize;
        let contains_are = |est: &MEulerApprox| -> f64 {
            let mut err = 0.0;
            let mut denom = 0.0;
            for (q, exact) in test_queries {
                let e = est.estimate(q);
                err += (exact.contains - e.contains).abs() as f64;
                denom += exact.contains as f64;
            }
            if denom == 0.0 {
                0.0
            } else {
                err / denom
            }
        };
        // Per-query-area ARE, for the §6.4 "peak of the estimation error
        // rate" candidate.
        let peak_error_area = |est: &MEulerApprox| -> Option<f64> {
            let mut by_area: std::collections::BTreeMap<usize, (f64, f64)> =
                std::collections::BTreeMap::new();
            for (q, exact) in test_queries {
                let e = est.estimate(q);
                let entry = by_area.entry(q.area()).or_insert((0.0, 0.0));
                entry.0 += (exact.contains - e.contains).abs() as f64;
                entry.1 += exact.contains as f64;
            }
            by_area
                .into_iter()
                .filter(|&(area, (_, d))| d > 0.0 && area > 1)
                .max_by(|a, b| {
                    (a.1 .0 / a.1 .1)
                        .partial_cmp(&(b.1 .0 / b.1 .1))
                        .expect("finite ARE")
                })
                .map(|(area, _)| area as f64)
        };
        let mut best = MEulerApprox::build(grid, objects, &boundaries);
        let mut best_are = contains_are(&best);
        while best_are > target_are && best.histogram_count() < max_m {
            rounds += 1;
            // Candidate new boundaries, per §6.4: geometric midpoints of
            // each existing interval (the "area(H_1)/4" family) plus the
            // query area with the current peak error rate ("area(Q) where
            // at area(Q) there is a peak of the estimation error rate").
            let mut candidates = Vec::new();
            let mut edges = vec![1.0];
            edges.extend_from_slice(&boundaries);
            edges.push(max_q_area.max(boundaries.last().copied().unwrap_or(4.0) * 4.0));
            for w in edges.windows(2) {
                let mid = (w[0] * w[1]).sqrt();
                if mid > 1.0 && boundaries.iter().all(|&b| (b - mid).abs() > 1e-9) {
                    candidates.push(mid);
                }
            }
            if let Some(peak) = peak_error_area(&best) {
                if boundaries.iter().all(|&b| (b - peak).abs() > 1e-9) {
                    candidates.push(peak);
                }
            }
            let mut improved = false;
            for cand in candidates {
                let mut trial = boundaries.clone();
                trial.push(cand);
                trial.sort_by(|a, b| a.partial_cmp(b).expect("finite boundaries"));
                let est = MEulerApprox::build(grid, objects, &trial);
                let are = contains_are(&est);
                if are < best_are {
                    best_are = are;
                    best = est;
                    boundaries = trial;
                    improved = true;
                }
            }
            if !improved {
                break; // §6.4: stop when adding histograms no longer helps.
            }
        }
        let report = TuneReport {
            boundaries: boundaries.clone(),
            worst_contains_are: best_are,
            rounds,
        };
        (best, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::count_by_classification;
    use crate::SEulerApprox;
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid, Snapper};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid(nx: usize, ny: usize) -> Grid {
        Grid::new(
            DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
            nx,
            ny,
        )
        .unwrap()
    }

    fn mixed_dataset(g: &Grid, n: usize, seed: u64) -> Vec<SnappedRect> {
        // A mix of tiny, medium, and huge square objects (sz_skew-like).
        let s = Snapper::new(*g);
        let mut rng = StdRng::seed_from_u64(seed);
        let (w, h) = (g.nx() as f64, g.ny() as f64);
        (0..n)
            .map(|_| {
                let side: f64 = match rng.gen_range(0..10) {
                    0..=5 => rng.gen_range(0.2..1.5),
                    6..=8 => rng.gen_range(1.5..5.0),
                    _ => rng.gen_range(5.0..h * 0.9),
                };
                let cx = rng.gen_range(0.0..w);
                let cy = rng.gen_range(0.0..h);
                s.snap(
                    &Rect::new(
                        (cx - side / 2.0).max(0.0),
                        (cy - side / 2.0).max(0.0),
                        (cx + side / 2.0).min(w),
                        (cy + side / 2.0).min(h),
                    )
                    .unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn groups_partition_all_objects() {
        let g = grid(20, 16);
        let objs = mixed_dataset(&g, 300, 1);
        let m = MEulerApprox::build(g, &objs, &[4.0, 25.0]);
        assert_eq!(m.histogram_count(), 3);
        assert_eq!(m.group_sizes().iter().sum::<u64>(), 300);
        assert_eq!(m.object_count(), 300);
    }

    #[test]
    fn boundaries_from_sides_squares() {
        assert_eq!(
            MEulerApprox::boundaries_from_sides(&[3, 5, 10, 15]),
            vec![9.0, 25.0, 100.0, 225.0]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_boundaries() {
        let g = grid(8, 8);
        MEulerApprox::build(g, &[], &[25.0, 9.0]);
    }

    #[test]
    fn estimates_partition_dataset_size() {
        let g = grid(20, 16);
        let objs = mixed_dataset(&g, 250, 2);
        let m = MEulerApprox::build(g, &objs, &[4.0, 25.0, 100.0]);
        for q in [
            GridRect::unchecked(0, 0, 5, 4),
            GridRect::unchecked(8, 6, 12, 10),
            GridRect::unchecked(0, 0, 20, 16),
        ] {
            assert_eq!(m.estimate(&q).total(), 250, "query {q}");
        }
    }

    #[test]
    fn improves_on_s_euler_for_large_object_datasets() {
        let g = grid(24, 18);
        let objs = mixed_dataset(&g, 400, 3);
        let hist = EulerHistogram::build(g, &objs).freeze();
        let s_est = SEulerApprox::new(hist);
        let m_est = MEulerApprox::build(g, &objs, &MEulerApprox::boundaries_from_sides(&[3, 6]));
        let mut s_err = 0i64;
        let mut m_err = 0i64;
        for qx in (0..24).step_by(4) {
            for qy in (0..18).step_by(3) {
                let q = GridRect::unchecked(qx, qy, (qx + 4).min(24), (qy + 3).min(18));
                let exact = count_by_classification(&objs, &q);
                s_err += (exact.contains - s_est.estimate(&q).contains).abs()
                    + (exact.contained - s_est.estimate(&q).contained).abs();
                m_err += (exact.contains - m_est.estimate(&q).contains).abs()
                    + (exact.contained - m_est.estimate(&q).contained).abs();
            }
        }
        assert!(
            m_err < s_err,
            "M-Euler ({m_err}) should beat S-Euler ({s_err}) on mixed sizes"
        );
    }

    #[test]
    fn tuning_loop_reduces_error_and_respects_max_m() {
        let g = grid(20, 16);
        let objs = mixed_dataset(&g, 300, 4);
        let mut test_queries = Vec::new();
        for n in [2usize, 4] {
            for qx in (0..20).step_by(n) {
                for qy in (0..16).step_by(n) {
                    let q = GridRect::unchecked(qx, qy, qx + n, qy + n);
                    test_queries.push((q, count_by_classification(&objs, &q)));
                }
            }
        }
        let (est, report) = MEulerApprox::tune(g, &objs, &test_queries, 0.01, 5);
        assert!(est.histogram_count() <= 5);
        assert_eq!(report.boundaries.len() + 1, est.histogram_count());
        // The tuned estimator is at least as good as the 2-histogram start.
        let start = MEulerApprox::build(g, &objs, &report.boundaries[..1]);
        let are = |e: &MEulerApprox| -> f64 {
            let (mut num, mut den) = (0.0, 0.0);
            for (q, exact) in &test_queries {
                num += (exact.contains - e.estimate(q).contains).abs() as f64;
                den += exact.contains as f64;
            }
            num / den.max(1.0)
        };
        assert!(are(&est) <= are(&start) + 1e-12);
    }

    proptest! {
        /// Regardless of boundaries, totals partition |S| and the disjoint
        /// count is exact.
        #[test]
        fn partition_invariant(seed in 0u64..20, b1 in 2.0..20.0f64, scale in 2.0..8.0f64,
                               qx in 0usize..15, qy in 0usize..11,
                               qw in 1usize..16, qh in 1usize..12) {
            let g = grid(16, 12);
            let objs = mixed_dataset(&g, 120, seed);
            let m = MEulerApprox::build(g, &objs, &[b1, b1 * scale]);
            let q = GridRect::unchecked(qx, qy, (qx + qw).min(16), (qy + qh).min(12));
            let e = m.estimate(&q);
            let exact = count_by_classification(&objs, &q);
            prop_assert_eq!(e.total(), 120);
            prop_assert_eq!(e.disjoint, exact.disjoint);
        }
    }
}
