//! Storage-bound calculators for Theorem 3.1 and the structures built in
//! this workspace — the numbers behind §3's "often infeasible even for
//! 2-dimensional cases" argument and the `table_storage_bounds`
//! experiment.

/// Effective bucket count of an exact `contains` structure per
/// Theorem 3.1: `Π nᵢ(nᵢ+1)/2` over the grid dimensions.
pub fn exact_contains_buckets(dims: &[usize]) -> u128 {
    dims.iter()
        .map(|&n| (n as u128) * (n as u128 + 1) / 2)
        .product()
}

/// The same bound with the constant factor 4 per dimension pair that §3
/// attributes to supporting all four interval types `(i,j)`, `[i,j)`,
/// `(i,j]`, `[i,j]` — only relevant without the snapping convention.
pub fn exact_contains_buckets_all_types(dims: &[usize]) -> u128 {
    // One factor of 4 per axis? The paper's 2-D example uses a single
    // global factor of 4 (§3, last bullet), which we follow.
    4 * exact_contains_buckets(dims)
}

/// Bucket count of a (d-dimensional) Euler histogram: `Π (2nᵢ − 1)`.
pub fn euler_histogram_buckets(dims: &[usize]) -> u128 {
    dims.iter().map(|&n| 2 * n as u128 - 1).product()
}

/// Bucket count of the "rectangles as 2d-dimensional points" encoding the
/// paper rejects in §2: `Π nᵢ²`.
pub fn point_encoding_buckets(dims: &[usize]) -> u128 {
    dims.iter().map(|&n| (n as u128) * (n as u128)).product()
}

/// Converts a bucket count to bytes at the given counter width.
pub fn buckets_to_bytes(buckets: u128, bytes_per_bucket: usize) -> u128 {
    buckets * bytes_per_bucket as u128
}

/// Human-readable byte count (`"4.23 GB"`), decimal units.
pub fn human_bytes(bytes: u128) -> String {
    const UNITS: [&str; 6] = ["B", "KB", "MB", "GB", "TB", "PB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1000.0 && unit + 1 < UNITS.len() {
        value /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_2d_example_is_about_4_gb() {
        // §3: 360×180 at 1°×1° → 4 × (360·361)/2 × (180·181)/2 ≈ 4 GB.
        let buckets = exact_contains_buckets(&[360, 180]);
        assert_eq!(buckets, 64_980 * 16_290);
        let with_types = exact_contains_buckets_all_types(&[360, 180]);
        assert_eq!(with_types, 4 * 64_980 * 16_290);
        // ≈ 4.23e9 "values"; at 1 byte each that is the paper's ~4 GB.
        let gb = buckets_to_bytes(with_types, 1) as f64 / 1e9;
        assert!((4.0..4.5).contains(&gb), "got {gb} GB");
    }

    #[test]
    fn euler_histogram_is_linear_in_cells() {
        // §5.2: (2·360 − 1)(2·180 − 1) buckets.
        assert_eq!(euler_histogram_buckets(&[360, 180]), 719 * 359);
        // Compare: ~258k buckets vs ~1.06e9 for the exact structure.
        assert!(euler_histogram_buckets(&[360, 180]) * 1000 < exact_contains_buckets(&[360, 180]));
    }

    #[test]
    fn point_encoding_example_from_section_2() {
        // §2: treating rectangles as 4-d points needs 360×180×360×180
        // ≈ 4 billion cells.
        assert_eq!(point_encoding_buckets(&[360, 180]), 64_800u128 * 64_800u128);
    }

    #[test]
    fn one_dimensional_bound() {
        assert_eq!(exact_contains_buckets(&[4]), 10); // n(n+1)/2
        assert_eq!(euler_histogram_buckets(&[4]), 7);
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(4_233_436_920), "4.23 GB");
        assert_eq!(human_bytes(2_064_968), "2.06 MB");
    }
}
