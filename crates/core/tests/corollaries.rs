//! Corollaries 4.1 and 4.2 on adversarial snapped rectangles, asserted
//! directly on the Euler histogram's bucket algebra.
//!
//! Every single-object histogram is a live instance of the corollaries:
//! the signed sum over the object's whole footprint is its Euler
//! characteristic (`χ = 1`, Corollary 4.1), and the outside sum
//! `n'_ei = total − closed_sum` is the χ of `object ∩ exterior(query)` —
//! `0` for a containing object (the annulus has `k = 2` exterior faces,
//! Corollary 4.2), `2` for a crossover (two components, Figure 9(b)).
//! The adversarial inputs are the §4.2 snap-rule extremes: zero-width /
//! zero-height objects on grid lines and rectangles flush with the grid
//! boundary.

use euler_core::formula::{euler_characteristic, exterior_faces_of_connected, CellMask};
use euler_core::{s_euler_counts, EulerHistogram, RelationCounts};
use euler_geom::Rect;
use euler_grid::{DataSpace, Grid, GridRect, Snapper};

fn grid(nx: usize, ny: usize) -> Grid {
    Grid::new(
        DataSpace::new(Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
        nx,
        ny,
    )
    .unwrap()
}

/// Builds a one-object histogram from a raw rect (snapped per §4.2).
fn single(g: &Grid, r: Rect) -> euler_core::FrozenEulerHistogram {
    let o = Snapper::new(*g).snap(&r);
    EulerHistogram::build(*g, &[o]).freeze()
}

fn q(x0: usize, y0: usize, x1: usize, y1: usize) -> GridRect {
    GridRect::unchecked(x0, y0, x1, y1)
}

/// A labelled raw rect plus the `(cx0, cy0, cx1, cy1)` cell span it must
/// occupy after snapping.
type AdversarialObject = (&'static str, Rect, (usize, usize, usize, usize));

/// The §4.2 adversarial menagerie on an 8×6 grid: degenerate and
/// boundary-flush rawrects, each with the cell span it must occupy after
/// snapping.
fn adversarial_objects() -> Vec<AdversarialObject> {
    vec![
        (
            "zero-area point on an interior grid vertex",
            Rect::new(3.0, 2.0, 3.0, 2.0).unwrap(),
            (2, 1, 3, 2), // inflates across the vertex into 4 cells
        ),
        (
            "zero-area point at the grid origin",
            Rect::new(0.0, 0.0, 0.0, 0.0).unwrap(),
            (0, 0, 0, 0), // clamped strictly inside the corner cell
        ),
        (
            "zero-height segment lying on a grid line",
            Rect::new(1.5, 3.0, 5.5, 3.0).unwrap(),
            (1, 2, 5, 3), // straddles the line: two cell rows
        ),
        (
            "zero-width segment on the right boundary",
            Rect::new(8.0, 1.5, 8.0, 4.5).unwrap(),
            (7, 1, 7, 4), // pushed inside the last column
        ),
        (
            "rectangle flush with the whole grid boundary",
            Rect::new(0.0, 0.0, 8.0, 6.0).unwrap(),
            (0, 0, 7, 5), // shrunk strictly inside: every cell
        ),
        (
            "cell-aligned rectangle strictly inside",
            Rect::new(2.0, 1.0, 6.0, 4.0).unwrap(),
            (2, 1, 5, 3), // shrink rule pulls all four edges inward
        ),
    ]
}

/// Corollary 4.1: every snapped object's footprint is simply connected,
/// so its total signed bucket sum — and hence the full-space inside sum —
/// is exactly 1, no matter how degenerate the raw rect was.
#[test]
fn corollary_4_1_unit_characteristic_per_object() {
    let g = grid(8, 6);
    for (label, raw, (cx0, cy0, cx1, cy1)) in adversarial_objects() {
        let h = single(&g, raw);
        assert_eq!(h.total(), 1, "{label}: total signed sum");
        assert_eq!(h.intersect_count(&g.full()), 1, "{label}: full-space n_ii");
        // The same χ = 1 on the object's cell span, via the mask algebra.
        let mut m = CellMask::new(8, 6);
        m.fill_rect(cx0, cy0, cx1, cy1);
        assert_eq!(euler_characteristic(&m), 1, "{label}: mask χ");
        // And the snapped span is the one the menagerie predicts.
        let o = Snapper::new(g).snap(&raw);
        assert_eq!(
            (o.cx0(), o.cy0(), o.cx1(), o.cy1()),
            (cx0, cy0, cx1, cy1),
            "{label}: snapped cell span"
        );
    }
}

/// The outside sum `n'_ei` is the Euler characteristic of
/// `object ∩ exterior(query)`: 1 for disjoint, 0 for contained, 1 for a
/// plain overlap — checked for every adversarial object against a
/// brute-force mask of the object's cells outside the query.
#[test]
fn outside_sum_is_chi_of_object_minus_query() {
    let g = grid(8, 6);
    let queries = [
        q(0, 0, 8, 6),
        q(0, 0, 1, 1),
        q(2, 1, 6, 4),
        q(1, 2, 6, 3),
        q(7, 0, 8, 6),
        q(3, 3, 5, 5),
    ];
    for (label, raw, _) in adversarial_objects() {
        let o = Snapper::new(g).snap(&raw);
        let h = single(&g, raw);
        for query in &queries {
            // Mask of cells whose interior the object occupies outside
            // the query — χ of that region is what the bucket algebra
            // must report, *except* when the object strictly contains
            // the query (the loophole: the hole is invisible to a mask
            // built from cells the object occupies).
            if o.contains_query(query) {
                continue;
            }
            let mut m = CellMask::new(8, 6);
            for cy in o.cy0()..=o.cy1() {
                for cx in o.cx0()..=o.cx1() {
                    let in_q = cx >= query.x0 && cx < query.x1 && cy >= query.y0 && cy < query.y1;
                    if !in_q {
                        m.set(cx, cy, true);
                    }
                }
            }
            assert_eq!(
                h.outside_sum(query),
                euler_characteristic(&m),
                "{label} vs {query}: n'_ei = χ(object ∖ query)"
            );
        }
    }
}

/// Corollary 4.2, the loophole: an object strictly containing the query
/// leaves an annulus in the exterior — `k = 2` exterior faces, so
/// `χ = 2 − k = 0` and the object vanishes from `n'_ei`. S-EulerApprox
/// therefore misfiles it as `contains` instead of `contained`.
#[test]
fn corollary_4_2_containing_object_is_the_loophole() {
    let g = grid(8, 6);
    // Boundary-flush object covering the whole grid; strictly interior query.
    let raw = Rect::new(0.0, 0.0, 8.0, 6.0).unwrap();
    let h = single(&g, raw);
    let query = q(3, 2, 5, 4);
    assert_eq!(h.intersect_count(&query), 1);
    assert_eq!(h.outside_sum(&query), 0, "annulus χ = 2 − k = 0");
    // The same k = 2 via the mask algebra on the annulus region.
    let mut annulus = CellMask::new(8, 6);
    annulus.fill_rect(0, 0, 7, 5);
    for cy in 2..4 {
        for cx in 3..5 {
            annulus.set(cx, cy, false);
        }
    }
    assert_eq!(euler_characteristic(&annulus), 0);
    assert_eq!(exterior_faces_of_connected(&annulus), 2);
    // S-EulerApprox misattributes N_cd to N_cs — the documented loophole.
    assert_eq!(s_euler_counts(&h, &query), RelationCounts::new(0, 1, 0, 0));
}

/// Figure 9(b): a crossover object splits into two components outside the
/// query, so it contributes 2 to `n'_ei` — and S-EulerApprox books a
/// negative `contains` for it.
#[test]
fn crossover_contributes_two_to_the_outside_sum() {
    let g = grid(8, 6);
    // Horizontal bar crossing a tall query; flush with both x boundaries
    // (adversarial: the snap rule pulls it inside) and sitting on the
    // y = 3 grid line (zero height before snapping).
    let raw = Rect::new(0.0, 3.0, 8.0, 3.0).unwrap();
    let o = Snapper::new(g).snap(&raw);
    let query = q(3, 1, 5, 5);
    assert!(o.crosses(&query), "bar must be a crossover for the query");
    let h = single(&g, raw);
    assert_eq!(h.outside_sum(&query), 2, "two components outside");
    // Mask cross-check: the bar minus the query is two disjoint stubs.
    let mut m = CellMask::new(8, 6);
    for cx in (0..3).chain(5..8) {
        m.set(cx, 2, true);
        m.set(cx, 3, true);
    }
    assert_eq!(euler_characteristic(&m), 2);
    assert_eq!(
        s_euler_counts(&h, &query),
        RelationCounts::new(0, -1, 0, 2),
        "Figure 9(b): each crossover inflates n_ei by one"
    );
}

/// Additivity: bucket sums are linear in the dataset, so the adversarial
/// menagerie all at once must give `total = N` and per-query outside sums
/// equal to the sum of the single-object χ values.
#[test]
fn bucket_sums_are_additive_over_adversarial_objects() {
    let g = grid(8, 6);
    let snapper = Snapper::new(g);
    let objects: Vec<_> = adversarial_objects()
        .iter()
        .map(|(_, r, _)| snapper.snap(r))
        .collect();
    let all = EulerHistogram::build(g, &objects).freeze();
    assert_eq!(all.total(), objects.len() as i64);
    for query in [q(0, 0, 1, 1), q(2, 1, 6, 4), q(1, 1, 7, 5), g.full()] {
        let singles: i64 = adversarial_objects()
            .iter()
            .map(|(_, r, _)| single(&g, *r).outside_sum(&query))
            .sum();
        assert_eq!(
            all.outside_sum(&query),
            singles,
            "additivity of n'_ei on {query}"
        );
    }
}
