//! Gridding of the data space for the spatial-histograms workspace.
//!
//! The paper (§3) fixes a hyper-rectangle `R²` enclosing the dataset and an
//! `n₁ × n₂` equi-width grid over it; all histogram queries are *aligned*
//! with that grid. This crate provides:
//!
//! * [`DataSpace`] — the enclosing rectangle (the paper's 360×180 world
//!   space is [`DataSpace::paper_world`]);
//! * [`Grid`] — a gridding of a data space, with coordinate conversions;
//! * [`Snapper`] / [`SnappedRect`] — the canonical *snapping* step that
//!   realizes the paper's two modelling assumptions: objects never align
//!   with the grid (§3's "(i,j)" simplification) and `N_eq ≡ 0` (§4.2's
//!   "shrinking"). After snapping, every object is an open rectangle with
//!   non-integer endpoints in grid units, and Level 2 relations against
//!   aligned queries reduce to strict coordinate comparisons;
//! * [`GridRect`] — a grid-aligned query rectangle;
//! * [`Tiling`] and [`QuerySet`] — the browsing "tiles" of §1 and the
//!   `Q₂ … Q₂₀` query sets of §6.1.2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod grid;
mod snap;
mod space;
mod tile;

pub use grid::{Grid, GridError};
pub use snap::{SnappedRect, Snapper, SNAP_EPSILON};
pub use space::DataSpace;
pub use tile::{GridRect, QuerySet, Tiling, PAPER_TILE_SIZES};
