use euler_geom::Rect;
use serde::{Deserialize, Serialize};

use crate::{DataSpace, GridRect};

/// Errors from grid construction and coordinate conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A grid dimension was zero.
    EmptyGrid,
    /// A query rectangle does not align with the grid or exceeds it.
    Misaligned {
        /// Explanation of what failed to align.
        detail: String,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::EmptyGrid => write!(f, "grid dimensions must be nonzero"),
            GridError::Misaligned { detail } => write!(f, "misaligned query: {detail}"),
        }
    }
}

impl std::error::Error for GridError {}

/// An `nx × ny` equi-width gridding of a [`DataSpace`] (§3).
///
/// The grid defines the *resolution* at which the browsing service
/// operates: an aligned query is exact at this resolution. The paper's
/// running configuration is the 360×180 world space gridded at 1°×1°,
/// i.e. `Grid::paper_default()`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    space: DataSpace,
    nx: usize,
    ny: usize,
}

impl Grid {
    /// Creates a grid with `nx × ny` cells over `space`.
    pub fn new(space: DataSpace, nx: usize, ny: usize) -> Result<Grid, GridError> {
        if nx == 0 || ny == 0 {
            return Err(GridError::EmptyGrid);
        }
        Ok(Grid { space, nx, ny })
    }

    /// The paper's configuration: 360×180 world space at 1°×1° resolution.
    pub fn paper_default() -> Grid {
        Grid::new(DataSpace::paper_world(), 360, 180).expect("static dims")
    }

    /// The underlying data space.
    #[inline]
    pub fn space(&self) -> &DataSpace {
        &self.space
    }

    /// Number of cells along x.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of cells along y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells `N = nx × ny`.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Width of one cell in data units.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.space.width() / self.nx as f64
    }

    /// Height of one cell in data units.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.space.height() / self.ny as f64
    }

    /// Dimensions of the Euler histogram over this grid:
    /// `(2nx − 1, 2ny − 1)` buckets (§5.1).
    #[inline]
    pub fn euler_dims(&self) -> (usize, usize) {
        (2 * self.nx - 1, 2 * self.ny - 1)
    }

    /// Converts a data-space x coordinate into grid units
    /// (cell widths from the space origin).
    #[inline]
    pub fn to_grid_x(&self, x: f64) -> f64 {
        (x - self.space.bounds().xlo()) / self.cell_width()
    }

    /// Converts a data-space y coordinate into grid units.
    #[inline]
    pub fn to_grid_y(&self, y: f64) -> f64 {
        (y - self.space.bounds().ylo()) / self.cell_height()
    }

    /// Converts a grid-unit x coordinate back to data units.
    #[inline]
    pub fn from_grid_x(&self, gx: f64) -> f64 {
        self.space.bounds().xlo() + gx * self.cell_width()
    }

    /// Converts a grid-unit y coordinate back to data units.
    #[inline]
    pub fn from_grid_y(&self, gy: f64) -> f64 {
        self.space.bounds().ylo() + gy * self.cell_height()
    }

    /// Data-space rectangle of the cell `(cx, cy)`.
    pub fn cell_rect(&self, cx: usize, cy: usize) -> Rect {
        debug_assert!(cx < self.nx && cy < self.ny);
        Rect::new(
            self.from_grid_x(cx as f64),
            self.from_grid_y(cy as f64),
            self.from_grid_x(cx as f64 + 1.0),
            self.from_grid_y(cy as f64 + 1.0),
        )
        .expect("cell bounds ordered")
    }

    /// Data-space rectangle of an aligned query.
    pub fn rect_of(&self, q: &GridRect) -> Rect {
        Rect::new(
            self.from_grid_x(q.x0 as f64),
            self.from_grid_y(q.y0 as f64),
            self.from_grid_x(q.x1 as f64),
            self.from_grid_y(q.y1 as f64),
        )
        .expect("aligned query ordered")
    }

    /// Interprets a data-space rectangle as an aligned query at this grid's
    /// resolution. Fails when a bound does not fall (within `tol` grid
    /// units) on a grid line, or exceeds the grid.
    pub fn align(&self, r: &Rect, tol: f64) -> Result<GridRect, GridError> {
        let snap_line = |g: f64, n: usize, what: &str| -> Result<usize, GridError> {
            let rounded = g.round();
            if (g - rounded).abs() > tol {
                return Err(GridError::Misaligned {
                    detail: format!("{what}={g} is not on a grid line"),
                });
            }
            let idx = rounded as i64;
            if idx < 0 || idx > n as i64 {
                return Err(GridError::Misaligned {
                    detail: format!("{what}={g} outside grid [0, {n}]"),
                });
            }
            Ok(idx as usize)
        };
        let x0 = snap_line(self.to_grid_x(r.xlo()), self.nx, "xlo")?;
        let x1 = snap_line(self.to_grid_x(r.xhi()), self.nx, "xhi")?;
        let y0 = snap_line(self.to_grid_y(r.ylo()), self.ny, "ylo")?;
        let y1 = snap_line(self.to_grid_y(r.yhi()), self.ny, "yhi")?;
        GridRect::new(x0, y0, x1, y1, self)
    }

    /// The aligned query covering the whole grid.
    pub fn full(&self) -> GridRect {
        GridRect {
            x0: 0,
            y0: 0,
            x1: self.nx,
            y1: self.ny,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_geom::Rect;

    #[test]
    fn paper_default_cells() {
        let g = Grid::paper_default();
        assert_eq!(g.cell_count(), 64_800); // the paper's §2 example
        assert_eq!(g.cell_width(), 1.0);
        assert_eq!(g.cell_height(), 1.0);
        assert_eq!(g.euler_dims(), (719, 359));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Grid::new(DataSpace::unit(), 0, 4).unwrap_err(),
            GridError::EmptyGrid
        );
    }

    #[test]
    fn coordinate_roundtrip() {
        let g = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
        assert_eq!(g.cell_width(), 10.0);
        assert_eq!(g.to_grid_x(25.0), 2.5);
        assert_eq!(g.from_grid_x(2.5), 25.0);
        assert_eq!(g.to_grid_y(90.0), 9.0);
    }

    #[test]
    fn cell_rect_covers_cell() {
        let g = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
        let c = g.cell_rect(1, 2);
        assert_eq!(c, Rect::new(10.0, 20.0, 20.0, 30.0).unwrap());
    }

    #[test]
    fn align_accepts_grid_lines_and_rejects_offsets() {
        let g = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
        let q = g
            .align(&Rect::new(10.0, 20.0, 30.0, 40.0).unwrap(), 1e-9)
            .unwrap();
        assert_eq!((q.x0, q.y0, q.x1, q.y1), (1, 2, 3, 4));
        assert!(g
            .align(&Rect::new(10.5, 20.0, 30.0, 40.0).unwrap(), 1e-9)
            .is_err());
        assert!(g
            .align(&Rect::new(10.0, 20.0, 400.0, 40.0).unwrap(), 1e-9)
            .is_err());
    }

    #[test]
    fn full_query_spans_grid() {
        let g = Grid::new(DataSpace::paper_world(), 36, 18).unwrap();
        let f = g.full();
        assert_eq!((f.x0, f.y0, f.x1, f.y1), (0, 0, 36, 18));
        assert_eq!(g.rect_of(&f), *g.space().bounds());
    }
}
