//! Canonical snapping of raw MBRs into open rectangles in grid units.
//!
//! The paper's analysis rests on two modelling assumptions:
//!
//! 1. **no object aligns with the grid** (§3's simplification that every
//!    object is of type `(i, j)`), and
//! 2. **`N_eq ≡ 0`** — realized by "shrinking an object a little bit if
//!    its boundary completely aligns with a given grid" (§4.2).
//!
//! [`Snapper`] makes both assumptions true *by construction*: every raw
//! MBR — including degenerate points and segments, which occur in ADL- and
//! TIGER-like data — is deterministically mapped to an open rectangle
//! `(a, b) × (c, d)` in grid units whose endpoints are non-integer and lie
//! strictly inside `(0, nx) × (0, ny)`. Estimators *and* the exact
//! ground-truth counter both consume [`SnappedRect`], so approximation
//! error is never confused with semantic mismatch.

use euler_geom::{Level2Relation, Rect};
use serde::{Deserialize, Serialize};

use crate::{Grid, GridRect};

/// The snapping displacement, in cell widths: 2⁻²⁰ of a cell.
///
/// Small enough that no snapped object changes which cells it overlaps
/// (unless it was exactly on a line, where the paper's shrink rule applies)
/// and large enough to be exactly representable and robust in `f64` for
/// grids up to millions of cells per axis.
pub const SNAP_EPSILON: f64 = 1.0 / (1u64 << 20) as f64;

/// An object MBR in canonical snapped form: the open rectangle
/// `(a, b) × (c, d)` in grid units, with non-integer bounds strictly inside
/// the grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnappedRect {
    a: f64,
    b: f64,
    c: f64,
    d: f64,
}

impl SnappedRect {
    /// Rebuilds a snapped rect from stored bounds — the decode path of
    /// the write-ahead log and other persistence layers, where the four
    /// `f64`s round-trip bit-exactly. The bounds must have come from a
    /// [`Snapper`] (debug-checked: ordered open intervals).
    #[inline]
    pub fn from_bounds(a: f64, b: f64, c: f64, d: f64) -> SnappedRect {
        debug_assert!(a < b && c < d, "snapped bounds must be ordered");
        SnappedRect { a, b, c, d }
    }

    /// Lower x bound (grid units, exclusive).
    #[inline]
    pub fn a(&self) -> f64 {
        self.a
    }
    /// Upper x bound (grid units, exclusive).
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }
    /// Lower y bound (grid units, exclusive).
    #[inline]
    pub fn c(&self) -> f64 {
        self.c
    }
    /// Upper y bound (grid units, exclusive).
    #[inline]
    pub fn d(&self) -> f64 {
        self.d
    }

    /// First (leftmost) cell column whose interior the object intersects.
    #[inline]
    pub fn cx0(&self) -> usize {
        self.a as usize
    }

    /// Last cell column whose interior the object intersects.
    #[inline]
    pub fn cx1(&self) -> usize {
        self.b as usize
    }

    /// First (bottom) cell row whose interior the object intersects.
    #[inline]
    pub fn cy0(&self) -> usize {
        self.c as usize
    }

    /// Last cell row whose interior the object intersects.
    #[inline]
    pub fn cy1(&self) -> usize {
        self.d as usize
    }

    /// Object area in cell units, the grouping key of M-EulerApprox (§5.4).
    #[inline]
    pub fn area_cells(&self) -> f64 {
        (self.b - self.a) * (self.d - self.c)
    }

    /// The same object on a grid whose cells are `factor` times larger
    /// (`factor` a power of two) — the resolution-pyramid lineage: snap
    /// once at the finest grid, derive every coarser level with this.
    ///
    /// Dividing a bound by a power of two is exact in `f64` (pure
    /// exponent decrement, no mantissa rounding), so integer bounds stay
    /// integer, non-integer bounds stay strictly non-integer, and
    /// `floor(a / factor) == floor(a) / factor` rounded down — the cell
    /// span of the coarsened object is exactly the floor-divided fine
    /// span, bit-for-bit what re-snapping on the coarse grid yields,
    /// minus the float-rounding hazard of a fresh snap.
    #[inline]
    pub fn coarsen(&self, factor: usize) -> SnappedRect {
        debug_assert!(factor.is_power_of_two(), "coarsen needs a power of two");
        let f = factor as f64;
        SnappedRect {
            a: self.a / f,
            b: self.b / f,
            c: self.c / f,
            d: self.d / f,
        }
    }

    /// Does the object's interior intersect the open interior of the
    /// aligned query? (Level 1 `intersect`.)
    #[inline]
    pub fn intersects(&self, q: &GridRect) -> bool {
        self.a < q.x1 as f64 && self.b > q.x0 as f64 && self.c < q.y1 as f64 && self.d > q.y0 as f64
    }

    /// Is the object contained in the query (the paper's `contains`
    /// relation with the query as `p` — counted by `N_cs`)?
    #[inline]
    pub fn contained_in_query(&self, q: &GridRect) -> bool {
        self.a > q.x0 as f64 && self.b < q.x1 as f64 && self.c > q.y0 as f64 && self.d < q.y1 as f64
    }

    /// Does the object contain the query (the paper's `contained` relation
    /// — counted by `N_cd`)?
    #[inline]
    pub fn contains_query(&self, q: &GridRect) -> bool {
        self.a < q.x0 as f64 && self.b > q.x1 as f64 && self.c < q.y0 as f64 && self.d > q.y1 as f64
    }

    /// Classify the Level 2 relation of this object with respect to the
    /// aligned query. `Equals` can never occur for snapped objects.
    pub fn level2(&self, q: &GridRect) -> Level2Relation {
        if !self.intersects(q) {
            Level2Relation::Disjoint
        } else if self.contained_in_query(q) {
            Level2Relation::Contains
        } else if self.contains_query(q) {
            Level2Relation::Contained
        } else {
            Level2Relation::Overlap
        }
    }

    /// Is this a "crossover" object for the query (§5.2): the object's
    /// interior crosses the query so that `object ∩ exterior(query)` splits
    /// into **two** components? For axis-aligned rectangles this happens
    /// exactly when the object spans the query's full extent in one
    /// dimension while staying strictly inside the query's band in the
    /// other (if it poked out of the band, the two side pieces would stay
    /// connected around the query corner).
    pub fn crosses(&self, q: &GridRect) -> bool {
        let spans_x = self.a < q.x0 as f64 && self.b > q.x1 as f64;
        let within_y = self.c > q.y0 as f64 && self.d < q.y1 as f64;
        let spans_y = self.c < q.y0 as f64 && self.d > q.y1 as f64;
        let within_x = self.a > q.x0 as f64 && self.b < q.x1 as f64;
        (spans_x && within_y) || (spans_y && within_x)
    }
}

/// Deterministic snapping of raw data-space MBRs into [`SnappedRect`]s for
/// a particular [`Grid`].
#[derive(Debug, Clone, Copy)]
pub struct Snapper {
    grid: Grid,
    eps: f64,
}

impl Snapper {
    /// A snapper for `grid` using [`SNAP_EPSILON`].
    pub fn new(grid: Grid) -> Snapper {
        Snapper {
            grid,
            eps: SNAP_EPSILON,
        }
    }

    /// The grid this snapper targets.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Snap one axis extent (already in grid units) into a canonical open
    /// interval strictly inside `(0, n)` with non-integer endpoints.
    fn snap_axis(&self, lo: f64, hi: f64, n: usize) -> (f64, f64) {
        let nf = n as f64;
        let eps = self.eps;
        let lo = lo.clamp(0.0, nf);
        let hi = hi.clamp(lo, nf);
        let (mut a, mut b) = if lo == hi {
            // Degenerate extent: inflate to a tiny interval around it.
            (lo - eps, hi + eps)
        } else {
            let mut a = lo;
            let mut b = hi;
            // The paper's shrink rule: endpoints on a grid line move inward.
            if a == a.floor() {
                a += eps;
            }
            if b == b.floor() {
                b -= eps;
            }
            (a, b)
        };
        if a >= b {
            // The object was thinner than 2ε across a line; re-center it.
            let mut mid = (lo + hi) / 2.0;
            if mid == mid.floor() {
                mid += 2.0 * eps;
            }
            a = mid - eps;
            b = mid + eps;
        }
        // Keep strictly inside the grid.
        if a <= 0.0 {
            a = eps * 0.5;
        }
        if b >= nf {
            b = nf - eps * 0.5;
        }
        if a >= b {
            // Only reachable for degenerate extents hugging the boundary of
            // a 1-cell-wide grid; produce a minimal valid interval.
            a = (b - eps).max(eps * 0.25);
        }
        debug_assert!(a > 0.0 && b < nf && a < b, "snap invariant: 0<{a}<{b}<{nf}");
        debug_assert!(a != a.floor() && b != b.floor(), "non-integer endpoints");
        (a, b)
    }

    /// Snap a raw data-space MBR.
    pub fn snap(&self, r: &Rect) -> SnappedRect {
        let (a, b) = self.snap_axis(
            self.grid.to_grid_x(r.xlo()),
            self.grid.to_grid_x(r.xhi()),
            self.grid.nx(),
        );
        let (c, d) = self.snap_axis(
            self.grid.to_grid_y(r.ylo()),
            self.grid.to_grid_y(r.yhi()),
            self.grid.ny(),
        );
        SnappedRect { a, b, c, d }
    }

    /// Snap a whole slice of MBRs.
    pub fn snap_all(&self, rects: &[Rect]) -> Vec<SnappedRect> {
        rects.iter().map(|r| self.snap(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataSpace;
    use proptest::prelude::*;

    fn grid_36x18() -> Grid {
        Grid::new(DataSpace::paper_world(), 36, 18).unwrap()
    }

    fn q(x0: usize, y0: usize, x1: usize, y1: usize) -> GridRect {
        GridRect::unchecked(x0, y0, x1, y1)
    }

    #[test]
    fn aligned_object_shrinks_inward() {
        let s = Snapper::new(grid_36x18());
        // Object exactly covering cells [1,3)x[2,4) in grid units = data
        // units ×10: [10,30]x[20,40].
        let o = s.snap(&Rect::new(10.0, 20.0, 30.0, 40.0).unwrap());
        assert!(o.a() > 1.0 && o.a() < 1.0 + 1e-5);
        assert!(o.b() < 3.0 && o.b() > 3.0 - 1e-5);
        // After shrinking, the aligned query [1,3)x[2,4) *contains* it.
        assert_eq!(o.level2(&q(1, 2, 3, 4)), Level2Relation::Contains);
        // N_eq is impossible: the identical query contains, not equals.
        assert_ne!(o.level2(&q(1, 2, 3, 4)), Level2Relation::Equals);
    }

    #[test]
    fn point_objects_survive_snapping() {
        let s = Snapper::new(grid_36x18());
        let p = s.snap(&Rect::new(15.0, 25.0, 15.0, 25.0).unwrap());
        assert!(p.area_cells() > 0.0);
        assert_eq!(p.cx0(), p.cx1());
        assert_eq!(p.level2(&q(1, 2, 2, 3)), Level2Relation::Contains);
    }

    #[test]
    fn segment_objects_survive_snapping() {
        let s = Snapper::new(grid_36x18());
        // Horizontal segment from x=12 to x=28 at y=25 (grid y=2.5).
        let seg = s.snap(&Rect::new(12.0, 25.0, 28.0, 25.0).unwrap());
        assert!(seg.area_cells() > 0.0);
        assert_eq!((seg.cx0(), seg.cx1()), (1, 2));
        assert_eq!((seg.cy0(), seg.cy1()), (2, 2));
        assert_eq!(seg.level2(&q(0, 0, 36, 18)), Level2Relation::Contains);
    }

    #[test]
    fn boundary_objects_move_inside() {
        let s = Snapper::new(grid_36x18());
        let world = s.snap(&Rect::new(0.0, 0.0, 360.0, 180.0).unwrap());
        assert!(world.a() > 0.0 && world.b() < 36.0);
        assert!(world.c() > 0.0 && world.d() < 18.0);
        // The full-space query contains the world map after shrinking.
        assert_eq!(world.level2(&q(0, 0, 36, 18)), Level2Relation::Contains);
        // But it *contains* any strictly interior query.
        assert_eq!(world.level2(&q(10, 5, 12, 7)), Level2Relation::Contained);
    }

    #[test]
    fn out_of_space_coordinates_clamp() {
        let s = Snapper::new(grid_36x18());
        let o = s.snap(&Rect::new(-50.0, -10.0, 500.0, 300.0).unwrap());
        assert!(o.a() > 0.0 && o.b() < 36.0 && o.c() > 0.0 && o.d() < 18.0);
    }

    #[test]
    fn level2_classification_cases() {
        let s = Snapper::new(grid_36x18());
        // An object spanning grid coords [5.4, 6.2]² pokes out of cell (5,5).
        let o = s.snap(&Rect::new(54.0, 54.0, 62.0, 62.0).unwrap());
        assert_eq!(o.level2(&q(5, 5, 6, 6)), Level2Relation::Overlap); // pokes out
        assert_eq!(o.level2(&q(4, 4, 7, 7)), Level2Relation::Contains);
        // And an object strictly inside a single cell is contained by it.
        let tiny = s.snap(&Rect::new(54.0, 54.0, 56.0, 56.0).unwrap());
        assert_eq!(tiny.level2(&q(5, 5, 6, 6)), Level2Relation::Contains);
        assert_eq!(o.level2(&q(10, 10, 12, 12)), Level2Relation::Disjoint);
        // A big object containing a small query.
        let big = s.snap(&Rect::new(10.0, 10.0, 170.0, 170.0).unwrap());
        assert_eq!(big.level2(&q(5, 5, 6, 6)), Level2Relation::Contained);
    }

    #[test]
    fn crossover_detection_matches_figure_9b() {
        let s = Snapper::new(grid_36x18());
        // Wide flat object crossing a tall query horizontally.
        let bar = s.snap(&Rect::new(10.0, 52.0, 350.0, 58.0).unwrap());
        let tall_q = q(10, 3, 14, 9);
        assert!(bar.crosses(&tall_q));
        assert_eq!(bar.level2(&tall_q), Level2Relation::Overlap);
        // Squares can never cross squares (§6.2's sz_skew observation).
        let sq = s.snap(&Rect::new(100.0, 80.0, 140.0, 120.0).unwrap());
        assert!(!sq.crosses(&q(11, 9, 13, 11)));
    }

    #[test]
    fn degenerate_grids_still_snap_validly() {
        // 1×1 and Nx1 grids exercise the last-resort guards: every snap
        // must still produce a valid open rect strictly inside the grid.
        for (nx, ny) in [(1usize, 1usize), (4, 1), (1, 3)] {
            let g = Grid::new(
                DataSpace::new(euler_geom::Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap()),
                nx,
                ny,
            )
            .unwrap();
            let s = Snapper::new(g);
            for r in [
                Rect::new(0.0, 0.0, nx as f64, ny as f64).unwrap(), // full space
                Rect::new(0.0, 0.0, 0.0, 0.0).unwrap(),             // corner point
                Rect::new(nx as f64, ny as f64, nx as f64, ny as f64).unwrap(),
                Rect::new(0.0, 0.0, 0.5, 0.5).unwrap(),
            ] {
                let o = s.snap(&r);
                assert!(
                    o.a() > 0.0 && o.b() < nx as f64 && o.a() < o.b(),
                    "{nx}x{ny} {r}"
                );
                assert!(
                    o.c() > 0.0 && o.d() < ny as f64 && o.c() < o.d(),
                    "{nx}x{ny} {r}"
                );
                assert!(o.cx1() < nx && o.cy1() < ny);
            }
        }
    }

    proptest! {
        /// Snapping invariant: endpoints non-integer, strictly inside grid.
        #[test]
        fn snap_invariants(xlo in 0.0..360.0f64, w in 0.0..360.0f64,
                           ylo in 0.0..180.0f64, h in 0.0..180.0f64) {
            let s = Snapper::new(Grid::paper_default());
            let r = Rect::new(xlo, ylo, (xlo + w).min(360.0), (ylo + h).min(180.0)).unwrap();
            let o = s.snap(&r);
            prop_assert!(o.a() > 0.0 && o.b() < 360.0 && o.a() < o.b());
            prop_assert!(o.c() > 0.0 && o.d() < 180.0 && o.c() < o.d());
            prop_assert!(o.a().floor() != o.a() && o.b().floor() != o.b());
            prop_assert!(o.c().floor() != o.c() && o.d().floor() != o.d());
            prop_assert!(o.cx0() <= o.cx1() && o.cx1() < 360);
            prop_assert!(o.cy0() <= o.cy1() && o.cy1() < 180);
        }

        /// Cells reported by cx/cy spans are exactly the cells whose open
        /// interior the snapped object intersects.
        #[test]
        fn cell_span_matches_intersection(xlo in 0.0..360.0f64, w in 0.01..100.0f64,
                                          ylo in 0.0..180.0f64, h in 0.01..50.0f64) {
            let s = Snapper::new(Grid::paper_default());
            let r = Rect::new(xlo, ylo, (xlo + w).min(360.0), (ylo + h).min(180.0)).unwrap();
            let o = s.snap(&r);
            for cx in o.cx0().saturating_sub(1)..=(o.cx1() + 1).min(359) {
                let in_span = cx >= o.cx0() && cx <= o.cx1();
                let hits = o.a() < (cx + 1) as f64 && o.b() > cx as f64;
                prop_assert_eq!(in_span, hits);
            }
        }

        /// Coarsening by a power of two floor-divides the cell span
        /// exactly: `coarsen(2^l)` yields `cx0 >> l` / `cx1 >> l` (and
        /// the y analogues), bit-for-bit — the invariant the pyramid's
        /// snap-once lineage rests on.
        #[test]
        fn coarsen_floor_divides_cell_spans(xlo in 0.0..360.0f64, w in 0.01..100.0f64,
                                            ylo in 0.0..180.0f64, h in 0.01..50.0f64,
                                            level in 1usize..4) {
            let s = Snapper::new(Grid::paper_default());
            let r = Rect::new(xlo, ylo, (xlo + w).min(360.0), (ylo + h).min(180.0)).unwrap();
            let o = s.snap(&r);
            let f = 1usize << level;
            let c = o.coarsen(f);
            prop_assert_eq!(c.cx0(), o.cx0() >> level);
            prop_assert_eq!(c.cx1(), o.cx1() >> level);
            prop_assert_eq!(c.cy0(), o.cy0() >> level);
            prop_assert_eq!(c.cy1(), o.cy1() >> level);
            // Chaining two halvings equals one quartering, exactly.
            prop_assert_eq!(o.coarsen(2).coarsen(2), o.coarsen(4));
        }

        /// Level 2 relations vs a query are mutually exclusive & exhaustive.
        #[test]
        fn level2_partition(xlo in 0.0..360.0f64, w in 0.0..200.0f64,
                            ylo in 0.0..180.0f64, h in 0.0..100.0f64,
                            qx in 0usize..35, qy in 0usize..17,
                            qw in 1usize..20, qh in 1usize..20) {
            let s = Snapper::new(Grid::paper_default());
            let r = Rect::new(xlo, ylo, (xlo + w).min(360.0), (ylo + h).min(180.0)).unwrap();
            let o = s.snap(&r);
            let query = q(qx, qy, (qx + qw).min(360), (qy + qh).min(180));
            let flags = [
                o.level2(&query) == Level2Relation::Disjoint,
                o.level2(&query) == Level2Relation::Contains,
                o.level2(&query) == Level2Relation::Contained,
                o.level2(&query) == Level2Relation::Overlap,
            ];
            prop_assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
            // Consistency with the primitive predicates.
            if o.contained_in_query(&query) {
                prop_assert!(o.intersects(&query));
                prop_assert!(!o.contains_query(&query));
            }
            if o.contains_query(&query) {
                prop_assert!(o.intersects(&query));
            }
        }
    }
}
