use serde::{Deserialize, Serialize};

use crate::{Grid, GridError};

/// The tile side lengths (in grid cells) of the paper's eleven query sets
/// `Q₂₀ … Q₂` (§6.1.2). Every entry divides both 360 and 180.
pub const PAPER_TILE_SIZES: [usize; 11] = [20, 18, 15, 12, 10, 9, 6, 5, 4, 3, 2];

/// A grid-aligned query rectangle: cells `[x0, x1) × [y0, y1)` in grid
/// coordinates, i.e. the data-space rectangle between grid lines `x0..x1`
/// and `y0..y1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridRect {
    /// Left grid line index (inclusive).
    pub x0: usize,
    /// Bottom grid line index (inclusive).
    pub y0: usize,
    /// Right grid line index (exclusive as a cell range).
    pub x1: usize,
    /// Top grid line index (exclusive as a cell range).
    pub y1: usize,
}

impl GridRect {
    /// Creates an aligned query, validating it is nonempty and within the
    /// grid.
    pub fn new(x0: usize, y0: usize, x1: usize, y1: usize, grid: &Grid) -> Result<Self, GridError> {
        if x0 >= x1 || y0 >= y1 {
            return Err(GridError::Misaligned {
                detail: format!("empty query [{x0},{x1})x[{y0},{y1})"),
            });
        }
        if x1 > grid.nx() || y1 > grid.ny() {
            return Err(GridError::Misaligned {
                detail: format!(
                    "query [{x0},{x1})x[{y0},{y1}) exceeds grid {}x{}",
                    grid.nx(),
                    grid.ny()
                ),
            });
        }
        Ok(GridRect { x0, y0, x1, y1 })
    }

    /// Creates an aligned query without a grid (caller guarantees bounds).
    pub fn unchecked(x0: usize, y0: usize, x1: usize, y1: usize) -> Self {
        debug_assert!(x0 < x1 && y0 < y1);
        GridRect { x0, y0, x1, y1 }
    }

    /// Width in cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.x1 - self.x0
    }

    /// Height in cells.
    #[inline]
    pub fn height(&self) -> usize {
        self.y1 - self.y0
    }

    /// Area in cell units (the paper's `area(Q)`).
    #[inline]
    pub fn area(&self) -> usize {
        self.width() * self.height()
    }

    /// Does this query touch the boundary of the grid?
    pub fn touches_boundary(&self, grid: &Grid) -> bool {
        self.x0 == 0 || self.y0 == 0 || self.x1 == grid.nx() || self.y1 == grid.ny()
    }
}

impl std::fmt::Display for GridRect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{})x[{},{})", self.x0, self.x1, self.y0, self.y1)
    }
}

/// A partition of an aligned region into a `cols × rows` array of tiles —
/// the browsing query of §1 ("California partitioned into 22×24 tiles").
///
/// Tiles are produced in row-major order (bottom row first); when the
/// region does not divide evenly, the last row/column of tiles absorbs the
/// remainder so that the tiling always covers the region exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    region: GridRect,
    cols: usize,
    rows: usize,
}

impl Tiling {
    /// Partition `region` into `cols × rows` tiles.
    pub fn new(region: GridRect, cols: usize, rows: usize) -> Result<Tiling, GridError> {
        if cols == 0 || rows == 0 {
            return Err(GridError::Misaligned {
                detail: "tiling needs nonzero rows and cols".into(),
            });
        }
        if cols > region.width() || rows > region.height() {
            return Err(GridError::Misaligned {
                detail: format!(
                    "cannot split {}x{} cells into {}x{} tiles",
                    region.width(),
                    region.height(),
                    cols,
                    rows
                ),
            });
        }
        Ok(Tiling { region, cols, rows })
    }

    /// The tiled region.
    #[inline]
    pub fn region(&self) -> GridRect {
        self.region
    }

    /// Number of tile columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of tile rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of tiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Always false — constructors reject empty tilings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The tile at `(col, row)`.
    pub fn tile(&self, col: usize, row: usize) -> GridRect {
        debug_assert!(col < self.cols && row < self.rows);
        let w = self.region.width() / self.cols;
        let h = self.region.height() / self.rows;
        let x0 = self.region.x0 + col * w;
        let y0 = self.region.y0 + row * h;
        let x1 = if col + 1 == self.cols {
            self.region.x1
        } else {
            x0 + w
        };
        let y1 = if row + 1 == self.rows {
            self.region.y1
        } else {
            y0 + h
        };
        GridRect::unchecked(x0, y0, x1, y1)
    }

    /// Iterate over all tiles in row-major order with their `(col, row)`.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), GridRect)> + '_ {
        let (cols, rows) = (self.cols, self.rows);
        (0..rows).flat_map(move |r| (0..cols).map(move |c| ((c, r), self.tile(c, r))))
    }
}

/// One of the paper's browsing query sets: the whole data space tiled into
/// `n × n`-cell tiles (`Qₙ`, §6.1.2). For the 360×180 paper grid, `Q₁₀`
/// contains `36 × 18 = 648` queries and `Q₂` contains `16,200`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySet {
    tile_size: usize,
    tiling: Tiling,
}

impl QuerySet {
    /// `Qₙ` over the given grid. The tile size must divide both grid
    /// dimensions (it does for every [`PAPER_TILE_SIZES`] entry on the
    /// paper grid).
    pub fn q_n(grid: &Grid, n: usize) -> Result<QuerySet, GridError> {
        if n == 0 || !grid.nx().is_multiple_of(n) || !grid.ny().is_multiple_of(n) {
            return Err(GridError::Misaligned {
                detail: format!("tile size {n} must divide grid {}x{}", grid.nx(), grid.ny()),
            });
        }
        let tiling = Tiling::new(grid.full(), grid.nx() / n, grid.ny() / n)?;
        Ok(QuerySet {
            tile_size: n,
            tiling,
        })
    }

    /// All eleven paper query sets for a grid (skipping any whose tile size
    /// does not divide the grid).
    pub fn paper_sets(grid: &Grid) -> Vec<QuerySet> {
        PAPER_TILE_SIZES
            .iter()
            .filter_map(|&n| QuerySet::q_n(grid, n).ok())
            .collect()
    }

    /// Tile side length `n`.
    #[inline]
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// Underlying tiling.
    #[inline]
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// Number of queries in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.tiling.len()
    }

    /// Always false.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over the queries.
    pub fn iter(&self) -> impl Iterator<Item = GridRect> + '_ {
        self.tiling.iter().map(|(_, t)| t)
    }

    /// Label used in result tables, e.g. `"Q10"`.
    pub fn label(&self) -> String {
        format!("Q{}", self.tile_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataSpace;

    fn paper_grid() -> Grid {
        Grid::paper_default()
    }

    #[test]
    fn grid_rect_validation() {
        let g = paper_grid();
        assert!(GridRect::new(0, 0, 0, 5, &g).is_err());
        assert!(GridRect::new(0, 0, 361, 5, &g).is_err());
        let q = GridRect::new(10, 20, 30, 50, &g).unwrap();
        assert_eq!(q.width(), 20);
        assert_eq!(q.height(), 30);
        assert_eq!(q.area(), 600);
        assert!(!q.touches_boundary(&g));
        assert!(GridRect::new(0, 20, 30, 50, &g)
            .unwrap()
            .touches_boundary(&g));
    }

    #[test]
    fn paper_query_set_sizes() {
        let g = paper_grid();
        // §6.1.2: |Q_n| = 360/n × 180/n.
        assert_eq!(QuerySet::q_n(&g, 10).unwrap().len(), 648);
        assert_eq!(QuerySet::q_n(&g, 2).unwrap().len(), 16_200);
        assert_eq!(QuerySet::q_n(&g, 20).unwrap().len(), 18 * 9);
        let all = QuerySet::paper_sets(&g);
        assert_eq!(all.len(), 11);
        assert_eq!(all[0].label(), "Q20");
        assert_eq!(all[10].label(), "Q2");
    }

    #[test]
    fn query_set_rejects_nondivisor() {
        let g = paper_grid();
        assert!(QuerySet::q_n(&g, 7).is_err());
        assert!(QuerySet::q_n(&g, 0).is_err());
    }

    #[test]
    fn tiles_partition_region_exactly() {
        let g = paper_grid();
        for n in PAPER_TILE_SIZES {
            let qs = QuerySet::q_n(&g, n).unwrap();
            let mut covered = 0usize;
            for q in qs.iter() {
                assert_eq!(q.width(), n);
                assert_eq!(q.height(), n);
                covered += q.area();
            }
            assert_eq!(covered, g.cell_count());
        }
    }

    #[test]
    fn uneven_tiling_absorbs_remainder() {
        let g = Grid::new(DataSpace::paper_world(), 10, 10).unwrap();
        let t = Tiling::new(g.full(), 3, 3).unwrap();
        // 10 cells into 3 tiles: widths 3,3,4.
        let widths: Vec<usize> = (0..3).map(|c| t.tile(c, 0).width()).collect();
        assert_eq!(widths, vec![3, 3, 4]);
        let covered: usize = t.iter().map(|(_, q)| q.area()).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn california_tiling_from_the_intro() {
        // Figure 1(b): a region split into 22×24 tiles — just ensure a
        // non-square tiling of a sub-region works and covers it.
        let g = paper_grid();
        let region = GridRect::new(100, 60, 148, 108, &g).unwrap();
        let t = Tiling::new(region, 22, 24).unwrap();
        assert_eq!(t.len(), 528);
        let covered: usize = t.iter().map(|(_, q)| q.area()).sum();
        assert_eq!(covered, region.area());
    }
}
