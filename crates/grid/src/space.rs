use euler_geom::{Point, Rect};
use serde::{Deserialize, Serialize};

/// The rectangle `R²` enclosing all objects of a dataset (§3).
///
/// Coordinates are in arbitrary data units; the paper normalizes every
/// dataset into a `360 × 180` space with origin `(0, 0)` so that one set of
/// query sets applies to all datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataSpace {
    bounds: Rect,
}

impl DataSpace {
    /// A data space from its bounding rectangle.
    pub fn new(bounds: Rect) -> DataSpace {
        DataSpace { bounds }
    }

    /// The paper's normalized world space: `[0, 360] × [0, 180]`.
    pub fn paper_world() -> DataSpace {
        DataSpace {
            bounds: Rect::new(0.0, 0.0, 360.0, 180.0).expect("static bounds"),
        }
    }

    /// A unit square space, convenient for tests.
    pub fn unit() -> DataSpace {
        DataSpace {
            bounds: Rect::new(0.0, 0.0, 1.0, 1.0).expect("static bounds"),
        }
    }

    /// Bounding rectangle.
    #[inline]
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Width of the space in data units.
    #[inline]
    pub fn width(&self) -> f64 {
        self.bounds.width()
    }

    /// Height of the space in data units.
    #[inline]
    pub fn height(&self) -> f64 {
        self.bounds.height()
    }

    /// Origin (lower-left corner).
    #[inline]
    pub fn origin(&self) -> Point {
        Point::new(self.bounds.xlo(), self.bounds.ylo())
    }

    /// Affinely maps a rectangle from another space into this one
    /// (used to normalize e.g. a road network extent into 360×180, §6.1.1).
    pub fn normalize_from(&self, source: &DataSpace, r: &Rect) -> Rect {
        let sx = self.width() / source.width();
        let sy = self.height() / source.height();
        let x0 = self.bounds.xlo() + (r.xlo() - source.bounds.xlo()) * sx;
        let y0 = self.bounds.ylo() + (r.ylo() - source.bounds.ylo()) * sy;
        let x1 = self.bounds.xlo() + (r.xhi() - source.bounds.xlo()) * sx;
        let y1 = self.bounds.ylo() + (r.yhi() - source.bounds.ylo()) * sy;
        Rect::new(x0, y0, x1, y1).expect("affine map preserves orientation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_world_dimensions() {
        let s = DataSpace::paper_world();
        assert_eq!(s.width(), 360.0);
        assert_eq!(s.height(), 180.0);
        assert_eq!(s.origin(), Point::new(0.0, 0.0));
    }

    #[test]
    fn normalize_maps_corners() {
        let world = DataSpace::paper_world();
        let ca = DataSpace::new(Rect::new(-124.0, 32.0, -114.0, 42.0).unwrap());
        let r = Rect::new(-124.0, 32.0, -114.0, 42.0).unwrap();
        let n = world.normalize_from(&ca, &r);
        assert_eq!(n, Rect::new(0.0, 0.0, 360.0, 180.0).unwrap());

        let mid = Rect::new(-119.0, 37.0, -119.0, 37.0).unwrap();
        let nm = world.normalize_from(&ca, &mid);
        assert_eq!(nm.center(), Point::new(180.0, 90.0));
    }
}
