//! Two clients with one request surface: an in-process session for tests
//! and embedding, and a blocking line-protocol TCP client for the wire.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::core::ServeCore;
use crate::json::Json;
use crate::proto::{Request, Response};

/// In-process client: the same requests and responses as the wire, with
/// no sockets or serialization in between. Conformance tests run the same
/// script against this and [`TcpClient`].
pub struct LocalClient {
    core: Arc<ServeCore>,
}

impl LocalClient {
    /// A client bound directly to `core`.
    pub fn new(core: Arc<ServeCore>) -> LocalClient {
        LocalClient { core }
    }

    /// Serves one typed request.
    pub fn request(&self, req: &Request) -> Response {
        self.core.handle(req)
    }

    /// Serves one protocol line, returning the response JSON — exactly
    /// what a TCP peer would read back.
    pub fn request_line(&self, line: &str) -> Json {
        self.core.handle_line(line).to_json()
    }

    /// The underlying core.
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }
}

/// Blocking line-protocol client over TCP, used by tests, the bundled
/// example and the CLI.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
}

impl TcpClient {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // A hung server should fail a test, not wedge it.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        Ok(TcpClient {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line and parses the one-line JSON response.
    pub fn round_trip(&mut self, line: &str) -> io::Result<Json> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut out = String::new();
        if self.reader.read_line(&mut out)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        crate::json::parse(out.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Typed round trip: encodes `req`, returns the response JSON.
    pub fn send(&mut self, req: &Request) -> io::Result<Json> {
        self.round_trip(&req.to_json().to_string())
    }
}
