//! Per-tenant admission state: a bounded in-flight slot count, a
//! deadline budget, and the counters/latency histogram exported through
//! the `stats` endpoint.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use euler_metrics::{Counter, HistogramSnapshot, LatencyHistogram};
use std::collections::HashMap;

/// Admission limits, applied per tenant.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent in-flight requests one tenant may hold; the next
    /// request is shed immediately (`queue_full`). Bounded by
    /// construction — overload can never queue unboundedly.
    pub queue_capacity: usize,
    /// The wall-clock budget per request when the client names none,
    /// measured from admission; the engine inherits whatever remains.
    pub default_deadline: Duration,
    /// Upper clamp for client-supplied budgets.
    pub max_deadline: Duration,
    /// Results the hot-tiling cache retains.
    pub cache_capacity: usize,
    /// Largest tiling (cols × rows) a browse may request.
    pub max_tiles: usize,
    /// Longest request line (bytes, terminator included) a connection may
    /// send; one oversized line gets a structured error response and the
    /// connection is closed, so a terminator-free stream can never
    /// balloon server memory.
    pub max_line_bytes: usize,
    /// How long a connection may sit idle between request lines before
    /// the server closes it.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 8,
            default_deadline: Duration::from_millis(250),
            max_deadline: Duration::from_secs(5),
            cache_capacity: 256,
            max_tiles: 1 << 16,
            max_line_bytes: 64 * 1024,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// One tenant's admission slots and telemetry.
pub struct TenantState {
    name: String,
    in_flight: AtomicUsize,
    admitted: Counter,
    shed_queue: Counter,
    shed_budget: Counter,
    degraded: Counter,
    cache_hits: Counter,
    latency: LatencyHistogram,
}

impl TenantState {
    fn new(name: &str) -> TenantState {
        TenantState {
            name: name.to_string(),
            in_flight: AtomicUsize::new(0),
            admitted: Counter::new(),
            shed_queue: Counter::new(),
            shed_budget: Counter::new(),
            degraded: Counter::new(),
            cache_hits: Counter::new(),
            latency: LatencyHistogram::new(),
        }
    }

    /// The tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tries to take an in-flight slot; `None` means the tenant is at
    /// capacity and the request must be shed.
    pub(crate) fn try_admit(self: &Arc<TenantState>, capacity: usize) -> Option<InFlightSlot> {
        let held = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        let slot = InFlightSlot {
            tenant: self.clone(),
        };
        if held > capacity {
            // The slot guard releases the count on drop.
            None
        } else {
            Some(slot)
        }
    }

    pub(crate) fn record_admitted(&self) {
        self.admitted.incr();
    }
    pub(crate) fn record_shed_queue(&self) {
        self.shed_queue.incr();
    }
    pub(crate) fn record_shed_budget(&self) {
        self.shed_budget.incr();
    }
    pub(crate) fn record_degraded(&self) {
        self.degraded.incr();
    }
    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.incr();
    }
    pub(crate) fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// A point-in-time readout of this tenant's counters.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            name: self.name.clone(),
            in_flight: self.in_flight.load(Ordering::Acquire),
            admitted: self.admitted.get(),
            shed_queue: self.shed_queue.get(),
            shed_budget: self.shed_budget.get(),
            degraded: self.degraded.get(),
            cache_hits: self.cache_hits.get(),
            latency: self.latency.snapshot(),
        }
    }
}

/// RAII guard for one admitted (or about-to-be-shed) request's in-flight
/// slot.
pub(crate) struct InFlightSlot {
    tenant: Arc<TenantState>,
}

impl Drop for InFlightSlot {
    fn drop(&mut self) {
        self.tenant.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Point-in-time per-tenant stats, exported by the `stats` endpoint.
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub name: String,
    /// Requests currently being served.
    pub in_flight: usize,
    /// Requests admitted past the queue gate.
    pub admitted: u64,
    /// Requests shed because the tenant was at capacity.
    pub shed_queue: u64,
    /// Requests shed because their budget was spent before dispatch.
    pub shed_budget: u64,
    /// Admitted browses that came back partial (deadline/cancel inside
    /// the engine).
    pub degraded: u64,
    /// Browses answered from the hot-tiling cache.
    pub cache_hits: u64,
    /// Completion latency (admission → response) distribution.
    pub latency: HistogramSnapshot,
}

/// The tenant registry: lazily creates per-tenant state on first use.
pub(crate) struct TenantRegistry {
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
}

impl TenantRegistry {
    pub(crate) fn new() -> TenantRegistry {
        TenantRegistry {
            tenants: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn tenant(&self, name: &str) -> Arc<TenantState> {
        let mut map = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(TenantState::new(name)))
            .clone()
    }

    pub(crate) fn snapshots(&self) -> Vec<TenantSnapshot> {
        let map = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<TenantSnapshot> = map.values().map(|t| t.snapshot()).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}
