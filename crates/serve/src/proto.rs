//! The serve wire protocol: one JSON object per line, request in,
//! response out.
//!
//! Requests name a tenant and an op:
//!
//! ```text
//! {"tenant":"alice","op":"browse","cols":4,"rows":3}
//! {"tenant":"alice","op":"browse","cols":8,"rows":8,
//!  "region":[0,0,35,17],"deadline_ms":50,"threads":2}
//! {"tenant":"feed","op":"insert","rect":[10.0,10.0,12.0,11.0]}
//! {"tenant":"feed","op":"remove","rect":[10.0,10.0,12.0,11.0]}
//! {"tenant":"alice","op":"stats"}
//! {"tenant":"ops","op":"ping"}
//! {"tenant":"ops","op":"checkpoint"}
//! {"tenant":"ops","op":"shutdown"}
//! ```
//!
//! Responses carry a `status`: `ok` (complete answer), `degraded`
//! (partial answer — tiles in `unavailable` ran out of budget),
//! `shed` (refused before the engine: `queue_full` or
//! `budget_exhausted`; retry later), or `error` (malformed request).
//! Browse answers are stamped with the snapshot `epoch` and `version`
//! they were computed at, and `cache` says whether the engine was
//! bypassed.

use euler_browse::BrowseResult;
use euler_core::RelationCounts;
use euler_geom::Rect;

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// A multi-tile browsing query.
    Browse(BrowseParams),
    /// Per-tenant and service counters.
    Stats {
        /// Requesting tenant.
        tenant: String,
    },
    /// Insert an object MBR (raw data-space coordinates).
    Insert {
        /// Requesting tenant.
        tenant: String,
        /// The MBR.
        rect: Rect,
    },
    /// Remove a previously inserted MBR.
    Remove {
        /// Requesting tenant.
        tenant: String,
        /// The MBR.
        rect: Rect,
    },
    /// Liveness probe.
    Ping {
        /// Requesting tenant.
        tenant: String,
    },
    /// Force a durability checkpoint (no-op ack on in-memory sessions).
    Checkpoint {
        /// Requesting tenant.
        tenant: String,
    },
    /// Ask the server to stop accepting connections.
    Shutdown {
        /// Requesting tenant.
        tenant: String,
    },
}

/// Parameters of a browse request.
#[derive(Debug, Clone)]
pub struct BrowseParams {
    /// Requesting tenant.
    pub tenant: String,
    /// Tiling columns.
    pub cols: usize,
    /// Tiling rows.
    pub rows: usize,
    /// Region as grid-line indexes `[x0,y0,x1,y1]` (`x1`/`y1` exclusive
    /// as a cell range); `None` browses the full grid.
    pub region: Option<(usize, usize, usize, usize)>,
    /// Engine worker count override.
    pub threads: Option<usize>,
    /// Budget override in milliseconds (clamped to the server max).
    pub deadline_ms: Option<u64>,
    /// Mega-hit advice threshold override.
    pub mega_threshold: Option<i64>,
}

/// A protocol-level parse failure (the connection survives; the client
/// gets `status:"error"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn bad(msg: &str) -> ProtoError {
    ProtoError(msg.to_string())
}

fn field_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(&format!("field '{key}' must be a non-negative integer"))),
    }
}

fn field_rect(v: &Json) -> Result<Rect, ProtoError> {
    let arr = v
        .get("rect")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("field 'rect' must be [x0,y0,x1,y1]"))?;
    if arr.len() != 4 {
        return Err(bad("field 'rect' must have exactly 4 coordinates"));
    }
    let mut c = [0.0f64; 4];
    for (i, j) in arr.iter().enumerate() {
        c[i] = j
            .as_f64()
            .ok_or_else(|| bad("rect coordinates must be numbers"))?;
    }
    Rect::new(c[0], c[1], c[2], c[3]).map_err(|e| bad(&format!("invalid rect: {e}")))
}

impl Request {
    /// The tenant a request belongs to.
    pub fn tenant(&self) -> &str {
        match self {
            Request::Browse(p) => &p.tenant,
            Request::Stats { tenant }
            | Request::Insert { tenant, .. }
            | Request::Remove { tenant, .. }
            | Request::Ping { tenant }
            | Request::Checkpoint { tenant }
            | Request::Shutdown { tenant } => tenant,
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = crate::json::parse(line).map_err(|e| bad(&format!("invalid json: {e}")))?;
        Request::from_json(&v)
    }

    /// Interprets a parsed JSON object as a request.
    pub fn from_json(v: &Json) -> Result<Request, ProtoError> {
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("field 'tenant' (string) is required"))?;
        if tenant.is_empty() || tenant.len() > 64 {
            return Err(bad("tenant must be 1..=64 characters"));
        }
        let tenant = tenant.to_string();
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("field 'op' (string) is required"))?;
        match op {
            "browse" => {
                let cols =
                    field_u64(v, "cols")?.ok_or_else(|| bad("browse requires 'cols'"))? as usize;
                let rows =
                    field_u64(v, "rows")?.ok_or_else(|| bad("browse requires 'rows'"))? as usize;
                let region = match v.get("region") {
                    None | Some(Json::Null) => None,
                    Some(j) => {
                        let arr = j
                            .as_array()
                            .ok_or_else(|| bad("'region' must be [x0,y0,x1,y1]"))?;
                        if arr.len() != 4 {
                            return Err(bad("'region' must have exactly 4 cells"));
                        }
                        let mut c = [0usize; 4];
                        for (i, item) in arr.iter().enumerate() {
                            c[i] = item
                                .as_u64()
                                .ok_or_else(|| bad("region cells must be non-negative integers"))?
                                as usize;
                        }
                        Some((c[0], c[1], c[2], c[3]))
                    }
                };
                Ok(Request::Browse(BrowseParams {
                    tenant,
                    cols,
                    rows,
                    region,
                    threads: field_u64(v, "threads")?.map(|n| n as usize),
                    deadline_ms: field_u64(v, "deadline_ms")?,
                    mega_threshold: match v.get("mega_threshold") {
                        None | Some(Json::Null) => None,
                        Some(j) => Some(
                            j.as_i64()
                                .ok_or_else(|| bad("'mega_threshold' must be an integer"))?,
                        ),
                    },
                }))
            }
            "stats" => Ok(Request::Stats { tenant }),
            "insert" => Ok(Request::Insert {
                tenant,
                rect: field_rect(v)?,
            }),
            "remove" => Ok(Request::Remove {
                tenant,
                rect: field_rect(v)?,
            }),
            "ping" => Ok(Request::Ping { tenant }),
            "checkpoint" => Ok(Request::Checkpoint { tenant }),
            "shutdown" => Ok(Request::Shutdown { tenant }),
            other => Err(bad(&format!("unknown op '{other}'"))),
        }
    }

    /// Renders the request as a protocol line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Browse(p) => {
                let mut j = Json::obj()
                    .set("tenant", p.tenant.as_str())
                    .set("op", "browse")
                    .set("cols", p.cols)
                    .set("rows", p.rows);
                if let Some((x0, y0, x1, y1)) = p.region {
                    j = j.set(
                        "region",
                        Json::Arr(vec![x0.into(), y0.into(), x1.into(), y1.into()]),
                    );
                }
                if let Some(t) = p.threads {
                    j = j.set("threads", t);
                }
                if let Some(ms) = p.deadline_ms {
                    j = j.set("deadline_ms", ms);
                }
                if let Some(m) = p.mega_threshold {
                    j = j.set("mega_threshold", m);
                }
                j
            }
            Request::Stats { tenant } => Json::obj()
                .set("tenant", tenant.as_str())
                .set("op", "stats"),
            Request::Insert { tenant, rect } => Json::obj()
                .set("tenant", tenant.as_str())
                .set("op", "insert")
                .set("rect", rect_json(rect)),
            Request::Remove { tenant, rect } => Json::obj()
                .set("tenant", tenant.as_str())
                .set("op", "remove")
                .set("rect", rect_json(rect)),
            Request::Ping { tenant } => {
                Json::obj().set("tenant", tenant.as_str()).set("op", "ping")
            }
            Request::Checkpoint { tenant } => Json::obj()
                .set("tenant", tenant.as_str())
                .set("op", "checkpoint"),
            Request::Shutdown { tenant } => Json::obj()
                .set("tenant", tenant.as_str())
                .set("op", "shutdown"),
        }
    }
}

fn rect_json(rect: &Rect) -> Json {
    Json::Arr(vec![
        rect.xlo().into(),
        rect.ylo().into(),
        rect.xhi().into(),
        rect.yhi().into(),
    ])
}

/// Why a request was refused before reaching the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant already holds `queue_capacity` in-flight requests.
    QueueFull,
    /// The request's deadline budget was spent before dispatch.
    BudgetExhausted,
}

impl ShedReason {
    /// The wire label.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// A complete or partial browse answer with its provenance stamps.
#[derive(Debug, Clone)]
pub struct BrowseReply {
    /// Publish epoch of the answering snapshot.
    pub epoch: u64,
    /// Write-log version of the answering snapshot (the cache stamp).
    pub version: u64,
    /// True when the answer came from the hot-tiling cache.
    pub cache_hit: bool,
    /// The answer grid.
    pub result: std::sync::Arc<BrowseResult>,
}

/// A server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// A browse answer (`status:"ok"` when complete, `"degraded"` when
    /// tiles are listed in `unavailable`).
    Browse(BrowseReply),
    /// The request was refused before the engine; retry later.
    Shed {
        /// Why.
        reason: ShedReason,
    },
    /// Stats payload (already rendered — see `ServeCore::stats_json`).
    Stats(Json),
    /// A non-browse op succeeded; `version` stamps write acks.
    Ack {
        /// Which op.
        op: &'static str,
        /// Post-op write-log version, for writers.
        version: Option<u64>,
    },
    /// The request was malformed or invalid.
    Error(ProtoError),
}

impl Response {
    /// Renders the response as a protocol line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Response::Browse(reply) => {
                let status = if reply.result.is_complete() {
                    "ok"
                } else {
                    "degraded"
                };
                let counts: Vec<Json> = reply
                    .result
                    .counts()
                    .iter()
                    .map(|c: &RelationCounts| {
                        Json::Arr(vec![
                            c.disjoint.into(),
                            c.contains.into(),
                            c.contained.into(),
                            c.overlaps.into(),
                        ])
                    })
                    .collect();
                let mut j = Json::obj()
                    .set("status", status)
                    .set("op", "browse")
                    .set("epoch", reply.epoch)
                    .set("version", reply.version)
                    .set("cache", if reply.cache_hit { "hit" } else { "miss" })
                    .set("cols", reply.result.tiling().cols())
                    .set("rows", reply.result.tiling().rows())
                    .set("counts", Json::Arr(counts));
                if !reply.result.is_complete() {
                    j = j.set(
                        "unavailable",
                        Json::Arr(
                            reply
                                .result
                                .unavailable()
                                .iter()
                                .map(|&i| i.into())
                                .collect(),
                        ),
                    );
                }
                j
            }
            Response::Shed { reason } => Json::obj()
                .set("status", "shed")
                .set("reason", reason.as_str()),
            Response::Stats(payload) => payload.clone(),
            Response::Ack { op, version } => {
                let mut j = Json::obj().set("status", "ok").set("op", *op);
                if let Some(v) = version {
                    j = j.set("version", *v);
                }
                j
            }
            Response::Error(e) => Json::obj()
                .set("status", "error")
                .set("error", e.0.as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_wire_format() {
        let req = Request::Browse(BrowseParams {
            tenant: "alice".into(),
            cols: 4,
            rows: 3,
            region: Some((1, 2, 6, 7)),
            threads: Some(2),
            deadline_ms: Some(50),
            mega_threshold: Some(1000),
        });
        let line = req.to_json().to_string();
        let back = Request::parse(&line).unwrap();
        match back {
            Request::Browse(p) => {
                assert_eq!(p.tenant, "alice");
                assert_eq!((p.cols, p.rows), (4, 3));
                assert_eq!(p.region, Some((1, 2, 6, 7)));
                assert_eq!(p.threads, Some(2));
                assert_eq!(p.deadline_ms, Some(50));
                assert_eq!(p.mega_threshold, Some(1000));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn write_ops_carry_raw_rects() {
        let line = r#"{"tenant":"feed","op":"insert","rect":[10.0,10.5,12.25,11.0]}"#;
        match Request::parse(line).unwrap() {
            Request::Insert { tenant, rect } => {
                assert_eq!(tenant, "feed");
                assert_eq!(
                    (rect.xlo(), rect.ylo(), rect.xhi(), rect.yhi()),
                    (10.0, 10.5, 12.25, 11.0)
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("nonsense", "invalid json"),
            (r#"{"op":"browse"}"#, "tenant"),
            (r#"{"tenant":"a","op":"warp"}"#, "unknown op"),
            (r#"{"tenant":"a","op":"browse","rows":3}"#, "cols"),
            (r#"{"tenant":"a","op":"insert","rect":[1,2,3]}"#, "rect"),
            (r#"{"tenant":"a","op":"browse","cols":-2,"rows":3}"#, "cols"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                err.0.contains(needle),
                "{line}: expected {needle:?} in {:?}",
                err.0
            );
        }
    }

    #[test]
    fn shed_and_error_render_structured_statuses() {
        let shed = Response::Shed {
            reason: ShedReason::QueueFull,
        }
        .to_json();
        assert_eq!(shed.get("status").unwrap().as_str(), Some("shed"));
        assert_eq!(shed.get("reason").unwrap().as_str(), Some("queue_full"));

        let err = Response::Error(ProtoError("nope".into())).to_json();
        assert_eq!(err.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(err.get("error").unwrap().as_str(), Some("nope"));
    }
}
