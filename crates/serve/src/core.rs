//! The serving pipeline: admission → cache → engine.
//!
//! [`ServeCore`] is transport-agnostic and synchronous — the TCP server
//! calls [`ServeCore::handle`] from `spawn_blocking`, tests call it
//! directly. It multiplexes every tenant onto one [`BrowseSession`]
//! (either service profile) and degrades under load instead of queueing:
//!
//! 1. **Admission** — each tenant holds at most `queue_capacity`
//!    in-flight requests; the next one is shed with a structured
//!    `queue_full` rejection. Nothing ever waits in an unbounded queue.
//! 2. **Cache** — the request pins a snapshot and looks
//!    `(version, tiling)` up in the hot-tiling cache; a hit bypasses the
//!    engine entirely. Any write advances the version, so epoch/version
//!    advance *is* the invalidation.
//! 3. **Engine** — on a miss, whatever remains of the request's deadline
//!    budget is handed to the engine as a `BrowseRequest` deadline; the
//!    PR 5 degradation ladder turns overload into per-tile partial
//!    answers (`status:"degraded"`), never a panic.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use euler_browse::{run_browse, BrowseRequest, BrowseSession};
use euler_grid::{GridRect, Tiling};
use euler_metrics::Counter;

use crate::cache::{CacheKey, CacheStats, TilingCache};
use crate::json::Json;
use crate::proto::{BrowseParams, BrowseReply, ProtoError, Request, Response, ShedReason};
use crate::tenant::{ServeConfig, TenantRegistry, TenantSnapshot};

/// The multi-tenant serving core over one browse session.
pub struct ServeCore {
    session: Arc<dyn BrowseSession>,
    config: ServeConfig,
    cache: TilingCache,
    tenants: TenantRegistry,
    engine_dispatches: Counter,
    shutdown: AtomicBool,
    in_flight_ops: AtomicUsize,
}

/// RAII guard counting one request through [`ServeCore::handle`]; the
/// graceful-shutdown drain waits for the count to reach zero before the
/// session's WAL is synced and the listener exits.
pub struct OpGuard<'a> {
    core: &'a ServeCore,
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.core.in_flight_ops.fetch_sub(1, Ordering::AcqRel);
    }
}

impl ServeCore {
    /// Wraps `session` with admission control and caching under
    /// `config`.
    pub fn new(session: Arc<dyn BrowseSession>, config: ServeConfig) -> Arc<ServeCore> {
        let cache = TilingCache::new(config.cache_capacity);
        Arc::new(ServeCore {
            session,
            config,
            cache,
            tenants: TenantRegistry::new(),
            engine_dispatches: Counter::new(),
            shutdown: AtomicBool::new(false),
            in_flight_ops: AtomicUsize::new(0),
        })
    }

    /// The wrapped session.
    pub fn session(&self) -> &Arc<dyn BrowseSession> {
        &self.session
    }

    /// The admission configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Engine dispatches so far (browses that were *not* cache hits) —
    /// the counter the cache-bypass tests verify against.
    pub fn engine_dispatches(&self) -> u64 {
        self.engine_dispatches.get()
    }

    /// Hot-tiling cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-tenant counters, sorted by tenant name.
    pub fn tenant_snapshots(&self) -> Vec<TenantSnapshot> {
        self.tenants.snapshots()
    }

    /// True once a `shutdown` request has been served.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Raises the shutdown flag directly — what a `shutdown` request does
    /// over the wire, for hosts tearing the server down themselves.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Begins one tracked request; hold the guard across the whole
    /// request–response cycle (response write included). The graceful
    /// shutdown drain waits for [`ServeCore::in_flight_ops`] to reach
    /// zero before syncing the session and letting the listener exit.
    pub fn begin_op(&self) -> OpGuard<'_> {
        self.in_flight_ops.fetch_add(1, Ordering::AcqRel);
        OpGuard { core: self }
    }

    /// Requests currently tracked by an [`OpGuard`].
    pub fn in_flight_ops(&self) -> usize {
        self.in_flight_ops.load(Ordering::Acquire)
    }

    /// Parses and serves one protocol line.
    pub fn handle_line(&self, line: &str) -> Response {
        match Request::parse(line) {
            Ok(req) => self.handle(&req),
            Err(e) => Response::Error(e),
        }
    }

    /// Serves one request.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Browse(params) => self.browse(params),
            Request::Stats { tenant } => Response::Stats(self.stats_json(tenant)),
            Request::Insert { rect, .. } => match self.session.try_insert(rect) {
                Ok(version) => Response::Ack {
                    op: "insert",
                    version: Some(version),
                },
                Err(e) => Response::Error(ProtoError(format!("insert failed: {e}"))),
            },
            Request::Remove { rect, .. } => match self.session.try_remove(rect) {
                Ok(version) => Response::Ack {
                    op: "remove",
                    version: Some(version),
                },
                Err(e) => Response::Error(ProtoError(format!("remove failed: {e}"))),
            },
            Request::Ping { .. } => Response::Ack {
                op: "ping",
                version: None,
            },
            Request::Checkpoint { .. } => match self.session.checkpoint() {
                Ok(at) => Response::Ack {
                    op: "checkpoint",
                    version: at.map(|(_, version)| version),
                },
                Err(e) => Response::Error(ProtoError(format!("checkpoint failed: {e}"))),
            },
            Request::Shutdown { .. } => {
                self.shutdown.store(true, Ordering::Release);
                Response::Ack {
                    op: "shutdown",
                    version: None,
                }
            }
        }
    }

    fn browse(&self, params: &BrowseParams) -> Response {
        let tenant = self.tenants.tenant(&params.tenant);
        let admitted_at = Instant::now();

        // Admission: bounded in-flight slots per tenant. The guard frees
        // the slot on every exit path.
        let Some(_slot) = tenant.try_admit(self.config.queue_capacity) else {
            tenant.record_shed_queue();
            return Response::Shed {
                reason: ShedReason::QueueFull,
            };
        };

        let tiling = match self.build_tiling(params) {
            Ok(t) => t,
            Err(e) => return Response::Error(e),
        };

        let budget = params
            .deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(self.config.default_deadline)
            .min(self.config.max_deadline);

        // Pin once: the stamp, the cache key and the answer all refer to
        // this exact snapshot — keyed by the resolution level the session
        // would serve this tiling from (0 for flat sessions).
        let pinned = self.session.pin_session();
        let level = self.session.resolution_level(&tiling);
        let key = CacheKey::at_level(pinned.version(), level, &tiling);
        if let Some(hit) = self.cache.get(&key) {
            tenant.record_admitted();
            tenant.record_cache_hit();
            tenant.record_latency(admitted_at.elapsed());
            return Response::Browse(BrowseReply {
                epoch: pinned.epoch(),
                version: pinned.version(),
                cache_hit: true,
                result: hit,
            });
        }

        // Whatever the admission path consumed comes out of the budget;
        // a spent budget sheds here instead of dispatching a doomed run.
        let spent = admitted_at.elapsed();
        if spent >= budget {
            tenant.record_shed_budget();
            return Response::Shed {
                reason: ShedReason::BudgetExhausted,
            };
        }

        // Serving is latency-sensitive: poll the deadline every query so
        // an expired budget cuts the batch at the next tile, not at the
        // engine's default 64-query stride.
        let mut breq = BrowseRequest::new().deadline(budget - spent).check_every(1);
        if let Some(threads) = params.threads {
            breq = breq.threads(threads);
        }
        if let Some(mega) = params.mega_threshold {
            breq = breq.mega_threshold(mega);
        }

        self.engine_dispatches.incr();
        let result = Arc::new(run_browse(
            pinned.estimator(),
            self.session.recorder(),
            &tiling,
            &breq,
        ));
        tenant.record_admitted();
        if result.is_complete() {
            self.cache.insert(key, result.clone());
        } else {
            tenant.record_degraded();
        }
        tenant.record_latency(admitted_at.elapsed());
        Response::Browse(BrowseReply {
            epoch: pinned.epoch(),
            version: pinned.version(),
            cache_hit: false,
            result,
        })
    }

    fn build_tiling(&self, params: &BrowseParams) -> Result<Tiling, ProtoError> {
        if params.cols == 0 || params.rows == 0 {
            return Err(ProtoError("cols and rows must be positive".into()));
        }
        if params.cols.saturating_mul(params.rows) > self.config.max_tiles {
            return Err(ProtoError(format!(
                "tiling exceeds max_tiles={}",
                self.config.max_tiles
            )));
        }
        let grid = self.session.grid();
        let region = match params.region {
            None => grid.full(),
            Some((x0, y0, x1, y1)) => GridRect::new(x0, y0, x1, y1, grid)
                .map_err(|e| ProtoError(format!("invalid region: {e}")))?,
        };
        Tiling::new(region, params.cols, params.rows)
            .map_err(|e| ProtoError(format!("invalid tiling: {e}")))
    }

    /// The `stats` payload: requesting tenant's counters plus service,
    /// cache and session aggregates.
    pub fn stats_json(&self, tenant: &str) -> Json {
        let t = self.tenants.tenant(tenant).snapshot();
        let cache = self.cache.stats();
        let session = self.session.telemetry();
        Json::obj()
            .set("status", "ok")
            .set("op", "stats")
            .set("tenant", tenant_json(&t))
            .set(
                "cache",
                Json::obj()
                    .set("hits", cache.hits)
                    .set("misses", cache.misses)
                    .set("insertions", cache.insertions)
                    .set("evictions", cache.evictions)
                    .set("len", cache.len)
                    .set("capacity", self.cache.capacity()),
            )
            .set(
                "service",
                Json::obj()
                    .set("profile", self.session.session_name())
                    .set("objects", self.session.len())
                    .set("epoch", self.session.epoch())
                    .set("version", self.session.version())
                    .set("engine_dispatches", self.engine_dispatches.get())
                    .set("queries", session.queries)
                    .set("batches", session.batches),
            )
    }
}

fn tenant_json(t: &TenantSnapshot) -> Json {
    Json::obj()
        .set("name", t.name.as_str())
        .set("in_flight", t.in_flight)
        .set("admitted", t.admitted)
        .set("shed_queue", t.shed_queue)
        .set("shed_budget", t.shed_budget)
        .set("degraded", t.degraded)
        .set("cache_hits", t.cache_hits)
        .set(
            "latency_us",
            Json::obj()
                .set("count", t.latency.count())
                .set("p50", t.latency.p50().as_micros() as u64)
                .set("p95", t.latency.p95().as_micros() as u64)
                .set("p99", t.latency.p99().as_micros() as u64)
                .set("max", t.latency.max().as_micros() as u64),
        )
}
