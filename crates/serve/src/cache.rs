//! The hot-tiling result cache: complete browse answers keyed by
//! `(version, tiling)`.
//!
//! The stamp is the pinned snapshot's **write-log version**, not its
//! epoch: the version advances on every insert/remove under both read
//! profiles (the epoch only moves at refreeze points), so a write
//! invalidates every cached tiling *for free* — stale entries are simply
//! never looked up again, and the LRU sweep reclaims them. This is the
//! rectangle-algebra reuse trade: pay the engine once per
//! `(version, tiling)`, answer repeat browses in `O(1)`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use euler_browse::BrowseResult;
use euler_grid::Tiling;
use euler_metrics::Counter;

/// A cache key: the snapshot version an answer was computed at, the
/// resolution level that produced it, plus the exact tiling geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    version: u64,
    level: usize,
    region: (usize, usize, usize, usize),
    cols: usize,
    rows: usize,
}

impl CacheKey {
    /// The key for `tiling` answered at snapshot `version` on the finest
    /// (level 0) resolution — flat sessions only ever serve that level.
    pub fn new(version: u64, tiling: &Tiling) -> CacheKey {
        CacheKey::at_level(version, 0, tiling)
    }

    /// The key for `tiling` answered at snapshot `version` from pyramid
    /// `level`. Results from different levels are bit-identical under
    /// the fold law, but a level flip still means a different substrate
    /// answered — keeping them distinct keeps cache hits attributable.
    pub fn at_level(version: u64, level: usize, tiling: &Tiling) -> CacheKey {
        let r = tiling.region();
        CacheKey {
            version,
            level,
            region: (r.x0, r.y0, r.x1, r.y1),
            cols: tiling.cols(),
            rows: tiling.rows(),
        }
    }

    /// The snapshot version this key stamps.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The resolution level this key stamps.
    pub fn level(&self) -> usize {
        self.level
    }
}

struct Slot {
    result: Arc<BrowseResult>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Slot>,
    tick: u64,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Results evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// A bounded LRU cache of complete browse results.
///
/// Eviction scans for the least-recently-used slot (`O(len)`); capacities
/// are small (hundreds), so this stays cheap and keeps the structure a
/// plain `HashMap` under one mutex.
pub struct TilingCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl TilingCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> TilingCache {
        TilingCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<BrowseResult>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.incr();
                Some(slot.result.clone())
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Stores a complete result, evicting the least-recently-used entry
    /// when at capacity. Partial results must not be cached — the caller
    /// guards on `BrowseResult::is_complete`.
    pub fn insert(&self, key: CacheKey, result: Arc<BrowseResult>) {
        if self.capacity == 0 {
            return;
        }
        debug_assert!(result.is_complete(), "only complete results are cacheable");
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&oldest);
                self.evictions.incr();
            }
        }
        inner.map.insert(
            key,
            Slot {
                result,
                last_used: tick,
            },
        );
        self.insertions.incr();
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            len: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_core::RelationCounts;
    use euler_geom::Rect;
    use euler_grid::{DataSpace, Grid};

    fn tiling(cols: usize, rows: usize) -> Tiling {
        let grid = Grid::new(DataSpace::new(Rect::new(0.0, 0.0, 8.0, 8.0).unwrap()), 8, 8).unwrap();
        Tiling::new(grid.full(), cols, rows).unwrap()
    }

    fn result(t: &Tiling) -> Arc<BrowseResult> {
        Arc::new(BrowseResult::new(
            *t,
            vec![RelationCounts::default(); t.len()],
        ))
    }

    #[test]
    fn keys_distinguish_version_and_geometry() {
        let t = tiling(4, 4);
        assert_eq!(CacheKey::new(3, &t), CacheKey::new(3, &t));
        assert_ne!(CacheKey::new(3, &t), CacheKey::new(4, &t));
        assert_ne!(CacheKey::new(3, &t), CacheKey::new(3, &tiling(4, 2)));
    }

    #[test]
    fn keys_distinguish_resolution_levels() {
        let t = tiling(4, 4);
        assert_eq!(CacheKey::new(3, &t), CacheKey::at_level(3, 0, &t));
        assert_ne!(CacheKey::at_level(3, 0, &t), CacheKey::at_level(3, 1, &t));
        assert_eq!(CacheKey::at_level(3, 2, &t).level(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = TilingCache::new(2);
        let (t2, t3, t4) = (tiling(2, 2), tiling(3, 3), tiling(4, 4));
        let (k2, k3, k4) = (
            CacheKey::new(1, &t2),
            CacheKey::new(1, &t3),
            CacheKey::new(1, &t4),
        );
        cache.insert(k2, result(&t2));
        cache.insert(k3, result(&t3));
        // Touch k2 so k3 is the LRU, then overflow.
        assert!(cache.get(&k2).is_some());
        cache.insert(k4, result(&t4));
        assert!(cache.get(&k2).is_some(), "recently used survives");
        assert!(cache.get(&k3).is_none(), "LRU entry evicted");
        assert!(cache.get(&k4).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.insertions, 3);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = TilingCache::new(0);
        let t = tiling(2, 2);
        cache.insert(CacheKey::new(1, &t), result(&t));
        assert!(cache.get(&CacheKey::new(1, &t)).is_none());
        assert_eq!(cache.stats().len, 0);
    }
}
