//! The durable session profile: a [`DurableLive`] store behind the
//! [`BrowseSession`] trait.
//!
//! Reads go through a [`DynamicGeoBrowsingService`] sharing the store's
//! live substrate (pin-current policy — a restart-transparent server
//! should answer from the newest state it acknowledged). Writes go
//! through the store, so every acknowledged insert/remove is in the WAL
//! before it is visible to any reader, and `sync`/`checkpoint` map to
//! the real durability operations instead of the in-memory no-ops.

use std::io;
use std::path::Path;
use std::sync::Arc;

use euler_browse::{BrowseSession, DynamicGeoBrowsingService, PinnedSession};
use euler_geom::Rect;
use euler_grid::{Grid, Snapper, Tiling};
use euler_metrics::Recorder;
use euler_wal::{DurableConfig, DurableLive, RecoveryReport};

/// A crash-tolerant [`BrowseSession`]: WAL-backed writes, pin-current
/// reads.
pub struct DurableSession {
    store: DurableLive,
    reads: DynamicGeoBrowsingService,
    snapper: Snapper,
}

impl DurableSession {
    /// Opens (or creates) the durable store under `dir` and wraps it as
    /// a browse session. Returns the session and the recovery report —
    /// hosts should surface the report (replay counts, torn-tail
    /// warnings) to their operators.
    pub fn open(
        dir: &Path,
        grid: Grid,
        cfg: DurableConfig,
    ) -> Result<(DurableSession, RecoveryReport), euler_wal::WalError> {
        let (store, report) = DurableLive::open(dir, grid, cfg)?;
        let reads = DynamicGeoBrowsingService::from_live(store.live().clone());
        let snapper = Snapper::new(store.live().grid());
        Ok((
            DurableSession {
                store,
                reads,
                snapper,
            },
            report,
        ))
    }

    /// The underlying durable store.
    pub fn store(&self) -> &DurableLive {
        &self.store
    }
}

impl BrowseSession for DurableSession {
    fn session_name(&self) -> &'static str {
        "durable"
    }

    fn grid(&self) -> &Grid {
        BrowseSession::grid(&self.reads)
    }

    fn len(&self) -> u64 {
        self.store.len()
    }

    fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    fn version(&self) -> u64 {
        self.store.version()
    }

    fn pin_session(&self) -> PinnedSession {
        self.reads.pin_session()
    }

    fn resolution_level(&self, tiling: &Tiling) -> usize {
        self.reads.resolution_level(tiling)
    }

    /// Best-effort infallible form: a WAL failure is swallowed (the
    /// store stays poisoned and fails fast thereafter). Front doors
    /// should call [`BrowseSession::try_insert`] and report the error.
    fn insert(&self, rect: &Rect) {
        let _ = self.try_insert(rect);
    }

    /// See [`DurableSession::insert`] — prefer the fallible form.
    fn remove(&self, rect: &Rect) {
        let _ = self.try_remove(rect);
    }

    fn try_insert(&self, rect: &Rect) -> io::Result<u64> {
        self.store.insert(&self.snapper.snap(rect))
    }

    fn try_remove(&self, rect: &Rect) -> io::Result<u64> {
        self.store.remove(&self.snapper.snap(rect))
    }

    fn sync(&self) -> io::Result<()> {
        self.store.sync()
    }

    fn checkpoint(&self) -> io::Result<Option<(u64, u64)>> {
        self.store.checkpoint().map(Some)
    }

    fn recorder(&self) -> &Arc<Recorder> {
        self.reads.recorder()
    }
}
