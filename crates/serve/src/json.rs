//! A minimal JSON value, parser and writer — just enough for the serve
//! protocol's line-delimited messages. Hand-rolled because the
//! workspace's vendored `serde` derives are no-ops (see
//! `vendor/README.md`); objects preserve insertion order so rendered
//! messages are deterministic.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — builder
    /// misuse, not input data).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Looks a field up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Strictly below 2^53: at the boundary the next integer up
            // rounds onto it, so the value is no longer unambiguous.
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `input` (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates unsupported (protocol is ASCII).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shaped_messages() {
        let msg = Json::obj()
            .set("tenant", "alice")
            .set("op", "browse")
            .set("cols", 4u64)
            .set("rows", 3u64)
            .set("deadline_ms", 250u64)
            .set(
                "region",
                Json::Arr(vec![0u64.into(), 0u64.into(), 35u64.into(), 17u64.into()]),
            );
        let text = msg.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.get("tenant").unwrap().as_str(), Some("alice"));
        assert_eq!(back.get("cols").unwrap().as_u64(), Some(4));
        let region = back.get("region").unwrap().as_array().unwrap();
        assert_eq!(region.len(), 4);
        assert_eq!(region[2].as_u64(), Some(35));
    }

    #[test]
    fn parses_nested_and_escaped() {
        let v = parse(r#"{"a":[1,-2.5,true,null],"s":"line\nbreak \"q\" A"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("line\nbreak \"q\" A"));
        // Render → parse is lossless on the escaped string too.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"k\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integer_fidelity_to_2_pow_53() {
        let v = parse("9007199254740992").unwrap();
        assert_eq!(v.as_f64(), Some(9007199254740992.0));
        // u64 accessor refuses values beyond exact-integer range.
        assert_eq!(parse("9007199254740993").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
