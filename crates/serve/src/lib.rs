//! # euler-serve — concurrent browsing sessions over the estimator engine
//!
//! The admission layer from the serving redesign: many tenants hold
//! line-delimited JSON conversations (over TCP, or in-process) against
//! one shared [`BrowseSession`](euler_browse::BrowseSession), and the
//! server multiplexes them onto the estimator engine without ever
//! queueing unboundedly or answering from an unpublished snapshot.
//!
//! The pipeline per browse request is **admission → cache → engine**:
//!
//! * [`ServeConfig::queue_capacity`] bounds each tenant's in-flight
//!   requests; the next one is shed with a structured `queue_full`
//!   rejection ([`ShedReason`]).
//! * A hot-tiling cache ([`TilingCache`]) keys complete answers by
//!   `(snapshot version, tiling)`; any write advances the version, so
//!   epoch/version advance is the invalidation — no explicit flush.
//! * On a miss, the remaining per-request deadline budget becomes the
//!   engine's `BrowseRequest` deadline, so overload degrades through the
//!   existing ladder: per-tile partial answers (`status:"degraded"`),
//!   never a panic or an unbounded queue.
//!
//! Every response stamps the `(epoch, version)` of the pinned snapshot it
//! was answered from, which is what lets tests verify served answers
//! bit-for-bit against frozen rebuilds of the write-log prefix.
//!
//! ```
//! use std::sync::Arc;
//! use euler_browse::DynamicGeoBrowsingService;
//! use euler_geom::Rect;
//! use euler_grid::{DataSpace, Grid};
//! use euler_serve::{LocalClient, Request, Response, ServeConfig, ServeCore};
//!
//! let grid = Grid::new(
//!     DataSpace::new(Rect::new(0.0, 0.0, 64.0, 64.0).unwrap()), 16, 16,
//! ).unwrap();
//! let service = DynamicGeoBrowsingService::new(grid);
//! service.insert(&Rect::new(2.0, 2.0, 30.0, 30.0).unwrap());
//!
//! let core = ServeCore::new(Arc::new(service), ServeConfig::default());
//! let client = LocalClient::new(core);
//! let req = Request::parse(
//!     r#"{"op":"browse","tenant":"demo","cols":4,"rows":4}"#,
//! ).unwrap();
//! match client.request(&req) {
//!     Response::Browse(reply) => assert!(reply.result.is_complete()),
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
mod core;
mod durable;
mod json;
mod proto;
mod server;
mod tenant;

pub use cache::{CacheKey, CacheStats, TilingCache};
pub use client::{LocalClient, TcpClient};
pub use core::{OpGuard, ServeCore};
pub use durable::DurableSession;
pub use json::{parse as parse_json, Json, JsonError};
pub use proto::{BrowseParams, BrowseReply, ProtoError, Request, Response, ShedReason};
pub use server::{serve, Server};
pub use tenant::{ServeConfig, TenantSnapshot, TenantState};
